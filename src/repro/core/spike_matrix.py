"""Spike matrix container and the tiling scheme of Sec. V-A.

A spiking GeMM multiplies an ``(M, K)`` binary spike matrix with a
``(K, N)`` weight matrix. Prosperity decomposes it into ``m × k`` spike
tiles (paper default ``m=256, k=16``) so the ProSparsity search scope stays
bounded and on-chip buffers capture reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.utils.bitops import pack_rows, popcount_rows
from repro.utils.validation import ensure_binary_matrix


@dataclass(frozen=True)
class TileCoord:
    """Position of a tile inside the full spike matrix."""

    row_start: int
    col_start: int

    def __str__(self) -> str:
        return f"tile(rows={self.row_start}.., cols={self.col_start}..)"


class SpikeTile:
    """One ``m × k`` slice of a spike matrix.

    Holds both the boolean view and the packed (byte) view; the packed view
    backs all set-algebra operations the PPU performs.
    """

    def __init__(self, bits: np.ndarray, coord: TileCoord | None = None):
        self.bits = ensure_binary_matrix(bits, "spike tile")
        self.coord = coord if coord is not None else TileCoord(0, 0)
        self.packed = pack_rows(self.bits)

    @property
    def m(self) -> int:
        return self.bits.shape[0]

    @property
    def k(self) -> int:
        return self.bits.shape[1]

    @property
    def nnz(self) -> int:
        """Total number of spikes (1-bits) in the tile."""
        return int(self.bits.sum())

    @property
    def bit_density(self) -> float:
        """Fraction of 1-bits — the BitSparsity density of this tile."""
        if self.bits.size == 0:
            return 0.0
        return self.nnz / self.bits.size

    def popcounts(self) -> np.ndarray:
        """Per-row spike counts (the Detector's Number-of-Ones vector)."""
        return popcount_rows(self.packed)

    def __repr__(self) -> str:
        return f"SpikeTile(m={self.m}, k={self.k}, density={self.bit_density:.3f})"


class SpikeMatrix:
    """Full binary activation matrix of one spiking-GeMM operand.

    Parameters
    ----------
    bits:
        ``(M, K)`` binary array. For SNN layers, M is typically
        ``time_steps × spatial positions`` after unrolling time steps
        (Sec. II-A) and K the input feature dimension.
    """

    def __init__(self, bits: np.ndarray):
        self.bits = ensure_binary_matrix(bits, "spike matrix")

    @property
    def shape(self) -> tuple[int, int]:
        return self.bits.shape

    @property
    def rows(self) -> int:
        return self.bits.shape[0]

    @property
    def cols(self) -> int:
        return self.bits.shape[1]

    @property
    def nnz(self) -> int:
        return int(self.bits.sum())

    @property
    def bit_density(self) -> float:
        if self.bits.size == 0:
            return 0.0
        return self.nnz / self.bits.size

    def tile(self, tile_m: int, tile_k: int) -> Iterator[SpikeTile]:
        """Yield ``tile_m × tile_k`` tiles in row-major (m outer, k inner) order.

        Edge tiles are *not* padded: ProSparsity statistics must reflect only
        real spikes, and the PPU handles short tiles natively.
        """
        if tile_m <= 0 or tile_k <= 0:
            raise ValueError("tile sizes must be positive")
        for row_start in range(0, self.rows, tile_m):
            row_end = min(row_start + tile_m, self.rows)
            for col_start in range(0, self.cols, tile_k):
                col_end = min(col_start + tile_k, self.cols)
                yield SpikeTile(
                    self.bits[row_start:row_end, col_start:col_end],
                    TileCoord(row_start, col_start),
                )

    def num_tiles(self, tile_m: int, tile_k: int) -> int:
        """Number of tiles produced by :meth:`tile` with the given sizes."""
        tiles_m = -(-self.rows // tile_m)
        tiles_k = -(-self.cols // tile_k)
        return tiles_m * tiles_k

    def __repr__(self) -> str:
        return f"SpikeMatrix(shape={self.shape}, density={self.bit_density:.3f})"


def random_spike_matrix(
    rows: int,
    cols: int,
    density: float,
    rng: np.random.Generator,
    row_correlation: float = 0.0,
) -> SpikeMatrix:
    """Generate a random binary matrix with a target density.

    ``row_correlation`` in [0, 1) mixes each row with a shared template row,
    creating the combinatorial similarity that product sparsity exploits —
    useful for controlled studies where the real SNN substrate is overkill.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    if not 0.0 <= row_correlation < 1.0:
        raise ValueError(f"row_correlation must be in [0, 1), got {row_correlation}")
    independent = rng.random((rows, cols)) < density
    if row_correlation == 0.0:
        return SpikeMatrix(independent)
    template = rng.random(cols) < density
    use_template = rng.random((rows, cols)) < row_correlation
    bits = np.where(use_template, template[None, :], independent)
    return SpikeMatrix(bits)
