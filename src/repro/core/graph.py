"""The full ProSparsity graph (Sec. III-D, Fig. 3b).

Every spike row is a node; a directed edge ``prefix -> suffix`` exists for
every legal EM/PM pair. The graph costs O(m^2) space and admits nodes with
multiple prefixes, which is why the architecture prunes it to a forest
(:mod:`repro.core.forest`). The graph form is retained here for analysis:
multi-prefix density studies (Table II) and pruning-quality measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.core.relations import subset_relation_matrix
from repro.core.spike_matrix import SpikeTile
from repro.utils.bitops import popcount_rows


@dataclass
class ProSparsityGraph:
    """Directed prefix graph over the rows of one spike tile.

    Attributes
    ----------
    tile:
        The source tile.
    prefix_candidates:
        ``(m, m)`` bool matrix; entry ``[i, j]`` true when row ``j`` is a
        *legal* prefix of row ``i`` (subset, non-empty, and EM pairs keep
        only the smaller index as prefix).
    popcounts:
        Per-row spike counts.
    """

    tile: SpikeTile
    prefix_candidates: np.ndarray
    popcounts: np.ndarray = field(repr=False)

    @property
    def m(self) -> int:
        return self.tile.m

    def num_edges(self) -> int:
        return int(self.prefix_candidates.sum())

    def prefix_counts(self) -> np.ndarray:
        """Number of legal prefixes per row."""
        return self.prefix_candidates.sum(axis=1)

    def suffix_counts(self) -> np.ndarray:
        """Number of rows that could reuse each row as prefix."""
        return self.prefix_candidates.sum(axis=0)

    def to_networkx(self) -> nx.DiGraph:
        """Materialize as a ``networkx`` digraph (edges prefix -> suffix)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.m))
        suffixes, prefixes = np.nonzero(self.prefix_candidates)
        graph.add_edges_from(zip(prefixes.tolist(), suffixes.tolist()))
        return graph

    def is_acyclic(self) -> bool:
        """The legality filter guarantees a DAG; exposed for verification."""
        return nx.is_directed_acyclic_graph(self.to_networkx())


def build_graph(tile: SpikeTile) -> ProSparsityGraph:
    """Build the legal-prefix graph for a tile.

    Legality (Sec. III-C + Sec. V-C "Efficient Pruning"):

    * ``S_j ⊆ S_i`` with ``S_j`` non-empty (subset relation);
    * for **EM** pairs (``S_j == S_i``) only the row with the *smaller*
      index may act as prefix — the stable popcount sort used by the
      Dispatcher preserves index order within equal popcounts, so a
      larger-index EM prefix would execute after its suffix;
    * **PM** prefixes may have any index: their popcount is strictly
      smaller, so the sort always schedules them earlier.
    """
    subset = subset_relation_matrix(tile)
    em = subset & subset.T
    index = np.arange(tile.m)
    # Remove EM candidates whose index is larger than the query row's.
    em_violation = em & (index[None, :] > index[:, None])
    legal = subset & ~em_violation
    return ProSparsityGraph(
        tile=tile,
        prefix_candidates=legal,
        popcounts=popcount_rows(tile.packed),
    )
