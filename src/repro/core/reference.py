"""Naive golden-reference implementations used to validate the fast paths.

Everything here is deliberately written as straight-line set logic over
Python sets — slow, obvious, and independent of the vectorized bit-packed
implementations it checks.
"""

from __future__ import annotations

import numpy as np

from repro.core.forest import NO_PREFIX


def dense_spiking_gemm(spike_matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Plain dense reference: binary activations times weights."""
    spikes = np.asarray(spike_matrix, dtype=bool)
    weights = np.asarray(weights)
    dtype = np.int64 if np.issubdtype(weights.dtype, np.integer) else np.float64
    return spikes.astype(dtype) @ weights.astype(dtype)


def spike_sets(spike_matrix: np.ndarray) -> list[frozenset[int]]:
    """Row-wise spike sets S_i = {j | M[i, j] = 1} (paper's Sec. III-B)."""
    spikes = np.asarray(spike_matrix, dtype=bool)
    return [frozenset(np.flatnonzero(row).tolist()) for row in spikes]


def reference_prefixes(spike_matrix: np.ndarray) -> np.ndarray:
    """O(m^2) set-based prefix selection replicating the pruning rules.

    For each row i: candidates are non-empty rows j != i with S_j ⊆ S_i,
    excluding EM rows with j > i; keep max (|S_j|, j) lexicographically.
    """
    sets = spike_sets(spike_matrix)
    m = len(sets)
    prefixes = np.full(m, NO_PREFIX, dtype=np.int64)
    for i in range(m):
        best: tuple[int, int] | None = None
        for j in range(m):
            if j == i or not sets[j]:
                continue
            if not sets[j] <= sets[i]:
                continue
            if sets[j] == sets[i] and j > i:
                continue
            key = (len(sets[j]), j)
            if best is None or key > best:
                best = key
        if best is not None:
            prefixes[i] = best[1]
    return prefixes


def reference_product_nnz(spike_matrix: np.ndarray) -> int:
    """Residual spike count after one-prefix ProSparsity, via sets."""
    sets = spike_sets(spike_matrix)
    prefixes = reference_prefixes(spike_matrix)
    total = 0
    for i, row_set in enumerate(sets):
        if prefixes[i] == NO_PREFIX:
            total += len(row_set)
        else:
            total += len(row_set - sets[int(prefixes[i])])
    return total


def reference_execution_order(spike_matrix: np.ndarray) -> np.ndarray:
    """Stable popcount sort implemented with Python's sorted() for checking."""
    sets = spike_sets(spike_matrix)
    return np.array(
        sorted(range(len(sets)), key=lambda i: len(sets[i])), dtype=np.int64
    )
