"""Product Sparsity core: the paper's primary contribution.

Public surface:

* :class:`~repro.core.spike_matrix.SpikeMatrix` /
  :class:`~repro.core.spike_matrix.SpikeTile` — binary activation
  containers with tiling.
* :func:`~repro.core.prosparsity.transform_matrix` — full
  Detector/Pruner/Dispatcher transform with sparsity statistics.
* :func:`~repro.core.prosparsity.execute_gemm` — lossless ProSparsity
  spiking GeMM.
* :func:`~repro.core.forest.build_forest` and friends for finer control.
"""

from repro.core.dispatch import (
    DispatchPlan,
    RowTask,
    build_dispatch_plan,
    stable_popcount_order,
    tree_walk_order,
)
from repro.core.forest import (
    NO_PREFIX,
    ProSparsityForest,
    TwoPrefixForest,
    build_forest,
    build_two_prefix_forest,
    select_prefixes,
)
from repro.core.graph import ProSparsityGraph, build_graph
from repro.core.prosparsity import (
    DEFAULT_TILE_K,
    DEFAULT_TILE_M,
    ProSparsityResult,
    ProSparsityStats,
    TileTransform,
    execute_gemm,
    execute_tile,
    transform_matrix,
    transform_tile,
)
from repro.core.relations import (
    Relation,
    RelationSummary,
    classify_pair,
    summarize_relations,
)
from repro.core.spike_matrix import (
    SpikeMatrix,
    SpikeTile,
    TileCoord,
    random_spike_matrix,
)

__all__ = [
    "DispatchPlan",
    "RowTask",
    "build_dispatch_plan",
    "stable_popcount_order",
    "tree_walk_order",
    "NO_PREFIX",
    "ProSparsityForest",
    "TwoPrefixForest",
    "build_forest",
    "build_two_prefix_forest",
    "select_prefixes",
    "ProSparsityGraph",
    "build_graph",
    "DEFAULT_TILE_K",
    "DEFAULT_TILE_M",
    "ProSparsityResult",
    "ProSparsityStats",
    "TileTransform",
    "execute_gemm",
    "execute_tile",
    "transform_matrix",
    "transform_tile",
    "Relation",
    "RelationSummary",
    "classify_pair",
    "summarize_relations",
    "SpikeMatrix",
    "SpikeTile",
    "TileCoord",
    "random_spike_matrix",
]
