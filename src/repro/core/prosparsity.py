"""End-to-end ProSparsity transform: detection, pruning, dispatch, execute.

This module is the algorithmic heart of the reproduction. Given a spiking
GeMM it produces (a) the per-tile forests and dispatch plans the Prosperity
architecture would execute, (b) sparsity/operation statistics (bit density
vs product density, Fig. 11) plus per-tile records that drive the cycle
model, and (c) an *executable* lossless evaluation that reproduces the
dense GeMM result exactly — the paper's "iso-accuracy" claim as a checked
invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dispatch import DispatchPlan, build_dispatch_plan
from repro.core.forest import NO_PREFIX, ProSparsityForest, build_forest
from repro.core.spike_matrix import SpikeMatrix, SpikeTile, TileCoord

DEFAULT_TILE_M = 256
DEFAULT_TILE_K = 16

# Columns of the per-tile record array consumed by the cycle model.
TILE_RECORD_FIELDS = (
    "m",                  # rows in the tile
    "k",                  # columns in the tile
    "bit_nnz",            # spikes before ProSparsity
    "product_nnz",        # residual spikes after ProSparsity
    "zero_residual_rows",  # rows needing no accumulation (empty or EM)
    "zero_bit_rows",      # rows with no spikes at all
    "em_rows",            # rows fully skipped via exact-match reuse
    "reused_rows",        # rows with any prefix
    "forest_depth",       # longest prefix chain (slow-dispatch ablation)
)


@dataclass
class TileTransform:
    """ProSparsity artifacts for one spike tile."""

    tile: SpikeTile
    forest: ProSparsityForest
    plan: DispatchPlan

    @property
    def bit_nnz(self) -> int:
        return self.tile.nnz

    @property
    def product_nnz(self) -> int:
        return self.forest.product_nnz()

    @property
    def processed_rows(self) -> int:
        """Rows the Processor issues (every row costs >= 1 cycle, EM too)."""
        return self.tile.m


@dataclass
class ProSparsityStats:
    """Aggregate sparsity statistics over a whole spiking GeMM.

    Densities follow the paper's definition: processed non-zeros divided by
    total matrix elements. ``ops_reduction`` is the computation reduction
    factor ProSparsity achieves over bit sparsity (e.g. 11x on SpikeBERT).
    """

    elements: int = 0
    bit_nnz: int = 0
    product_nnz: int = 0
    rows: int = 0
    em_rows: int = 0
    reused_rows: int = 0
    zero_residual_rows: int = 0
    zero_bit_rows: int = 0
    tiles: int = 0
    sample_fraction: float = 1.0

    @property
    def bit_density(self) -> float:
        return self.bit_nnz / self.elements if self.elements else 0.0

    @property
    def product_density(self) -> float:
        return self.product_nnz / self.elements if self.elements else 0.0

    @property
    def ops_reduction(self) -> float:
        if self.product_nnz == 0:
            return float("inf") if self.bit_nnz else 1.0
        return self.bit_nnz / self.product_nnz

    @property
    def density_reduction(self) -> float:
        """How many times denser bit sparsity is than product sparsity."""
        return self.ops_reduction

    def merge(self, other: "ProSparsityStats") -> None:
        self.elements += other.elements
        self.bit_nnz += other.bit_nnz
        self.product_nnz += other.product_nnz
        self.rows += other.rows
        self.em_rows += other.em_rows
        self.reused_rows += other.reused_rows
        self.zero_residual_rows += other.zero_residual_rows
        self.zero_bit_rows += other.zero_bit_rows
        self.tiles += other.tiles


@dataclass
class ProSparsityResult:
    """Full transform of a spiking GeMM.

    ``tile_records`` is an ``(n_tiles, len(TILE_RECORD_FIELDS))`` int array
    (see :data:`TILE_RECORD_FIELDS`); the architecture simulator derives
    per-tile cycle counts from it without re-running the transform.
    """

    transforms: list[TileTransform] = field(default_factory=list)
    stats: ProSparsityStats = field(default_factory=ProSparsityStats)
    tile_records: np.ndarray | None = None


def validate_tile_shape(tile_m: int, tile_k: int) -> None:
    """Reject degenerate tile shapes before any tiling loop runs.

    Without this, a non-positive size silently yields zero tiles (the
    sampling path iterates an empty ``range``) and an empty transform.
    """
    for name, value in (("tile_m", tile_m), ("tile_k", tile_k)):
        if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
            raise ValueError(f"{name} must be a positive integer, got {value!r}")
        if value <= 0:
            raise ValueError(f"{name} must be a positive integer, got {value!r}")


def transform_tile(tile: SpikeTile) -> TileTransform:
    """Run Detector -> Pruner -> Dispatcher on a single tile."""
    forest = build_forest(tile)
    plan = build_dispatch_plan(forest)
    return TileTransform(tile=tile, forest=forest, plan=plan)


def forest_record(forest: ProSparsityForest) -> tuple[int, ...]:
    """Canonical :data:`TILE_RECORD_FIELDS` tuple for a built forest.

    The single source of truth for record layout — every backend and the
    engine pipeline build records through this function (or replicate its
    field order exactly, guarded by the backend-equivalence tests).
    """
    residual = forest.residual_ops()
    popcounts = forest.popcounts
    reused = forest.prefix != NO_PREFIX
    return (
        forest.m,
        forest.k,
        int(popcounts.sum()),
        int(residual.sum()),
        int((residual == 0).sum()),
        int((popcounts == 0).sum()),
        int((reused & (residual == 0) & (popcounts > 0)).sum()),
        int(reused.sum()),
        forest.depth(),
    )




def _record_to_stats(record: tuple[int, ...]) -> ProSparsityStats:
    m, k, bit_nnz, product_nnz, zero_res, zero_bit, em_rows, reused, _depth = record
    return ProSparsityStats(
        elements=m * k,
        bit_nnz=bit_nnz,
        product_nnz=product_nnz,
        rows=m,
        em_rows=em_rows,
        reused_rows=reused,
        zero_residual_rows=zero_res,
        zero_bit_rows=zero_bit,
        tiles=1,
    )


def _sample_tiles(
    matrix: SpikeMatrix,
    tile_m: int,
    tile_k: int,
    max_tiles: int,
    rng: np.random.Generator,
) -> list[SpikeTile]:
    """Uniformly sample tile coordinates without materializing every tile."""
    row_starts = list(range(0, matrix.rows, tile_m))
    col_starts = list(range(0, matrix.cols, tile_k))
    coords = [(r, c) for r in row_starts for c in col_starts]
    if len(coords) > max_tiles:
        chosen = rng.choice(len(coords), size=max_tiles, replace=False)
        coords = [coords[int(i)] for i in chosen]
    tiles = []
    for row_start, col_start in coords:
        bits = matrix.bits[row_start : row_start + tile_m, col_start : col_start + tile_k]
        tiles.append(SpikeTile(bits, TileCoord(row_start, col_start)))
    return tiles


def transform_matrix(
    matrix: SpikeMatrix | np.ndarray,
    tile_m: int = DEFAULT_TILE_M,
    tile_k: int = DEFAULT_TILE_K,
    keep_transforms: bool = True,
    max_tiles: int | None = None,
    rng: np.random.Generator | None = None,
) -> ProSparsityResult:
    """Apply ProSparsity tile-by-tile over a full spike matrix.

    Parameters
    ----------
    keep_transforms:
        When false, dispatch plans are skipped and only statistics and tile
        records are produced (statistics-only sweeps over large models).
    max_tiles:
        When set, uniformly sample at most this many tiles and record the
        sampled fraction in ``stats.sample_fraction``; aggregate counters
        then describe the *sample*, while densities remain unbiased
        estimates of the full matrix.
    """
    validate_tile_shape(tile_m, tile_k)
    if not isinstance(matrix, SpikeMatrix):
        matrix = SpikeMatrix(matrix)
    result = ProSparsityResult()

    total_tiles = matrix.num_tiles(tile_m, tile_k)
    if max_tiles is not None and total_tiles > max_tiles:
        if rng is None:
            rng = np.random.default_rng(0)
        tiles = _sample_tiles(matrix, tile_m, tile_k, max_tiles, rng)
        result.stats.sample_fraction = len(tiles) / total_tiles
    else:
        tiles = matrix.tile(tile_m, tile_k)

    records: list[tuple[int, ...]] = []
    for tile in tiles:
        forest = build_forest(tile)
        record = forest_record(forest)
        records.append(record)
        result.stats.merge(_record_to_stats(record))
        if keep_transforms:
            plan = build_dispatch_plan(forest)
            result.transforms.append(TileTransform(tile=tile, forest=forest, plan=plan))
    result.tile_records = np.array(records, dtype=np.int64).reshape(
        len(records), len(TILE_RECORD_FIELDS)
    )
    return result


def execute_tile(transform: TileTransform, weights: np.ndarray) -> np.ndarray:
    """Execute one tile's plan against a ``(k, n)`` weight slice.

    Follows the Processor dataflow: rows run in dispatch order; each row
    seeds its partial sum with the prefix row's finished output (Step 9)
    then accumulates the weight rows selected by its residual pattern
    (Steps 10-11).
    """
    tile = transform.tile
    weights = np.asarray(weights)
    if weights.shape[0] != tile.k:
        raise ValueError(
            f"weight rows ({weights.shape[0]}) must match tile k ({tile.k})"
        )
    n = weights.shape[1]
    out_dtype = (
        np.int64 if np.issubdtype(weights.dtype, np.integer) else np.float64
    )
    out = np.zeros((tile.m, n), dtype=out_dtype)
    pattern = transform.forest.pattern
    for task in transform.plan.tasks:
        if task.prefix != NO_PREFIX:
            acc = out[task.prefix].copy()
        else:
            acc = np.zeros(n, dtype=out.dtype)
        cols = np.flatnonzero(pattern[task.row])
        if cols.size:
            acc += weights[cols].sum(axis=0)
        out[task.row] = acc
    return out


def execute_gemm(
    spike_matrix: SpikeMatrix | np.ndarray,
    weights: np.ndarray,
    tile_m: int = DEFAULT_TILE_M,
    tile_k: int = DEFAULT_TILE_K,
) -> np.ndarray:
    """Full lossless spiking GeMM through the ProSparsity pipeline.

    Tiles along K accumulate into the same output rows, mirroring the
    output-stationary partial-sum accumulation of the architecture.
    """
    validate_tile_shape(tile_m, tile_k)
    if not isinstance(spike_matrix, SpikeMatrix):
        spike_matrix = SpikeMatrix(spike_matrix)
    weights = np.asarray(weights)
    if weights.shape[0] != spike_matrix.cols:
        raise ValueError(
            f"weight rows ({weights.shape[0]}) must match spike cols ({spike_matrix.cols})"
        )
    out_dtype = (
        np.int64 if np.issubdtype(weights.dtype, np.integer) else np.float64
    )
    output = np.zeros((spike_matrix.rows, weights.shape[1]), dtype=out_dtype)
    for tile in spike_matrix.tile(tile_m, tile_k):
        transform = transform_tile(tile)
        w_slice = weights[tile.coord.col_start : tile.coord.col_start + tile.k]
        partial = execute_tile(transform, w_slice)
        rows = slice(tile.coord.row_start, tile.coord.row_start + tile.m)
        output[rows] += partial
    return output
