"""Temporal ordering and meta information (Sec. III-C/D, Sec. V-D).

The Dispatcher must execute every prefix before its suffixes. The paper's
key observation: a *stable* sort of rows by ascending popcount is a valid
topological order of the forest, because

* PM prefixes have strictly smaller popcount than their suffix, and
* EM prefixes have equal popcount but a smaller index, which a stable sort
  keeps earlier.

This replaces an O(m·d) tree walk with an O(log^2 m) parallel bitonic sort
and O(m) storage — the "overhead-free" dispatch of the ablation study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.forest import NO_PREFIX, ProSparsityForest


@dataclass(frozen=True)
class RowTask:
    """One Processor instruction: compute output row ``row``.

    Attributes
    ----------
    row:
        Output/spike row index inside the tile.
    prefix:
        Row whose finished output seeds the partial sum, or ``NO_PREFIX``.
    pattern_nnz:
        Number of residual weight-row accumulations to perform.
    """

    row: int
    prefix: int
    pattern_nnz: int

    @property
    def is_exact_match(self) -> bool:
        """EM reuse: no accumulation needed, result copied from prefix."""
        return self.prefix != NO_PREFIX and self.pattern_nnz == 0


@dataclass
class DispatchPlan:
    """Meta information for one tile (Fig. 3d).

    ``order`` is the temporal information (execution order of row indices);
    ``tasks`` aligns with ``order`` and carries the spatial information
    (prefix index + residual pattern size) for each issued row.
    """

    order: np.ndarray
    tasks: list[RowTask]

    def __len__(self) -> int:
        return len(self.tasks)

    def verify_topological(self, forest: ProSparsityForest) -> bool:
        """Check every prefix executes strictly before its suffix."""
        position = np.empty(len(self.order), dtype=np.int64)
        position[self.order] = np.arange(len(self.order))
        for row in range(forest.m):
            pre = int(forest.prefix[row])
            if pre != NO_PREFIX and position[pre] >= position[row]:
                return False
        return True


def stable_popcount_order(popcounts: np.ndarray) -> np.ndarray:
    """Temporal information: stable argsort by ascending popcount."""
    return np.argsort(np.asarray(popcounts), kind="stable")


def build_dispatch_plan(forest: ProSparsityForest) -> DispatchPlan:
    """Assemble the per-tile execution plan from a pruned forest."""
    order = stable_popcount_order(forest.popcounts)
    residual = forest.residual_ops()
    tasks = [
        RowTask(
            row=int(row),
            prefix=int(forest.prefix[row]),
            pattern_nnz=int(residual[row]),
        )
        for row in order
    ]
    return DispatchPlan(order=order, tasks=tasks)


def tree_walk_order(forest: ProSparsityForest) -> np.ndarray:
    """Baseline ordering via explicit BFS over the forest (Sec. V-D).

    This is the "high-overhead" Dispatcher variant used in the Fig. 9
    ablation: functionally identical schedule, but requires O(m·d) search
    over the product sparsity table in hardware.
    """
    children = forest.children()
    order: list[int] = []
    queue = [int(root) for root in forest.roots()]
    while queue:
        node = queue.pop(0)
        order.append(node)
        queue.extend(children.get(node, ()))
    if len(order) != forest.m:
        raise RuntimeError("forest walk did not visit every row; cycle present")
    return np.array(order, dtype=np.int64)
