"""Pruning the ProSparsity graph to a forest (Sec. III-D, Fig. 3c).

The pruning rules keep exactly one prefix per row:

1. among all legal prefixes keep those with the **largest** common
   sub-combination (largest popcount — for a subset, its popcount *is* the
   size of the common sub-combination);
2. on ties keep the prefix with the **largest row index**.

The result is a directed forest; every tree's root-to-leaf order is a valid
reuse schedule. A two-prefix variant is provided for the Table II study: a
second prefix must be disjoint from the first and a subset of the remaining
pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.graph import ProSparsityGraph, build_graph
from repro.core.spike_matrix import SpikeTile
from repro.utils.bitops import popcount_rows

NO_PREFIX = -1


@dataclass
class ProSparsityForest:
    """One-prefix-per-row forest over a spike tile.

    Attributes
    ----------
    tile:
        Source tile.
    prefix:
        ``(m,)`` int array; ``prefix[i]`` is the prefix row of ``i`` or
        :data:`NO_PREFIX` when row ``i`` is a root (computed from scratch).
    pattern:
        ``(m, k)`` bool array; the residual spikes row ``i`` must still
        accumulate after reusing its prefix (``S_i − S_prefix`` == XOR,
        because the prefix is a subset). Roots keep their full row.
    popcounts:
        Original per-row spike counts.
    """

    tile: SpikeTile
    prefix: np.ndarray
    pattern: np.ndarray
    popcounts: np.ndarray = field(repr=False)

    @property
    def m(self) -> int:
        return self.tile.m

    @property
    def k(self) -> int:
        return self.tile.k

    def roots(self) -> np.ndarray:
        """Indices of rows with no prefix."""
        return np.flatnonzero(self.prefix == NO_PREFIX)

    def children(self) -> dict[int, list[int]]:
        """Suffix lists per prefix row (forest adjacency, derived)."""
        adjacency: dict[int, list[int]] = {}
        for row, pre in enumerate(self.prefix):
            if pre != NO_PREFIX:
                adjacency.setdefault(int(pre), []).append(row)
        return adjacency

    def depth(self) -> int:
        """Longest prefix chain length (number of edges) in the forest."""
        memo = np.full(self.m, -1, dtype=np.int64)

        def chain(row: int) -> int:
            if memo[row] >= 0:
                return int(memo[row])
            pre = int(self.prefix[row])
            value = 0 if pre == NO_PREFIX else chain(pre) + 1
            memo[row] = value
            return value

        return max((chain(row) for row in range(self.m)), default=0)

    def residual_ops(self) -> np.ndarray:
        """Per-row accumulate count after ProSparsity (popcount of pattern)."""
        return self.pattern.sum(axis=1).astype(np.int64)

    def product_nnz(self) -> int:
        """Total spikes processed after ProSparsity (Σ residual ops)."""
        return int(self.pattern.sum())

    def product_density(self) -> float:
        """ProSparsity density of this tile (residual spikes / tile size)."""
        if self.pattern.size == 0:
            return 0.0
        return self.product_nnz() / self.pattern.size

    def exact_match_rows(self) -> np.ndarray:
        """Rows whose entire computation is skipped (EM reuse)."""
        has_prefix = self.prefix != NO_PREFIX
        return np.flatnonzero(has_prefix & (self.residual_ops() == 0) & (self.popcounts > 0))

    def verify_acyclic(self) -> bool:
        """Follow every prefix chain; it must terminate within m hops."""
        for row in range(self.m):
            seen = 0
            current = int(self.prefix[row])
            while current != NO_PREFIX:
                seen += 1
                if seen > self.m:
                    return False
                current = int(self.prefix[current])
        return True


def select_prefixes(graph: ProSparsityGraph) -> np.ndarray:
    """Apply the pruning rules: keep one prefix per row.

    Vectorized argmax over the lexicographic key ``(popcount, index)``,
    exactly the Pruner's (proper-subset filter -> Argmax) datapath.
    """
    m = graph.m
    candidates = graph.prefix_candidates
    popcounts = graph.popcounts
    index = np.arange(m)
    # Lexicographic score: popcount dominates, index breaks ties.
    score = popcounts[None, :].astype(np.int64) * m + index[None, :]
    score = np.where(candidates, score, -1)
    best = score.argmax(axis=1)
    has_prefix = score.max(axis=1) >= 0
    return np.where(has_prefix, best, NO_PREFIX)


def build_forest(tile: SpikeTile, graph: ProSparsityGraph | None = None) -> ProSparsityForest:
    """Detect relations, prune to one prefix per row, compute patterns."""
    if graph is None:
        graph = build_graph(tile)
    prefix = select_prefixes(graph)
    pattern = tile.bits.copy()
    reused = prefix != NO_PREFIX
    if reused.any():
        rows = np.flatnonzero(reused)
        # Prefix is a subset, so XOR equals set difference S_i − S_prefix.
        pattern[rows] = tile.bits[rows] ^ tile.bits[prefix[rows]]
    return ProSparsityForest(
        tile=tile,
        prefix=prefix,
        pattern=pattern,
        popcounts=popcount_rows(tile.packed),
    )


@dataclass
class TwoPrefixForest:
    """Extension studied in Table II: up to two disjoint prefixes per row."""

    tile: SpikeTile
    prefix1: np.ndarray
    prefix2: np.ndarray
    pattern: np.ndarray

    def product_nnz(self) -> int:
        return int(self.pattern.sum())

    def product_density(self) -> float:
        if self.pattern.size == 0:
            return 0.0
        return self.product_nnz() / self.pattern.size

    def prefix_ratio(self) -> tuple[float, float]:
        """Fractions of rows using exactly one and exactly two prefixes."""
        if len(self.prefix1) == 0:
            return 0.0, 0.0
        one = (self.prefix1 != NO_PREFIX) & (self.prefix2 == NO_PREFIX)
        two = self.prefix2 != NO_PREFIX
        m = len(self.prefix1)
        return float(one.sum()) / m, float(two.sum()) / m


def build_two_prefix_forest(tile: SpikeTile) -> TwoPrefixForest:
    """Greedy two-prefix selection (Table II preliminary study).

    The second prefix must be (a) a subset of the *residual* pattern after
    removing the first prefix — hence disjoint from the first — and (b)
    schedulable, i.e. its popcount is strictly smaller than the row's
    original popcount (it executes earlier under the popcount sort).
    """
    base = build_forest(tile)
    m, k = tile.m, tile.k
    popcounts = base.popcounts
    prefix2 = np.full(m, NO_PREFIX, dtype=np.int64)
    pattern = base.pattern.copy()

    for row in range(m):
        if base.prefix[row] == NO_PREFIX:
            continue
        residual = pattern[row]
        residual_count = int(residual.sum())
        if residual_count < 2:
            continue  # reusing a second prefix saves at most one add
        best_row, best_size = NO_PREFIX, 0
        for other in range(m):
            if other == row or popcounts[other] == 0:
                continue
            if popcounts[other] >= popcounts[row]:
                continue  # cannot be scheduled before the suffix
            other_bits = tile.bits[other]
            if (other_bits & ~residual).any():
                continue  # not a subset of the residual
            size = int(popcounts[other])
            if size > best_size or (size == best_size and other > best_row):
                best_row, best_size = other, size
        if best_row != NO_PREFIX:
            prefix2[row] = best_row
            pattern[row] = residual ^ tile.bits[best_row]

    return TwoPrefixForest(
        tile=tile,
        prefix1=base.prefix.copy(),
        prefix2=prefix2,
        pattern=pattern,
    )
