"""Spatial relationship detection between spike rows (Sec. III-B).

Two spike rows ``i`` and ``j`` with spike sets ``S_i`` and ``S_j`` and
non-empty intersection ``A = S_i ∩ S_j`` stand in one of three relations:

* **Exact Match (EM)** — ``A == S_i == S_j``: the rows are identical.
* **Partial Match (PM)** — ``A == S_j != S_i``: ``S_j`` is a *proper*
  subset of ``S_i`` (``j`` can serve as a prefix of ``i``).
* **Intersection** — ``A != S_i`` and ``A != S_j``: the rows overlap but
  neither contains the other. Exploiting this would require materializing a
  new row for ``A``, so Prosperity ignores it (Sec. III-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.core.spike_matrix import SpikeTile
from repro.utils.bitops import popcount_rows, subset_matrix


class Relation(Enum):
    """Pairwise spatial relation between two spike rows."""

    NONE = "none"
    EXACT_MATCH = "exact_match"
    PARTIAL_MATCH = "partial_match"
    INTERSECTION = "intersection"


@dataclass(frozen=True)
class RelationSummary:
    """Counts of each relation over all ordered row pairs of a tile."""

    exact_match: int
    partial_match: int
    intersection: int
    none: int

    @property
    def total_pairs(self) -> int:
        return self.exact_match + self.partial_match + self.intersection + self.none


def classify_pair(row_i: np.ndarray, row_j: np.ndarray) -> Relation:
    """Classify the relation of row ``j`` relative to row ``i``.

    ``PARTIAL_MATCH`` means ``j`` is a proper subset of ``i`` — i.e. ``j``
    is a prefix *candidate* for ``i``. The relation is directional.
    """
    row_i = np.asarray(row_i, dtype=bool)
    row_j = np.asarray(row_j, dtype=bool)
    if row_i.shape != row_j.shape:
        raise ValueError("rows must have equal length")
    intersection = row_i & row_j
    if not intersection.any():
        return Relation.NONE
    j_subset = (intersection == row_j).all()
    i_subset = (intersection == row_i).all()
    if j_subset and i_subset:
        return Relation.EXACT_MATCH
    if j_subset:
        return Relation.PARTIAL_MATCH
    return Relation.INTERSECTION


def subset_relation_matrix(tile: SpikeTile) -> np.ndarray:
    """Boolean ``(m, m)`` matrix: entry ``[i, j]`` true iff ``S_j ⊆ S_i``.

    Empty rows are excluded as subsets: an all-zero row is trivially a subset
    of everything but reusing its (zero) result saves nothing, and the
    hardware never selects it as a prefix.
    """
    subset = subset_matrix(tile.packed)
    np.fill_diagonal(subset, False)
    nonzero = popcount_rows(tile.packed) > 0
    return subset & nonzero[None, :]


def exact_match_matrix(tile: SpikeTile) -> np.ndarray:
    """Boolean ``(m, m)`` matrix of EM pairs (symmetric, diagonal False)."""
    subset = subset_relation_matrix(tile)
    return subset & subset.T


def summarize_relations(tile: SpikeTile) -> RelationSummary:
    """Count EM / PM / intersection / none over all unordered row pairs."""
    packed = tile.packed
    m = tile.m
    subset = subset_matrix(packed)
    np.fill_diagonal(subset, False)
    # intersect[i, j] true when rows share at least one spike
    rows_i = packed[:, None, :]
    rows_j = packed[None, :, :]
    intersect = (rows_i & rows_j).any(axis=2)
    np.fill_diagonal(intersect, False)

    upper = np.triu(np.ones((m, m), dtype=bool), k=1)
    em = subset & subset.T
    pm_either = (subset | subset.T) & ~em
    inter_only = intersect & ~subset & ~subset.T

    return RelationSummary(
        exact_match=int((em & upper).sum()),
        partial_match=int((pm_either & upper).sum()),
        intersection=int((inter_only & upper).sum()),
        none=int((~intersect & upper).sum()),
    )
