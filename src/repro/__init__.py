"""repro — reproduction of "Prosperity: Accelerating Spiking Neural
Networks via Product Sparsity" (Wei et al., HPCA 2025).

Layered public API:

* :mod:`repro.api` — **the canonical entry point**: the typed
  :class:`~repro.api.RunConfig` (TOML/JSON round-trip, ``with_overrides``
  sweeps) and the :class:`~repro.api.Session` facade over engine,
  simulator, and analysis with shared backend/pool lifecycle.
* :mod:`repro.core` — Product Sparsity: relations, forest, dispatch, and
  the lossless ProSparsity spiking GeMM.
* :mod:`repro.snn` — NumPy SNN substrate (LIF/FS neurons, conv/linear/
  attention layers, the paper's model zoo, workload tracing).
* :mod:`repro.arch` — the Prosperity accelerator simulator (PPU pipeline,
  memory system, 28 nm area/energy models).
* :mod:`repro.engine` — batched, backend-pluggable execution engine
  (reference / vectorized backends, content-hash forest cache).
* :mod:`repro.baselines` — Eyeriss, PTB, SATO, MINT, Stellar, LoAS, A100.
* :mod:`repro.analysis` — density studies, tiling DSE, cost trade-off.
* :mod:`repro.workloads` — the cached model x dataset evaluation grid.
"""

from repro.arch import ProsperityConfig, ProsperitySimulator, SimReport
from repro.core import (
    SpikeMatrix,
    execute_gemm,
    transform_matrix,
)
from repro.engine import ProsperityEngine, available_backends
from repro.snn import GeMMWorkload, ModelTrace
from repro.workloads import FIG8_GRID, FIG11_GRID, get_trace

# Imported last: repro.api sits above every other layer.
from repro.api import RunConfig, Session  # noqa: E402

__version__ = "1.7.0"

__all__ = [
    "RunConfig",
    "Session",
    "ProsperityConfig",
    "ProsperityEngine",
    "ProsperitySimulator",
    "SimReport",
    "available_backends",
    "SpikeMatrix",
    "execute_gemm",
    "transform_matrix",
    "GeMMWorkload",
    "ModelTrace",
    "FIG8_GRID",
    "FIG11_GRID",
    "get_trace",
    "__version__",
]
