"""Multiprocess sharded execution of the fused tile-batch kernels.

The ``sharded`` backend reuses the whole fused pipeline — packing, shape
grouping, content dedup, cache composition — and parallelizes only the
compute-bound step: the batched prefix-selection/record kernel over the
deduplicated tile stacks. Stacks are split into contiguous shards across
a persistent :class:`~concurrent.futures.ProcessPoolExecutor`; workers
receive raw packed bytes (codes + popcounts), never pickled tile
objects, and return raw record bytes.

Determinism: shard boundaries depend only on the stack size and worker
count, shard results are concatenated in submission order, and the
deduplicated stack order itself is byte-sorted
(:func:`~repro.engine.fused.dedup_tiles`) — so tile records are
bit-identical to the ``fused`` and ``reference`` backends for *any*
worker count.

Supervision: a crashed worker breaks the whole
:class:`~concurrent.futures.ProcessPoolExecutor`
(``BrokenProcessPool``).  Instead of staying poisoned forever, the
backend discards the broken pool, rebuilds it within a bounded budget
(``max_rebuilds``), and re-dispatches the shards — the retried result is
bit-identical because shard inputs are pure functions of the stack.
When the budget is exhausted it either degrades to the in-process fused
path (``degrade=True``, mirroring the ``compiled`` backend's
``jit_active=False`` fallback) or raises :class:`PoolBrokenError`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.core.prosparsity import TILE_RECORD_FIELDS
from repro.engine import faults
from repro.engine.backends import register_backend, validate_workers
from repro.engine.fused import FusedBackend, records_from_codes_batch

__all__ = ["PoolBrokenError", "ShardedBackend", "shard_bounds"]

#: Below this many tiles a stack runs inline: pool round-trips would
#: dominate the kernel time.
MIN_TILES_PER_SHARD = 8


class PoolBrokenError(RuntimeError):
    """The sharded worker pool broke and the rebuild budget is spent.

    Raised only with ``degrade=False``; the default configuration falls
    back to the in-process fused path instead.  Carries no partial
    results — the failed dispatch produced none.
    """


def shard_bounds(total: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous, deterministic ``[start, end)`` splits of ``total`` items."""
    shards = max(1, min(shards, total))
    base, extra = divmod(total, shards)
    bounds = []
    start = 0
    for i in range(shards):
        end = start + base + (1 if i < extra else 0)
        bounds.append((start, end))
        start = end
    return bounds


def _worker_records(payload: tuple) -> tuple[bytes, float, float]:
    """Pool entry point: rebuild arrays from raw bytes, run the kernel.

    ``payload`` is ``(code_bytes, code_dtype, shape, pop_bytes, k)``.
    Returns the ``(T, len(TILE_RECORD_FIELDS))`` int64 records as bytes
    plus the worker's own select/record stage seconds, so the parent can
    attribute its wall-clock to the right profile stages.
    """
    faults.worker_tick()
    code_bytes, code_dtype, shape, pop_bytes, k = payload
    codes = np.frombuffer(code_bytes, dtype=code_dtype).reshape(shape)
    popcounts = np.frombuffer(pop_bytes, dtype=np.int64).reshape(shape[:2])
    profile: dict[str, float] = {}
    records = records_from_codes_batch(codes, popcounts, k, profile=profile)
    return records.tobytes(), profile.get("select", 0.0), profile.get("record", 0.0)


@register_backend
class ShardedBackend(FusedBackend):
    """Fused kernels sharded across a persistent process pool.

    The pool is spawned lazily on first use, persists across calls, and
    is released by :meth:`close` (idempotent) or by using the backend as
    a context manager — sweep loops and repeated simulator construction
    must route through one of those so pools are reused, never leaked.

    Parameters
    ----------
    workers:
        Process count. ``1`` runs the fused kernel inline (no pool);
        ``None`` uses ``os.cpu_count()`` capped at 8.
    max_rebuilds:
        Lifetime budget of pool rebuilds after ``BrokenProcessPool``
        before the backend stops retrying (``[resilience]
        max_pool_rebuilds`` in the config).
    degrade:
        When the rebuild budget is spent: ``True`` falls back to the
        in-process fused path for the rest of the backend's lifetime,
        ``False`` raises :class:`PoolBrokenError`.
    """

    name = "sharded"

    def __init__(
        self,
        workers: int | None = None,
        max_rebuilds: int = 2,
        degrade: bool = True,
    ):
        super().__init__()
        if workers is None:
            workers = min(os.cpu_count() or 1, 8)
        self.workers = validate_workers(workers)
        if int(max_rebuilds) < 0:
            raise ValueError(f"max_rebuilds must be >= 0, got {max_rebuilds}")
        self.max_rebuilds = int(max_rebuilds)
        self.degrade = bool(degrade)
        self._pool: ProcessPoolExecutor | None = None
        #: Pools spawned over this backend's lifetime. Stays at 1 across
        #: any number of calls (and at 0 until the pool path engages) —
        #: sweep loops and repeated engine runs must reuse, not respawn.
        self.pools_spawned = 0
        #: Supervision counters surfaced through :meth:`failure_counters`
        #: into ``EngineReport`` / scheduler stats.
        self.pool_rebuilds = 0
        self.retries = 0
        self.degraded = False

    # -- pool lifecycle -------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            self.pools_spawned += 1
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a broken pool without waiting on its corpse."""
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except BaseException:  # noqa: BLE001 - already broken
                pass

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __del__(self):  # best effort; explicit close() is preferred
        # GC may run during interpreter shutdown, when the executor's
        # management thread and queues are already half torn down and
        # shutdown(wait=True) can raise or hang. Detach the pool first
        # (so a failed shutdown is never retried), never wait, and
        # swallow everything — a backend collected without close() must
        # not print teardown noise.
        try:
            pool = getattr(self, "_pool", None)
            if pool is None:
                return
            self._pool = None
            pool.shutdown(wait=False, cancel_futures=True)
        except BaseException:  # noqa: BLE001 - teardown must stay silent
            pass

    def failure_counters(self) -> dict:
        return {
            "pool_rebuilds": self.pool_rebuilds,
            "retries": self.retries,
            "degraded": self.degraded,
        }

    # -- kernel dispatch ------------------------------------------------
    def _compute_records(
        self, codes: np.ndarray, popcounts: np.ndarray, k: int
    ) -> np.ndarray:
        total = codes.shape[0]
        if self.degraded or self.workers == 1 or total < 2 * MIN_TILES_PER_SHARD:
            return super()._compute_records(codes, popcounts, k)
        faults.kernel_fault("sharded.dispatch")
        while True:
            try:
                return self._dispatch_shards(codes, popcounts, k)
            except BrokenProcessPool as exc:
                self._discard_pool()
                # A harness-killed worker spent one trigger in the child;
                # burn it from the parent-side budget so rebuilt pools
                # fork clean workers once the fault is exhausted.
                faults.consume("worker_crash")
                if self.pool_rebuilds < self.max_rebuilds:
                    self.pool_rebuilds += 1
                    self.retries += 1
                    continue
                if self.degrade:
                    self.degraded = True
                    return super()._compute_records(codes, popcounts, k)
                raise PoolBrokenError(
                    "sharded worker pool broke and the rebuild budget "
                    f"({self.max_rebuilds}) is exhausted"
                ) from exc

    def _dispatch_shards(
        self, codes: np.ndarray, popcounts: np.ndarray, k: int
    ) -> np.ndarray:
        """One pooled dispatch over the stack; raises ``BrokenProcessPool``
        if a worker dies (the supervisor in :meth:`_compute_records`
        rebuilds and re-dispatches — inputs are pure, so a retry is
        bit-identical)."""
        total = codes.shape[0]
        start = time.perf_counter()
        shards = min(self.workers, max(1, total // MIN_TILES_PER_SHARD))
        bounds = shard_bounds(total, shards)
        pool = self._ensure_pool()
        popcounts = np.ascontiguousarray(popcounts, dtype=np.int64)
        futures = [
            pool.submit(
                _worker_records,
                (
                    np.ascontiguousarray(codes[lo:hi]).tobytes(),
                    codes.dtype.str,
                    (hi - lo,) + codes.shape[1:],
                    popcounts[lo:hi].tobytes(),
                    k,
                ),
            )
            for lo, hi in bounds
        ]
        # Submission-order collection keeps the merge deterministic for
        # any worker count and completion order.
        parts = []
        select_seconds = 0.0
        record_seconds = 0.0
        for future, (lo, hi) in zip(futures, bounds):
            record_bytes, worker_select, worker_record = future.result()
            select_seconds += worker_select
            record_seconds += worker_record
            parts.append(
                np.frombuffer(record_bytes, dtype=np.int64).reshape(
                    hi - lo, len(TILE_RECORD_FIELDS)
                )
            )
        records = np.concatenate(parts) if parts else np.empty(
            (0, len(TILE_RECORD_FIELDS)), dtype=np.int64
        )
        # Workers overlap, so their stage times exceed wall-clock; split
        # the measured elapsed proportionally (dispatch/IPC overhead
        # follows the dominant select stage).
        elapsed = time.perf_counter() - start
        kernel_seconds = select_seconds + record_seconds
        record_share = (
            elapsed * record_seconds / kernel_seconds if kernel_seconds else 0.0
        )
        self.profile["record"] += record_share
        self.profile["select"] += elapsed - record_share
        return records
