"""repro.engine — batched, backend-pluggable ProSparsity execution.

The engine is the throughput layer above :mod:`repro.core`: it chooses a
:class:`~repro.engine.backends.Backend` (``reference`` oracle, bulk
``vectorized`` NumPy, tile-batched ``fused`` kernels, multiprocess
``sharded`` execution, or Numba-``compiled`` native kernels with a
transparent NumPy fallback), batches whole-network traces, and caches
per-tile
forests by content hash. :mod:`repro.engine.planner` lifts batching to
trace scope (``plan="trace"``): cross-workload shape buckets, one global
content dedup per bucket, and arena-backed buffers reused across runs.
Every backend and plan mode is bit-identical to the core transform; the
engine only changes *how fast* the answer arrives.
"""

from repro.engine.backends import (
    Backend,
    ReferenceBackend,
    VectorizedBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.engine.compiled import CompiledBackend
from repro.engine.faults import FaultInjected, FaultPlan, FaultSpec
from repro.engine.fused import FusedBackend
from repro.engine.parallel import PoolBrokenError, ShardedBackend
from repro.engine.planner import (
    PLAN_MODES,
    BufferArena,
    TracePlan,
    TracePlanner,
    validate_plan_mode,
)
from repro.engine.pipeline import (
    EngineReport,
    ForestCache,
    ProsperityEngine,
    WorkloadRun,
    stats_from_records,
)
from repro.engine.store import ResultStore, StoreStats, default_store_path

__all__ = [
    "Backend",
    "BufferArena",
    "CompiledBackend",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "FusedBackend",
    "PLAN_MODES",
    "PoolBrokenError",
    "ReferenceBackend",
    "ResultStore",
    "ShardedBackend",
    "StoreStats",
    "TracePlan",
    "TracePlanner",
    "VectorizedBackend",
    "available_backends",
    "default_store_path",
    "get_backend",
    "register_backend",
    "validate_plan_mode",
    "EngineReport",
    "ForestCache",
    "ProsperityEngine",
    "WorkloadRun",
    "stats_from_records",
]
