"""repro.engine — batched, backend-pluggable ProSparsity execution.

The engine is the throughput layer above :mod:`repro.core`: it chooses a
:class:`~repro.engine.backends.Backend` (``reference`` oracle, bulk
``vectorized`` NumPy, tile-batched ``fused`` kernels, or multiprocess
``sharded`` execution), batches whole-network traces, and caches per-tile
forests by content hash. Every backend is bit-identical to the core
transform; the engine only changes *how fast* the answer arrives.
"""

from repro.engine.backends import (
    Backend,
    ReferenceBackend,
    VectorizedBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.engine.fused import FusedBackend
from repro.engine.parallel import ShardedBackend
from repro.engine.pipeline import (
    EngineReport,
    ForestCache,
    ProsperityEngine,
    WorkloadRun,
    stats_from_records,
)

__all__ = [
    "Backend",
    "FusedBackend",
    "ReferenceBackend",
    "ShardedBackend",
    "VectorizedBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "EngineReport",
    "ForestCache",
    "ProsperityEngine",
    "WorkloadRun",
    "stats_from_records",
]
