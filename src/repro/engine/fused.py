"""Fused tile-batched ProSparsity kernels: no per-tile Python dispatch.

The ``vectorized`` backend made each tile cheap; this module makes the
*loop over tiles* cheap as well. All same-shape tiles of a matrix (and,
through the pipeline's layer stacking, of a whole batch) are stacked into
``(T, m, W)`` packed-code tensors and the whole transform — prefix
selection, exact-match resolution, residual popcounts, tile records —
runs as a handful of batched broadcasts over the stack.

Two kernel-level ideas carry the speedup beyond plain batching:

* **Sorted-key triangle scan.** Rows and candidate columns are both
  sorted by the Pruner's descending ``(popcount, index)`` key, packed
  into one int32 word per row. A candidate is legal exactly when its key
  is *strictly smaller* than the query row's key (this single comparison
  subsumes the pop>0, self-exclusion, and exact-match tie-break rules),
  so in sorted order the legal region is the strict upper triangle.
  Scanning candidate columns in ascending blocks lets rows resolve at
  their first hit and skips the lower-triangle half of the subset tests
  entirely.
* **Batch-level content dedup.** Tiles are deduplicated by raw packed
  bytes (``np.unique`` over void views — no Python hashing) before any
  kernel runs; each distinct tile content is computed once and results
  are scattered back. The dedup composes with the engine's
  :class:`~repro.engine.pipeline.ForestCache`: one digest per *unique*
  tile serves both the lookup and the fill.

Padding is hoisted: a matrix's packed rows are padded to the machine-word
byte width once per column block (``padded_codes``), instead of
re-padding every tile's rows on each :func:`~repro.engine.backends.pack_codes`
call — non-power-of-two byte widths (3, 5, 6, 7 bytes) hit this path.

Per-stage wall-clock is accumulated in ``FusedBackend.profile`` under
``pack`` / ``select`` / ``record`` / ``merge`` and surfaces in
:class:`~repro.engine.pipeline.EngineReport`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.forest import NO_PREFIX
from repro.engine import faults
from repro.core.prosparsity import TILE_RECORD_FIELDS
from repro.core.spike_matrix import SpikeMatrix, SpikeTile
from repro.engine.backends import (
    _CODE_DTYPES,
    VectorizedBackend,
    code_width,
    register_backend,
)
from repro.utils.bitops import popcount_rows

__all__ = [
    "FusedBackend",
    "PROFILE_STAGES",
    "build_tile_groups",
    "build_tile_parts",
    "cached_unique_records",
    "dedup_tiles",
    "max_chain_depth_batch",
    "padded_codes",
    "records_from_codes_batch",
    "select_prefixes_batch",
]

#: Stage keys every profiling dict uses, in pipeline order.
PROFILE_STAGES = ("pack", "select", "record", "merge")

#: Element budget for one (chunk, m, m) candidate block (bounds peak memory).
_CHUNK_ELEMENT_BUDGET = 1 << 22

#: Candidate columns scanned per block of the triangle scan.
_COL_BLOCK = 64

_INT32_MAX = np.iinfo(np.int32).max


def padded_codes(packed: np.ndarray) -> np.ndarray:
    """Whole-matrix form of :func:`~repro.engine.backends.pack_codes`.

    Pads a ``(rows, nbytes)`` packed matrix to its machine-word byte
    width *once*; every tile's codes are then plain row slices of the
    result. Bit-identical to calling ``pack_codes`` on each tile's rows
    (pinned by the width-3/5/6/7 regression tests).
    """
    packed = np.ascontiguousarray(packed, dtype=np.uint8)
    rows, nbytes = packed.shape
    width = code_width(nbytes)
    if width != nbytes:
        padded = np.zeros((rows, width), dtype=np.uint8)
        padded[:, :nbytes] = packed
        packed = padded
    return packed.view(_CODE_DTYPES.get(width, np.uint64))


def select_prefixes_batch(codes: np.ndarray, popcounts: np.ndarray) -> np.ndarray:
    """Batched Pruner: ``(T, m, W)`` codes -> ``(T, m)`` prefix rows.

    Row-for-row identical to
    :func:`~repro.engine.backends.select_prefixes_codes` applied per
    tile. Both rows and candidate columns are sorted by the descending
    ``(popcount, index)`` key packed into one int32, making the legal
    region a strict upper triangle that is scanned in ascending column
    blocks with first-hit resolution.
    """
    T, m, W = codes.shape
    prefix = np.full((T, m), NO_PREFIX, dtype=np.int64)
    if T == 0 or m == 0:
        return prefix
    # int64 key: popcount can reach tile_k and the index can reach
    # tile_m, either of which may exceed 16 bits for exotic tilings.
    key = (popcounts.astype(np.int64) << 32) | np.arange(m, dtype=np.int64)
    order = np.argsort(key, axis=1)[:, ::-1]  # keys are unique: exact order
    spops = np.take_along_axis(popcounts, order, axis=1)
    # Zero-popcount columns sort last and can never be prefixes. ncol is
    # a chunk-wide max, so a tile with fewer nonzero columns still scans
    # some of its zero columns: a row whose first subset hit lands on
    # one is exhausted (every later column is zero too) and resolves to
    # NO_PREFIX — that is the `live` filter below.
    ncol = int((spops > 0).sum(axis=1).max(initial=0))
    prefix_sorted = np.full((T, m), NO_PREFIX, dtype=np.int64)
    if ncol:
        if W == 1:
            sflat = np.take_along_axis(codes[:, :, 0], order, axis=1)
            snot = ~sflat
        else:
            scodes = np.take_along_axis(codes, order[:, :, None], axis=1)
            snot = ~scodes
        resolved = np.zeros((T, m), dtype=bool)
        for jb in range(0, ncol, _COL_BLOCK):
            je = min(jb + _COL_BLOCK, ncol)
            # Columns [jb, je) are candidates only for rows [0, je).
            if W == 1:
                cand = (sflat[:, None, jb:je] & snot[:, :je, None]) == 0
            else:
                cand = (
                    (scodes[:, None, jb:je, :] & snot[:, :je, None, :]) == 0
                ).all(axis=3)
            # Strict triangle on the diagonal sub-block: a column is
            # legal for a row only when its key is strictly smaller,
            # i.e. it sits strictly later in sorted order.
            cand[:, jb:je, :] &= np.triu(np.ones((je - jb, je - jb), bool), 1)
            hit = cand.argmax(axis=2)
            hashit = np.take_along_axis(cand, hit[:, :, None], axis=2)[:, :, 0]
            newly = hashit & ~resolved[:, :je]
            if newly.any():
                q = hit + jb
                live = np.take_along_axis(spops, q, axis=1) > 0
                good = newly & live
                src = np.take_along_axis(order, q, axis=1)
                prefix_sorted[:, :je][good] = src[good]
                resolved[:, :je] |= newly
    np.put_along_axis(prefix, order, prefix_sorted, axis=1)
    return prefix


def max_chain_depth_batch(prefix: np.ndarray) -> np.ndarray:
    """Forest depth per tile for a ``(T, m)`` prefix batch.

    Pointer doubling: each round every row's pointer jumps to its
    ancestor's pointer while chain lengths add, so a batch with maximum
    chain length ``d`` converges in ``ceil(log2(d)) + 1`` rounds —
    per-level frontier walks would need ``d`` rounds.
    """
    T, m = prefix.shape
    depths = np.zeros(T, dtype=np.int64)
    if T == 0 or m == 0:
        return depths
    valid = prefix != NO_PREFIX
    self_index = np.arange(T * m).reshape(T, m)
    base = np.arange(T, dtype=np.int64)[:, None] * m
    pointer = np.where(valid, prefix + base, self_index).ravel()
    length = valid.astype(np.int64).ravel()
    rounds = 0
    max_rounds = max(1, int(m).bit_length() + 1)
    while True:
        ancestor_length = length[pointer]
        if not ancestor_length.any():
            break
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("prefix chains do not terminate; cycle present")
        length += ancestor_length
        pointer = pointer[pointer]
    return length.reshape(T, m).max(axis=1, initial=0)


def records_from_codes_batch(
    codes: np.ndarray,
    popcounts: np.ndarray,
    k: int,
    profile: dict[str, float] | None = None,
) -> np.ndarray:
    """Tile records for a ``(T, m, W)`` stack, one batched pass per field.

    Row-for-row identical to
    :func:`~repro.engine.backends.record_from_codes` applied per tile.
    Prefix selection is chunked along T to bound the ``(chunk, m, m)``
    candidate blocks at ``_CHUNK_ELEMENT_BUDGET`` elements.
    """
    T, m, W = codes.shape
    start = time.perf_counter()
    prefix = np.empty((T, m), dtype=np.int64)
    chunk = max(1, _CHUNK_ELEMENT_BUDGET // max(1, m * m))
    for s in range(0, T, chunk):
        prefix[s : s + chunk] = select_prefixes_batch(
            codes[s : s + chunk], popcounts[s : s + chunk]
        )
    mid = time.perf_counter()
    reused = prefix != NO_PREFIX
    prefix_pop = np.take_along_axis(popcounts, np.where(reused, prefix, 0), axis=1)
    residual = popcounts - np.where(reused, prefix_pop, 0)
    depths = max_chain_depth_batch(prefix)
    records = np.empty((T, len(TILE_RECORD_FIELDS)), dtype=np.int64)
    records[:, 0] = m
    records[:, 1] = k
    records[:, 2] = popcounts.sum(axis=1)
    records[:, 3] = residual.sum(axis=1)
    records[:, 4] = (residual == 0).sum(axis=1)
    records[:, 5] = (popcounts == 0).sum(axis=1)
    records[:, 6] = (reused & (residual == 0) & (popcounts > 0)).sum(axis=1)
    records[:, 7] = reused.sum(axis=1)
    records[:, 8] = depths
    if profile is not None:
        profile["select"] = profile.get("select", 0.0) + (mid - start)
        profile["record"] = profile.get("record", 0.0) + (time.perf_counter() - mid)
    return records


class _TileGroup:
    """All tiles of one ``(m, k)`` shape, stacked for a batched kernel."""

    __slots__ = ("m", "k", "nbytes", "codes", "popcounts", "raw", "positions")

    def __init__(self, m, k, nbytes, codes, popcounts, raw, positions):
        self.m = m                  # rows per tile
        self.k = k                  # columns per tile
        self.nbytes = nbytes        # packed bytes per tile row
        self.codes = codes          # (T, m, W) machine-word codes
        self.popcounts = popcounts  # (T, m) int64
        self.raw = raw              # (T, m * nbytes) packed bytes (cache key)
        self.positions = positions  # (T,) row-major tile indices in the matrix


def build_tile_parts(
    matrix: SpikeMatrix, tile_m: int, tile_k: int
) -> dict[tuple[int, int], list[tuple]]:
    """Pack a matrix once into per-shape chunk lists (no concatenation).

    Each column block is packed and padded a single time; tile stacks
    are reshaped row slices of the block arrays (full-size row blocks)
    plus the ragged tail. Returns ``{(m, k): [(nbytes, codes, pops,
    raw, positions), ...]}`` with positions in the row-major order of
    :meth:`SpikeMatrix.tile`. Callers that assemble their own stacks
    (the trace planner's arena buckets) consume the chunks directly and
    skip the per-matrix concatenate :func:`build_tile_groups` performs.
    """
    bits = matrix.bits
    rows, cols = bits.shape
    n_full, tail = divmod(rows, tile_m)
    col_starts = list(range(0, cols, tile_k))
    n_cb = len(col_starts)

    # Byte-aligned fast path: when tile_k is a byte multiple, every
    # column block (ragged tail included) is a byte slice of one
    # whole-matrix packbits — no per-block bool copy or re-pack.
    whole_packed = np.packbits(bits, axis=1) if tile_k % 8 == 0 else None

    # One (m, k) shape can span many column blocks; collect parts first.
    parts: dict[tuple[int, int], list[tuple]] = {}
    for cb, col_start in enumerate(col_starts):
        k_block = min(tile_k, cols - col_start)
        if whole_packed is not None:
            byte_start = col_start // 8
            packed = np.ascontiguousarray(
                whole_packed[:, byte_start : byte_start + -(-k_block // 8)]
            )
        else:
            block = np.ascontiguousarray(bits[:, col_start : col_start + tile_k])
            packed = np.packbits(block, axis=1)
        codes = padded_codes(packed)
        pops = popcount_rows(packed)
        nbytes = packed.shape[1]
        if n_full:
            split = n_full * tile_m
            parts.setdefault((tile_m, k_block), []).append(
                (
                    nbytes,
                    codes[:split].reshape(n_full, tile_m, -1),
                    pops[:split].reshape(n_full, tile_m),
                    packed[:split].reshape(n_full, tile_m * nbytes),
                    np.arange(n_full) * n_cb + cb,
                )
            )
        if tail:
            split = n_full * tile_m
            parts.setdefault((tail, k_block), []).append(
                (
                    nbytes,
                    codes[split:].reshape(1, tail, -1),
                    pops[split:].reshape(1, tail),
                    packed[split:].reshape(1, tail * nbytes),
                    np.array([n_full * n_cb + cb]),
                )
            )
    return parts


def build_tile_groups(
    matrix: SpikeMatrix, tile_m: int, tile_k: int
) -> tuple[list[_TileGroup], int]:
    """Pack a matrix once and stack its tiles into same-shape groups.

    Concatenated-group form of :func:`build_tile_parts`. Returns
    ``(groups, total_tiles)``; group positions index tiles in the
    row-major order of :meth:`SpikeMatrix.tile`.
    """
    parts = build_tile_parts(matrix, tile_m, tile_k)
    groups = []
    for (m, k), chunks in parts.items():
        nbytes = chunks[0][0]
        groups.append(
            _TileGroup(
                m=m,
                k=k,
                nbytes=nbytes,
                codes=np.concatenate([c[1] for c in chunks]),
                popcounts=np.concatenate([c[2] for c in chunks]),
                raw=np.concatenate([c[3] for c in chunks]),
                positions=np.concatenate([c[4] for c in chunks]),
            )
        )
    return groups, matrix.num_tiles(tile_m, tile_k)


def cached_unique_records(
    m: int,
    k: int,
    raw: np.ndarray,
    first: np.ndarray,
    inverse: np.ndarray,
    compute,
    cache,
    add_seconds,
) -> np.ndarray:
    """Records for a deduplicated stack: cache per unique, expand back.

    The one cache-interaction protocol shared by the fused per-matrix
    path and the trace planner: look up each unique content (``first``
    indexes into ``raw``) by a key hashed once, call ``compute(rows)``
    for the misses only, fill the cache, and expand through ``inverse``
    to the full stack. ``add_seconds`` receives the cache/dedup traffic
    time so each caller can book it under its own profile stage.
    """
    start = time.perf_counter()
    n_unique = len(first)
    unique_records = np.empty((n_unique, len(TILE_RECORD_FIELDS)), dtype=np.int64)
    if cache is not None:
        keys = [cache.key(m, k, raw[i]) for i in first]
        missing_list = []
        for i, key in enumerate(keys):
            record = cache.get_record_by_key(key)
            if record is None:
                missing_list.append(i)
            else:
                unique_records[i] = record
        missing = np.array(missing_list, dtype=np.int64)
    else:
        keys = None
        missing = np.arange(n_unique)
    add_seconds(time.perf_counter() - start)
    if missing.size:
        computed = compute(first[missing])
        unique_records[missing] = computed
        if cache is not None:
            start = time.perf_counter()
            for i, row in zip(missing.tolist(), computed.tolist()):
                cache.put_record_by_key(keys[i], tuple(row))
            add_seconds(time.perf_counter() - start)
    return unique_records[inverse]


def dedup_tiles(raw: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Content dedup over a ``(T, L)`` byte stack, no Python hashing.

    Returns ``(unique_rows, inverse)`` with ``raw[i] ==
    unique_rows[inverse[i]]``. Unique rows are byte-sorted, so the order
    is deterministic for a given content set — independent of tile
    position, batch composition, or worker count.
    """
    T, L = raw.shape
    if L == 0 or T == 0:
        return np.arange(min(T, 1)), np.zeros(T, dtype=np.int64)
    void = np.ascontiguousarray(raw).view(np.dtype((np.void, L))).ravel()
    _, first, inverse = np.unique(void, return_index=True, return_inverse=True)
    return first, inverse


@register_backend
class FusedBackend(VectorizedBackend):
    """Tile-batched backend: same-shape tiles run as one broadcast.

    Per-tile entry points (``forest``, ``execute``) inherit the
    vectorized kernels; the bulk ``matrix_records`` path is fully fused.
    Wall-clock per stage accumulates in :attr:`profile`.
    """

    name = "fused"

    def __init__(self):
        self.profile: dict[str, float] = {stage: 0.0 for stage in PROFILE_STAGES}

    def tile_record(self, tile: SpikeTile) -> tuple[int, ...]:
        codes = padded_codes(tile.packed)
        pops = popcount_rows(tile.packed)
        record = records_from_codes_batch(
            codes[None], pops[None], tile.k, profile=self.profile
        )[0]
        return tuple(record.tolist())

    def _group_records(self, group: _TileGroup, cache) -> np.ndarray:
        """Records for one shape group: dedup, cache, one batched kernel."""
        start = time.perf_counter()
        first, inverse = dedup_tiles(group.raw)
        self.profile["merge"] += time.perf_counter() - start

        def add_merge_seconds(seconds: float) -> None:
            self.profile["merge"] += seconds

        return cached_unique_records(
            group.m,
            group.k,
            group.raw,
            first,
            inverse,
            lambda rows: self._compute_records(
                group.codes[rows], group.popcounts[rows], group.k
            ),
            cache,
            add_merge_seconds,
        )

    def _compute_records(
        self, codes: np.ndarray, popcounts: np.ndarray, k: int
    ) -> np.ndarray:
        """Kernel dispatch for one deduplicated stack (sharding seam)."""
        faults.kernel_fault("fused.compute_records")
        return records_from_codes_batch(codes, popcounts, k, profile=self.profile)

    def matrix_records(
        self,
        matrix: SpikeMatrix,
        tile_m: int,
        tile_k: int,
        cache=None,
    ) -> np.ndarray:
        start = time.perf_counter()
        groups, total = build_tile_groups(matrix, tile_m, tile_k)
        self.profile["pack"] += time.perf_counter() - start
        records = np.empty((total, len(TILE_RECORD_FIELDS)), dtype=np.int64)
        for group in groups:
            group_records = self._group_records(group, cache)
            start = time.perf_counter()
            records[group.positions] = group_records
            self.profile["merge"] += time.perf_counter() - start
        return records
