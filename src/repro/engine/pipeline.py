"""Batched whole-network ProSparsity runs with a content-hash forest cache.

SNN traces repeat themselves: the same spike tile recurs across time
steps, and layers often share activation structure. The engine therefore
keys every per-tile artifact (record or forest) by a BLAKE2 digest of the
tile's ``np.packbits`` content, so a repeated tile is a cache hit instead
of a recompute. On top of that, consecutive same-width layers are stacked
into one tall matrix per batch, amortizing packing and Python dispatch
over many layers/timesteps.

:class:`ProsperityEngine` is the high-throughput entry point used by the
CLI (``repro run``), the architecture simulator, and the throughput
benchmark; it mirrors the :mod:`repro.core` transform contract exactly.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.dispatch import build_dispatch_plan
from repro.core.forest import ProSparsityForest
from repro.core.prosparsity import (
    DEFAULT_TILE_K,
    DEFAULT_TILE_M,
    TILE_RECORD_FIELDS,
    ProSparsityResult,
    ProSparsityStats,
    TileTransform,
    _sample_tiles,
    forest_record,
    validate_tile_shape,
)
from repro.core.spike_matrix import SpikeMatrix, SpikeTile
from repro.engine.backends import Backend, ReferenceBackend, get_backend
from repro.engine.planner import (
    PLANNED_PROFILE_STAGES,
    TracePlanner,
    validate_plan_mode,
)
from repro.snn.trace import GeMMWorkload, ModelTrace

__all__ = [
    "EngineReport",
    "ForestCache",
    "ProsperityEngine",
    "WorkloadRun",
    "stats_from_records",
]

_FIELD = {name: i for i, name in enumerate(TILE_RECORD_FIELDS)}


def stats_from_records(
    records: np.ndarray, sample_fraction: float = 1.0
) -> ProSparsityStats:
    """Aggregate tile records into :class:`ProSparsityStats` in one pass."""
    stats = ProSparsityStats(sample_fraction=sample_fraction)
    if records.size == 0:
        return stats
    m_col = records[:, _FIELD["m"]]
    stats.elements = int((m_col * records[:, _FIELD["k"]]).sum())
    stats.bit_nnz = int(records[:, _FIELD["bit_nnz"]].sum())
    stats.product_nnz = int(records[:, _FIELD["product_nnz"]].sum())
    stats.rows = int(m_col.sum())
    stats.em_rows = int(records[:, _FIELD["em_rows"]].sum())
    stats.reused_rows = int(records[:, _FIELD["reused_rows"]].sum())
    stats.zero_residual_rows = int(records[:, _FIELD["zero_residual_rows"]].sum())
    stats.zero_bit_rows = int(records[:, _FIELD["zero_bit_rows"]].sum())
    stats.tiles = len(records)
    return stats


class ForestCache:
    """LRU cache of per-tile artifacts keyed by tile content hash.

    One entry per distinct tile content holds the statistics record
    and/or the forest arrays, filled lazily by whichever path touched the
    tile first. Forest arrays are stored coordinate-free so a hit can be
    rebound to a tile at any position in any matrix.

    ``store`` layers a persistent
    :class:`~repro.engine.store.ResultStore` underneath the *record*
    slot: a memory miss consults the store (counted as a memory miss
    plus a store hit/miss — the two tiers stay separately observable),
    a store hit backfills the memory entry, and every record put also
    publishes durably. Forests stay memory-only — they rebuild cheaply
    and their arrays dwarf the 72-byte records the store is sized for.
    """

    def __init__(self, capacity: int = 1024, store=None):
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.store = store
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple, dict] = OrderedDict()
        # Engines are shared across threads by the serving scheduler
        # (a session's direct calls can overlap the dispatcher), so the
        # LRU mutations and counters are guarded.
        self._mutex = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @staticmethod
    def key(m: int, k: int, packed: np.ndarray) -> tuple:
        """Content key: shape plus a BLAKE2 digest of the packed bits."""
        digest = hashlib.blake2b(
            np.ascontiguousarray(packed).tobytes(), digest_size=16
        ).digest()
        return (m, k, digest)

    def _lookup(self, key: tuple, slot: str):
        with self._mutex:
            entry = self._entries.get(key)
            value = entry.get(slot) if entry is not None else None
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def _store(self, key: tuple, slot: str, value) -> None:
        with self._mutex:
            entry = self._entries.get(key)
            if entry is None:
                entry = {}
                self._entries[key] = entry
            entry[slot] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    # -- records --------------------------------------------------------
    def get_record(self, m: int, k: int, packed: np.ndarray):
        return self.get_record_by_key(self.key(m, k, packed))

    def put_record(self, m: int, k: int, packed: np.ndarray, record) -> None:
        self.put_record_by_key(self.key(m, k, packed), record)

    # -- key-based record access (batched/deduplicated paths) -----------
    def get_record_by_key(self, key: tuple):
        """Record lookup with a precomputed :meth:`key` (hash once per
        unique tile content, as the fused/sharded dedup does).

        Tiered: memory first, then the persistent store (whose file IO
        happens *outside* the LRU mutex); a store hit backfills memory
        so repeats within the process stay in-memory hits.
        """
        record = self._lookup(key, "record")
        if record is not None or self.store is None:
            return record
        record = self.store.get(key)
        if record is not None:
            self._store(key, "record", tuple(record))
        return record

    def put_record_by_key(self, key: tuple, record) -> None:
        self._store(key, "record", tuple(record))
        if self.store is not None:
            self.store.put(key, record)

    # -- forests --------------------------------------------------------
    def get_forest(self, tile: SpikeTile) -> ProSparsityForest | None:
        arrays = self._lookup(self.key(tile.m, tile.k, tile.packed), "forest")
        if arrays is None:
            return None
        prefix, pattern, popcounts = arrays
        return ProSparsityForest(
            tile=tile, prefix=prefix, pattern=pattern, popcounts=popcounts
        )

    def put_forest(self, tile: SpikeTile, forest: ProSparsityForest) -> None:
        self._store(
            self.key(tile.m, tile.k, tile.packed),
            "forest",
            (forest.prefix, forest.pattern, forest.popcounts),
        )


@dataclass
class WorkloadRun:
    """Transform outcome for one GeMM workload inside an engine run."""

    name: str
    kind: str
    tiles: int
    records: np.ndarray
    stats: ProSparsityStats
    seconds: float

    @property
    def tiles_per_sec(self) -> float:
        return self.tiles / self.seconds if self.seconds > 0 else 0.0


@dataclass
class EngineReport:
    """Aggregate result of one batched engine run over a trace.

    ``profile`` breaks the run's wall-clock into pipeline stages when the
    backend reports them (the fused/sharded backends do): ``pack`` (bit
    packing, padding, layer stacking), ``select`` (prefix selection
    kernels / worker dispatch), ``record`` (residual popcounts, depths,
    record assembly), ``merge`` (dedup, cache traffic, scatter).
    Trace-planned runs (``plan == "trace"``) add the planner stages
    ``plan`` (bucket merge / arena fill), ``dedup`` (global content
    dedup + cache traffic), and ``scatter`` (per-workload scatter-back);
    the ``compiled`` backend adds ``warmup`` (one-time JIT compilation /
    cache load, paid once per process);
    stage times are nested inside the run's wall-clock, so they always
    sum to at most :attr:`total_seconds`. ``workers`` echoes the process
    count for sharded runs; ``planned_tiles``/``unique_tiles`` describe
    the cross-workload dedup for planned runs.
    """

    backend: str
    tile_m: int
    tile_k: int
    batch: int
    model: str = ""
    dataset: str = ""
    runs: list[WorkloadRun] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int | None = None
    profile: dict[str, float] = field(default_factory=dict)
    plan: str = "matrix"
    planned_tiles: int = 0
    unique_tiles: int = 0
    #: ``compiled`` backend only: True when records came from the JIT
    #: kernel, False when it fell back to the fused NumPy path; ``None``
    #: for backends without a JIT notion.
    jit_active: bool | None = None
    #: Supervision deltas for this run (``sharded`` backend): worker
    #: pools rebuilt after ``BrokenProcessPool`` and kernel dispatches
    #: retried during the run. Zero for unsupervised backends.
    pool_rebuilds: int = 0
    retries: int = 0
    #: ``sharded`` only: True once the rebuild budget was exhausted and
    #: the backend fell back to the in-process fused path (mirrors
    #: ``jit_active`` semantics); ``None`` for unsupervised backends.
    degraded: bool | None = None
    #: Persistent-store deltas for this run (engines with a
    #: :class:`~repro.engine.store.ResultStore` attached): durable
    #: record hits/misses under the in-memory tier, entries quarantined
    #: after a checksum failure, and entries evicted past the byte
    #: budget. All zero when no store is configured.
    store_hits: int = 0
    store_misses: int = 0
    store_corrupt: int = 0
    store_evictions: int = 0
    #: True while a configured store is serving; False once it degraded
    #: to cache-off (unwritable/damaged directory); ``None`` without a
    #: store.
    store_active: bool | None = None

    @property
    def total_tiles(self) -> int:
        return sum(run.tiles for run in self.runs)

    @property
    def total_seconds(self) -> float:
        return sum(run.seconds for run in self.runs)

    @property
    def tiles_per_sec(self) -> float:
        seconds = self.total_seconds
        return self.total_tiles / seconds if seconds > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def dedup_ratio(self) -> float:
        """Cross-workload dedup multiplier: planned tiles per unique tile.

        ``0.0`` outside trace-planned runs (no dedup was measured).
        """
        return self.planned_tiles / self.unique_tiles if self.unique_tiles else 0.0

    @property
    def stats(self) -> ProSparsityStats:
        merged = ProSparsityStats()
        for run in self.runs:
            merged.merge(run.stats)
        return merged


class ProsperityEngine:
    """Batched, backend-pluggable ProSparsity execution engine.

    .. note:: Direct construction is the low-level path and remains
       supported, but :class:`repro.api.Session` is the canonical entry
       point: it builds this engine from a typed
       :class:`~repro.api.RunConfig` and shares one backend (and sharded
       pool) across runs, simulations, and sweeps.

    Parameters
    ----------
    backend:
        Backend name (``"reference"`` / ``"vectorized"`` / ``"fused"`` /
        ``"sharded"``) or instance.
    cache_size:
        LRU capacity in distinct tile contents; ``0`` disables caching.
    workers:
        Process count for the ``sharded`` backend (rejected by backends
        that do not take it; ``None`` leaves the backend default).
    backend_options:
        Extra constructor options for name-constructed backends (e.g.
        the ``sharded`` supervision knobs ``max_rebuilds``/``degrade``
        from the ``[resilience]`` config section). ``None`` values are
        dropped; options a backend does not accept are rejected with
        the same typed error as :func:`~repro.engine.backends.
        get_backend`. Ignored for caller-supplied instances.
    plan:
        Execution-planning mode: ``"matrix"`` batches per matrix (the
        classic fused path), ``"trace"`` routes whole-trace runs and
        GeMM execution through the :class:`~repro.engine.planner.
        TracePlanner` — cross-workload shape buckets, one global content
        dedup per bucket, arena-backed buffers reused across runs.
        Records are bit-identical either way.
    store:
        Optional :class:`~repro.engine.store.ResultStore` layered under
        the in-memory cache: record misses consult it before the kernel
        path and computed records publish to it durably. The engine
        never owns the store (sessions/schedulers share one across
        engines and close it); per-run traffic deltas land in the
        ``store_*`` report fields. A store with ``cache_size == 0``
        still works — a minimal one-entry memory tier fronts it.
    """

    def __init__(
        self,
        backend: str | Backend = "vectorized",
        tile_m: int = DEFAULT_TILE_M,
        tile_k: int = DEFAULT_TILE_K,
        cache_size: int = 1024,
        workers: int | None = None,
        plan: str = "matrix",
        backend_options: dict | None = None,
        store=None,
    ):
        validate_tile_shape(tile_m, tile_k)
        # Ownership rule: backends constructed here (from a name) are
        # ours to close; caller-supplied instances stay open for their
        # other users.
        self._owns_backend = not isinstance(backend, Backend)
        options = dict(backend_options or {}) if self._owns_backend else {}
        self.backend = get_backend(backend, workers=workers, **options)
        self.tile_m = tile_m
        self.tile_k = tile_k
        self.store = store
        if cache_size:
            self.cache = ForestCache(cache_size, store=store)
        elif store is not None:
            self.cache = ForestCache(1, store=store)
        else:
            self.cache = None
        self.plan = validate_plan_mode(plan)
        self.planner = TracePlanner()

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Release engine resources: arena slabs always, and the
        backend (e.g. the sharded worker pool) when this engine
        constructed it from a name — shared instances stay open.
        Idempotent, and safe against a concurrently executing plan
        (the arena is only dropped once the planner is quiescent)."""
        with self.planner.exclusive():
            self.planner.arena.clear()
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "ProsperityEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _forest_for(self, tile: SpikeTile) -> ProSparsityForest:
        if self.cache is not None:
            forest = self.cache.get_forest(tile)
            if forest is not None:
                return forest
        forest = self.backend.forest(tile)
        if self.cache is not None:
            self.cache.put_forest(tile, forest)
        return forest

    def _tile_record_cached(self, tile: SpikeTile) -> tuple[int, ...]:
        if self.cache is not None:
            record = self.cache.get_record(tile.m, tile.k, tile.packed)
            if record is not None:
                return record
        record = self.backend.tile_record(tile)
        if self.cache is not None:
            self.cache.put_record(tile.m, tile.k, tile.packed, record)
        return record

    # ------------------------------------------------------------------
    def transform_matrix(
        self,
        matrix: SpikeMatrix | np.ndarray,
        tile_m: int | None = None,
        tile_k: int | None = None,
        keep_transforms: bool = False,
        max_tiles: int | None = None,
        rng: np.random.Generator | None = None,
        plan: str | None = None,
    ) -> ProSparsityResult:
        """Drop-in, cache-aware equivalent of ``core.transform_matrix``.

        Records, statistics, and (when kept) forests are bit-identical to
        the core path for every backend and plan mode; sampling draws the
        same RNG sequence so sampled runs match the core path tile for
        tile. ``plan`` overrides the engine's planning mode per call.
        """
        plan = self.plan if plan is None else validate_plan_mode(plan)
        tile_m = self.tile_m if tile_m is None else tile_m
        tile_k = self.tile_k if tile_k is None else tile_k
        validate_tile_shape(tile_m, tile_k)
        if not isinstance(matrix, SpikeMatrix):
            matrix = SpikeMatrix(matrix)
        result = ProSparsityResult()

        total_tiles = matrix.num_tiles(tile_m, tile_k)
        sampled = max_tiles is not None and total_tiles > max_tiles
        if sampled:
            if rng is None:
                rng = np.random.default_rng(0)
            tiles = _sample_tiles(matrix, tile_m, tile_k, max_tiles, rng)
            fraction = len(tiles) / total_tiles
        else:
            fraction = 1.0

        if keep_transforms:
            tile_iter = tiles if sampled else matrix.tile(tile_m, tile_k)
            records: list[tuple[int, ...]] = []
            for tile in tile_iter:
                forest = self._forest_for(tile)
                dispatch = build_dispatch_plan(forest)
                result.transforms.append(
                    TileTransform(tile=tile, forest=forest, plan=dispatch)
                )
                records.append(forest_record(forest))
            record_array = np.array(records, dtype=np.int64).reshape(
                len(records), len(TILE_RECORD_FIELDS)
            )
        elif plan == "trace":
            # Planner path: sampled tiles and whole matrices land in the
            # same shape buckets, so sampling composes with the dedup.
            # exclusive() keeps the plan's arena views valid against
            # concurrent planner users (the serving scheduler).
            source = tiles if sampled else matrix
            with self.planner.exclusive():
                trace_plan = self.planner.plan([source], tile_m, tile_k)
                record_array = self.planner.execute(
                    trace_plan, self.backend, cache=self.cache
                )[0]
        elif sampled:
            records = [self._tile_record_cached(tile) for tile in tiles]
            record_array = np.array(records, dtype=np.int64).reshape(
                len(records), len(TILE_RECORD_FIELDS)
            )
        else:
            record_array = self.backend.matrix_records(
                matrix, tile_m, tile_k, cache=self.cache
            )
        result.tile_records = record_array
        result.stats = stats_from_records(record_array, sample_fraction=fraction)
        return result

    # ------------------------------------------------------------------
    def transform_trace(
        self,
        trace: ModelTrace | list,
        tile_m: int | None = None,
        tile_k: int | None = None,
        max_tiles: int | None = None,
        rng: np.random.Generator | None = None,
        plan: str | None = None,
    ) -> list[ProSparsityResult]:
        """Transform every workload of a trace, one result per workload.

        Under ``plan="trace"`` the whole trace is packed into one
        cross-workload plan (one kernel per shape bucket, one global
        dedup); under ``plan="matrix"`` this is a plain per-workload
        loop. Both draw the same RNG sequence for ``max_tiles`` sampling
        — workloads are visited in order and only sampled workloads
        consume draws — so records are bit-identical across modes.
        Entries may be :class:`GeMMWorkload` or bare ``SpikeMatrix``.
        """
        plan = self.plan if plan is None else validate_plan_mode(plan)
        tile_m = self.tile_m if tile_m is None else tile_m
        tile_k = self.tile_k if tile_k is None else tile_k
        validate_tile_shape(tile_m, tile_k)
        workloads = list(trace.workloads if isinstance(trace, ModelTrace) else trace)
        matrices = [
            workload.spikes if hasattr(workload, "spikes") else workload
            for workload in workloads
        ]
        matrices = [
            matrix if isinstance(matrix, SpikeMatrix) else SpikeMatrix(matrix)
            for matrix in matrices
        ]
        if plan != "trace":
            return [
                self.transform_matrix(
                    matrix, tile_m, tile_k, max_tiles=max_tiles, rng=rng,
                    plan=plan,
                )
                for matrix in matrices
            ]
        sources: list = []
        fractions: list[float] = []
        for matrix in matrices:
            total_tiles = matrix.num_tiles(tile_m, tile_k)
            if max_tiles is not None and total_tiles > max_tiles:
                # rng=None mirrors transform_matrix exactly: that path
                # seeds a fresh default_rng(0) per *workload*, so the
                # trace plan must too or sampled tiles would diverge.
                workload_rng = (
                    rng if rng is not None else np.random.default_rng(0)
                )
                sampled = _sample_tiles(
                    matrix, tile_m, tile_k, max_tiles, workload_rng
                )
                sources.append(sampled)
                fractions.append(len(sampled) / total_tiles)
            else:
                sources.append(matrix)
                fractions.append(1.0)
        with self.planner.exclusive():
            trace_plan = self.planner.plan(sources, tile_m, tile_k)
            per_workload = self.planner.execute(
                trace_plan, self.backend, self.cache
            )
        results = []
        for records, fraction in zip(per_workload, fractions):
            result = ProSparsityResult()
            result.tile_records = records
            result.stats = stats_from_records(records, sample_fraction=fraction)
            results.append(result)
        return results

    # ------------------------------------------------------------------
    def _batch_groups(
        self, workloads: list[GeMMWorkload], batch: int
    ) -> list[list[GeMMWorkload]]:
        """Group consecutive workloads that can be stacked into one matrix.

        Workloads stack only when they share K and every member except
        the last is tile-row aligned — then the stacked tiling is exactly
        the concatenation of the per-workload tilings.
        """
        groups: list[list[GeMMWorkload]] = []
        current: list[GeMMWorkload] = []
        for workload in workloads:
            joinable = (
                current
                and len(current) < batch
                and workload.k == current[0].k
            )
            if not joinable:
                if current:
                    groups.append(current)
                current = [workload]
            else:
                current.append(workload)
            if workload.m % self.tile_m != 0:
                groups.append(current)
                current = []
        if current:
            groups.append(current)
        return groups

    def run(
        self,
        trace: ModelTrace | list[GeMMWorkload],
        batch: int = 1,
        plan: str | None = None,
    ) -> EngineReport:
        """Transform a whole trace, batching stackable layers/timesteps.

        ``plan`` overrides the engine's planning mode for this run:
        ``"trace"`` packs the entire trace into cross-workload shape
        buckets (one kernel launch and one global content dedup per
        bucket), ``"matrix"`` is the per-matrix fused path. Records are
        bit-identical either way; ``batch`` only affects matrix mode.
        """
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        plan = self.plan if plan is None else validate_plan_mode(plan)
        if isinstance(trace, ModelTrace):
            workloads = list(trace.workloads)
            model, dataset = trace.model, trace.dataset
        else:
            workloads = list(trace)
            model = dataset = ""
        report = EngineReport(
            backend=self.backend.name,
            tile_m=self.tile_m,
            tile_k=self.tile_k,
            batch=batch,
            model=model,
            dataset=dataset,
            workers=getattr(self.backend, "workers", None),
            plan=plan,
            jit_active=getattr(self.backend, "jit_active", None),
        )
        hits0 = self.cache.hits if self.cache else 0
        misses0 = self.cache.misses if self.cache else 0
        store0 = self.store.counters() if self.store is not None else {}
        profile0 = dict(getattr(self.backend, "profile", None) or {})
        counters0 = self.backend.failure_counters()
        if plan == "trace":
            self._run_planned(workloads, report, profile0)
        else:
            self._run_batched(workloads, batch, report, profile0)
        if self.cache:
            report.cache_hits = self.cache.hits - hits0
            report.cache_misses = self.cache.misses - misses0
        if self.store is not None:
            # Store counters are process-lifetime totals; the report
            # carries this run's deltas, same as the cache tier above.
            store1 = self.store.counters()
            report.store_hits = store1["store_hits"] - store0["store_hits"]
            report.store_misses = store1["store_misses"] - store0["store_misses"]
            report.store_corrupt = store1["store_corrupt"] - store0["store_corrupt"]
            report.store_evictions = (
                store1["store_evictions"] - store0["store_evictions"]
            )
            report.store_active = self.store.enabled
            # Publish this run's new entries in the background now that
            # the kernels are done (puts buffer during the run to keep
            # writer IO off the compute path).
            self.store.kick()
        # Re-read after the run: a failed first JIT dispatch degrades the
        # compiled backend to its fallback mid-run, and the report should
        # describe what actually executed.
        report.jit_active = getattr(self.backend, "jit_active", None)
        # Supervision counters are backend-lifetime totals; the report
        # carries this run's deltas (degraded is a state, not a delta).
        counters1 = self.backend.failure_counters()
        if counters1:
            report.pool_rebuilds = counters1.get("pool_rebuilds", 0) - counters0.get(
                "pool_rebuilds", 0
            )
            report.retries = counters1.get("retries", 0) - counters0.get("retries", 0)
            report.degraded = counters1.get("degraded")
        return report

    def _run_batched(
        self,
        workloads: list[GeMMWorkload],
        batch: int,
        report: EngineReport,
        profile0: dict[str, float],
    ) -> None:
        """Per-matrix path: stack consecutive same-K layers, scatter back."""
        stack_seconds = 0.0
        scatter_seconds = 0.0
        for group in self._batch_groups(workloads, batch):
            start = time.perf_counter()
            if len(group) == 1:
                stacked = group[0].spikes
            else:
                stacked = SpikeMatrix(
                    np.vstack([w.spikes.bits for w in group])
                )
            stack_seconds += time.perf_counter() - start
            records = self.backend.matrix_records(
                stacked, self.tile_m, self.tile_k, cache=self.cache
            )
            # Scatter stacked records back to their workloads. The
            # scatter happens *inside* the timed window so per-stage
            # profile times always sum to <= the run's wall-clock.
            scatter_start = time.perf_counter()
            col_tiles = -(-group[0].k // self.tile_k)
            offset = 0
            total = len(records)
            chunks = []
            for workload in group:
                count = -(-workload.m // self.tile_m) * col_tiles
                chunk = records[offset : offset + count]
                offset += count
                chunks.append((workload, chunk, stats_from_records(chunk)))
            if offset != total:
                raise RuntimeError(
                    f"batch scatter mismatch: {offset} records assigned, {total} produced"
                )
            scatter_seconds += time.perf_counter() - scatter_start
            elapsed = time.perf_counter() - start
            for workload, chunk, stats in chunks:
                report.runs.append(
                    WorkloadRun(
                        name=workload.name,
                        kind=workload.kind,
                        tiles=len(chunk),
                        records=chunk,
                        stats=stats,
                        seconds=elapsed * (len(chunk) / total) if total else 0.0,
                    )
                )
        backend_profile = getattr(self.backend, "profile", None)
        if backend_profile:
            report.profile = {
                stage: seconds - profile0.get(stage, 0.0)
                for stage, seconds in backend_profile.items()
            }
            # Engine-side batching overhead folds into the same stages:
            # layer stacking prepares input (pack), scatter is merge.
            report.profile["pack"] = report.profile.get("pack", 0.0) + stack_seconds
            report.profile["merge"] = (
                report.profile.get("merge", 0.0) + scatter_seconds
            )

    def _run_planned(
        self,
        workloads: list[GeMMWorkload],
        report: EngineReport,
        profile0: dict[str, float],
    ) -> None:
        """Trace path: one cross-workload plan, one kernel per bucket."""
        profile = {stage: 0.0 for stage in PLANNED_PROFILE_STAGES}
        start = time.perf_counter()
        with self.planner.exclusive():
            trace_plan = self.planner.plan(
                [workload.spikes for workload in workloads],
                self.tile_m,
                self.tile_k,
                profile=profile,
            )
            per_workload = self.planner.execute(
                trace_plan, self.backend, cache=self.cache, profile=profile
            )
        # Per-workload stats are report assembly, not a pipeline stage:
        # they stay inside the timed window (so stage sums remain
        # bounded by wall-clock) but out of the profile breakdown.
        entries = [
            (workload, records, stats_from_records(records))
            for workload, records in zip(workloads, per_workload)
        ]
        elapsed = time.perf_counter() - start
        total = trace_plan.total_tiles
        for workload, records, stats in entries:
            report.runs.append(
                WorkloadRun(
                    name=workload.name,
                    kind=workload.kind,
                    tiles=len(records),
                    records=records,
                    stats=stats,
                    seconds=elapsed * (len(records) / total) if total else 0.0,
                )
            )
        report.planned_tiles = trace_plan.total_tiles
        report.unique_tiles = trace_plan.unique_tiles
        backend_profile = getattr(self.backend, "profile", None)
        if backend_profile:
            # Kernel stages (select/record) accumulate inside the
            # backend; fold in the delta since the run started.
            for stage, seconds in backend_profile.items():
                profile[stage] = (
                    profile.get(stage, 0.0) + seconds - profile0.get(stage, 0.0)
                )
        report.profile = profile

    # ------------------------------------------------------------------
    def execute_gemm(
        self,
        spike_matrix: SpikeMatrix | np.ndarray,
        weights: np.ndarray,
        tile_m: int | None = None,
        tile_k: int | None = None,
    ) -> np.ndarray:
        """Lossless spiking GeMM through the configured backend.

        Same contract as ``core.execute_gemm``; repeated tile contents
        reuse cached forests. Under ``plan="trace"`` tiles route through
        the planner's shape buckets: each *distinct* tile content builds
        its forest once per GeMM (content dedup on top of the cache) and
        partial sums still accumulate in row-major tile order, so
        outputs match the per-tile path exactly (integer weights) or up
        to float summation order, same as every backend pair.
        """
        tile_m = self.tile_m if tile_m is None else tile_m
        tile_k = self.tile_k if tile_k is None else tile_k
        validate_tile_shape(tile_m, tile_k)
        if not isinstance(spike_matrix, SpikeMatrix):
            spike_matrix = SpikeMatrix(spike_matrix)
        weights = np.asarray(weights)
        if weights.shape[0] != spike_matrix.cols:
            raise ValueError(
                f"weight rows ({weights.shape[0]}) must match spike cols"
                f" ({spike_matrix.cols})"
            )
        out_dtype = (
            np.int64 if np.issubdtype(weights.dtype, np.integer) else np.float64
        )
        output = np.zeros((spike_matrix.rows, weights.shape[1]), dtype=out_dtype)
        if self.plan == "trace":
            self._execute_gemm_planned(
                spike_matrix, weights, tile_m, tile_k, output
            )
            return output
        for tile in spike_matrix.tile(tile_m, tile_k):
            forest = self._forest_for(tile)
            w_slice = weights[tile.coord.col_start : tile.coord.col_start + tile.k]
            partial = self.backend.execute(forest, w_slice)
            rows = slice(tile.coord.row_start, tile.coord.row_start + tile.m)
            output[rows] += partial
        return output

    def _execute_gemm_planned(
        self,
        spike_matrix: SpikeMatrix,
        weights: np.ndarray,
        tile_m: int,
        tile_k: int,
        output: np.ndarray,
    ) -> None:
        """Planner-bucketed GeMM: one forest per distinct tile content."""
        col_tiles = -(-spike_matrix.cols // tile_k)
        with self.planner.exclusive():
            trace_plan = self.planner.plan([spike_matrix], tile_m, tile_k)
            partials: list[np.ndarray | None] = [None] * trace_plan.total_tiles
            for bucket in trace_plan.buckets:
                forests: dict[int, ProSparsityForest] = {}
                for index in range(bucket.tiles):
                    unique = int(bucket.inverse[index])
                    forest = forests.get(unique)
                    if forest is None:
                        tile = next(
                            TracePlanner._tiles_from_raw(
                                bucket, bucket.first[unique : unique + 1]
                            )
                        )
                        forest = self._forest_for(tile)
                        forests[unique] = forest
                    position = int(bucket.position[index])
                    col_start = (position % col_tiles) * tile_k
                    w_slice = weights[col_start : col_start + bucket.k]
                    partials[position] = self.backend.execute(forest, w_slice)
        # Accumulate in row-major tile order — the per-tile path's
        # float summation order, independent of bucket iteration.
        for position, partial in enumerate(partials):
            if partial is None:
                raise RuntimeError(f"planned GeMM left tile {position} unexecuted")
            row_start = (position // col_tiles) * tile_m
            output[row_start : row_start + partial.shape[0]] += partial

    # ------------------------------------------------------------------
    def verify_trace(
        self,
        trace: ModelTrace | list[GeMMWorkload],
        max_tiles: int | None = None,
        seed: int = 0,
    ) -> bool:
        """Check this backend's records against the reference oracle.

        Both sides draw their tile samples from identically seeded RNGs,
        so sampled runs compare the very same tiles.
        """
        oracle = ProsperityEngine(
            backend=ReferenceBackend(),
            tile_m=self.tile_m,
            tile_k=self.tile_k,
            cache_size=0,
        )
        workloads = trace.workloads if isinstance(trace, ModelTrace) else trace
        for workload in workloads:
            mine = self.transform_matrix(
                workload.spikes,
                max_tiles=max_tiles,
                rng=np.random.default_rng(seed),
            )
            theirs = oracle.transform_matrix(
                workload.spikes,
                max_tiles=max_tiles,
                rng=np.random.default_rng(seed),
            )
            if not np.array_equal(mine.tile_records, theirs.tile_records):
                return False
        return True
