"""Deterministic fault injection for resilience testing.

The serving stack (``ShardedBackend`` pool supervision, scheduler
retry/isolation, admission control) must be provable in tests and CI,
not only under real crashes.  This module provides a tiny, deterministic
harness: a *fault plan* names failure points that the engine checks at
well-known sites, and every check is inert — one global load and an
identity comparison — unless a plan is active.

Activation
----------
A plan comes from either :func:`install` (programmatic, also used by the
``[resilience]`` config section) or the ``REPRO_FAULTS`` environment
variable.  The env var is the source of truth shared with worker
processes: ``ShardedBackend`` workers are forked children, so a plan
installed in the parent is visible to every worker it spawns, and
:func:`consume` rewrites the env var as faults burn out so *rebuilt*
pools spawn clean workers.

Spec grammar
------------
Comma-separated specs, each ``kind[:key=value]*``::

    worker_crash                      # first pooled task kills its worker
    worker_crash:after=2:times=1      # let 2 tasks through, then crash once
    slow_kernel:seconds=0.05          # sleep before one kernel dispatch
    engine_error:times=2              # raise a *transient* FaultInjected twice
    poison_job:match=bad              # jobs whose label contains "bad" always fail
    store_corrupt:times=2             # corrupt 2 persistent-store entries on read
    store_io_error:match=put          # fail one store write with an OSError
    reject_request                    # server refuses one request (503)
    slow_request:seconds=0.2          # server stalls one request before handling
    stream_stall:seconds=0.5          # a stream source stops emitting

``worker_crash``, ``slow_kernel``, ``engine_error``, ``store_corrupt``,
``store_io_error``, ``reject_request`` and ``slow_request`` burn out
after ``times`` triggers (0 = unlimited); ``poison_job`` is persistent
— it models a request that deterministically breaks the engine, so
retrying it never helps and the scheduler must isolate it instead.  The
store kinds target the persistent result store
(:mod:`repro.engine.store`): ``store_corrupt`` flips bytes of an
on-disk entry just before it is read (the checksum must catch it and
quarantine the entry), ``store_io_error`` makes a store IO site raise
``OSError`` (the store must degrade to cache-off, never crash the run).
The request kinds target the network front end
(:mod:`repro.server`): ``reject_request`` makes the server answer one
request with a clean 503 before any scheduler work happens,
``slow_request`` sleeps ``seconds`` before handling — the chaos drills
use them to prove clients see crisp errors/latency, never hangs.
``stream_stall`` targets the streaming subsystem
(:mod:`repro.streaming`): the source goes silent for ``seconds`` before
one emission, which a ``StreamRunner`` with a shorter stall timeout
surfaces as a typed ``StreamStalledError`` instead of hanging the
consumer.  ``match`` restricts any of these to a site substring
(``get`` / ``put`` / ``open`` for the store, the request path — e.g.
``jobs`` — for the server, the source name for streams).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "WORKER_CRASH_EXIT",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "clear",
    "consume",
    "injected",
    "install",
    "kernel_fault",
    "poison_fault",
    "refresh",
    "request_fault",
    "store_fault",
    "stream_fault",
    "worker_tick",
]

#: Environment variable holding the serialized fault plan.  Forked
#: worker processes inherit it, which is how ``worker_crash`` reaches
#: the pool children without any extra plumbing.
ENV_VAR = "REPRO_FAULTS"

#: Exit code used by ``worker_crash`` so a harness-induced death is
#: distinguishable from a genuine crash in pool post-mortems.
WORKER_CRASH_EXIT = 87

#: Failure points the harness understands.
FAULT_KINDS = (
    "worker_crash",
    "slow_kernel",
    "engine_error",
    "poison_job",
    "store_corrupt",
    "store_io_error",
    "reject_request",
    "slow_request",
    "stream_stall",
)

#: Keys each spec accepts beyond its kind, with their coercions.
_SPEC_KEYS = {"after": int, "times": int, "seconds": float, "match": str}


class FaultInjected(RuntimeError):
    """An injected failure fired at one of the harness sites.

    ``transient`` mirrors the classification the scheduler's retry
    policy uses: transient faults (``engine_error``) model recoverable
    conditions and are retried; persistent ones (``poison_job``) model
    request-poisoned state and are isolated instead.
    """

    def __init__(self, message: str, *, site: str = "", transient: bool = False):
        super().__init__(message)
        self.site = site
        self.transient = transient


@dataclass
class FaultSpec:
    """One failure point: kind plus trigger bookkeeping."""

    kind: str
    after: int = 0  # calls to let through before the first trigger
    times: int = 1  # triggers before burning out (0 = unlimited)
    seconds: float = 0.0  # slow_kernel sleep duration
    match: str = ""  # poison_job label substring
    fired: int = field(default=0, compare=False)  # triggers so far
    skipped: int = field(default=0, compare=False)  # pass-throughs so far

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known kinds: "
                + ", ".join(FAULT_KINDS)
            )
        if self.after < 0:
            raise ValueError(f"fault {self.kind}: after must be >= 0, got {self.after}")
        if self.times < 0:
            raise ValueError(f"fault {self.kind}: times must be >= 0, got {self.times}")
        if self.seconds < 0:
            raise ValueError(
                f"fault {self.kind}: seconds must be >= 0, got {self.seconds}"
            )
        if self.kind == "poison_job" and not self.match:
            raise ValueError("fault poison_job requires match=<label substring>")

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse one ``kind[:key=value]*`` spec."""
        head, *options = text.strip().split(":")
        values: dict[str, object] = {}
        for option in options:
            key, separator, raw = option.partition("=")
            if not separator or key not in _SPEC_KEYS:
                raise ValueError(
                    f"bad fault option {option!r} in {text!r}; expected "
                    "key=value with key in " + ", ".join(sorted(_SPEC_KEYS))
                )
            try:
                values[key] = _SPEC_KEYS[key](raw)
            except ValueError as error:
                raise ValueError(
                    f"bad fault option value {option!r} in {text!r}: {error}"
                ) from None
        return cls(kind=head, **values)  # type: ignore[arg-type]

    @property
    def exhausted(self) -> bool:
        return self.times > 0 and self.fired >= self.times

    def should_fire(self) -> bool:
        """Advance the trigger bookkeeping for one check at this site."""
        if self.exhausted:
            return False
        if self.skipped < self.after:
            self.skipped += 1
            return False
        self.fired += 1
        return True

    def to_text(self) -> str:
        """Serialize the *remaining* budget (triggers already fired are
        subtracted) so the env var always describes faults still armed."""
        parts = [self.kind]
        if self.after:
            parts.append(f"after={self.after}")
        remaining = self.times - self.fired if self.times > 0 else 0
        if self.times > 0 and remaining != 1:
            parts.append(f"times={remaining}")
        if self.seconds:
            parts.append(f"seconds={self.seconds}")
        if self.match:
            parts.append(f"match={self.match}")
        return ":".join(parts)


class FaultPlan:
    """An active set of fault specs, at most one per kind."""

    def __init__(self, specs: Iterable[FaultSpec]):
        self.specs: dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.kind in self.specs:
                raise ValueError(f"duplicate fault kind {spec.kind!r} in plan")
            self.specs[spec.kind] = spec

    @classmethod
    def parse(cls, text: str | None) -> "FaultPlan | None":
        """Parse a comma-separated plan; empty/blank text means no plan."""
        if not text or not text.strip():
            return None
        specs = [FaultSpec.parse(part) for part in text.split(",") if part.strip()]
        return cls(specs) if specs else None

    def get(self, kind: str) -> FaultSpec | None:
        return self.specs.get(kind)

    def to_text(self) -> str:
        """Remaining armed faults as a spec string (may be empty)."""
        return ",".join(
            spec.to_text() for spec in self.specs.values() if not spec.exhausted
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.to_text()!r})"


# Module state: _UNSET means "not yet resolved from the environment";
# None means "resolved, no faults" — the steady state every hot-path
# check short-circuits on with a single identity comparison.
_UNSET: object = object()
_PLAN: "FaultPlan | None | object" = _UNSET
_LOCK = threading.Lock()

# Per-process worker-side state (each forked pool worker re-resolves its
# crash spec lazily from the inherited environment on its first task).
_WORKER: dict[str, object] = {"count": 0, "spec": _UNSET}


def _sync_env(plan: "FaultPlan | None") -> None:
    """Mirror the plan's remaining budget into ``REPRO_FAULTS`` so
    workers forked *after* this point see only faults still armed."""
    text = plan.to_text() if plan is not None else ""
    if text:
        os.environ[ENV_VAR] = text
    else:
        os.environ.pop(ENV_VAR, None)


def _reset_worker_state() -> None:
    """Invalidate the lazily-resolved worker-side spec.

    Pool workers are *forked*, so they inherit this module's state —
    including a ``_WORKER`` cache resolved before the current plan was
    installed. Resetting on every plan change makes children forked
    from here re-resolve from the (just-synced) environment.
    """
    _WORKER["count"] = 0
    _WORKER["spec"] = _UNSET


def active_plan() -> "FaultPlan | None":
    """The process-wide plan, resolving ``REPRO_FAULTS`` on first use."""
    global _PLAN
    plan = _PLAN
    if plan is _UNSET:
        with _LOCK:
            if _PLAN is _UNSET:
                _PLAN = FaultPlan.parse(os.environ.get(ENV_VAR))
            plan = _PLAN
    return plan  # type: ignore[return-value]


def install(spec: "str | FaultPlan | None") -> "FaultPlan | None":
    """Activate a fault plan (spec string or plan) and sync the env.

    Installing an empty/None spec clears any active plan.
    """
    global _PLAN
    plan = FaultPlan.parse(spec) if isinstance(spec, str) or spec is None else spec
    with _LOCK:
        _PLAN = plan
        _sync_env(plan)
        _reset_worker_state()
    return plan


def clear() -> None:
    """Deactivate fault injection and scrub ``REPRO_FAULTS``."""
    install(None)


def refresh() -> "FaultPlan | None":
    """Drop cached state and re-resolve the plan from the environment."""
    global _PLAN
    with _LOCK:
        _PLAN = _UNSET
        _reset_worker_state()
    return active_plan()


@contextmanager
def injected(spec: str) -> Iterator["FaultPlan | None"]:
    """Context manager: install a plan, restore prior state on exit."""
    global _PLAN
    previous_plan = _PLAN
    previous_env = os.environ.get(ENV_VAR)
    plan = install(spec)
    try:
        yield plan
    finally:
        with _LOCK:
            _PLAN = previous_plan
            if previous_env is None:
                os.environ.pop(ENV_VAR, None)
            else:
                os.environ[ENV_VAR] = previous_env
            _reset_worker_state()


def consume(kind: str) -> None:
    """Burn one trigger of ``kind`` from the parent-side plan.

    Called by supervisors after *recovering* from a fault whose trigger
    fired in another process (a crashed pool worker cannot decrement the
    parent's budget itself).  Re-syncs the env var so pools rebuilt from
    here fork clean workers once the fault's budget is spent.
    """
    plan = active_plan()
    if plan is None:
        return
    with _LOCK:
        spec = plan.get(kind)
        if spec is not None:
            spec.fired += 1
        _sync_env(plan)


# ---------------------------------------------------------------------------
# Hot-path checks.  Each has a one-comparison fast path (``_PLAN is
# None``) so disabled fault injection costs nothing measurable; the
# slow halves live in separate functions to keep the inert path tiny.
# ---------------------------------------------------------------------------


def kernel_fault(site: str = "kernel") -> None:
    """Check the ``slow_kernel`` / ``engine_error`` points at ``site``."""
    if _PLAN is None:
        return
    _kernel_fault_armed(site)


def _kernel_fault_armed(site: str) -> None:
    plan = active_plan()
    if plan is None:
        return
    slow = plan.get("slow_kernel")
    if slow is not None and slow.should_fire():
        time.sleep(slow.seconds)
        _sync_env(plan)
    error = plan.get("engine_error")
    if error is not None and error.should_fire():
        _sync_env(plan)
        raise FaultInjected(
            f"injected engine error at {site}", site=site, transient=True
        )


def poison_fault(labels: Iterable[str], site: str = "scheduler") -> None:
    """Check the ``poison_job`` point against a batch's job labels."""
    if _PLAN is None:
        return
    _poison_fault_armed(labels, site)


def _poison_fault_armed(labels: Iterable[str], site: str) -> None:
    plan = active_plan()
    if plan is None:
        return
    spec = plan.get("poison_job")
    if spec is None:
        return
    for label in labels:
        if label and spec.match in label:
            spec.fired += 1
            raise FaultInjected(
                f"injected poison for job {label!r} at {site}",
                site=site,
                transient=False,
            )


def store_fault(site: str = "store") -> str | None:
    """Check the persistent-store failure points at ``site``.

    Returns ``"io_error"`` or ``"corrupt"`` when the matching spec
    fires, ``None`` otherwise.  The store acts on the verdict itself
    (raising ``OSError`` / flipping entry bytes) so this hook stays a
    pure trigger and the blast site lives next to the IO it breaks.
    ``match`` restricts a spec to sites containing the substring
    (``get`` / ``put`` / ``open``).
    """
    if _PLAN is None:
        return None
    return _store_fault_armed(site)


def _store_fault_armed(site: str) -> str | None:
    plan = active_plan()
    if plan is None:
        return None
    for kind, verdict in (("store_io_error", "io_error"), ("store_corrupt", "corrupt")):
        spec = plan.get(kind)
        if spec is None:
            continue
        if spec.match:
            if spec.match not in site:
                continue
        elif kind == "store_corrupt" and "get" not in site:
            # Corruption is a read-side fault: without an explicit
            # ``match``, don't burn triggers at open/put sites where
            # the verdict would be ignored.
            continue
        if spec.should_fire():
            _sync_env(plan)
            return verdict
    return None


def request_fault(site: str = "server") -> str | None:
    """Check the serving-front-end failure points at ``site``.

    Returns ``"reject"`` when an armed ``reject_request`` spec fires —
    the server answers the request with a clean 503 and never touches
    the scheduler; ``slow_request`` sleeps here (stalling only the one
    request's handler thread) and returns ``None``.  ``match``
    restricts either spec to request paths containing the substring
    (e.g. ``match=jobs`` spares ``/healthz`` probes).
    """
    if _PLAN is None:
        return None
    return _request_fault_armed(site)


def _request_fault_armed(site: str) -> str | None:
    plan = active_plan()
    if plan is None:
        return None
    slow = plan.get("slow_request")
    if slow is not None and (not slow.match or slow.match in site):
        if slow.should_fire():
            _sync_env(plan)
            time.sleep(slow.seconds)
    reject = plan.get("reject_request")
    if reject is not None and (not reject.match or reject.match in site):
        if reject.should_fire():
            _sync_env(plan)
            return "reject"
    return None


def stream_fault(site: str = "stream") -> float | None:
    """Check the ``stream_stall`` point at ``site``.

    Returns the stall duration in seconds when an armed spec fires,
    ``None`` otherwise.  The streaming runner acts on the verdict itself
    (going silent for that long before the next emission) so the hook
    stays a pure trigger and the stall lives exactly at the source seam
    the ``StreamStalledError`` timeout watches.  ``match`` restricts the
    spec to sites containing the substring (e.g. the source name).
    """
    if _PLAN is None:
        return None
    return _stream_fault_armed(site)


def _stream_fault_armed(site: str) -> float | None:
    plan = active_plan()
    if plan is None:
        return None
    spec = plan.get("stream_stall")
    if spec is None:
        return None
    if spec.match and spec.match not in site:
        return None
    if spec.should_fire():
        _sync_env(plan)
        return spec.seconds
    return None


def worker_tick() -> None:
    """Per-task check inside a pool worker; kills the process when the
    inherited ``worker_crash`` spec triggers.

    Worker processes are forked, so this resolves the spec from the
    environment snapshot taken at fork time — a pool rebuilt after
    :func:`consume` spent the budget forks crash-free workers.
    """
    state = _WORKER
    if state["spec"] is _UNSET:
        plan = FaultPlan.parse(os.environ.get(ENV_VAR))
        state["spec"] = plan.get("worker_crash") if plan is not None else None
    spec = state["spec"]
    if spec is None:
        return
    count = int(state["count"]) + 1  # type: ignore[call-overload]
    state["count"] = count
    if count > spec.after:  # type: ignore[union-attr]
        os._exit(WORKER_CRASH_EXIT)
