"""Trace-level execution planner: cross-workload tile batching.

The fused backend (:mod:`repro.engine.fused`) batches all same-shape
tiles — but only within one matrix, so every ``transform_matrix`` call
re-packs, re-dedups, and launches kernels per workload, and small
matrices never fill a batch. SNN traces are highly redundant *across*
workloads too: the same spike tile recurs across timesteps and layers
(the temporal analogue of the product-sparsity reuse Prosperity exploits
spatially, as MINT-style temporal-overlap work observes). The planner
therefore lifts batching to *trace* scope:

* **Shape-bucketed packing.** Every tile of every workload is packed
  once and merged into one bucket per ``(m, k)`` tile shape, spanning
  all workloads and timesteps. One fused kernel launch per bucket
  replaces one launch per (workload, shape) pair, so small workloads
  ride in the big workloads' batches instead of running underfilled.
* **Global content dedup.** Each bucket is content-deduplicated as a
  whole (:func:`~repro.engine.fused.dedup_tiles` over raw packed
  bytes), so a tile repeated across timesteps or layers is computed
  once per *trace*, not once per matrix. The dedup composes with the
  engine's :class:`~repro.engine.pipeline.ForestCache` exactly like the
  per-matrix fused path: one digest per unique content.
* **Buffer-arena reuse.** Bucket stacks (codes, popcounts, raw bytes,
  scatter indices) live in a :class:`BufferArena` — a shape-keyed,
  capacity-doubling slab pool owned by the planner and reused across
  runs, so repeated runs (sweeps, simulators, benchmarks) stop paying
  per-matrix allocation churn. A plan's bucket arrays are only valid
  until the next ``plan()`` call on the same planner; the *records* a
  plan execution returns are always freshly allocated.
* **Persistent-store layering.** Bucket execution funnels through
  :func:`~repro.engine.fused.cached_unique_records`, which consults the
  cache tiers in order — in-memory
  :class:`~repro.engine.pipeline.ForestCache` first, then the durable
  :class:`~repro.engine.store.ResultStore` when the engine has one —
  before computing the remaining unique contents through the backend
  kernel and publishing the new records back down both tiers. The
  planner itself never talks to the store; the content digest it
  deduped on is exactly the store's addressing key, so cross-*process*
  reuse composes with cross-workload dedup for free.

Records are scattered back to per-workload row-major tile order and are
bit-identical to the per-matrix path for every backend and worker
count: the batched kernels compute each tile's record independently of
its stack neighbours (pinned by the sharded worker-count equivalence
tests), so bucket composition cannot change results.

Per-stage wall-clock accumulates under ``pack`` (per-workload bit
packing), ``plan`` (bucket merge / arena fill), ``dedup`` (global
content dedup + cache traffic), and ``scatter`` (writing records back
in workload order); the kernel's own ``select``/``record`` stages keep
their existing meaning.
"""

from __future__ import annotations

import contextlib
import hashlib
import threading
import time

import numpy as np

from repro.core.prosparsity import TILE_RECORD_FIELDS
from repro.core.spike_matrix import SpikeMatrix, SpikeTile
from repro.engine.fused import (
    build_tile_parts,
    cached_unique_records,
    dedup_tiles,
    padded_codes,
)
from repro.utils.bitops import popcount_rows

__all__ = [
    "PLAN_MODES",
    "PLANNED_PROFILE_STAGES",
    "BufferArena",
    "PlanBucket",
    "TracePlan",
    "TracePlanner",
    "validate_plan_mode",
]

#: Execution-planning modes: ``matrix`` (per-matrix fused batching, the
#: PR 2 behaviour) and ``trace`` (cross-workload planner batching).
PLAN_MODES = ("matrix", "trace")

#: Profile stage keys a trace-planned engine run may report, in
#: pipeline order. ``pack``/``select``/``record``/``merge`` keep their
#: per-matrix meaning; ``plan``/``dedup``/``scatter`` are planner-only.
PLANNED_PROFILE_STAGES = (
    "pack",
    "plan",
    "dedup",
    "select",
    "record",
    "scatter",
    "merge",
)

_NFIELDS = len(TILE_RECORD_FIELDS)


def validate_plan_mode(plan: str) -> str:
    """Reject unknown plan modes with the available choices."""
    if plan not in PLAN_MODES:
        raise ValueError(f"unknown plan mode {plan!r}; expected one of {PLAN_MODES}")
    return plan


def _add_stage(profile: dict[str, float] | None, stage: str, seconds: float) -> None:
    if profile is not None:
        profile[stage] = profile.get(stage, 0.0) + seconds


class BufferArena:
    """Shape-keyed, capacity-doubling slab pool for planner buckets.

    ``take(key, shape, dtype)`` returns a writable view of a pooled
    slab, growing (by doubling) only when the requested size exceeds the
    slab's capacity — so planning the same trace repeatedly reuses the
    same memory instead of re-allocating per run. Views are invalidated
    by the next ``take`` with the same key; the planner hands them out
    only for the lifetime of one plan.
    """

    def __init__(self):
        self._slabs: dict[tuple, np.ndarray] = {}
        self.allocations = 0
        self.reuses = 0

    def __len__(self) -> int:
        return len(self._slabs)

    @property
    def nbytes(self) -> int:
        """Total bytes currently pooled across all slabs."""
        return sum(slab.nbytes for slab in self._slabs.values())

    def take(self, key: tuple, shape: tuple[int, ...], dtype) -> np.ndarray:
        """A ``shape``-shaped view of the slab pooled under ``key``."""
        dtype = np.dtype(dtype)
        needed = int(np.prod(shape, dtype=np.int64)) if shape else 1
        slab = self._slabs.get(key)
        if slab is None or slab.dtype != dtype or slab.size < needed:
            grown = needed
            if slab is not None and slab.dtype == dtype:
                grown = max(needed, 2 * slab.size)
            slab = np.empty(grown, dtype=dtype)
            self._slabs[key] = slab
            self.allocations += 1
        else:
            self.reuses += 1
        return slab[:needed].reshape(shape)

    def clear(self) -> None:
        """Drop every pooled slab (counters are kept)."""
        self._slabs.clear()


class PlanBucket:
    """All tiles of one ``(m, k)`` shape across *every* planned workload."""

    __slots__ = (
        "m",
        "k",
        "nbytes",
        "codes",
        "popcounts",
        "raw",
        "owner",
        "position",
        "first",
        "inverse",
    )

    def __init__(self, m, k, nbytes, codes, popcounts, raw, owner, position):
        self.m = m                  # rows per tile
        self.k = k                  # columns per tile
        self.nbytes = nbytes        # packed bytes per tile row
        self.codes = codes          # (T, m, W) machine-word codes
        self.popcounts = popcounts  # (T, m) int64
        self.raw = raw              # (T, m * nbytes) packed bytes (dedup key)
        self.owner = owner          # (T,) workload index per tile
        self.position = position    # (T,) row-major tile index in its workload
        self.first: np.ndarray | None = None    # dedup: unique stack indices
        self.inverse: np.ndarray | None = None  # dedup: stack -> unique map

    @property
    def tiles(self) -> int:
        return len(self.owner)

    @property
    def unique_tiles(self) -> int:
        return len(self.first) if self.first is not None else self.tiles


class TracePlan:
    """Shape buckets plus scatter metadata for one planned trace run."""

    __slots__ = ("buckets", "tiles_per_workload", "offsets", "unique_tiles")

    def __init__(self, buckets: list[PlanBucket], tiles_per_workload: list[int]):
        self.buckets = buckets
        self.tiles_per_workload = list(tiles_per_workload)
        self.offsets = np.concatenate(
            [[0], np.cumsum(self.tiles_per_workload, dtype=np.int64)]
        )
        self.unique_tiles = sum(bucket.unique_tiles for bucket in buckets)

    @property
    def total_tiles(self) -> int:
        return int(self.offsets[-1])

    @property
    def dedup_ratio(self) -> float:
        """Cross-workload dedup multiplier: planned tiles per unique tile."""
        return self.total_tiles / self.unique_tiles if self.unique_tiles else 0.0


class TracePlanner:
    """Builds and executes trace-scope tile plans over arena buffers.

    One planner (and its :class:`BufferArena`) is meant to live as long
    as its :class:`~repro.engine.pipeline.ProsperityEngine`: repeated
    plans of same-shaped traces then reuse bucket storage instead of
    re-allocating. Sources may be whole :class:`SpikeMatrix` workloads
    or pre-sampled ``list[SpikeTile]`` subsets (the ``max_tiles`` path),
    freely mixed — sampled tiles land in the same shape buckets as
    whole-matrix tiles, so sampling composes with the global dedup.
    """

    def __init__(self, arena: BufferArena | None = None):
        self.arena = arena if arena is not None else BufferArena()
        # Re-entrancy: a plan's bucket views live in the shared arena and
        # are invalidated by the next plan(), so concurrent callers must
        # serialize whole plan+execute pairs. The lock is re-entrant:
        # plan()/execute() take it themselves, and callers that need the
        # pair to be atomic wrap both in exclusive().
        self._lock = threading.RLock()

    @contextlib.contextmanager
    def exclusive(self):
        """Hold the planner exclusively for one plan+execute pair.

        Arena-backed bucket arrays are only valid until the next
        ``plan()`` call on this planner, so concurrent users (the
        serving scheduler, parallel sessions sharing one engine) must
        wrap each ``plan()``/``execute()`` pair in this context —
        interleaved pairs then serialize instead of corrupting buffers.
        """
        with self._lock:
            yield self

    # -- planning -------------------------------------------------------
    def plan(
        self,
        sources: list,
        tile_m: int,
        tile_k: int,
        profile: dict[str, float] | None = None,
    ) -> TracePlan:
        """Pack every source once and bucket all tiles by shape.

        ``sources`` is one entry per workload: a :class:`SpikeMatrix`
        (every tile, row-major positions) or a list of
        :class:`SpikeTile` (sampled subset, sample-order positions).
        Workload matrices with identical content are packed once — a
        trace repeated across timesteps pays one packing pass, not one
        per repeat; the shared chunks land in the buckets once per
        owner, so scatter-back stays exact.
        """
        with self._lock:
            return self._plan(sources, tile_m, tile_k, profile)

    def _plan(
        self,
        sources: list,
        tile_m: int,
        tile_k: int,
        profile: dict[str, float] | None = None,
    ) -> TracePlan:
        parts: dict[tuple[int, int], list[tuple]] = {}
        tiles_per_workload: list[int] = []
        packed_matrices: dict[tuple, dict] = {}
        pack_seconds = 0.0
        for owner, source in enumerate(sources):
            start = time.perf_counter()
            if isinstance(source, SpikeMatrix):
                total = source.num_tiles(tile_m, tile_k)
                digest = self._matrix_digest(source)
                matrix_parts = packed_matrices.get(digest)
                if matrix_parts is None:
                    matrix_parts = build_tile_parts(source, tile_m, tile_k)
                    packed_matrices[digest] = matrix_parts
                for (m, k), chunks in matrix_parts.items():
                    shape_parts = parts.setdefault((m, k), [])
                    for chunk in chunks:
                        shape_parts.append((owner, *chunk))
            else:
                total = len(source)
                self._pack_tiles(source, owner, parts)
            tiles_per_workload.append(total)
            pack_seconds += time.perf_counter() - start
        _add_stage(profile, "pack", pack_seconds)

        start = time.perf_counter()
        buckets = []
        # Sorted shape order keeps bucket iteration (and arena keys)
        # deterministic for a given trace shape set.
        for m, k in sorted(parts):
            chunks = parts[(m, k)]
            nbytes = chunks[0][1]
            total = sum(chunk[2].shape[0] for chunk in chunks)
            width = chunks[0][2].shape[2]
            codes = self.arena.take(
                ("codes", m, k), (total, m, width), chunks[0][2].dtype
            )
            popcounts = self.arena.take(("pops", m, k), (total, m), np.int64)
            raw = self.arena.take(("raw", m, k), (total, m * nbytes), np.uint8)
            owner = self.arena.take(("owner", m, k), (total,), np.int64)
            position = self.arena.take(("position", m, k), (total,), np.int64)
            offset = 0
            for own, _, chunk_codes, chunk_pops, chunk_raw, chunk_pos in chunks:
                n = chunk_codes.shape[0]
                codes[offset : offset + n] = chunk_codes
                popcounts[offset : offset + n] = chunk_pops
                raw[offset : offset + n] = chunk_raw
                owner[offset : offset + n] = own
                position[offset : offset + n] = chunk_pos
                offset += n
            buckets.append(
                PlanBucket(m, k, nbytes, codes, popcounts, raw, owner, position)
            )
        _add_stage(profile, "plan", time.perf_counter() - start)

        start = time.perf_counter()
        for bucket in buckets:
            bucket.first, bucket.inverse = dedup_tiles(bucket.raw)
        _add_stage(profile, "dedup", time.perf_counter() - start)

        plan = TracePlan(buckets, tiles_per_workload)
        if plan.total_tiles != sum(bucket.tiles for bucket in buckets):
            raise RuntimeError(
                f"plan bucket mismatch: {sum(b.tiles for b in buckets)} tiles "
                f"bucketed, {plan.total_tiles} expected"
            )
        return plan

    @staticmethod
    def _matrix_digest(matrix: SpikeMatrix) -> tuple:
        """Whole-matrix content key for the pack-once fast path."""
        bits = matrix.bits
        if not bits.flags["C_CONTIGUOUS"]:
            bits = np.ascontiguousarray(bits)
        return (
            bits.shape,
            hashlib.blake2b(bits, digest_size=16).digest(),
        )

    @staticmethod
    def _pack_tiles(
        tiles: list[SpikeTile], owner: int, parts: dict[tuple[int, int], list[tuple]]
    ) -> None:
        """Stack pre-sampled tiles into the same chunk format as matrices."""
        by_shape: dict[tuple[int, int], list[tuple[int, np.ndarray]]] = {}
        for position, tile in enumerate(tiles):
            by_shape.setdefault((tile.m, tile.k), []).append((position, tile.packed))
        for (m, k), items in by_shape.items():
            nbytes = items[0][1].shape[1]
            raw = np.stack([packed.reshape(m * nbytes) for _, packed in items])
            rows = raw.reshape(len(items) * m, nbytes)
            codes = padded_codes(rows).reshape(len(items), m, -1)
            popcounts = popcount_rows(rows).reshape(len(items), m)
            positions = np.array([position for position, _ in items], dtype=np.int64)
            parts.setdefault((m, k), []).append(
                (owner, nbytes, codes, popcounts, raw, positions)
            )

    # -- execution ------------------------------------------------------
    def execute(
        self,
        plan: TracePlan,
        backend,
        cache=None,
        profile: dict[str, float] | None = None,
        on_workload=None,
    ) -> list[np.ndarray]:
        """Run one kernel per bucket and scatter records per workload.

        Returns one ``(tiles, len(TILE_RECORD_FIELDS))`` array per
        planned workload, in the workload's own tile order —
        bit-identical to running the backend per matrix. The returned
        arrays are freshly allocated (never arena-backed), so they stay
        valid across later plans.

        ``on_workload``, when given, is called as ``on_workload(index,
        records)`` the moment a workload's final tile is scattered —
        workloads complete as their buckets finish, not at the end of
        the whole plan, which is the streaming seam the serving API
        builds result chunks on. The callback runs on the executing
        thread; exceptions it raises abort the run.
        """
        with self._lock:
            return self._execute(plan, backend, cache, profile, on_workload)

    def _execute(
        self,
        plan: TracePlan,
        backend,
        cache,
        profile: dict[str, float] | None,
        on_workload,
    ) -> list[np.ndarray]:
        records = np.empty((plan.total_tiles, _NFIELDS), dtype=np.int64)
        per_workload = [
            records[start:end]
            for start, end in zip(plan.offsets[:-1], plan.offsets[1:])
        ]
        remaining = np.asarray(plan.tiles_per_workload, dtype=np.int64).copy()
        if on_workload is not None:
            # Zero-tile workloads have nothing pending: complete them
            # up front so streams never wait on an empty workload.
            for index in np.flatnonzero(remaining == 0):
                on_workload(int(index), per_workload[index])
        assigned = 0
        for bucket in plan.buckets:
            bucket_records = self._bucket_records(bucket, backend, cache, profile)
            start = time.perf_counter()
            records[plan.offsets[bucket.owner] + bucket.position] = bucket_records
            assigned += len(bucket_records)
            _add_stage(profile, "scatter", time.perf_counter() - start)
            if on_workload is not None:
                counts = np.bincount(bucket.owner, minlength=len(remaining))
                remaining -= counts
                for index in np.flatnonzero((remaining == 0) & (counts > 0)):
                    on_workload(int(index), per_workload[index])
        if assigned != plan.total_tiles:
            raise RuntimeError(
                f"plan scatter mismatch: {assigned} records assigned, "
                f"{plan.total_tiles} planned"
            )
        return per_workload

    def _bucket_records(
        self,
        bucket: PlanBucket,
        backend,
        cache,
        profile: dict[str, float] | None,
    ) -> np.ndarray:
        """Records for one bucket's full stack: cache, one kernel, expand.

        The trace-scope twin of ``FusedBackend._group_records`` — both
        share :func:`~repro.engine.fused.cached_unique_records` for the
        cache protocol. The kernel runs once over the cache-missing
        unique stack, through the backend's ``_compute_records``
        sharding seam when it has one (the sharded backend then splits
        whole buckets across its workers); per-tile backends fall back
        to reconstructed tiles. Cache traffic books under ``dedup``.
        """
        kernel = getattr(backend, "_compute_records", None)
        if kernel is not None:
            # Fused-family backends time select/record themselves.
            def compute(rows: np.ndarray) -> np.ndarray:
                return kernel(bucket.codes[rows], bucket.popcounts[rows], bucket.k)
        else:
            def compute(rows: np.ndarray) -> np.ndarray:
                start = time.perf_counter()
                computed = np.array(
                    [
                        backend.tile_record(tile)
                        for tile in self._tiles_from_raw(bucket, rows)
                    ],
                    dtype=np.int64,
                ).reshape(len(rows), _NFIELDS)
                _add_stage(profile, "record", time.perf_counter() - start)
                return computed

        return cached_unique_records(
            bucket.m,
            bucket.k,
            bucket.raw,
            bucket.first,
            bucket.inverse,
            compute,
            cache,
            lambda seconds: _add_stage(profile, "dedup", seconds),
        )

    @staticmethod
    def _tiles_from_raw(bucket: PlanBucket, rows: np.ndarray):
        """Rebuild :class:`SpikeTile` objects for per-tile backends.

        Only the reference/vectorized per-tile entry points need real
        tiles; the fused kernels consume the packed stacks directly.
        """
        for i in rows:
            packed = bucket.raw[i].reshape(bucket.m, bucket.nbytes)
            bits = np.unpackbits(packed, axis=1)[:, : bucket.k].astype(bool)
            yield SpikeTile(bits)
