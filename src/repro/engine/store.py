"""Crash-safe persistent content-addressed result store.

The in-memory :class:`~repro.engine.pipeline.ForestCache` and the
planner's per-bucket dedup die with the process, yet the scheduler
measures ~8.4x cross-request content dedup — at serving scale most tile
contents have been transformed before.  :class:`ResultStore` is the
durable tier underneath them: an on-disk map from a tile's content
digest to its packed transform record, shared by every process that
points at the same directory.

Robustness contract (the whole point of this module):

* **Atomic publish.** Entries are written to a same-directory temp file,
  fsynced, then :func:`os.replace`'d into place — readers only ever see
  a complete entry or no entry.  A writer killed mid-publish leaves a
  temp file that the next open reclaims; it can never leave a torn
  entry under the final name.  The async writer amortizes the fsync:
  batches of published entries are fsynced together at flush/close (or
  every ``_FSYNC_BATCH`` publishes), keeping durability off the kernel
  hot path while rename atomicity alone guarantees no torn entries.
* **Checksums on read.** Every entry carries a BLAKE2 checksum over its
  payload, verified on each read (``verify="checksum"``, the default).
  A corrupt entry is *quarantined* — moved into ``quarantine/`` with its
  counters bumped — and the caller recomputes through the kernel path.
  The store never crashes a run and never serves bad bytes.
* **Multi-process safe.** Entry names are pure functions of the content
  key, so racing writers publish identical bytes and rename atomicity
  makes the last one win harmlessly.  Readers racing eviction see a
  plain miss.  No locks are shared across processes.  Misses resolve on
  an in-memory name index (snapshot at open plus our own publishes), so
  the cold path costs no syscalls; the first miss after open triggers
  one index rescan, so entries published by *other* processes after our
  open still warm-share into this one (later publishes surface on the
  next open).
* **Bounded.** ``max_bytes`` caps the namespace; publishes past the
  budget evict least-recently-used entries (file mtime, refreshed on
  hit — batched onto the writer thread so hits stay syscall-free) down
  to the low-water mark.
* **Fail-safe degradation.** Any unexpected ``OSError`` (unwritable
  directory, injected ``store_io_error``, disk gone) disables the store
  for the process — runs keep working through the kernel path, and the
  reason is visible in :meth:`ResultStore.stats`.

Entries are versioned by the record schema: the namespace directory
name hashes ``SCHEMA_VERSION`` plus ``TILE_RECORD_FIELDS``, so a store
written by an older/newer record layout can never alias into this one —
stale entries simply live in a different namespace.

Fault injection (:mod:`repro.engine.faults`) hooks the IO sites:
``store_corrupt`` flips payload bytes of a real on-disk entry just
before the read so the checksum/quarantine path is exercised end to
end, ``store_io_error`` raises ``OSError`` at a site so degradation is
deterministic in tests and CI drills.
"""

from __future__ import annotations

import hashlib
import os
import queue
import struct
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.core.prosparsity import TILE_RECORD_FIELDS
from repro.engine import faults

__all__ = [
    "SCHEMA_VERSION",
    "VERIFY_POLICIES",
    "ResultStore",
    "StoreStats",
    "default_store_path",
    "namespace_tag",
    "open_store",
]

#: Bump on any change to the entry layout below.
SCHEMA_VERSION = 1

#: ``verify`` policies: ``checksum`` validates every read, ``off``
#: trusts published bytes (structure is still validated).
VERIFY_POLICIES = ("checksum", "off")

#: Entry layout: magic, m, k, field count, int64 record values, checksum.
_MAGIC = b"PRS1"
_HEADER = struct.Struct("<4sqqq")
_CHECKSUM_BYTES = 16

#: Environment override for the default store location.
_PATH_ENV = "REPRO_STORE_DIR"

#: Eviction drains to this fraction of ``max_bytes`` so every publish
#: near the cap does not trigger a directory scan.
_LOW_WATER = 0.8


def namespace_tag() -> str:
    """Directory name binding entries to the record schema.

    Hashing the schema version together with the record field tuple
    means a store produced by any other record layout lands in a
    sibling directory — stale entries can never alias current reads.
    """
    blob = repr((SCHEMA_VERSION, TILE_RECORD_FIELDS)).encode()
    return f"v{SCHEMA_VERSION}-{hashlib.blake2b(blob, digest_size=6).hexdigest()}"


def default_store_path() -> str:
    """Store root when ``[cache] path`` is left empty."""
    override = os.environ.get(_PATH_ENV)
    if override:
        return override
    return str(Path.home() / ".cache" / "prosperity-repro" / "store")


@dataclass
class StoreStats:
    """Point-in-time store description (``repro cache stats``)."""

    path: str
    enabled: bool
    entries: int
    total_bytes: int
    max_bytes: int
    quarantined: int
    hits: int
    misses: int
    corrupt: int
    evictions: int
    errors: int
    disabled_reason: str


class ResultStore:
    """Durable digest -> tile-record map with quarantine and eviction.

    Keys are the :meth:`ForestCache.key` tuples ``(m, k, digest)`` —
    one BLAKE2 digest per distinct tile content, hashed once by the
    caller.  Values are the packed transform records
    (``len(TILE_RECORD_FIELDS)`` int64s).

    Publishes are asynchronous by default: :meth:`put` enqueues and a
    daemon writer thread performs the fsynced atomic publish off the
    kernel hot path (``flush()``/``close()`` drain it).  Pass
    ``async_writes=False`` to publish inline — tests and the CLI
    ``cache`` subcommand do.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        max_bytes: int = 256 * 1024 * 1024,
        verify: str = "checksum",
        async_writes: bool = True,
    ):
        if verify not in VERIFY_POLICIES:
            raise ValueError(
                f"unknown verify policy {verify!r}; choose from "
                + ", ".join(VERIFY_POLICIES)
            )
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.root = Path(path)
        self.directory = self.root / namespace_tag()
        self.quarantine_dir = self.directory / "quarantine"
        self.max_bytes = int(max_bytes)
        self.verify = verify
        self.enabled = True
        self.disabled_reason = ""
        # Counter / byte-accounting guard; never held across file IO on
        # the read path, and publishes serialize through the writer.
        self._mutex = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._corrupt = 0
        self._evictions = 0
        self._errors = 0
        self._bytes = 0
        self._tmp_serial = 0
        # Name index: basenames of entries present at open plus our own
        # publishes, minus evictions/quarantines.  Misses resolve on it
        # without a syscall (the common cold-run case); the first miss
        # after open rescans the directory once so entries published by
        # another process after our open warm-share into this one.
        # Mutated only under the GIL (set add/discard/contains).
        self._index: set[str] = set()
        self._rescanned = False
        self._shards_made: set[str] = set()
        self._buffer: list[tuple] = []
        self._touched: list[str] = []  # hit paths pending LRU mtime refresh
        self._queue: queue.SimpleQueue | None = None
        self._writer: threading.Thread | None = None
        self._open()
        if async_writes and self.enabled:
            self._queue = queue.SimpleQueue()
            self._writer = threading.Thread(
                target=self._drain_writes, name="repro-store-writer", daemon=True
            )
            self._writer.start()

    # -- lifecycle ------------------------------------------------------
    def _open(self) -> None:
        try:
            if faults.store_fault("store.open") == "io_error":
                raise OSError("injected store io error at open")
            self.directory.mkdir(parents=True, exist_ok=True)
            self.quarantine_dir.mkdir(exist_ok=True)
            note = self.directory / "FORMAT"
            if not note.exists():
                note.write_text(
                    f"prosperity-repro result store, schema {SCHEMA_VERSION}\n"
                    f"record fields: {', '.join(TILE_RECORD_FIELDS)}\n"
                )
            self._reclaim_tmp()
            total = 0
            for path, _, size in self._scan_entries():
                total += size
                self._index.add(path.name)
            self._bytes = total
        except OSError as error:
            self._disable(f"open failed: {error}")

    def _disable(self, reason: str) -> None:
        """Fail safe: one unexpected IO error turns the store off for
        this process (runs continue through the kernel path)."""
        with self._mutex:
            self.enabled = False
            if not self.disabled_reason:
                self.disabled_reason = reason
            self._errors += 1

    def flush(self) -> None:
        """Block until every queued publish has landed on disk."""
        writer_queue = self._queue
        if writer_queue is None:
            return
        self._hand_off_buffer(writer_queue)
        done = threading.Event()
        writer_queue.put(done)
        done.wait(timeout=30.0)

    def close(self) -> None:
        """Drain pending publishes and stop the writer.  Idempotent."""
        writer_queue, writer = self._queue, self._writer
        self._queue = None
        self._writer = None
        if writer_queue is not None and writer is not None and writer.is_alive():
            self._hand_off_buffer(writer_queue)
            writer_queue.put(None)
            writer.join(timeout=30.0)

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- paths and layout -----------------------------------------------
    @staticmethod
    def _entry_name(key: tuple) -> str:
        m, k, digest = key
        return f"{bytes(digest).hex()}-{int(m)}x{int(k)}.rec"

    def _entry_path(self, key: tuple) -> Path:
        name = self._entry_name(key)
        return self.directory / name[:2] / name

    def _scan_entries(self):
        """Yield ``(path, mtime, size)`` for every published entry."""
        try:
            shards = list(self.directory.iterdir())
        except OSError:
            return
        for shard in shards:
            if not shard.is_dir() or shard.name == "quarantine":
                continue
            for entry in shard.iterdir():
                if entry.suffix != ".rec":
                    continue
                try:
                    info = entry.stat()
                except OSError:
                    continue  # lost a race with eviction/clear
                yield entry, info.st_mtime, info.st_size

    def _reclaim_tmp(self) -> None:
        """Remove temp files left by writers that died mid-publish.

        Temp names embed the writer pid; only files whose writer is
        verifiably gone (or is this very process, pre-restart) are
        removed, so a live concurrent publisher is never raced.
        """
        for shard in self.directory.iterdir():
            if not shard.is_dir() or shard.name == "quarantine":
                continue
            for leftover in shard.glob(".tmp-*"):
                try:
                    pid = int(leftover.name.split("-")[1])
                except (IndexError, ValueError):
                    pid = -1
                if pid > 0 and pid != os.getpid() and _pid_alive(pid):
                    continue
                try:
                    leftover.unlink()
                except OSError:
                    pass

    # -- serialization --------------------------------------------------
    @staticmethod
    def _encode(key: tuple, record: tuple) -> bytes:
        m, k, _ = key
        values = tuple(int(value) for value in record)
        payload = _HEADER.pack(_MAGIC, int(m), int(k), len(values)) + struct.pack(
            f"<{len(values)}q", *values
        )
        checksum = hashlib.blake2b(payload, digest_size=_CHECKSUM_BYTES).digest()
        return payload + checksum

    def _decode(self, key: tuple, blob: bytes) -> tuple | None:
        """Parse an entry; ``None`` means corrupt (caller quarantines)."""
        if len(blob) <= _HEADER.size + _CHECKSUM_BYTES:
            return None
        payload, checksum = blob[:-_CHECKSUM_BYTES], blob[-_CHECKSUM_BYTES:]
        if self.verify == "checksum":
            expected = hashlib.blake2b(payload, digest_size=_CHECKSUM_BYTES).digest()
            if checksum != expected:
                return None
        magic, m, k, count = _HEADER.unpack_from(payload)
        if (
            magic != _MAGIC
            or m != int(key[0])
            or k != int(key[1])
            or count <= 0
            or len(payload) != _HEADER.size + 8 * count
        ):
            return None
        return struct.unpack_from(f"<{count}q", payload, _HEADER.size)

    # -- read path ------------------------------------------------------
    def get(self, key: tuple) -> tuple | None:
        """Record for ``key``, or ``None`` on miss/corruption/disabled.

        Corrupt entries are quarantined and counted; the caller falls
        back to the kernel path exactly as on a miss.
        """
        if not self.enabled:
            return None
        name = self._entry_name(key)
        if name not in self._index:
            # Cross-process warm sharing: the first miss after open
            # rescans the directory once — a store populated by another
            # process after our open turns this miss into a hit.  Later
            # misses are definite and cost no syscalls (cold-run case).
            if not self._rescanned:
                self._rescan_index()
            if name not in self._index:
                with self._mutex:
                    self._misses += 1
                return None
        pathstr = f"{self.directory}{os.sep}{name[:2]}{os.sep}{name}"
        try:
            with open(pathstr, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:  # evicted/cleared by another process
            self._index.discard(name)
            with self._mutex:
                self._misses += 1
            return None
        except OSError as error:
            self._disable(f"read failed: {error}")
            return None
        verdict = faults.store_fault("store.get")
        if verdict == "io_error":
            self._disable("read failed: injected store io error")
            return None
        if verdict == "corrupt":
            blob = _corrupt_on_disk(Path(pathstr), blob)
        record = self._decode(key, blob)
        if record is None:
            self._quarantine(Path(pathstr))
            with self._mutex:
                self._corrupt += 1
                self._misses += 1
            return None
        # LRU recency refresh: batched off the hot read path when a
        # writer thread runs (it applies the utimes at the next kick/
        # flush/close), inline for synchronous stores.
        if self._queue is not None:
            self._touched.append(pathstr)
        else:
            try:
                os.utime(pathstr)
            except OSError:
                pass
        with self._mutex:
            self._hits += 1
        return record

    def _rescan_index(self) -> None:
        """Refresh the name index from disk, at most once per open.

        Racing readers may both pass the flag check; the double scan is
        harmless (set adds are idempotent) and the flag flip under the
        mutex keeps the steady state at zero extra scans.  The byte
        counter only ever grows here — eviction rescans authoritative
        sizes itself, so a conservative overcount is safe.
        """
        with self._mutex:
            if self._rescanned:
                return
            self._rescanned = True
        total = 0
        for path, _, size in self._scan_entries():
            self._index.add(path.name)
            total += size
        with self._mutex:
            self._bytes = max(self._bytes, total)

    def _quarantine(self, path: Path) -> None:
        """Move a bad entry aside so it is never read again but stays
        available for post-mortems (``repro cache verify`` reports it)."""
        target = self.quarantine_dir / f"{path.name}.{os.getpid()}.quarantined"
        self._index.discard(path.name)
        try:
            size = path.stat().st_size
            os.replace(path, target)
            with self._mutex:
                self._bytes = max(0, self._bytes - size)
        except OSError:
            try:  # racing quarantiners: losing the rename is fine,
                path.unlink()  # but the entry must not stay live.
            except OSError:
                pass

    # -- write path -----------------------------------------------------
    #: Async puts buffer in memory and hand off to the writer in bulk —
    #: at :meth:`kick` (engines call it when a run finishes), at
    #: flush/close, or when the buffer crosses this bound.  Publishing
    #: *during* a run is deliberately avoided: an IO thread waking per
    #: entry against a compute-bound main thread convoys on the GIL and
    #: was measured to nearly double a cold run's wall-clock.
    _CHUNK = 8192

    def put(self, key: tuple, record: tuple) -> None:
        """Publish ``key -> record`` (asynchronously when a writer runs)."""
        if not self.enabled:
            return
        writer_queue = self._queue
        if writer_queue is None:
            self._publish(key, tuple(record))
            return
        self._buffer.append((key, tuple(record)))
        if len(self._buffer) >= self._CHUNK:
            self._hand_off_buffer(writer_queue)

    def _hand_off_buffer(self, writer_queue: queue.SimpleQueue) -> None:
        with self._mutex:
            chunk, self._buffer = self._buffer, []
            touched, self._touched = self._touched, []
        if chunk or touched:
            writer_queue.put((chunk, touched))

    def kick(self) -> None:
        """Start publishing buffered puts in the background (non-blocking).

        Engines call this when a run completes so entries land on disk
        during idle time between runs instead of contending with kernel
        compute; a no-op for synchronous stores.
        """
        writer_queue = self._queue
        if writer_queue is not None:
            self._hand_off_buffer(writer_queue)

    #: The async writer batches durability: entries publish (atomic
    #: rename) without an inline fsync, and pending files are fsynced
    #: together at flush/close or every this-many publishes.  Rename
    #: atomicity alone already rules out torn entries under any process
    #: crash; the deferred fsync only narrows the power-loss window,
    #: and a torn-on-power-loss entry is caught by the read checksum.
    _FSYNC_BATCH = 1024

    def _drain_writes(self) -> None:
        writer_queue = self._queue
        pending: list[Path] = []
        while writer_queue is not None:
            item = writer_queue.get()
            if item is None:
                self._fsync_pending(pending)
                return
            if isinstance(item, threading.Event):
                self._fsync_pending(pending)
                item.set()
                continue
            chunk, touched = item
            for key, record in chunk:  # a chunk of buffered puts
                published = self._publish(key, record, fsync=False)
                if published is not None:
                    pending.append(published)
                    if len(pending) >= self._FSYNC_BATCH:
                        self._fsync_pending(pending)
            for pathstr in touched:  # batched LRU recency refreshes
                try:
                    os.utime(pathstr)
                except OSError:
                    pass

    def _fsync_pending(self, pending: list[Path]) -> None:
        """Durability for batched async publishes: fsync every pending
        entry, then each touched shard directory (the renames).  Best
        effort — an entry evicted meanwhile is simply gone."""
        directories = set()
        for path in pending:
            try:
                descriptor = os.open(path, os.O_RDONLY)
            except OSError:
                continue  # evicted/quarantined since publish
            try:
                os.fsync(descriptor)
            except OSError:
                pass
            finally:
                os.close(descriptor)
            directories.add(path.parent)
        for directory in directories:
            try:
                descriptor = os.open(directory, os.O_RDONLY)
            except OSError:
                continue
            try:
                os.fsync(descriptor)
            except OSError:
                pass
            finally:
                os.close(descriptor)
        pending.clear()

    def _publish(self, key: tuple, record: tuple, fsync: bool = True) -> Path | None:
        """Atomic publish: temp file + rename (+ inline fsync when
        synchronous).  Returns the entry path, or ``None`` on failure."""
        if not self.enabled:
            return None  # keeps the writer draining after degradation
        path = self._entry_path(key)
        blob = self._encode(key, record)
        with self._mutex:
            self._tmp_serial += 1
            serial = self._tmp_serial
        tmp = path.parent / f".tmp-{os.getpid()}-{serial}-{path.name}"
        try:
            if faults.store_fault("store.put") == "io_error":
                raise OSError("injected store io error at publish")
            shard = path.parent
            if shard.name not in self._shards_made:
                shard.mkdir(parents=True, exist_ok=True)
                self._shards_made.add(shard.name)
            existed = path.name in self._index
            with open(tmp, "wb") as handle:
                handle.write(blob)
                if fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp, path)
            self._index.add(path.name)
        except OSError as error:
            try:
                tmp.unlink()
            except OSError:
                pass
            self._disable(f"publish failed: {error}")
            return None
        if not existed:
            with self._mutex:
                self._bytes += len(blob)
                over_budget = self.max_bytes > 0 and self._bytes > self.max_bytes
            if over_budget:
                self._evict()
        return path

    def _evict(self) -> None:
        """Drop least-recently-used entries down to the low-water mark.

        Rescans the directory for authoritative sizes (concurrent
        writers move the approximate counter); racing deletions are
        harmless — whoever loses just skips the file.
        """
        entries = sorted(self._scan_entries(), key=lambda item: item[1])
        total = sum(size for _, _, size in entries)
        target = int(self.max_bytes * _LOW_WATER)
        evicted = 0
        for path, _, size in entries:
            if total <= target:
                break
            try:
                path.unlink()
            except OSError:
                continue
            self._index.discard(path.name)
            total -= size
            evicted += 1
        with self._mutex:
            self._bytes = total
            self._evictions += evicted

    # -- observability / maintenance ------------------------------------
    def counters(self) -> dict[str, int]:
        """Monotonic per-process counters (engines snapshot-and-diff
        these into ``EngineReport.store_*`` per run)."""
        with self._mutex:
            return {
                "store_hits": self._hits,
                "store_misses": self._misses,
                "store_corrupt": self._corrupt,
                "store_evictions": self._evictions,
                "store_errors": self._errors,
            }

    def stats(self) -> StoreStats:
        """Full description including an on-disk scan."""
        entries = list(self._scan_entries()) if self.enabled else []
        try:
            quarantined = (
                sum(1 for _ in self.quarantine_dir.iterdir()) if self.enabled else 0
            )
        except OSError:
            quarantined = 0
        with self._mutex:
            return StoreStats(
                path=str(self.directory),
                enabled=self.enabled,
                entries=len(entries),
                total_bytes=sum(size for _, _, size in entries),
                max_bytes=self.max_bytes,
                quarantined=quarantined,
                hits=self._hits,
                misses=self._misses,
                corrupt=self._corrupt,
                evictions=self._evictions,
                errors=self._errors,
                disabled_reason=self.disabled_reason,
            )

    def verify_all(self) -> tuple[int, int]:
        """Scan every entry, quarantine corrupt ones.

        Returns ``(checked, corrupt)``.  Uses each entry's embedded
        ``(m, k)`` header so the scan needs no external key list; the
        filename digest is authoritative for content identity.
        """
        checked = corrupt = 0
        for path, _, _ in self._scan_entries():
            try:
                blob = path.read_bytes()
            except OSError:
                continue
            checked += 1
            header_ok = len(blob) > _HEADER.size + _CHECKSUM_BYTES
            if header_ok:
                magic, m, k, _ = _HEADER.unpack_from(blob)
                header_ok = magic == _MAGIC
            if not header_ok or self._decode((m, k, b""), blob) is None:
                self._quarantine(path)
                with self._mutex:
                    self._corrupt += 1
                corrupt += 1
        return checked, corrupt

    def clear(self) -> int:
        """Remove every published entry (quarantine included).

        Returns the number of entries removed.  The namespace directory
        itself stays, so concurrent stores keep working (they see
        misses, not errors).
        """
        removed = 0
        for path, _, _ in self._scan_entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
            self._index.discard(path.name)
        try:
            for leftover in self.quarantine_dir.iterdir():
                try:
                    leftover.unlink()
                except OSError:
                    pass
        except OSError:
            pass
        with self._mutex:
            self._bytes = 0
        return removed


def open_store(cache_config) -> "ResultStore | None":
    """Store from a ``[cache]`` config section, ``None`` when disabled.

    Duck-typed over ``enabled`` / ``path`` / ``max_bytes`` / ``verify``
    attributes so the API layer (Session, Scheduler, CLI) shares one
    construction path without a config import cycle.  An empty path
    falls back to :func:`default_store_path`.
    """
    if not getattr(cache_config, "enabled", False):
        return None
    return ResultStore(
        cache_config.path or default_store_path(),
        max_bytes=cache_config.max_bytes,
        verify=cache_config.verify,
    )


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # e.g. EPERM: exists but not ours
    return True


def _corrupt_on_disk(path: Path, blob: bytes) -> bytes:
    """``store_corrupt`` blast site: flip payload bytes of the *real*
    on-disk entry so detection, quarantine, and rebuild run against
    genuine corruption rather than a simulated return value."""
    if not blob:
        return blob
    position = len(blob) // 2
    mangled = bytearray(blob)
    mangled[position] ^= 0xFF
    try:
        with open(path, "r+b") as handle:
            handle.seek(position)
            handle.write(bytes([mangled[position]]))
    except OSError:
        pass
    return bytes(mangled)
