"""Compiled (Numba) ProSparsity kernels behind the backend registry.

The ``fused`` backend already runs the transform as a handful of NumPy
broadcasts per deduplicated ``(T, m, W)`` bucket stack — but those
broadcasts still materialize ``(chunk, m, m)`` candidate blocks and are
driven from Python. This module pushes the whole per-stack hot path —
sorted-key triangle prefix scan, pointer-doubling forest depths, and
record emission — into one ``@njit(parallel=True, cache=True)`` nopython
kernel with an explicit ``prange`` over tiles: every tile resolves its
rows at their first subset hit (no ``(m, m)`` block is ever
materialized), and tiles spread across all cores without pickling or
process pools.

Numba is an *optional* extra (``pip install prosperity-repro[compiled]``).
The backend always registers; whether the JIT engages is resolved per
instance:

* numba importable and ``REPRO_NO_JIT`` unset -> ``jit_active=True``,
  records come from the compiled kernel;
* numba missing, broken, or ``REPRO_NO_JIT=1`` -> ``jit_active=False``
  and every call transparently falls back to the inherited fused NumPy
  path — same records, bit for bit, just without the native speedup.

JIT compilation cost is paid once per process through the eager
:meth:`CompiledBackend.warmup` seam (auto-invoked before the first
kernel dispatch) and is booked under its own ``warmup`` profile stage,
so ``EngineReport.profile`` attributes compile time separately from
kernel time. ``cache=True`` persists the compiled machine code next to
this file (``__pycache__``), so warm processes and CI runs with a
restored cache skip recompilation entirely.

The kernel body (:func:`_tile_records_impl`) is written in
nopython-compatible Python and stays runnable *without* numba —
``prange`` degrades to ``range`` — which is how the property suite pins
the kernel's logic bit-identical to the fused/reference path even in
environments where numba is absent (:func:`tile_records_python`).
"""

from __future__ import annotations

import os
import time
from importlib import util as _importlib_util

import numpy as np

from repro.core.forest import NO_PREFIX
from repro.core.prosparsity import TILE_RECORD_FIELDS
from repro.engine.backends import register_backend
from repro.engine.fused import PROFILE_STAGES, FusedBackend

__all__ = [
    "COMPILED_PROFILE_STAGES",
    "CompiledBackend",
    "jit_disabled",
    "jit_status",
    "numba_installed",
    "tile_records_python",
]

#: Stage keys the compiled backend's profile reports: the fused stages
#: plus ``warmup`` (one-time JIT compilation / cache load).
COMPILED_PROFILE_STAGES = (*PROFILE_STAGES, "warmup")

_NFIELDS = len(TILE_RECORD_FIELDS)

#: Rebound to ``numba.prange`` when the JIT kernel is built; as plain
#: ``range`` the kernel body runs as ordinary (slow but exact) Python.
prange = range


def _tile_records_impl(codes, popcounts, k, out):  # pragma: no cover - jitted
    """Tile records for a ``(T, m, W)`` uint64 stack, one tile per lane.

    Row-for-row identical to
    :func:`repro.engine.fused.records_from_codes_batch` (pinned by the
    property suite): per tile, rows and candidate columns are sorted by
    the Pruner's descending ``(popcount, index)`` key, so the legal
    candidate region is the strict upper triangle in sorted order and a
    candidate with zero popcount ends the scan (everything after it is
    zero too). Forest depth comes from pointer doubling, records are
    emitted in ``TILE_RECORD_FIELDS`` order into ``out``.
    """
    T, m, W = codes.shape
    for t in prange(T):
        pops = popcounts[t]
        # Descending (popcount, index) sort via one packed int64 key;
        # keys are unique, so the order is exact, not just stable.
        key = np.empty(m, np.int64)
        for i in range(m):
            key[i] = (pops[i] << 32) | i
        asc = np.argsort(key)
        prefix = np.empty(m, np.int64)
        for i in range(m):
            prefix[i] = NO_PREFIX
        # Triangle scan with first-hit resolution: for the row at
        # descending-sorted position p, candidates are positions > p.
        for p in range(m):
            row = asc[m - 1 - p]
            for q in range(p + 1, m):
                cand = asc[m - 1 - q]
                if pops[cand] <= 0:
                    # Zero-popcount rows sort last: no later candidate
                    # can be a legal prefix either.
                    break
                subset = True
                for w in range(W):
                    if (codes[t, cand, w] & ~codes[t, row, w]) != np.uint64(0):
                        subset = False
                        break
                if subset:
                    prefix[row] = cand
                    break
        # Forest depth by pointer doubling: every round each row's
        # pointer jumps to its ancestor's pointer while chain lengths
        # add. Keys strictly decrease along a chain, so chains always
        # terminate; 64 rounds cover any m representable in an int64.
        pointer = np.empty(m, np.int64)
        length = np.empty(m, np.int64)
        for i in range(m):
            if prefix[i] != NO_PREFIX:
                pointer[i] = prefix[i]
                length[i] = 1
            else:
                pointer[i] = i
                length[i] = 0
        for _round in range(64):
            live = False
            for i in range(m):
                if length[pointer[i]] > 0:
                    live = True
                    break
            if not live:
                break
            next_pointer = np.empty(m, np.int64)
            next_length = np.empty(m, np.int64)
            for i in range(m):
                j = pointer[i]
                next_length[i] = length[i] + length[j]
                next_pointer[i] = pointer[j]
            pointer = next_pointer
            length = next_length
        depth = np.int64(0)
        for i in range(m):
            if length[i] > depth:
                depth = length[i]
        # Record emission, TILE_RECORD_FIELDS order (a prefix is always
        # a subset of its row, so residual = pop(row) - pop(prefix)).
        bit_nnz = np.int64(0)
        product_nnz = np.int64(0)
        zero_residual = np.int64(0)
        zero_bit = np.int64(0)
        em_rows = np.int64(0)
        reused_rows = np.int64(0)
        for i in range(m):
            pop = pops[i]
            bit_nnz += pop
            if prefix[i] != NO_PREFIX:
                residual = pop - pops[prefix[i]]
                reused_rows += 1
                if residual == 0 and pop > 0:
                    em_rows += 1
            else:
                residual = pop
            product_nnz += residual
            if residual == 0:
                zero_residual += 1
            if pop == 0:
                zero_bit += 1
        out[t, 0] = m
        out[t, 1] = k
        out[t, 2] = bit_nnz
        out[t, 3] = product_nnz
        out[t, 4] = zero_residual
        out[t, 5] = zero_bit
        out[t, 6] = em_rows
        out[t, 7] = reused_rows
        out[t, 8] = depth


# -- JIT resolution ---------------------------------------------------------

# One kernel per process: numba import and njit construction happen at
# most once, on the first CompiledBackend that wants the fast path.
_jit_checked = False
_jit_kernel = None
_jit_error: str | None = None


def numba_installed() -> bool:
    """Whether the ``numba`` distribution is importable (cheap spec probe)."""
    return _importlib_util.find_spec("numba") is not None


def jit_disabled() -> bool:
    """Whether ``REPRO_NO_JIT`` forces the NumPy fallback (read per call)."""
    return os.environ.get("REPRO_NO_JIT", "") not in ("", "0")


def _load_kernel():
    global _jit_checked, _jit_kernel, _jit_error, prange
    if _jit_checked:
        return _jit_kernel
    _jit_checked = True
    try:
        import numba
    except Exception as exc:  # pragma: no cover - needs a broken install
        _jit_error = f"numba import failed: {exc}"
        return None
    try:
        prange = numba.prange
        _jit_kernel = numba.njit(parallel=True, cache=True)(_tile_records_impl)
    except Exception as exc:  # pragma: no cover - needs a broken install
        prange = range
        _jit_kernel = None
        _jit_error = f"numba jit construction failed: {exc}"
    return _jit_kernel


def jit_status() -> str:
    """One-line JIT availability for CLI footers and CI annotations."""
    if jit_disabled():
        return "disabled (REPRO_NO_JIT=1)"
    if not numba_installed():
        return "unavailable (numba not installed)"
    if _jit_error is not None:
        return f"broken ({_jit_error})"
    return "available"


def tile_records_python(codes: np.ndarray, popcounts: np.ndarray, k: int) -> np.ndarray:
    """Run the kernel body as plain Python (exactly what Numba compiles).

    The property-test seam: environments without numba still execute and
    pin the compiled backend's *logic* bit-identical to the fused path,
    so the fast path's correctness never depends on the optional extra
    being installed. Slow — only feed it small stacks.
    """
    codes = np.ascontiguousarray(codes, dtype=np.uint64)
    popcounts = np.ascontiguousarray(popcounts, dtype=np.int64)
    out = np.empty((codes.shape[0], _NFIELDS), dtype=np.int64)
    impl = _tile_records_impl if _jit_kernel is None else _jit_kernel.py_func
    impl(codes, popcounts, k, out)
    return out


@register_backend
class CompiledBackend(FusedBackend):
    """Fused pipeline with the per-stack kernel compiled by Numba.

    Packing, shape grouping, content dedup, cache composition, and the
    planner seam are all inherited from :class:`FusedBackend`; only the
    ``_compute_records`` hot path is replaced — by the JIT kernel when
    :attr:`jit_active`, by the inherited NumPy broadcasts otherwise.
    Records are bit-identical either way.
    """

    name = "compiled"

    def __init__(self):
        super().__init__()
        self.profile["warmup"] = 0.0
        self._warmed = False
        #: True when records come from the compiled kernel; False means
        #: every call transparently runs the fused NumPy fallback.
        self.jit_active = not jit_disabled() and _load_kernel() is not None

    @classmethod
    def availability(cls) -> str:
        """Install status, surfaced by ``unknown_backend_error``."""
        return (
            "numba installed"
            if numba_installed()
            else "numba not installed, runs as NumPy fallback"
        )

    # -- warmup ---------------------------------------------------------
    def warmup(self) -> bool:
        """Compile (or cache-load) the JIT kernel now; idempotent.

        Returns ``jit_active`` after the attempt. The one-time cost is
        booked under the ``warmup`` profile stage so engine reports
        separate compile time from kernel time; call it eagerly (e.g. at
        service startup) to keep the first request's latency flat. If
        compilation itself fails, the backend degrades to the NumPy
        fallback instead of erroring.
        """
        if not self.jit_active or self._warmed:
            return self.jit_active
        start = time.perf_counter()
        codes = np.array([[[5], [1]], [[3], [3]]], dtype=np.uint64)
        pops = np.array([[2, 1], [2, 2]], dtype=np.int64)
        out = np.empty((2, _NFIELDS), dtype=np.int64)
        try:
            _jit_kernel(codes, pops, 8, out)
        except Exception as exc:  # pragma: no cover - needs a broken install
            global _jit_error
            _jit_error = f"numba compilation failed: {exc}"
            self.jit_active = False
        self._warmed = True
        self.profile["warmup"] += time.perf_counter() - start
        return self.jit_active

    # -- kernel dispatch ------------------------------------------------
    def _compute_records(
        self, codes: np.ndarray, popcounts: np.ndarray, k: int
    ) -> np.ndarray:
        if not self._warmed:
            self.warmup()
        if not self.jit_active:
            return super()._compute_records(codes, popcounts, k)
        start = time.perf_counter()
        # One kernel signature: narrower code words zero-extend to
        # uint64 (bitwise algebra and equality are width-agnostic).
        codes64 = np.ascontiguousarray(codes, dtype=np.uint64)
        pops = np.ascontiguousarray(popcounts, dtype=np.int64)
        records = np.empty((codes64.shape[0], _NFIELDS), dtype=np.int64)
        _jit_kernel(codes64, pops, k, records)
        self.profile["select"] += time.perf_counter() - start
        return records
