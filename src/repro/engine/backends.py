"""Pluggable ProSparsity execution backends.

The engine separates *what* the ProSparsity transform computes (prefix
forests, tile records, lossless GeMM execution — defined by
:mod:`repro.core`) from *how* it is computed. Two backends ship today:

* ``reference`` — delegates to the per-tile/per-row code in
  :mod:`repro.core.forest` and :mod:`repro.core.prosparsity`. Slow but
  simple; it is the correctness oracle every other backend is tested
  against.
* ``vectorized`` — bulk NumPy implementation. Spike rows are packed with
  ``np.packbits`` into fixed-width integer *codes* so the all-pairs
  subset test becomes a single broadcast AND/compare over machine words
  (the TCAM model), exact-match rows are found by direct equality on the
  packed codes, residual popcounts come from byte lookup tables without
  materializing residual patterns, and GeMM execution replaces the
  per-row accumulation loop with one matmul plus level-order prefix
  seeding.

Three more backends register themselves on import of :mod:`repro.engine`:
``fused`` (:mod:`repro.engine.fused` — tile-batched kernels, no per-tile
Python dispatch), ``sharded`` (:mod:`repro.engine.parallel` —
multiprocess tile-batch sharding), and ``compiled``
(:mod:`repro.engine.compiled` — Numba-JIT native kernels over the same
seam, NumPy fallback when the optional extra is absent). Every backend
produces bit-identical
forests, tile records, and (for integer weights) GeMM outputs; later
scaling work plugs in here by registering further backends.
"""

from __future__ import annotations

import inspect
from abc import ABC, abstractmethod

import numpy as np

from repro.core.dispatch import build_dispatch_plan
from repro.core.forest import NO_PREFIX, ProSparsityForest, build_forest
from repro.core.prosparsity import (
    TILE_RECORD_FIELDS,
    TileTransform,
    execute_tile,
    forest_record,
)
from repro.core.spike_matrix import SpikeMatrix, SpikeTile
from repro.utils.bitops import popcount_rows

__all__ = [
    "Backend",
    "ReferenceBackend",
    "VectorizedBackend",
    "available_backends",
    "backend_accepts_option",
    "backend_option_error",
    "code_width",
    "get_backend",
    "register_backend",
    "unknown_backend_error",
    "validate_workers",
]


class Backend(ABC):
    """Strategy interface for the ProSparsity transform and execution.

    Implementations must be *observationally identical* to the reference
    backend: same forests, same tile records, same integer GeMM outputs.
    Floating-point GeMM outputs may differ by summation order only.
    """

    name: str = "abstract"

    @classmethod
    def availability(cls) -> str | None:
        """Install/availability note for this backend, or ``None``.

        Backends gated on optional dependencies (``compiled`` on numba)
        override this to report their install status; the note is
        rendered next to the name in :func:`unknown_backend_error` so a
        typo'd ``--backend`` flag doubles as an availability listing.
        """
        return None

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Release backend resources (worker pools etc.); idempotent.

        Most backends hold none — the base implementation is a no-op —
        but callers that construct backends by name should always close
        them (or use the backend as a context manager) so pool-backed
        backends like ``sharded`` never leak processes.
        """

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def failure_counters(self) -> dict:
        """Lifetime supervision counters for this backend.

        Supervised backends (``sharded``) report ``pool_rebuilds`` /
        ``retries`` / ``degraded``; the base returns an empty dict so
        callers can snapshot-and-diff uniformly (see
        ``ProsperityEngine.run``, which surfaces per-run deltas in
        ``EngineReport``).
        """
        return {}

    # -- transform ------------------------------------------------------
    @abstractmethod
    def forest(self, tile: SpikeTile) -> ProSparsityForest:
        """Build the pruned prefix forest for one tile."""

    def tile_record(self, tile: SpikeTile) -> tuple[int, ...]:
        """Per-tile statistics record (see ``TILE_RECORD_FIELDS``)."""
        return forest_record(self.forest(tile))

    def matrix_records(
        self,
        matrix: SpikeMatrix,
        tile_m: int,
        tile_k: int,
        cache=None,
    ) -> np.ndarray:
        """Tile records for every tile of ``matrix`` in row-major order.

        ``cache``, when given, must expose ``get_record(m, k, packed)``
        and ``put_record(m, k, packed, record)`` (see
        :class:`repro.engine.pipeline.ForestCache`).
        """
        records: list[tuple[int, ...]] = []
        for tile in matrix.tile(tile_m, tile_k):
            record = None
            if cache is not None:
                record = cache.get_record(tile.m, tile.k, tile.packed)
            if record is None:
                record = self.tile_record(tile)
                if cache is not None:
                    cache.put_record(tile.m, tile.k, tile.packed, record)
            records.append(record)
        return np.array(records, dtype=np.int64).reshape(
            len(records), len(TILE_RECORD_FIELDS)
        )

    # -- execution ------------------------------------------------------
    @abstractmethod
    def execute(self, forest: ProSparsityForest, weights: np.ndarray) -> np.ndarray:
        """Execute one tile's forest against a ``(k, n)`` weight slice."""


class ReferenceBackend(Backend):
    """The per-tile/per-row oracle: exactly the :mod:`repro.core` path."""

    name = "reference"

    def forest(self, tile: SpikeTile) -> ProSparsityForest:
        return build_forest(tile)

    def execute(self, forest: ProSparsityForest, weights: np.ndarray) -> np.ndarray:
        plan = build_dispatch_plan(forest)
        transform = TileTransform(tile=forest.tile, forest=forest, plan=plan)
        return execute_tile(transform, weights)


# ---------------------------------------------------------------------------
# Vectorized backend
# ---------------------------------------------------------------------------

# Smallest unsigned dtype able to hold a packed row of the given byte width.
_CODE_DTYPES = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


def code_width(nbytes: int) -> int:
    """Byte width of the machine-word code holding ``nbytes`` packed bytes.

    Up to 8 bytes snaps to the next power of two (one machine word);
    wider rows use whole ``uint64`` words.
    """
    width = 1
    while width < nbytes:
        width *= 2
    width = max(width, 1)
    if width > 8:
        width = -(-nbytes // 8) * 8
    return width


def pack_codes(packed: np.ndarray) -> np.ndarray:
    """View packed ``uint8`` rows as ``(m, W)`` machine-word codes.

    Rows of up to 64 bits collapse to a single word (``W == 1``) so the
    subset test is one broadcast op; wider rows use multiple ``uint64``
    words. The code value is an opaque bijection of the bit pattern —
    only bitwise algebra and equality are ever applied to it.
    """
    packed = np.ascontiguousarray(packed, dtype=np.uint8)
    m, nbytes = packed.shape
    width = code_width(nbytes)
    if width != nbytes:
        padded = np.zeros((m, width), dtype=np.uint8)
        padded[:, :nbytes] = packed
        packed = padded
    dtype = _CODE_DTYPES.get(width, np.uint64)
    return packed.view(dtype)


def _subset_from_codes(codes: np.ndarray) -> np.ndarray:
    """``(m, m)`` bool matrix: entry ``[i, j]`` true when row j ⊆ row i."""
    if codes.shape[1] == 1:
        flat = codes[:, 0]
        return (flat[None, :] & ~flat[:, None]) == 0
    return ((codes[None, :, :] & ~codes[:, None, :]) == 0).all(axis=2)


def _equal_from_codes(codes: np.ndarray, subset: np.ndarray) -> np.ndarray:
    """Exact-match matrix via direct equality on the packed codes."""
    if codes.shape[1] == 1:
        flat = codes[:, 0]
        return flat[None, :] == flat[:, None]
    return subset & subset.T


def select_prefixes_codes(codes: np.ndarray, popcounts: np.ndarray) -> np.ndarray:
    """Vectorized Pruner: identical output to ``forest.select_prefixes``.

    Instead of materializing an ``(m, m)`` int64 score matrix, columns
    are pre-sorted by descending ``(popcount, index)`` and the winning
    prefix is the first legal candidate in that order — an ``argmax``
    over a boolean matrix.
    """
    m = codes.shape[0]
    prefix = np.full(m, NO_PREFIX, dtype=np.int64)
    if m == 0:
        return prefix
    subset = _subset_from_codes(codes)
    legal = subset & (popcounts[None, :] > 0)
    np.fill_diagonal(legal, False)
    # EM pairs: only the smaller index may serve as prefix.
    index = np.arange(m)
    em = _equal_from_codes(codes, subset)
    legal &= ~(em & (index[None, :] > index[:, None]))
    # Descending (popcount, index): a stable ascending sort keeps index
    # ascending within equal popcounts, so its reverse is the exact
    # descending lexicographic order the Pruner's argmax wants.
    order = np.argsort(popcounts, kind="stable")[::-1]
    candidates = legal[:, order]
    first = candidates.argmax(axis=1)
    has_prefix = candidates[index, first]
    prefix[has_prefix] = order[first[has_prefix]]
    return prefix


def chain_depths(prefix: np.ndarray) -> np.ndarray:
    """Length of each row's prefix chain (0 for roots), fully vectorized."""
    m = len(prefix)
    depth = np.zeros(m, dtype=np.int64)
    current = np.asarray(prefix, dtype=np.int64).copy()
    while True:
        live = current != NO_PREFIX
        if not live.any():
            return depth
        depth[live] += 1
        if depth.max() > m:
            raise RuntimeError("prefix chains do not terminate; cycle present")
        nxt = np.full(m, NO_PREFIX, dtype=np.int64)
        nxt[live] = prefix[current[live]]
        current = nxt


def max_chain_depth(prefix: np.ndarray) -> int:
    """Longest prefix chain (forest depth) via a shrinking frontier.

    Iteration ``d`` keeps only rows whose chain extends ``d`` hops, so
    total work is the sum of chain lengths rather than ``m × depth``.
    """
    prefix = np.asarray(prefix, dtype=np.int64)
    active = prefix[prefix != NO_PREFIX]
    depth = 0
    while active.size:
        depth += 1
        if depth > len(prefix):
            raise RuntimeError("prefix chains do not terminate; cycle present")
        active = prefix[active]
        active = active[active != NO_PREFIX]
    return depth


def record_from_codes(
    codes: np.ndarray, popcounts: np.ndarray, k: int
) -> tuple[int, ...]:
    """Tile record straight from packed codes, no residual pattern needed.

    Because a prefix is always a subset of its row, the residual
    popcount is simply ``pop(row) - pop(prefix)``. Field order must
    mirror ``core.prosparsity.forest_record`` (the canonical builder);
    the backend-equivalence tests pin the two together.
    """
    m = codes.shape[0]
    prefix = select_prefixes_codes(codes, popcounts)
    reused = prefix != NO_PREFIX
    residual = popcounts.astype(np.int64).copy()
    residual[reused] -= popcounts[prefix[reused]]
    depth = max_chain_depth(prefix)
    return (
        m,
        k,
        int(popcounts.sum()),
        int(residual.sum()),
        int((residual == 0).sum()),
        int((popcounts == 0).sum()),
        int((reused & (residual == 0) & (popcounts > 0)).sum()),
        int(reused.sum()),
        depth,
    )


class VectorizedBackend(Backend):
    """Bulk NumPy backend: packed-code set algebra, no per-row loops."""

    name = "vectorized"

    def forest(self, tile: SpikeTile) -> ProSparsityForest:
        popcounts = popcount_rows(tile.packed)
        prefix = select_prefixes_codes(pack_codes(tile.packed), popcounts)
        pattern = tile.bits.copy()
        rows = np.flatnonzero(prefix != NO_PREFIX)
        if rows.size:
            pattern[rows] = tile.bits[rows] ^ tile.bits[prefix[rows]]
        return ProSparsityForest(
            tile=tile, prefix=prefix, pattern=pattern, popcounts=popcounts
        )

    def tile_record(self, tile: SpikeTile) -> tuple[int, ...]:
        return record_from_codes(
            pack_codes(tile.packed), popcount_rows(tile.packed), tile.k
        )

    def matrix_records(
        self,
        matrix: SpikeMatrix,
        tile_m: int,
        tile_k: int,
        cache=None,
    ) -> np.ndarray:
        """Bulk path: pack each column block once, slice codes per tile.

        Per-tile work reduces to the ``(m, m)`` prefix selection on code
        slices; there is no per-tile ``SpikeTile`` construction, bit
        validation, or re-packing.
        """
        bits = matrix.bits
        rows, cols = bits.shape
        col_blocks = []
        for col_start in range(0, cols, tile_k):
            block = np.ascontiguousarray(bits[:, col_start : col_start + tile_k])
            packed = np.packbits(block, axis=1)
            col_blocks.append(
                (block.shape[1], pack_codes(packed), popcount_rows(packed), packed)
            )
        records: list[tuple[int, ...]] = []
        for row_start in range(0, rows, tile_m):
            row_end = min(row_start + tile_m, rows)
            for k_block, codes, pops, packed in col_blocks:
                record = None
                if cache is not None:
                    record = cache.get_record(
                        row_end - row_start, k_block, packed[row_start:row_end]
                    )
                if record is None:
                    record = record_from_codes(
                        codes[row_start:row_end], pops[row_start:row_end], k_block
                    )
                    if cache is not None:
                        cache.put_record(
                            row_end - row_start,
                            k_block,
                            packed[row_start:row_end],
                            record,
                        )
                records.append(record)
        return np.array(records, dtype=np.int64).reshape(
            len(records), len(TILE_RECORD_FIELDS)
        )

    def execute(self, forest: ProSparsityForest, weights: np.ndarray) -> np.ndarray:
        """Matmul residuals, then seed prefixes one forest level at a time.

        Bit-identical to the reference for integer weights (all
        arithmetic is exact int64); floating-point outputs agree up to
        summation order.
        """
        weights = np.asarray(weights)
        if weights.shape[0] != forest.k:
            raise ValueError(
                f"weight rows ({weights.shape[0]}) must match tile k ({forest.k})"
            )
        out_dtype = (
            np.int64 if np.issubdtype(weights.dtype, np.integer) else np.float64
        )
        out = forest.pattern.astype(out_dtype) @ weights.astype(out_dtype)
        depth = chain_depths(forest.prefix)
        for level in range(1, int(depth.max()) + 1 if len(depth) else 0):
            rows = np.flatnonzero(depth == level)
            out[rows] += out[forest.prefix[rows]]
        return out


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_BACKENDS: dict[str, type[Backend]] = {}


def register_backend(cls: type[Backend]) -> type[Backend]:
    """Register a backend class under its ``name`` (later scaling seam)."""
    _BACKENDS[cls.name] = cls
    return cls


def unknown_backend_error(backend: str) -> ValueError:
    """The canonical unknown-backend error, shared by every entry point.

    Backends with an optional-dependency gate annotate their entry with
    :meth:`Backend.availability`, e.g. ``compiled (numba not installed,
    runs as NumPy fallback)``, so the error doubles as an availability
    listing.
    """
    entries = []
    for name in available_backends():
        note = _BACKENDS[name].availability()
        entries.append(f"{name} ({note})" if note else name)
    return ValueError(
        f"unknown backend {backend!r}; available: {', '.join(entries)}"
    )


def backend_option_error(backend: str, options) -> ValueError:
    """The canonical option-rejection error.

    Every layer that rejects an option a backend cannot take — the
    registry, the engine, and :class:`repro.api.RunConfig` validation —
    raises exactly this wording, so callers can match one message.
    """
    return ValueError(
        f"backend {backend!r} does not accept option(s) {sorted(options)}"
    )


def backend_accepts_option(backend: str, option: str) -> bool:
    """Whether the named backend's constructor takes ``option``.

    Raises :func:`unknown_backend_error` for unregistered names, so
    config validation and backend construction fail identically.
    """
    try:
        cls = _BACKENDS[backend]
    except KeyError:
        raise unknown_backend_error(backend) from None
    return option in inspect.signature(cls.__init__).parameters


def validate_workers(workers: int) -> int:
    """Shared worker-count validation (``>= 1``), one wording everywhere."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return int(workers)


register_backend(ReferenceBackend)
register_backend(VectorizedBackend)


def available_backends() -> tuple[str, ...]:
    """Names of all registered backends."""
    return tuple(sorted(_BACKENDS))


def get_backend(backend: str | Backend, **options) -> Backend:
    """Resolve a backend instance from a name or pass one through.

    ``options`` with non-``None`` values (e.g. ``workers=4`` for the
    ``sharded`` backend) are forwarded to the backend constructor; a
    backend that does not accept an option rejects it with a
    ``ValueError`` rather than silently ignoring it.
    """
    options = {key: value for key, value in options.items() if value is not None}
    if isinstance(backend, Backend):
        if options:
            raise ValueError(
                f"backend options {sorted(options)} cannot be applied to an "
                "already-constructed backend instance"
            )
        return backend
    try:
        cls = _BACKENDS[backend]
    except KeyError:
        raise unknown_backend_error(backend) from None
    accepted = inspect.signature(cls.__init__).parameters
    unknown = set(options) - set(accepted)
    if unknown:
        raise backend_option_error(backend, unknown)
    return cls(**options)
