"""repro.server — the network serving front end over the Scheduler.

The ROADMAP's serving milestone: :class:`ReproServer` listens on the
``[server]`` section's address, turns HTTP requests into scheduler
jobs (tenancy, priority classes, quotas, deadlines all enforced by the
scheduler itself), and maps the PR 7 failure semantics onto HTTP
statuses. Stdlib only — ``http.server`` + JSON — so serving adds no
dependency. Drive it with ``repro serve`` and talk to it with
:class:`repro.api.client.ServeClient` or ``repro submit``.

Layering: this package sits strictly *above* ``repro.api`` — it may
import the scheduler and config, never the other way around (the
client, living in ``repro.api.client``, shares only the wire-format
module :mod:`repro.server.protocol`).
"""

from repro.server.app import ReproServer
from repro.server.metrics import LatencyHistogram, ServerMetrics
from repro.server.protocol import (
    RECORD_MODES,
    STATUS_BY_ERROR,
    decode_records,
    encode_records,
    records_digest,
)

__all__ = [
    "LatencyHistogram",
    "RECORD_MODES",
    "ReproServer",
    "STATUS_BY_ERROR",
    "ServerMetrics",
    "decode_records",
    "encode_records",
    "records_digest",
]
