"""Server-side observability: request counters and latency histograms.

The numbers here describe the *wire* path — HTTP requests in and out of
:class:`~repro.server.app.ReproServer` — and complement the scheduler's
own serving counters (``Scheduler.stats``, ``Scheduler.queue_depths``),
which describe the job queue behind it. ``/metrics`` merges both views
into one JSON document so a scrape shows the whole serving stack:
request traffic and latency up front, coalescing/dedup and per-tenant
queue depths behind.

Everything is plain stdlib: a fixed log-scale bucket ladder (no
configuration knob — cross-run comparability beats tunability here) and
one lock per histogram, cheap enough for the request path.
"""

from __future__ import annotations

import threading

__all__ = ["LatencyHistogram", "ServerMetrics"]

#: Upper bounds (milliseconds) of the latency buckets; the last bucket
#: is open-ended. Log-scale: serving latencies span 1 ms cache hits to
#: multi-second cold sharded batches.
BUCKET_BOUNDS_MS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000)


class LatencyHistogram:
    """Thread-safe fixed-bucket latency histogram (milliseconds)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * (len(BUCKET_BOUNDS_MS) + 1)
        self._sum_ms = 0.0
        self._count = 0

    def observe(self, ms: float) -> None:
        index = len(BUCKET_BOUNDS_MS)
        for position, bound in enumerate(BUCKET_BOUNDS_MS):
            if ms <= bound:
                index = position
                break
        with self._lock:
            self._counts[index] += 1
            self._sum_ms += ms
            self._count += 1

    def snapshot(self) -> dict:
        """Counts per bucket plus total count and mean, one atomic read."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            sum_ms = self._sum_ms
        buckets = {
            f"le_{bound}ms": counts[position]
            for position, bound in enumerate(BUCKET_BOUNDS_MS)
        }
        buckets["inf"] = counts[-1]
        return {
            "count": total,
            "mean_ms": (sum_ms / total) if total else 0.0,
            "buckets": buckets,
        }


class ServerMetrics:
    """All front-end counters the ``/metrics`` endpoint reports.

    ``record(status, priority, ms)`` is the one write path, called once
    per finished HTTP request. Dedup numbers come from job results as
    they pass through the server: each engine report carries its
    coalesced batch's ``planned_tiles``/``unique_tiles``, so the last
    observed ratio is the live cross-request (and cross-tenant, when
    tenants mix) dedup factor.
    """

    def __init__(self, priorities: tuple[str, ...]) -> None:
        self._lock = threading.Lock()
        self.requests_total = 0
        self.requests_by_status: dict[str, int] = {}
        self.inflight = 0
        self.latency_all = LatencyHistogram()
        self.latency_by_priority = {
            priority: LatencyHistogram() for priority in priorities
        }
        # Cross-request dedup as seen by the most recent engine report,
        # plus the best ratio observed since start.
        self.last_planned_tiles = 0
        self.last_unique_tiles = 0
        self.best_dedup_ratio = 0.0
        # Streaming (/v1/streams): streams opened/completed, windows
        # served, per-window execution latency, and the cross-window
        # dedup of the most recently completed stream.
        self.streams_total = 0
        self.streams_completed = 0
        self.streams_failed = 0
        self.stream_windows_total = 0
        self.stream_window_latency = LatencyHistogram()
        self.last_stream_planned_tiles = 0
        self.last_stream_unique_tiles = 0

    # -- request lifecycle ----------------------------------------------
    def begin(self) -> None:
        with self._lock:
            self.inflight += 1

    def record(self, status: int, priority: str, ms: float) -> None:
        key = str(status)
        with self._lock:
            self.inflight -= 1
            self.requests_total += 1
            self.requests_by_status[key] = self.requests_by_status.get(key, 0) + 1
        self.latency_all.observe(ms)
        histogram = self.latency_by_priority.get(priority)
        if histogram is not None:
            histogram.observe(ms)

    # -- streaming lifecycle --------------------------------------------
    def begin_stream(self) -> None:
        with self._lock:
            self.streams_total += 1

    def observe_stream_window(self, seconds: float) -> None:
        """Book one served window: count plus execution-latency bucket."""
        with self._lock:
            self.stream_windows_total += 1
        self.stream_window_latency.observe(seconds * 1000.0)

    def end_stream(
        self, *, failed: bool, planned_tiles: int = 0, unique_tiles: int = 0
    ) -> None:
        """Close out one stream; a completed stream reports its dedup."""
        with self._lock:
            if failed:
                self.streams_failed += 1
                return
            self.streams_completed += 1
            if planned_tiles > 0 and unique_tiles > 0:
                self.last_stream_planned_tiles = planned_tiles
                self.last_stream_unique_tiles = unique_tiles

    def observe_dedup(self, planned_tiles: int, unique_tiles: int) -> None:
        if planned_tiles <= 0 or unique_tiles <= 0:
            return
        ratio = planned_tiles / unique_tiles
        with self._lock:
            self.last_planned_tiles = planned_tiles
            self.last_unique_tiles = unique_tiles
            self.best_dedup_ratio = max(self.best_dedup_ratio, ratio)

    def snapshot(self, draining: bool) -> dict:
        with self._lock:
            by_status = dict(self.requests_by_status)
            total = self.requests_total
            inflight = self.inflight
            planned = self.last_planned_tiles
            unique = self.last_unique_tiles
            best = self.best_dedup_ratio
            streams_total = self.streams_total
            streams_completed = self.streams_completed
            streams_failed = self.streams_failed
            windows_total = self.stream_windows_total
            stream_planned = self.last_stream_planned_tiles
            stream_unique = self.last_stream_unique_tiles
        return {
            "draining": draining,
            "requests_total": total,
            "requests_by_status": by_status,
            "inflight_requests": inflight,
            "dedup": {
                "last_planned_tiles": planned,
                "last_unique_tiles": unique,
                "last_ratio": (planned / unique) if unique else 0.0,
                "best_ratio": best,
            },
            "latency_ms": {
                "all": self.latency_all.snapshot(),
                "by_priority": {
                    priority: histogram.snapshot()
                    for priority, histogram in self.latency_by_priority.items()
                },
            },
            "streams": {
                "total": streams_total,
                "completed": streams_completed,
                "failed": streams_failed,
                "windows_total": windows_total,
                "window_latency_ms": self.stream_window_latency.snapshot(),
                "last_dedup_ratio": (
                    (stream_planned / stream_unique) if stream_unique else 0.0
                ),
            },
        }
