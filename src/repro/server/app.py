"""The network serving front end: HTTP in, scheduler jobs out.

:class:`ReproServer` binds a threaded stdlib HTTP server
(`ThreadingHTTPServer`) to the ``[server]`` section's address and turns
each ``POST /v1/jobs`` request into one :class:`~repro.api.Job` on a
shared :class:`~repro.api.Scheduler`. Request handler threads block on
their job's result, so N concurrent HTTP clients become N queued jobs
inside one coalesce window — the scheduler merges compatible ones into
a single trace-planner batch exactly as in-process submitters would,
and Prosperity's cross-request product-sparsity dedup carries over the
network unchanged. Tenancy, priority classes, quotas, deadlines, and
admission control all live in the scheduler; the server's job is the
wire mapping:

========================  ======  =====================================
scheduler outcome         status  body
========================  ======  =====================================
result                    200     ``{"ok": true, "result": ...}``
``SchedulerSaturated``    429     tenant-scoped quota/queue message
``DeadlineExceeded``      504     job-scoped (``job_id``, ``label``)
``BatchExecutionError``   500     job-scoped + ``batch_size``
validation error          400     message from RunConfig/Scheduler
draining / injected       503     ``Draining`` / ``InjectedRejection``
========================  ======  =====================================

``POST /v1/streams`` serves the streaming path: the same request body
(``kind`` is implicitly ``"stream"``), answered with chunked NDJSON —
one frame per executed window as it completes, then a final
result-or-error frame in-band (see :mod:`repro.server.protocol` for the
framing). Per-stream counters and window latencies join ``/metrics``
under ``server.streams``.

Observability rides on two read-only endpoints: ``GET /healthz`` (200
serving / 503 draining) and ``GET /metrics`` (request counters, latency
histograms, ``Scheduler.stats`` incl. store counters, live per-tenant /
per-priority queue depths, cross-request dedup). ``POST /admin/drain``
triggers the same graceful drain SIGTERM does: stop accepting jobs,
finish everything in flight, then release the scheduler — zero accepted
jobs are lost.

The fault harness's ``reject_request`` / ``slow_request`` kinds hook the
dispatch seam here (site ``server<path>``), so chaos drills can refuse
or delay requests deterministically without touching the engine.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.api.config import RunConfig
from repro.api.scheduler import (
    JOB_KINDS,
    BatchExecutionError,
    DeadlineExceeded,
    Job,
    Scheduler,
    SchedulerSaturated,
)
from repro.engine import faults
from repro.server.metrics import ServerMetrics
from repro.server.protocol import (
    RECORD_MODES,
    encode_result,
    encode_stream_chunk,
    encode_stream_result,
    error_body,
    merge_config_dict,
)

__all__ = ["ReproServer"]


class _HTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that knows its owning :class:`ReproServer`."""

    daemon_threads = True
    # The drain sequence joins request work itself (via the in-flight
    # gate), so socket close must not block on handler threads again.
    block_on_close = False
    # The stdlib default listen backlog (5) drops SYNs when a client
    # fleet connects at once; the kernel's ~1 s retransmit then dwarfs
    # every request time. Deep enough for any plausible client count.
    request_queue_size = 128

    def __init__(self, address, handler, app: "ReproServer"):
        self.app = app
        super().__init__(address, handler)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    # Responses go out as two writes (header buffer, then body); with
    # Nagle on, the body write stalls ~40 ms behind the peer's delayed
    # ACK, capping every connection near 25 req/s regardless of work.
    disable_nagle_algorithm = True

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the /metrics endpoint is the observability surface

    @property
    def app(self) -> "ReproServer":
        return self.server.app

    def _send_json(self, status: int, body: dict) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        body = json.loads(raw.decode("utf-8"))
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    def _discard_body(self) -> None:
        # Refusal paths must still consume the request body: leftover
        # bytes would be parsed as the next request line on this
        # keep-alive connection, desyncing every later exchange.
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            self.rfile.read(length)

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/healthz":
            if self.app.draining:
                self._send_json(503, {"status": "draining"})
            else:
                self._send_json(200, {"status": "ok"})
        elif self.path == "/metrics":
            self._send_json(200, self.app.metrics_snapshot())
        else:
            self._send_json(
                404, {"ok": False, "error": {"type": "NotFound",
                                             "message": f"no route {self.path}"}}
            )

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/admin/drain":
            self._discard_body()
            self.app.request_drain()
            self._send_json(202, {"status": "draining"})
        elif self.path == "/v1/jobs":
            self._handle_job()
        elif self.path == "/v1/streams":
            self._handle_stream()
        else:
            self._discard_body()
            self._send_json(
                404, {"ok": False, "error": {"type": "NotFound",
                                             "message": f"no route {self.path}"}}
            )

    # -- the job path ---------------------------------------------------
    def _handle_job(self) -> None:
        app = self.app
        app.metrics.begin()
        started = time.perf_counter()
        priority = ""
        status = 500
        try:
            status = self._submit_and_wait()
        finally:
            priority = getattr(self, "_priority", "")
            app.metrics.record(
                status, priority, (time.perf_counter() - started) * 1000.0
            )

    def _submit_and_wait(self) -> int:
        """Run one job request end to end; returns the HTTP status sent."""
        app = self.app
        try:
            request = self._read_body()
        except ValueError as exc:
            status, body = error_body("ValidationError", f"bad request body: {exc}")
            self._send_json(status, body)
            return status
        # Deterministic request-level chaos: slow_request sleeps here,
        # reject_request turns into a clean 503 before any job exists.
        if faults.request_fault(site=f"server{self.path}") == "reject":
            status, body = error_body(
                "InjectedRejection", "request rejected by fault injection"
            )
            self._send_json(status, body)
            return status
        if app.draining:
            status, body = error_body(
                "Draining", "server is draining; not accepting new jobs"
            )
            self._send_json(status, body)
            return status
        try:
            job, timeout_s, records_mode = app.build_job(request)
        except ValueError as exc:
            status, body = error_body("ValidationError", str(exc))
            self._send_json(status, body)
            return status
        self._priority = job.priority or app.config.server.priorities[0]
        try:
            handle = app.scheduler.submit(job, timeout=timeout_s)
        except SchedulerSaturated as exc:
            status, body = error_body("SchedulerSaturated", str(exc))
            self._send_json(status, body)
            return status
        except ValueError as exc:  # unknown tenant / priority
            status, body = error_body("ValidationError", str(exc))
            self._send_json(status, body)
            return status
        except RuntimeError as exc:  # scheduler closed under us
            status, body = error_body("Draining", str(exc))
            self._send_json(status, body)
            return status
        self._priority = handle.priority
        try:
            result = handle.result()
        except DeadlineExceeded as exc:
            status, body = error_body(
                "DeadlineExceeded", str(exc),
                job_id=exc.job_id, label=exc.label,
            )
            self._send_json(status, body)
            return status
        except BatchExecutionError as exc:
            status, body = error_body(
                "BatchExecutionError", str(exc),
                job_id=exc.job_id, label=exc.label, batch_size=exc.batch_size,
            )
            self._send_json(status, body)
            return status
        except BaseException as exc:  # noqa: BLE001 - wire boundary
            status, body = error_body(
                type(exc).__name__, str(exc), job_id=handle.id,
                label=handle.job.label,
            )
            self._send_json(status, body)
            return status
        payload = encode_result(result, records_mode)
        report = payload.get("report")
        if report:
            app.metrics.observe_dedup(
                report["planned_tiles"], report["unique_tiles"]
            )
        self._send_json(200, {
            "ok": True,
            "job_id": handle.id,
            "tenant": handle.tenant,
            "priority": handle.priority,
            "kind": handle.job.kind,
            "result": payload,
        })
        return 200


    # -- the stream path ------------------------------------------------
    def _handle_stream(self) -> None:
        app = self.app
        app.metrics.begin()
        started = time.perf_counter()
        status = 500
        try:
            status = self._stream_job()
        finally:
            priority = getattr(self, "_priority", "")
            app.metrics.record(
                status, priority, (time.perf_counter() - started) * 1000.0
            )

    def _send_stream_frame(self, body: dict) -> None:
        """One NDJSON line, framed and flushed as one HTTP chunk."""
        data = json.dumps(body).encode("utf-8") + b"\n"
        self.wfile.write(b"%x\r\n" % len(data) + data + b"\r\n")
        self.wfile.flush()

    def _stream_job(self) -> int:
        """Run one ``/v1/streams`` request; returns the HTTP status sent.

        Every pre-admission failure is an ordinary JSON error response
        with the same status mapping as ``/v1/jobs``. Once the job is
        admitted, ``200`` and the chunked headers are on the wire, so
        any later failure becomes the in-band final error frame.
        """
        app = self.app
        try:
            request = self._read_body()
        except ValueError as exc:
            status, body = error_body("ValidationError", f"bad request body: {exc}")
            self._send_json(status, body)
            return status
        if faults.request_fault(site=f"server{self.path}") == "reject":
            status, body = error_body(
                "InjectedRejection", "request rejected by fault injection"
            )
            self._send_json(status, body)
            return status
        if app.draining:
            status, body = error_body(
                "Draining", "server is draining; not accepting new jobs"
            )
            self._send_json(status, body)
            return status
        request = dict(request)
        request.setdefault("kind", "stream")
        try:
            if request["kind"] != "stream":
                raise ValueError(
                    f"/v1/streams serves kind 'stream', got {request['kind']!r}"
                )
            job, timeout_s, records_mode = app.build_job(request)
        except ValueError as exc:
            status, body = error_body("ValidationError", str(exc))
            self._send_json(status, body)
            return status
        self._priority = job.priority or app.config.server.priorities[0]
        try:
            handle = app.scheduler.submit(job, timeout=timeout_s)
        except SchedulerSaturated as exc:
            status, body = error_body("SchedulerSaturated", str(exc))
            self._send_json(status, body)
            return status
        except ValueError as exc:  # unknown tenant / priority
            status, body = error_body("ValidationError", str(exc))
            self._send_json(status, body)
            return status
        except RuntimeError as exc:  # scheduler closed under us
            status, body = error_body("Draining", str(exc))
            self._send_json(status, body)
            return status
        self._priority = handle.priority
        app.metrics.begin_stream()
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        # Streams are one-shot by design (clients dedicate a connection
        # per stream); closing after the final frame frees the handler
        # thread instead of parking it on a keep-alive read.
        self.close_connection = True
        self._send_stream_frame({
            "ok": True,
            "job_id": handle.id,
            "tenant": handle.tenant,
            "priority": handle.priority,
            "kind": handle.job.kind,
        })
        try:
            for chunk in handle.chunks():
                app.metrics.observe_stream_window(chunk.seconds)
                self._send_stream_frame(
                    encode_stream_chunk(chunk, records_mode)
                )
            result = handle.result()
        except BaseException as exc:  # noqa: BLE001 - wire boundary
            detail = {
                "type": type(exc).__name__,
                "message": str(exc),
                "job_id": handle.id,
            }
            if handle.job.label:
                detail["label"] = handle.job.label
            app.metrics.end_stream(failed=True)
            self._send_stream_frame({"done": True, "error": detail})
            self.wfile.write(b"0\r\n\r\n")
            self.wfile.flush()
            return 200
        stream_result = result.result
        app.metrics.end_stream(
            failed=False,
            planned_tiles=stream_result.report.planned_tiles,
            unique_tiles=stream_result.report.unique_tiles,
        )
        self._send_stream_frame(
            {"done": True, "result": encode_stream_result(stream_result)}
        )
        self.wfile.write(b"0\r\n\r\n")
        self.wfile.flush()
        return 200


class ReproServer:
    """One serving process: an HTTP listener over one shared scheduler.

    Parameters
    ----------
    config:
        The server's default :class:`RunConfig`; its ``[server]``
        section supplies the listen address, tenancy, and priorities,
        and the rest is the default job config requests overlay.
    scheduler:
        An externally-owned scheduler to serve through instead of
        constructing one (tests inject this to assert on its counters);
        the server then never closes it.

    The socket binds in the constructor (``port`` is final immediately,
    even with ``port=0``), but no requests are served until
    :meth:`start` launches the listener thread. :meth:`drain` — also
    triggered by ``POST /admin/drain`` and by the CLI's SIGTERM handler
    — performs the graceful shutdown: refuse new jobs (503), wait for
    in-flight requests up to ``server.drain_timeout_s``, then close the
    scheduler (which itself drains its queue) and the socket.
    """

    def __init__(self, config: RunConfig | None = None, *,
                 scheduler: Scheduler | None = None):
        self.config = config if config is not None else RunConfig()
        self._config_dict = self.config.to_dict()
        self._owns_scheduler = scheduler is None
        self.scheduler = scheduler if scheduler is not None else Scheduler(self.config)
        self.metrics = ServerMetrics(self.config.server.priorities)
        self._draining = threading.Event()
        self._closed = False
        self._lock = threading.Lock()
        server_cfg = self.config.server
        self._httpd = _HTTPServer(
            (server_cfg.host, server_cfg.port), _Handler, self
        )
        self._thread: threading.Thread | None = None

    # -- address --------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ReproServer":
        """Serve requests on a background thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-serve",
                daemon=True,
            )
            self._thread.start()
        return self

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def request_drain(self) -> None:
        """Flip into draining mode without blocking (the endpoint path)."""
        self._draining.set()

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful shutdown; True when no in-flight request was cut off.

        Sequence: stop accepting jobs (``/healthz`` and new submissions
        turn 503; ``/metrics`` keeps serving), wait up to ``timeout``
        (default ``server.drain_timeout_s``) for in-flight requests to
        finish, close the scheduler — draining its queue, so every
        accepted job completes — then stop the listener. Idempotent.
        """
        self._draining.set()
        with self._lock:
            if self._closed:
                return True
            self._closed = True
        if timeout is None:
            timeout = self.config.server.drain_timeout_s
        deadline = time.monotonic() + timeout
        clean = True
        while self.metrics.inflight > 0:
            if time.monotonic() >= deadline:
                clean = False
                break
            time.sleep(0.005)
        if self._owns_scheduler:
            self.scheduler.close(wait=True)
        if self._thread is not None:
            # shutdown() handshakes with serve_forever; without a live
            # listener thread it would wait forever on an event that is
            # only set from inside the serve loop.
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        return clean

    def close(self) -> None:
        self.drain()

    # -- request helpers (called from handler threads) -------------------
    def build_job(self, request: dict) -> tuple[Job, float | None, str]:
        """Validate one request body into (Job, admission timeout, mode)."""
        kind = request.get("kind", "run")
        if kind not in JOB_KINDS:
            raise ValueError(
                f"unknown experiment {kind!r}; expected one of {JOB_KINDS}"
            )
        records_mode = request.get("records", "full")
        if records_mode not in RECORD_MODES:
            raise ValueError(
                f"unknown records mode {records_mode!r}; expected one of "
                f"{RECORD_MODES}"
            )
        overlay = request.get("config")
        if overlay is not None and not isinstance(overlay, dict):
            raise ValueError("config must be a JSON object of config sections")
        if overlay:
            config = RunConfig.from_dict(
                merge_config_dict(self._config_dict, overlay)
            )
        else:
            config = self.config
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is not None:
            deadline_ms = float(deadline_ms)
        timeout_s = request.get("timeout_s")
        if timeout_s is not None:
            timeout_s = float(timeout_s)
            if timeout_s < 0:
                raise ValueError(f"timeout_s must be >= 0, got {timeout_s}")
        job = Job(
            kind=kind,
            config=config,
            label=str(request.get("label", "")),
            deadline_ms=deadline_ms,
            tenant=str(request.get("tenant", "")),
            priority=str(request.get("priority", "")),
        )
        return job, timeout_s, records_mode

    def metrics_snapshot(self) -> dict:
        """The full ``/metrics`` document: server + scheduler + queue."""
        return {
            "server": self.metrics.snapshot(self.draining),
            "scheduler": self.scheduler.stats,
            "queue": self.scheduler.queue_depths(),
        }
