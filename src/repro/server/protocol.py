"""The serving wire format: JSON bodies shared by server and client.

One module owns every byte that crosses the socket, so
:class:`~repro.server.app.ReproServer` and
:class:`~repro.api.client.ServeClient` cannot drift apart. The protocol
is deliberately plain: JSON objects over HTTP/1.1, numpy record arrays
as base64 when the caller wants them.

Requests (``POST /v1/jobs``)::

    {"kind": "run",              # any Scheduler job kind
     "tenant": "acme",           # optional; server default when absent
     "priority": "interactive",  # optional; first configured class
     "label": "...",             # optional client metadata
     "deadline_ms": 500,         # optional queue deadline
     "timeout_s": 2.0,           # optional admission-control bound
     "records": "full",          # "full" | "digest" | "none"
     "config": {"engine": {"backend": "fused"}}}  # sparse overlay

``config`` is a *sparse* RunConfig dict overlaid section-by-section on
the server's default config — clients send only what differs, and the
merged result passes the full :meth:`RunConfig.from_dict` validation.

Responses: ``{"ok": true, "job_id": ..., "result": {...}}`` on success,
``{"ok": false, "error": {"type", "message", "job_id", "label",
"batch_size"}}`` on failure, with the HTTP status carrying the serving
semantics (429 saturated, 504 deadline, 500 job failure — see
:data:`STATUS_BY_ERROR`).

Records travel in one of three modes — the bit-identity contract only
holds for ``full``:

* ``full`` — dtype + shape + base64 of ``records.tobytes()``; decodes
  to a byte-identical array (the end-to-end identity tests rely on it).
* ``digest`` — dtype + shape + BLAKE2b of the bytes; enough to *prove*
  identity without shipping megabytes (the throughput benchmark mode).
* ``none`` — tile count only.

Streams (``POST /v1/streams``) take the same request body (``kind`` is
implicitly ``"stream"``) but answer with ``Transfer-Encoding: chunked``
NDJSON — one JSON object per line, flushed per window:

1. a header frame ``{"ok": true, "job_id", "tenant", "priority",
   "kind": "stream"}``;
2. one :func:`encode_stream_chunk` frame per executed window, records
   in the requested transport mode;
3. a final frame ``{"done": true, "result": ...}`` from
   :func:`encode_stream_result` — or ``{"done": true, "error": ...}``
   when the stream failed mid-flight (the HTTP status is long gone by
   then, so stream errors are always in-band; ``error.type`` maps back
   to the :data:`STATUS_BY_ERROR` semantics client-side).
"""

from __future__ import annotations

import base64
import hashlib

import numpy as np

from repro.api.session import EngineRunResult, RunResult

__all__ = [
    "RECORD_MODES",
    "STATUS_BY_ERROR",
    "decode_records",
    "encode_records",
    "encode_result",
    "encode_stream_chunk",
    "encode_stream_result",
    "error_body",
    "merge_config_dict",
    "records_digest",
]

#: Record transport modes for run-job responses.
RECORD_MODES = ("full", "digest", "none")

#: HTTP status per serving error type (the documented mapping).
STATUS_BY_ERROR = {
    "SchedulerSaturated": 429,
    "DeadlineExceeded": 504,
    "BatchExecutionError": 500,
    "ValidationError": 400,
    "Draining": 503,
    "InjectedRejection": 503,
}


def records_digest(records: np.ndarray) -> str:
    """Stable content digest of a record array (dtype-independent bytes)."""
    return hashlib.blake2b(records.tobytes(), digest_size=16).hexdigest()


def encode_records(records: np.ndarray, mode: str) -> dict:
    if mode not in RECORD_MODES:
        raise ValueError(f"unknown records mode {mode!r}; expected one of {RECORD_MODES}")
    body: dict = {
        "mode": mode,
        "dtype": str(records.dtype),
        "shape": list(records.shape),
    }
    if mode == "full":
        body["data"] = base64.b64encode(records.tobytes()).decode("ascii")
    elif mode == "digest":
        body["blake2b"] = records_digest(records)
    return body


def decode_records(body: dict) -> np.ndarray | None:
    """Rebuild the array from a ``full`` payload; ``None`` otherwise."""
    if body.get("mode") != "full":
        return None
    raw = base64.b64decode(body["data"])
    array = np.frombuffer(raw, dtype=np.dtype(body["dtype"]))
    return array.reshape(tuple(body["shape"])).copy()


def encode_result(result: RunResult, records_mode: str) -> dict:
    """Kind-specific result payload for a completed job.

    ``run`` jobs serialize the full engine report (records per the
    transport mode); every other kind reports its result type and
    wall-clock — the network protocol serves the engine path first, and
    analysis kinds are driven end-to-end by their in-process tests.
    """
    if not isinstance(result, EngineRunResult):
        return {"type": type(result).__name__, "seconds": result.seconds}
    report = result.report
    return {
        "type": "EngineRunResult",
        "seconds": result.seconds,
        "verified": result.verified,
        "report": {
            "backend": report.backend,
            "plan": report.plan,
            "tile_m": report.tile_m,
            "tile_k": report.tile_k,
            "batch": report.batch,
            "model": report.model,
            "dataset": report.dataset,
            "workers": report.workers,
            "planned_tiles": report.planned_tiles,
            "unique_tiles": report.unique_tiles,
            "cache_hits": report.cache_hits,
            "cache_misses": report.cache_misses,
            "store_hits": report.store_hits,
            "store_misses": report.store_misses,
            "runs": [
                {
                    "name": run.name,
                    "kind": run.kind,
                    "tiles": run.tiles,
                    "seconds": run.seconds,
                    "records": encode_records(run.records, records_mode),
                }
                for run in report.runs
            ],
        },
    }


def encode_stream_chunk(chunk, records_mode: str) -> dict:
    """One NDJSON frame for one executed stream window.

    ``chunk`` is a :class:`~repro.streaming.StreamChunk`; per-workload
    records travel in the requested transport mode, so a ``full``-mode
    client can reassemble the batch-identical record arrays by
    concatenating frames per workload name.
    """
    return {
        "chunk": chunk.index,
        "start_step": chunk.start_step,
        "stop_step": chunk.stop_step,
        "final": chunk.final,
        "seconds": chunk.seconds,
        "tiles": chunk.tiles,
        "planned_tiles": chunk.planned_tiles,
        "unique_tiles": chunk.unique_tiles,
        "cache_hits": chunk.cache_hits,
        "cache_misses": chunk.cache_misses,
        "runs": [
            {
                "name": run.name,
                "kind": run.kind,
                "tiles": run.tiles,
                "records": encode_records(run.records, records_mode),
            }
            for run in chunk.runs
        ],
    }


def encode_stream_result(result) -> dict:
    """The final NDJSON frame's payload for a completed stream.

    ``result`` is a :class:`~repro.streaming.StreamResult`. The chunks
    already shipped every record, so per-workload entries here carry
    only a digest — enough for a client to *prove* its concatenated
    frames match the stream's full record arrays without a re-send.
    """
    report = result.report
    return {
        "type": "StreamResult",
        "windows": result.windows,
        "steps": result.steps,
        "dedup_ratio": result.dedup_ratio,
        "report": {
            "backend": report.backend,
            "plan": report.plan,
            "tile_m": report.tile_m,
            "tile_k": report.tile_k,
            "model": report.model,
            "total_tiles": report.total_tiles,
            "total_seconds": report.total_seconds,
            "tiles_per_sec": report.tiles_per_sec,
            "planned_tiles": report.planned_tiles,
            "unique_tiles": report.unique_tiles,
            "cache_hits": report.cache_hits,
            "cache_misses": report.cache_misses,
            "store_hits": report.store_hits,
            "store_misses": report.store_misses,
            "runs": [
                {
                    "name": run.name,
                    "kind": run.kind,
                    "tiles": run.tiles,
                    "records": encode_records(run.records, "digest"),
                }
                for run in report.runs
            ],
        },
    }


def error_body(
    error_type: str,
    message: str,
    *,
    job_id: int | None = None,
    label: str = "",
    batch_size: int | None = None,
) -> tuple[int, dict]:
    """(HTTP status, JSON body) for one serving error."""
    detail: dict = {"type": error_type, "message": message}
    if job_id is not None:
        detail["job_id"] = job_id
    if label:
        detail["label"] = label
    if batch_size is not None:
        detail["batch_size"] = batch_size
    status = STATUS_BY_ERROR.get(error_type, 500)
    return status, {"ok": False, "error": detail}


def merge_config_dict(base: dict, overlay: dict) -> dict:
    """Overlay a sparse request config on the server's default config.

    One level deep — sections are dicts of scalars/lists, so a
    per-section ``dict.update`` is the whole merge. Unknown sections or
    keys are *kept* for :meth:`RunConfig.from_dict` to reject with its
    canonical error message.
    """
    merged = {name: dict(values) for name, values in base.items()}
    for name, values in overlay.items():
        if isinstance(values, dict) and isinstance(merged.get(name), dict):
            merged[name].update(values)
        else:
            merged[name] = values
    return merged
