"""Design-choice ablations for the ProSparsity heuristics.

Two decisions DESIGN.md calls out, quantified here:

* **Prefix selection policy** (Sec. III-D pruning rules): the paper keeps
  the *largest* subset (ties to the largest index). Alternatives —
  smallest subset, lowest index, random — remain correct (any subset is
  reusable) but recover less sparsity.
* **Execution order** (Sec. III-C temporal relationship): the stable
  popcount sort allows a row to reuse *any* subset row. Processing rows
  in program order (top to bottom) restricts prefixes to smaller indices
  — the paper's Fig. 1/2 motivation ("if Row 0 is processed first, it
  cannot reuse the result from Row 3") — measurably hurting density.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.forest import NO_PREFIX
from repro.core.graph import build_graph
from repro.core.spike_matrix import SpikeMatrix, SpikeTile
from repro.snn.trace import ModelTrace

PREFIX_POLICIES = ("largest", "smallest", "lowest_index", "random", "none")
ORDER_POLICIES = ("sorted", "program")


@dataclass(frozen=True)
class AblationPoint:
    """Product density achieved by one (policy, order) combination."""

    prefix_policy: str
    order_policy: str
    product_density: float
    bit_density: float

    @property
    def reduction(self) -> float:
        if self.product_density == 0:
            return float("inf")
        return self.bit_density / self.product_density


def _select_with_policy(
    candidates: np.ndarray,
    popcounts: np.ndarray,
    policy: str,
    rng: np.random.Generator,
) -> np.ndarray:
    """One prefix per row under the given selection policy."""
    m = candidates.shape[0]
    prefix = np.full(m, NO_PREFIX, dtype=np.int64)
    if policy == "none":
        return prefix
    index = np.arange(m)
    for row in range(m):
        options = np.flatnonzero(candidates[row])
        if options.size == 0:
            continue
        if policy == "largest":
            key = popcounts[options] * m + index[options]
            prefix[row] = options[int(key.argmax())]
        elif policy == "smallest":
            key = popcounts[options] * m + index[options]
            prefix[row] = options[int(key.argmin())]
        elif policy == "lowest_index":
            prefix[row] = options[0]
        elif policy == "random":
            prefix[row] = int(rng.choice(options))
        else:
            raise ValueError(f"unknown prefix policy {policy!r}")
    return prefix


def tile_density_under_policy(
    tile: SpikeTile,
    prefix_policy: str = "largest",
    order_policy: str = "sorted",
    rng: np.random.Generator | None = None,
) -> tuple[int, int]:
    """(bit_nnz, product_nnz) for one tile under the chosen policies."""
    if prefix_policy not in PREFIX_POLICIES:
        raise ValueError(f"unknown prefix policy {prefix_policy!r}")
    if order_policy not in ORDER_POLICIES:
        raise ValueError(f"unknown order policy {order_policy!r}")
    rng = rng if rng is not None else np.random.default_rng(0)
    graph = build_graph(tile)
    candidates = graph.prefix_candidates.copy()
    if order_policy == "program":
        # Top-to-bottom execution: only smaller-index rows are finished.
        index = np.arange(tile.m)
        candidates &= index[None, :] < index[:, None]
    prefix = _select_with_policy(candidates, graph.popcounts, prefix_policy, rng)
    bit_nnz = int(graph.popcounts.sum())
    product = 0
    for row in range(tile.m):
        if prefix[row] == NO_PREFIX:
            product += int(graph.popcounts[row])
        else:
            residual = tile.bits[row] & ~tile.bits[prefix[row]]
            product += int(residual.sum())
    return bit_nnz, product


def ablate_design_choices(
    trace: ModelTrace,
    tile_m: int = 256,
    tile_k: int = 16,
    max_tiles_per_workload: int = 4,
    rng: np.random.Generator | None = None,
) -> list[AblationPoint]:
    """Evaluate every (prefix policy, order policy) pair over a trace."""
    rng = rng if rng is not None else np.random.default_rng(0)
    tiles: list[SpikeTile] = []
    for workload in trace.workloads:
        matrix = SpikeMatrix(workload.spikes.bits)
        all_tiles = list(matrix.tile(tile_m, tile_k))
        if len(all_tiles) > max_tiles_per_workload:
            chosen = rng.choice(
                len(all_tiles), size=max_tiles_per_workload, replace=False
            )
            all_tiles = [all_tiles[int(i)] for i in chosen]
        tiles.extend(all_tiles)

    points = []
    for prefix_policy in PREFIX_POLICIES:
        for order_policy in ORDER_POLICIES:
            if prefix_policy == "none" and order_policy == "program":
                continue  # identical to (none, sorted)
            bit_total = 0
            product_total = 0
            elements = 0
            for tile in tiles:
                bit_nnz, product = tile_density_under_policy(
                    tile, prefix_policy, order_policy, rng
                )
                bit_total += bit_nnz
                product_total += product
                elements += tile.bits.size
            points.append(
                AblationPoint(
                    prefix_policy=prefix_policy,
                    order_policy=order_policy,
                    product_density=product_total / elements if elements else 0.0,
                    bit_density=bit_total / elements if elements else 0.0,
                )
            )
    return points
