"""Density metrics across sparsity paradigms (Fig. 11, Tables I/II/V)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.ptb import windowed_density
from repro.baselines.stellar import fs_density
from repro.core.forest import build_two_prefix_forest
from repro.core.prosparsity import ProSparsityStats, transform_matrix
from repro.snn.trace import ModelTrace


@dataclass
class DensityReport:
    """Bit / structured / FS / product densities for one model trace."""

    model: str
    dataset: str
    bit_density: float
    structured_density: float
    fs_density: float
    product_density: float

    @property
    def reduction_vs_bit(self) -> float:
        if self.product_density == 0:
            return float("inf")
        return self.bit_density / self.product_density

    @property
    def reduction_vs_fs(self) -> float:
        if self.product_density == 0:
            return float("inf")
        return self.fs_density / self.product_density


def trace_prosparsity_stats(
    trace: ModelTrace,
    tile_m: int = 256,
    tile_k: int = 16,
    max_tiles: int | None = None,
    rng: np.random.Generator | None = None,
    engine=None,
) -> ProSparsityStats:
    """Aggregate ProSparsity statistics over every workload of a trace.

    ``engine``, when given, must be a
    :class:`repro.engine.ProsperityEngine`; its backend and forest cache
    then carry the transforms (bit-identical stats, faster sweeps). An
    engine with ``plan="trace"`` transforms the whole trace in one
    cross-workload plan — same stats, one kernel per tile shape.
    """
    stats = ProSparsityStats()
    if engine is not None and getattr(engine, "plan", "matrix") == "trace":
        for result in engine.transform_trace(
            trace.workloads, tile_m, tile_k, max_tiles=max_tiles, rng=rng
        ):
            stats.merge(result.stats)
        return stats
    for workload in trace.workloads:
        if engine is None:
            result = transform_matrix(
                workload.spikes, tile_m, tile_k,
                keep_transforms=False, max_tiles=max_tiles, rng=rng,
            )
        else:
            result = engine.transform_matrix(
                workload.spikes, tile_m, tile_k,
                keep_transforms=False, max_tiles=max_tiles, rng=rng,
            )
        stats.merge(result.stats)
    return stats


def density_report(
    trace: ModelTrace,
    tile_m: int = 256,
    tile_k: int = 16,
    window: int = 4,
    max_tiles: int | None = None,
    rng: np.random.Generator | None = None,
    engine=None,
) -> DensityReport:
    """All four density metrics for one trace (one Fig. 11 bar group).

    .. note:: :meth:`repro.api.Session.density` is the canonical entry
       point; it calls this with the session's shared engine attached.
    """
    stats = trace_prosparsity_stats(trace, tile_m, tile_k, max_tiles, rng, engine)
    elements = sum(w.spikes.bits.size for w in trace.workloads)
    structured = (
        sum(windowed_density(w, window) * w.spikes.bits.size for w in trace.workloads)
        / elements
        if elements
        else 0.0
    )
    fs = (
        sum(fs_density(w) * w.spikes.bits.size for w in trace.workloads) / elements
        if elements
        else 0.0
    )
    return DensityReport(
        model=trace.model,
        dataset=trace.dataset,
        bit_density=stats.bit_density,
        structured_density=structured,
        fs_density=fs,
        product_density=stats.product_density,
    )


@dataclass
class TwoPrefixReport:
    """Table II metrics: one- vs two-prefix density and prefix ratios."""

    model: str
    dataset: str
    bit_density: float
    one_prefix_density: float
    two_prefix_density: float
    one_prefix_ratio: float
    two_prefix_ratio: float


def two_prefix_report(
    trace: ModelTrace,
    tile_m: int = 256,
    tile_k: int = 16,
    max_tiles_per_workload: int = 8,
    rng: np.random.Generator | None = None,
) -> TwoPrefixReport:
    """Run the one- and two-prefix variants over sampled tiles (Table II)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    elements = 0
    bit_nnz = 0
    one_nnz = 0
    two_nnz = 0
    one_rows = 0.0
    two_rows = 0.0
    rows = 0
    for workload in trace.workloads:
        result = transform_matrix(
            workload.spikes, tile_m, tile_k,
            keep_transforms=True, max_tiles=max_tiles_per_workload, rng=rng,
        )
        for transform in result.transforms:
            tile = transform.tile
            two = build_two_prefix_forest(tile)
            elements += tile.bits.size
            bit_nnz += tile.nnz
            one_nnz += transform.forest.product_nnz()
            two_nnz += two.product_nnz()
            ratio_one, ratio_two = two.prefix_ratio()
            one_rows += ratio_one * tile.m
            two_rows += ratio_two * tile.m
            rows += tile.m
    return TwoPrefixReport(
        model=trace.model,
        dataset=trace.dataset,
        bit_density=bit_nnz / elements if elements else 0.0,
        one_prefix_density=one_nnz / elements if elements else 0.0,
        two_prefix_density=two_nnz / elements if elements else 0.0,
        one_prefix_ratio=one_rows / rows if rows else 0.0,
        two_prefix_ratio=two_rows / rows if rows else 0.0,
    )
