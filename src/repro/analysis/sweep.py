"""Tiling design-space exploration (Fig. 7) over m and k."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import ProsperityConfig
from repro.arch.energy import area_model
from repro.arch.ppu import MODE_BIT, MODE_PROSPERITY
from repro.arch.simulator import ProsperitySimulator
from repro.analysis.density import trace_prosparsity_stats
from repro.engine.pipeline import ProsperityEngine
from repro.snn.trace import ModelTrace


@dataclass
class SweepPoint:
    """One (m, k) configuration's outcome, averaged over the given traces."""

    tile_m: int
    tile_k: int
    product_density: float
    bit_density: float
    latency_vs_bit: float      # Prosperity latency / bit-sparsity latency
    area_mm2: float
    relative_area: float       # normalized to the Table III configuration
    relative_power_proxy: float  # TCAM+table activity scaling with m


def _latency_ratio(
    traces: list[ModelTrace],
    config: ProsperityConfig,
    max_tiles: int | None,
    rng: np.random.Generator,
    backend="reference",
    plan: str = "matrix",
) -> float:
    """Prosperity-vs-bit-sparsity latency on the same hardware.

    ``backend`` may be a shared instance so the whole sweep reuses one
    transform backend (and, for ``sharded``, one process pool); the two
    simulators share one engine per configuration for the same reason.
    """
    pro_cycles = 0.0
    bit_cycles = 0.0
    engine = ProsperityEngine(
        backend=backend, tile_m=config.tile_m, tile_k=config.tile_k, plan=plan
    )
    for trace in traces:
        pro = ProsperitySimulator(
            config=config, mode=MODE_PROSPERITY,
            max_tiles_per_workload=max_tiles, rng=rng, engine=engine,
        ).simulate(trace)
        bit = ProsperitySimulator(
            config=config, mode=MODE_BIT,
            max_tiles_per_workload=max_tiles, rng=rng, engine=engine,
        ).simulate(trace)
        pro_cycles += pro.cycles
        bit_cycles += bit.cycles
    return pro_cycles / bit_cycles if bit_cycles else 0.0


def sweep_tile_sizes(
    traces: list[ModelTrace],
    m_values: tuple[int, ...] = (32, 64, 128, 256, 512, 1024, 2048),
    k_values: tuple[int, ...] = (4, 8, 16, 32, 64, 128),
    base_config: ProsperityConfig | None = None,
    max_tiles: int | None = 24,
    rng: np.random.Generator | None = None,
    backend: str = "reference",
    workers: int | None = None,
    plan: str = "matrix",
) -> tuple[list[SweepPoint], list[SweepPoint]]:
    """Fig. 7's two sweeps: vary m at fixed k, and k at fixed m.

    .. note:: Calling this directly remains supported, but
       :meth:`repro.api.Session.sweep` is the canonical entry point: it
       feeds this function from a typed :class:`~repro.api.RunConfig`
       and shares the session's backend (and sharded pool).

    Returns ``(m_sweep, k_sweep)``. Density always falls with larger m
    (larger prefix search scope) while a middle k is optimal; area/power
    grow super-linearly with m. ``backend`` selects the transform
    implementation (results are backend-independent; the ``fused`` and
    ``sharded`` backends just finish the sweep faster); ``workers``
    forwards a process count to the ``sharded`` backend; ``plan="trace"``
    routes each configuration's transforms through the trace-level
    planner (identical sweep points, cross-workload batching). Backends
    constructed here (by name) are closed before returning, so repeated
    sweeps never leak worker pools.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    base = base_config if base_config is not None else ProsperityConfig()
    base_area = area_model(base).total
    engine = ProsperityEngine(backend=backend, workers=workers, plan=plan)
    # One backend instance for the whole sweep: every per-config engine
    # below reuses it (for `sharded`, that means one process pool).
    # engine.close() below releases it only if it was built from a name
    # here — caller-supplied instances stay open for their other users.
    shared_backend = engine.backend

    def evaluate(m: int, k: int) -> SweepPoint:
        config = base.with_tile(m=m, k=k)
        stats_total = None
        for trace in traces:
            stats = trace_prosparsity_stats(
                trace, tile_m=m, tile_k=k, max_tiles=max_tiles, rng=rng,
                engine=engine,
            )
            if stats_total is None:
                stats_total = stats
            else:
                stats_total.merge(stats)
        assert stats_total is not None
        area = area_model(config).total
        # Power proxy: TCAM search activity per processed row scales with
        # m * k; normalized to the base configuration.
        power_proxy = (m * k) / (base.tile_m * base.tile_k)
        return SweepPoint(
            tile_m=m,
            tile_k=k,
            product_density=stats_total.product_density,
            bit_density=stats_total.bit_density,
            latency_vs_bit=_latency_ratio(
                traces, config, max_tiles, rng, shared_backend, plan
            ),
            area_mm2=area,
            relative_area=area / base_area,
            relative_power_proxy=power_proxy,
        )

    try:
        m_sweep = [evaluate(m, base.tile_k) for m in m_values]
        k_sweep = [evaluate(base.tile_m, k) for k in k_values]
    finally:
        engine.close()
    return m_sweep, k_sweep
