"""Terminal-friendly chart rendering for figure-style benchmark output.

The paper's figures are bar/line charts; these helpers render the same
series as unicode bars so `benchmarks/results/*.txt` can carry a visual
alongside the numeric table, with zero plotting dependencies.
"""

from __future__ import annotations

from typing import Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"


def hbar(value: float, peak: float, width: int = 40) -> str:
    """One horizontal bar scaled so ``peak`` fills ``width`` cells."""
    if peak <= 0:
        return ""
    fraction = max(0.0, min(value / peak, 1.0)) * width
    full = int(fraction)
    remainder = fraction - full
    partial_index = int(remainder * (len(_BLOCKS) - 1))
    partial = _BLOCKS[partial_index] if partial_index and full < width else ""
    return "█" * full + partial


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Render a labelled horizontal bar chart."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    lines = [title] if title else []
    if not values:
        return "\n".join(lines)
    peak = max(values)
    label_width = max(len(str(label)) for label in labels)
    for label, value in zip(labels, values):
        bar = hbar(value, peak, width)
        lines.append(f"{str(label).ljust(label_width)} |{bar} {value:.3g}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    labels: Sequence[str],
    series: dict[str, Sequence[float]],
    width: int = 30,
    title: str | None = None,
) -> str:
    """Several series per label, one bar row per (label, series) pair."""
    lines = [title] if title else []
    peak = max((max(values) for values in series.values() if len(values)), default=0.0)
    if peak <= 0:
        return "\n".join(lines)
    label_width = max(len(str(label)) for label in labels)
    series_width = max(len(name) for name in series)
    for i, label in enumerate(labels):
        for name, values in series.items():
            bar = hbar(values[i], peak, width)
            lines.append(
                f"{str(label).ljust(label_width)} {name.ljust(series_width)} "
                f"|{bar} {values[i]:.3g}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def sparkline(values: Sequence[float]) -> str:
    """Compact single-line trend (used for sweep curves)."""
    if not values:
        return ""
    ticks = "▁▂▃▄▅▆▇█"
    low, high = min(values), max(values)
    span = high - low or 1.0
    return "".join(
        ticks[min(int((value - low) / span * (len(ticks) - 1)), len(ticks) - 1)]
        for value in values
    )
