"""Sec. VII-G cost trade-off: ProSparsity overhead vs computation saved.

Per tile, ProSparsity processing spends (dominating term) ``m^2 * k`` TCAM
bit operations to save ``dS * m * k * n`` accumulations, where ``dS`` is
the sparsity increase. With an accumulate costing ``ADD_TO_TCAM_RATIO``
TCAM bit-ops worth of hardware energy, the benefit-cost ratio is

    (dS * m * k * n * ratio) / (m^2 * k)

The paper reports a break-even ``dS`` of 4.4% and a measured ratio of
3.0x at its average sparsity gain of 13.35%.
"""

from __future__ import annotations

from dataclasses import dataclass

ADD_TO_TCAM_RATIO = 45.0  # hardware cost of one accumulate in TCAM bit-ops


@dataclass(frozen=True)
class TradeoffResult:
    """Benefit/cost accounting for a tile configuration."""

    tile_m: int
    tile_k: int
    tile_n: int
    sparsity_increase: float
    benefit_ops: float
    cost_ops: float

    @property
    def benefit_cost_ratio(self) -> float:
        return self.benefit_ops / self.cost_ops if self.cost_ops else float("inf")

    @property
    def profitable(self) -> bool:
        return self.benefit_cost_ratio > 1.0


def breakeven_sparsity_increase(
    tile_m: int = 256, tile_k: int = 16, tile_n: int = 128,
    add_to_tcam_ratio: float = ADD_TO_TCAM_RATIO,
) -> float:
    """Minimum ``dS`` for ProSparsity to pay for its TCAM search.

    Solving ``dS * m * k * n * ratio > m^2 * k`` for dS gives
    ``dS > m / (n * ratio)`` — 4.4% at the paper's configuration.
    """
    return tile_m / (tile_n * add_to_tcam_ratio)


def evaluate_tradeoff(
    sparsity_increase: float,
    tile_m: int = 256,
    tile_k: int = 16,
    tile_n: int = 128,
    add_to_tcam_ratio: float = ADD_TO_TCAM_RATIO,
) -> TradeoffResult:
    """Benefit-cost ratio for a measured sparsity increase."""
    if sparsity_increase < 0:
        raise ValueError("sparsity_increase cannot be negative")
    benefit = sparsity_increase * tile_m * tile_k * tile_n * add_to_tcam_ratio
    cost = tile_m * tile_m * tile_k
    return TradeoffResult(
        tile_m=tile_m,
        tile_k=tile_k,
        tile_n=tile_n,
        sparsity_increase=sparsity_increase,
        benefit_ops=benefit,
        cost_ops=float(cost),
    )
