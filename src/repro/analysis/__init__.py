"""Experiment analysis: densities, design sweeps, ablations, trade-offs."""

from repro.analysis.ablation import (
    ORDER_POLICIES,
    PREFIX_POLICIES,
    AblationPoint,
    ablate_design_choices,
    tile_density_under_policy,
)
from repro.analysis.density import (
    DensityReport,
    TwoPrefixReport,
    density_report,
    trace_prosparsity_stats,
    two_prefix_report,
)
from repro.analysis.plots import bar_chart, grouped_bar_chart, sparkline
from repro.analysis.report import format_percent, format_ratio, format_table
from repro.analysis.sweep import SweepPoint, sweep_tile_sizes
from repro.analysis.tradeoff import (
    ADD_TO_TCAM_RATIO,
    TradeoffResult,
    breakeven_sparsity_increase,
    evaluate_tradeoff,
)

__all__ = [
    "ORDER_POLICIES",
    "PREFIX_POLICIES",
    "AblationPoint",
    "ablate_design_choices",
    "tile_density_under_policy",
    "bar_chart",
    "grouped_bar_chart",
    "sparkline",
    "DensityReport",
    "TwoPrefixReport",
    "density_report",
    "trace_prosparsity_stats",
    "two_prefix_report",
    "format_percent",
    "format_ratio",
    "format_table",
    "SweepPoint",
    "sweep_tile_sizes",
    "ADD_TO_TCAM_RATIO",
    "TradeoffResult",
    "breakeven_sparsity_increase",
    "evaluate_tradeoff",
]
