"""Plain-text table rendering for benchmark outputs."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an ASCII table matching the repo's benchmark output style."""
    columns = [
        [str(header)] + [_fmt(row[i]) for row in rows]
        for i, header in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            " | ".join(_fmt(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        if abs(value) >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    return str(value)


def format_percent(value: float, digits: int = 2) -> str:
    return f"{value * 100:.{digits}f}%"


def format_ratio(value: float, digits: int = 2) -> str:
    if value == float("inf"):
        return "inf"
    return f"{value:.{digits}f}x"
