"""Command-line interface: run the paper's experiments from the shell.

Examples
--------
::

    repro density  --model vgg16 --dataset cifar100
    repro simulate --model resnet18 --dataset cifar10 --backend vectorized
    repro sweep    --model vgg16 --dataset cifar100
    repro tradeoff --sparsity-increase 0.1335
    repro scaling  --model vgg16 --dataset cifar10
    repro run      --model vgg16 --backend fused --batch 8 --verify
    repro run      --model vgg16 --backend sharded --workers 4
    repro run      --model vgg16 --backend fused --plan trace

(Also runnable as ``python -m repro.cli`` when not installed.)
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.density import density_report
from repro.analysis.report import format_percent, format_ratio, format_table
from repro.analysis.sweep import sweep_tile_sizes
from repro.analysis.tradeoff import breakeven_sparsity_increase, evaluate_tradeoff
from repro.arch.scaling import scaling_study
from repro.arch.simulator import ProsperitySimulator
from repro.baselines import BASELINES
from repro.engine import PLAN_MODES, ProsperityEngine, available_backends
from repro.workloads import get_trace


def _add_workload_args(
    parser: argparse.ArgumentParser, sampling: bool = True
) -> None:
    parser.add_argument("--model", default="vgg16", help="model name (see repro.snn.models)")
    parser.add_argument("--dataset", default="cifar10", help="dataset name")
    parser.add_argument("--preset", default="small", choices=("small", "paper"))
    parser.add_argument("--seed", type=int, default=7)
    if sampling:
        parser.add_argument("--max-tiles", type=int, default=24,
                            help="tile sample cap per workload (0 = exact)")


def _add_backend_arg(parser: argparse.ArgumentParser, default: str = "reference") -> None:
    parser.add_argument(
        "--backend", default=default, choices=available_backends(),
        help="ProSparsity transform backend (results are identical; "
        "fused/sharded are the fast tile-batched paths)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process count for the sharded backend "
        "(other backends reject this option)",
    )
    parser.add_argument(
        "--plan", default="matrix", choices=PLAN_MODES,
        help="execution planning scope: 'matrix' batches per workload, "
        "'trace' buckets and dedups tiles across the whole trace "
        "(identical results; trace is the fast path for many workloads)",
    )


def _max_tiles(args: argparse.Namespace) -> int | None:
    return None if args.max_tiles == 0 else args.max_tiles


def cmd_density(args: argparse.Namespace) -> str:
    trace = get_trace(args.model, args.dataset, args.preset, args.seed)
    report = density_report(
        trace, max_tiles=_max_tiles(args), rng=np.random.default_rng(args.seed)
    )
    rows = [
        ["bit (PTB/SATO)", format_percent(report.bit_density)],
        ["structured bit", format_percent(report.structured_density)],
        ["FS neuron (Stellar)", format_percent(report.fs_density)],
        ["product (Prosperity)", format_percent(report.product_density)],
        ["reduction vs bit", format_ratio(report.reduction_vs_bit)],
    ]
    return format_table(
        ["sparsity paradigm", "density"], rows,
        title=f"density — {args.model}/{args.dataset} ({args.preset})",
    )


def cmd_simulate(args: argparse.Namespace) -> str:
    trace = get_trace(args.model, args.dataset, args.preset, args.seed)
    rng = np.random.default_rng(args.seed)
    reports = {}
    for name in ("eyeriss", "ptb", "sato", "mint", "stellar", "a100"):
        reports[name] = BASELINES[name]().simulate(trace)
    with ProsperitySimulator(
        max_tiles_per_workload=_max_tiles(args), rng=rng, backend=args.backend,
        workers=args.workers, plan=args.plan,
    ) as simulator:
        reports["prosperity"] = simulator.simulate(trace)
    base = reports["eyeriss"]
    rows = [
        [
            name,
            f"{report.seconds * 1e6:.1f}",
            format_ratio(base.seconds / report.seconds),
            f"{report.energy_j * 1e3:.3f}",
            format_ratio(base.energy_j / report.energy_j),
        ]
        for name, report in reports.items()
    ]
    return format_table(
        ["accelerator", "latency us", "speedup", "energy mJ", "EE gain"],
        rows,
        title=f"simulation — {args.model}/{args.dataset} ({args.preset})",
    )


def cmd_sweep(args: argparse.Namespace) -> str:
    trace = get_trace(args.model, args.dataset, args.preset, args.seed)
    m_sweep, k_sweep = sweep_tile_sizes(
        [trace],
        m_values=(64, 128, 256, 512),
        k_values=(8, 16, 32),
        max_tiles=max(args.max_tiles, 4),
        rng=np.random.default_rng(args.seed),
        backend=args.backend,
        workers=args.workers,
        plan=args.plan,
    )
    rows = [
        [p.tile_m, p.tile_k, format_percent(p.product_density),
         f"{p.latency_vs_bit:.3f}", f"{p.area_mm2:.3f}"]
        for p in (*m_sweep, *k_sweep)
    ]
    return format_table(
        ["m", "k", "pro density", "latency vs bit", "area mm2"], rows,
        title=f"tiling sweep — {args.model}/{args.dataset}",
    )


def cmd_tradeoff(args: argparse.Namespace) -> str:
    result = evaluate_tradeoff(args.sparsity_increase)
    rows = [
        ["break-even dS", format_percent(breakeven_sparsity_increase())],
        ["measured dS", format_percent(args.sparsity_increase)],
        ["benefit/cost", format_ratio(result.benefit_cost_ratio)],
        ["profitable", "yes" if result.profitable else "no"],
    ]
    return format_table(["quantity", "value"], rows, title="Sec. VII-G trade-off")


def cmd_scaling(args: argparse.Namespace) -> str:
    trace = get_trace(args.model, args.dataset, args.preset, args.seed)
    points = scaling_study(
        trace, max_tiles=_max_tiles(args), rng=np.random.default_rng(args.seed)
    )
    rows = [
        [p.num_ppus, p.issue_width, format_ratio(p.speedup),
         format_percent(p.efficiency)]
        for p in points
    ]
    return format_table(
        ["PPUs", "issue width", "speedup", "efficiency"], rows,
        title=f"Sec. VIII-A scaling — {args.model}/{args.dataset}",
    )


def cmd_run(args: argparse.Namespace) -> str:
    """Batched end-to-end engine run: the high-throughput transform path."""
    trace = get_trace(args.model, args.dataset, args.preset, args.seed)
    engine = ProsperityEngine(
        backend=args.backend, cache_size=args.cache_size, workers=args.workers,
        plan=args.plan,
    )
    report = engine.run(trace, batch=args.batch)
    rows = [
        [
            run.name,
            run.kind,
            run.tiles,
            format_percent(run.stats.bit_density),
            format_percent(run.stats.product_density),
            format_ratio(run.stats.ops_reduction),
        ]
        for run in report.runs
    ]
    stats = report.stats
    rows.append(
        [
            "TOTAL",
            "",
            report.total_tiles,
            format_percent(stats.bit_density),
            format_percent(stats.product_density),
            format_ratio(stats.ops_reduction),
        ]
    )
    table = format_table(
        ["workload", "kind", "tiles", "bit dens", "pro dens", "reduction"],
        rows,
        title=(
            f"engine run — {args.model}/{args.dataset} ({args.preset}) "
            f"backend={report.backend} batch={report.batch}"
        ),
    )
    footer = (
        f"\nthroughput: {report.tiles_per_sec:,.0f} tiles/sec over "
        f"{report.total_tiles} tiles in {report.total_seconds * 1e3:.1f} ms; "
        f"forest cache: {report.cache_hits} hits / {report.cache_misses} misses "
        f"({report.cache_hit_rate:.1%} hit rate)"
    )
    if report.workers is not None:
        footer += f"\nworkers: {report.workers}"
    if report.plan == "trace":
        footer += (
            f"\nplan: trace — {report.planned_tiles} tiles -> "
            f"{report.unique_tiles} unique "
            f"({report.dedup_ratio:.2f}x cross-workload dedup)"
        )
    if report.profile:
        footer += "\nprofile: " + "  ".join(
            f"{stage}={seconds * 1e3:.1f}ms"
            for stage, seconds in report.profile.items()
        )
    if args.verify:
        if not engine.verify_trace(trace):
            raise SystemExit(
                f"backend {report.backend!r} diverged from the reference oracle"
            )
        footer += "\nverify: tile records bit-identical to the reference backend"
    engine.close()
    return table + footer


COMMANDS = {
    "density": cmd_density,
    "simulate": cmd_simulate,
    "sweep": cmd_sweep,
    "tradeoff": cmd_tradeoff,
    "scaling": cmd_scaling,
    "run": cmd_run,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Prosperity (HPCA 2025) reproduction experiments",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name in ("density", "simulate", "sweep", "scaling"):
        sub = subparsers.add_parser(name)
        _add_workload_args(sub)
        if name in ("simulate", "sweep"):
            _add_backend_arg(sub)
    run = subparsers.add_parser(
        "run", help="batched ProSparsity engine run with backend selection"
    )
    # The engine always transforms every tile (no sampling): throughput
    # and cache numbers describe the full workload.
    _add_workload_args(run, sampling=False)
    _add_backend_arg(run, default="vectorized")
    run.add_argument("--batch", type=int, default=8,
                     help="max layers stacked into one engine pass")
    run.add_argument("--cache-size", type=int, default=4096,
                     help="forest cache capacity in distinct tiles (0 = off)")
    run.add_argument("--verify", action="store_true",
                     help="re-run through the reference oracle and compare")
    trade = subparsers.add_parser("tradeoff")
    trade.add_argument("--sparsity-increase", type=float, default=0.1335)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    output = COMMANDS[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
