"""Command-line interface: a thin adapter over :class:`repro.api.Session`.

Every subcommand builds one :class:`repro.api.RunConfig` — defaults,
then ``--config file.toml`` (or ``.json``), then explicit flags, then
``--set section.key=value`` overrides, in that order — opens a
:class:`~repro.api.Session`, and renders the structured result as a
table. A run is therefore reproducible from a config file alone:
``repro run --config run.toml`` produces bit-identical records to the
equivalent flag invocation.

Examples
--------
::

    repro density  --model vgg16 --dataset cifar100
    repro simulate --model resnet18 --dataset cifar10 --backend vectorized
    repro sweep    --model vgg16 --dataset cifar100
    repro tradeoff --sparsity-increase 0.1335
    repro scaling  --model vgg16 --dataset cifar10
    repro run      --model vgg16 --backend fused --batch 8 --verify
    repro run      --model vgg16 --backend sharded --workers 4
    repro run      --config run.toml --set engine.plan=trace
    repro config dump --set workload.model=lenet5 > run.toml
    repro batch    --config a.toml --config b.toml --set engine.backend=fused
    repro serve    --config serve.toml --port 8707
    repro submit   --url http://127.0.0.1:8707 --count 8 --tenant acme
    repro stream   --model lenet5 --dataset mnist --window 4
    repro stream   --source poisson --url http://127.0.0.1:8707
    repro --version

(Also runnable as ``python -m repro.cli`` when not installed.)
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from importlib import metadata

from repro.analysis.report import format_percent, format_ratio, format_table
from repro.analysis.tradeoff import breakeven_sparsity_increase
from repro.api import (
    STREAM_SOURCES,
    EngineRunResult,
    Job,
    RunConfig,
    Scheduler,
    Session,
    StreamStalledError,
)
from repro.api.client import ServeClient, ServeError
from repro.engine import PLAN_MODES, available_backends
from repro.engine.store import ResultStore, default_store_path
from repro.server.protocol import RECORD_MODES
from repro.workloads import PRESETS


def _version() -> str:
    """Package version from installed metadata, else the source tree."""
    try:
        return metadata.version("prosperity-repro")
    except metadata.PackageNotFoundError:  # bare checkout (conftest shim)
        import repro

        return repro.__version__


#: argparse attribute -> RunConfig dotted key. Flags default to ``None``
#: so only explicitly-passed values override the config file.
_FLAG_KEYS = {
    "model": "workload.model",
    "dataset": "workload.dataset",
    "preset": "workload.preset",
    "seed": "workload.seed",
    "max_tiles": "sampling.max_tiles",
    "backend": "engine.backend",
    "workers": "engine.workers",
    "plan": "engine.plan",
    "batch": "engine.batch",
    "cache_size": "engine.cache_size",
    "verify": "engine.verify",
    "sparsity_increase": "tradeoff.sparsity_increase",
    "stream_source": "streaming.source",
    "window": "streaming.window",
    "hop": "streaming.hop",
}


def config_from_args(args: argparse.Namespace) -> RunConfig:
    """Merge defaults < ``--config`` file < flags < ``--set`` overrides.

    Config errors on every surface — an unreadable/invalid ``--config``
    file, a flag value the config rejects (``--workers`` on a
    non-sharded backend, ``--batch 0``), or a bad ``--set`` string —
    exit with a one-line message rather than a traceback.
    """
    if getattr(args, "config", None):
        try:
            config = RunConfig.from_file(args.config)
        except (ValueError, OSError) as exc:
            raise SystemExit(f"repro: error: --config {args.config}: {exc}") from exc
    else:
        config = RunConfig()
    overrides = {}
    for attr, dotted in _FLAG_KEYS.items():
        value = getattr(args, attr, None)
        if value is not None:
            overrides[dotted] = value
    if overrides:
        try:
            config = config.with_overrides(overrides)
        except ValueError as exc:
            raise SystemExit(f"repro: error: {exc}") from exc
    sets = getattr(args, "sets", None)
    if sets:
        try:
            config = config.with_sets(sets)
        except ValueError as exc:
            raise SystemExit(f"repro: error: {exc}") from exc
    return config


def build_config(argv: list[str]) -> RunConfig:
    """The exact config a CLI invocation would run with (test seam)."""
    return config_from_args(build_parser().parse_args(argv))


# ---------------------------------------------------------------------------
# Subcommand renderers: Session results -> tables
# ---------------------------------------------------------------------------


def cmd_density(config: RunConfig, session: Session) -> str:
    report = session.density().report
    workload = config.workload
    rows = [
        ["bit (PTB/SATO)", format_percent(report.bit_density)],
        ["structured bit", format_percent(report.structured_density)],
        ["FS neuron (Stellar)", format_percent(report.fs_density)],
        ["product (Prosperity)", format_percent(report.product_density)],
        ["reduction vs bit", format_ratio(report.reduction_vs_bit)],
    ]
    return format_table(
        ["sparsity paradigm", "density"], rows,
        title=f"density — {workload.model}/{workload.dataset} ({workload.preset})",
    )


def cmd_simulate(config: RunConfig, session: Session) -> str:
    reports = session.simulate().reports
    base = reports[config.simulator.baselines[0]]
    rows = [
        [
            name,
            f"{report.seconds * 1e6:.1f}",
            format_ratio(base.seconds / report.seconds),
            f"{report.energy_j * 1e3:.3f}",
            format_ratio(base.energy_j / report.energy_j),
        ]
        for name, report in reports.items()
    ]
    workload = config.workload
    return format_table(
        ["accelerator", "latency us", "speedup", "energy mJ", "EE gain"],
        rows,
        title=(
            f"simulation — {workload.model}/{workload.dataset}"
            f" ({workload.preset})"
        ),
    )


def cmd_sweep(config: RunConfig, session: Session) -> str:
    result = session.sweep()
    rows = [
        [p.tile_m, p.tile_k, format_percent(p.product_density),
         f"{p.latency_vs_bit:.3f}", f"{p.area_mm2:.3f}"]
        for p in result.points
    ]
    workload = config.workload
    return format_table(
        ["m", "k", "pro density", "latency vs bit", "area mm2"], rows,
        title=f"tiling sweep — {workload.model}/{workload.dataset}",
    )


def cmd_tradeoff(config: RunConfig, session: Session) -> str:
    result = session.tradeoff().result
    rows = [
        ["break-even dS", format_percent(breakeven_sparsity_increase())],
        ["measured dS", format_percent(config.tradeoff.sparsity_increase)],
        ["benefit/cost", format_ratio(result.benefit_cost_ratio)],
        ["profitable", "yes" if result.profitable else "no"],
    ]
    return format_table(["quantity", "value"], rows, title="Sec. VII-G trade-off")


def cmd_scaling(config: RunConfig, session: Session) -> str:
    points = session.scaling().points
    rows = [
        [p.num_ppus, p.issue_width, format_ratio(p.speedup),
         format_percent(p.efficiency)]
        for p in points
    ]
    workload = config.workload
    return format_table(
        ["PPUs", "issue width", "speedup", "efficiency"], rows,
        title=f"Sec. VIII-A scaling — {workload.model}/{workload.dataset}",
    )


def cmd_run(config: RunConfig, session: Session) -> str:
    """Batched end-to-end engine run: the high-throughput transform path."""
    result = session.run()
    report = result.report
    rows = [
        [
            run.name,
            run.kind,
            run.tiles,
            format_percent(run.stats.bit_density),
            format_percent(run.stats.product_density),
            format_ratio(run.stats.ops_reduction),
        ]
        for run in report.runs
    ]
    stats = report.stats
    rows.append(
        [
            "TOTAL",
            "",
            report.total_tiles,
            format_percent(stats.bit_density),
            format_percent(stats.product_density),
            format_ratio(stats.ops_reduction),
        ]
    )
    workload = config.workload
    table = format_table(
        ["workload", "kind", "tiles", "bit dens", "pro dens", "reduction"],
        rows,
        title=(
            f"engine run — {workload.model}/{workload.dataset}"
            f" ({workload.preset}) "
            f"backend={report.backend} batch={report.batch}"
        ),
    )
    footer = (
        f"\nthroughput: {report.tiles_per_sec:,.0f} tiles/sec over "
        f"{report.total_tiles} tiles in {report.total_seconds * 1e3:.1f} ms; "
        f"forest cache: {report.cache_hits} hits / {report.cache_misses} misses "
        f"({report.cache_hit_rate:.1%} hit rate)"
    )
    if report.workers is not None:
        footer += f"\nworkers: {report.workers}"
    if report.pool_rebuilds or report.retries:
        footer += (
            f"\nresilience: {report.pool_rebuilds} pool rebuild(s), "
            f"{report.retries} retried dispatch(es)"
        )
    if report.degraded:
        footer += (
            "\ndegraded: sharded pool rebuild budget exhausted — "
            "running the in-process fused path"
        )
    if report.store_active is not None:
        footer += (
            f"\nstore: {report.store_hits} hits / {report.store_misses} misses, "
            f"{report.store_corrupt} corrupt quarantined, "
            f"{report.store_evictions} evicted"
        )
        if not report.store_active:
            footer += (
                "\nstore: DEGRADED — persistent cache disabled for this "
                "process, runs continue via the kernel path"
            )
    if report.jit_active is not None:
        footer += (
            "\njit: active (numba kernels)"
            if report.jit_active
            else "\njit: inactive — NumPy fallback (install repro[compiled] "
            "and unset REPRO_NO_JIT for native kernels)"
        )
    if report.plan == "trace":
        footer += (
            f"\nplan: trace — {report.planned_tiles} tiles -> "
            f"{report.unique_tiles} unique "
            f"({report.dedup_ratio:.2f}x cross-workload dedup)"
        )
    if report.profile:
        footer += "\nprofile: " + "  ".join(
            f"{stage}={seconds * 1e3:.1f}ms"
            for stage, seconds in report.profile.items()
        )
    if result.verified is not None:
        if not result.verified:
            raise SystemExit(
                f"backend {report.backend!r} diverged from the reference oracle"
            )
        footer += "\nverify: tile records bit-identical to the reference backend"
    return table + footer


def cmd_batch(args: argparse.Namespace) -> int:
    """Run many job configs through one shared scheduler and pool.

    Each ``--config`` file becomes one job (``--set`` overrides apply to
    every job); compatible engine jobs coalesce into shared trace-planner
    batches, so concurrent configs share one global dedup, one kernel
    launch per shape bucket, and one process pool per engine signature.
    """
    configs = []
    for path in args.configs:
        try:
            config = RunConfig.from_file(path)
            if args.sets:
                config = config.with_sets(args.sets)
        except (ValueError, OSError) as exc:
            raise SystemExit(f"repro: error: --config {path}: {exc}") from exc
        configs.append((path, config))
    jobs = [
        Job(kind=args.kind, config=config, label=str(path))
        for path, config in configs
    ]
    failures = []
    rows = []
    with Scheduler(configs[0][1]) as scheduler:
        handles = scheduler.submit_many(jobs)
        for handle in handles:
            workload = handle.config.workload
            row = [
                handle.job.label,
                handle.job.kind,
                f"{workload.model}/{workload.dataset}",
                handle.config.engine.backend,
            ]
            try:
                result = handle.result()
            except Exception as exc:
                failures.append(f"{handle.job.label}: {exc}")
                rows.append([*row, "FAILED", "-"])
                continue
            if isinstance(result, EngineRunResult):
                summary = (
                    f"{result.report.total_tiles} tiles, "
                    f"{format_percent(result.report.stats.product_density)} pro dens"
                )
            else:
                summary = type(result).__name__.removesuffix("Result").lower()
            rows.append([*row, summary, f"{result.seconds * 1e3:.1f} ms"])
        footer = (
            f"\nscheduler: {scheduler.jobs_submitted} job(s) submitted, "
            f"{scheduler.jobs_coalesced} coalesced across {scheduler.batches} "
            f"planner batch(es); pools spawned: {scheduler.pools_spawned}"
        )
        # Resilience counters appear only when something actually
        # happened, so the healthy-path footer stays byte-stable.
        stats = scheduler.stats
        incidents = [
            (key, stats[key])
            for key in (
                "jobs_retried",
                "isolation_reruns",
                "jobs_shed",
                "jobs_expired",
                "pool_rebuilds",
            )
            if stats[key]
        ]
        if incidents or stats["degraded"]:
            parts = [
                f"{key.replace('_', ' ')}: {value}" for key, value in incidents
            ]
            if stats["degraded"]:
                parts.append("degraded: pool unavailable, in-process fallback")
            footer += "\nresilience: " + ", ".join(parts)
        if any(config.cache.enabled for _, config in configs):
            footer += (
                f"\nstore: {stats['store_hits']} hits / "
                f"{stats['store_misses']} misses, "
                f"{stats['store_corrupt']} corrupt quarantined, "
                f"{stats['store_evictions']} evicted"
            )
    table = format_table(
        ["config", "kind", "workload", "backend", "result", "wall"],
        rows,
        title=f"batch — {len(jobs)} job(s) through one scheduler",
    )
    print(table + footer)
    for failure in failures:
        print(f"repro: batch job failed: {failure}", file=sys.stderr)
    return 1 if failures else 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or maintain the persistent result store.

    Opens the store named by the merged config's ``[cache]`` section
    (``path`` empty means the default location) synchronously — no
    engine, no Session — so the subcommand works on a store that no run
    currently owns. ``verify`` exits non-zero when it quarantines
    corrupt entries, for use as a CI health gate.
    """
    config = config_from_args(args)
    cache_cfg = config.cache
    path = cache_cfg.path or default_store_path()
    try:
        store = ResultStore(
            path,
            max_bytes=cache_cfg.max_bytes,
            verify=cache_cfg.verify,
            async_writes=False,
        )
    except ValueError as exc:
        raise SystemExit(f"repro: error: {exc}") from exc
    try:
        if args.cache_command == "stats":
            stats = store.stats()
            rows = [
                ["path", stats.path],
                ["enabled", "yes" if stats.enabled else "no"],
                ["entries", stats.entries],
                ["total bytes", f"{stats.total_bytes:,}"],
                ["max bytes", f"{stats.max_bytes:,}" if stats.max_bytes else "unbounded"],
                ["quarantined", stats.quarantined],
            ]
            if stats.disabled_reason:
                rows.append(["disabled reason", stats.disabled_reason])
            print(format_table(["field", "value"], rows, title="persistent result store"))
            return 0
        if args.cache_command == "clear":
            removed = store.clear()
            print(f"store: removed {removed} entries from {store.directory}")
            return 0
        # verify
        checked, corrupt = store.verify_all()
        print(
            f"store: verified {checked} entries, "
            f"{corrupt} corrupt quarantined"
        )
        return 1 if corrupt else 0
    finally:
        store.close()


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the network serving front end until SIGTERM/SIGINT, then drain.

    The listen address comes from the merged config's ``[server]``
    section (``--host``/``--port`` override it); the rest of the config
    is the default job config network requests overlay. On SIGTERM (or
    Ctrl-C) the server drains gracefully — new jobs are refused with
    503 while every accepted job runs to completion — and the process
    exits 0 only when no in-flight request had to be cut off.
    """
    from repro.server import ReproServer

    config = config_from_args(args)
    overrides = {}
    if args.host is not None:
        overrides["server.host"] = args.host
    if args.port is not None:
        overrides["server.port"] = args.port
    if overrides:
        try:
            config = config.with_overrides(overrides)
        except ValueError as exc:
            raise SystemExit(f"repro: error: {exc}") from exc
    try:
        server = ReproServer(config)
    except OSError as exc:
        raise SystemExit(f"repro: error: cannot bind "
                         f"{config.server.host}:{config.server.port}: {exc}") from exc
    server.start()
    # The address line is machine-readable on purpose: test harnesses
    # and the CI smoke drill parse the URL out of the first line.
    print(f"repro-serve: listening on {server.url}", flush=True)
    stop = threading.Event()

    def _on_signal(signum, frame):  # noqa: ARG001 - signal API
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    while not (stop.is_set() or server.draining):
        stop.wait(0.1)
    print("repro-serve: draining (finishing in-flight jobs)", flush=True)
    clean = server.drain()
    print(
        f"repro-serve: drained {'cleanly' if clean else 'with timeout'}",
        flush=True,
    )
    return 0 if clean else 1


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit jobs to a running ``repro serve`` endpoint concurrently.

    ``--count`` jobs are fired from ``--count`` client threads at once
    (one connection per thread), cycling through the repeatable
    ``--tenant`` / ``--priority`` values — so one invocation exercises
    the server's coalescing window with genuinely mixed multi-tenant
    traffic, which is exactly what the CI serving drill needs.
    """
    tenants = args.tenants or [""]
    priorities = args.priorities or [""]
    count = args.count
    outcomes: list[tuple[object, Exception | None]] = [(None, None)] * count

    def worker(index: int) -> None:
        client = None
        try:
            # Construction can raise too (malformed --url): it must land
            # in the same per-job FAILED row as a submit error.
            client = ServeClient(args.url, timeout=args.timeout)
            result = client.submit(
                args.kind,
                tenant=tenants[index % len(tenants)],
                priority=priorities[index % len(priorities)],
                label=f"submit-{index}",
                records=args.records,
            )
            outcomes[index] = (result, None)
        except Exception as exc:  # noqa: BLE001 - reported per job below
            outcomes[index] = (None, exc)
        finally:
            if client is not None:
                client.close()

    threads = [
        threading.Thread(target=worker, args=(index,), name=f"submit-{index}")
        for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    rows = []
    failures = []
    for index, (result, error) in enumerate(outcomes):
        if error is not None:
            failures.append(f"submit-{index}: {error}")
            rows.append([f"submit-{index}", tenants[index % len(tenants)] or "-",
                         priorities[index % len(priorities)] or "-",
                         "FAILED", type(error).__name__])
            continue
        report = result.report
        summary = (
            f"{sum(run['tiles'] for run in report['runs'])} tiles"
            if report
            else result.result.get("type", "ok")
        )
        rows.append(
            [f"submit-{index}", result.tenant, result.priority, "ok", summary]
        )
    table = format_table(
        ["job", "tenant", "priority", "status", "result"],
        rows,
        title=f"submit — {count} job(s) to {args.url}",
    )
    footer = ""
    try:
        with ServeClient(args.url, timeout=args.timeout) as client:
            metrics = client.metrics()
        scheduler_stats = metrics["scheduler"]
        dedup = metrics["server"]["dedup"]
        footer = (
            f"\nserver: {scheduler_stats['jobs_submitted']} job(s) submitted, "
            f"{scheduler_stats['jobs_coalesced']} coalesced across "
            f"{scheduler_stats['batches']} planner batch(es); "
            f"last dedup {dedup['last_ratio']:.2f}x"
        )
        by_tenant = scheduler_stats.get("jobs_by_tenant") or {}
        if by_tenant:
            footer += "\ntenants: " + ", ".join(
                f"{tenant}={jobs}" for tenant, jobs in sorted(by_tenant.items())
            )
    except Exception as exc:  # noqa: BLE001 - metrics are best-effort
        footer = f"\nserver: metrics unavailable ({exc})"
    print(table + footer)
    for failure in failures:
        print(f"repro: submit job failed: {failure}", file=sys.stderr)
    return 1 if failures else 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Sliding-window streaming inference, in-process or over the wire.

    One line prints per executed window *as it completes* — the command
    is a live tail of the stream, not a batch report — followed by a
    throughput/dedup summary. With ``--url`` the same stream runs on a
    remote ``repro serve`` endpoint via ``POST /v1/streams`` (the merged
    local config travels as the request config), and the lines render
    from the NDJSON frames as the server flushes them.
    """
    config = config_from_args(args)

    def chunk_line(index, start, stop, tiles, planned, unique, seconds) -> str:
        dedup = (planned / unique) if unique else 1.0
        return (
            f"chunk {index:>3}  steps [{start:>3},{stop:>3})  "
            f"{tiles:>5} tiles  {dedup:.2f}x dedup  {seconds * 1e3:7.1f} ms"
        )

    if args.url:
        client = ServeClient(args.url, timeout=args.timeout)
        try:
            generator = client.stream(config=config, records=args.records)
            while True:
                try:
                    chunk = next(generator)
                except StopIteration as stop:
                    final = stop.value
                    break
                print(
                    chunk_line(
                        chunk.index, chunk.start_step, chunk.stop_step,
                        chunk.tiles, chunk.planned_tiles,
                        chunk.unique_tiles, chunk.seconds,
                    ),
                    flush=True,
                )
        except ServeError as exc:
            # Mid-stream failures arrive as an in-band error frame (the
            # HTTP status is already 200); report them like a failed
            # submit — typed, job-scoped, exit 1 — not a traceback.
            name = getattr(exc, "error_type", "") or type(exc).__name__
            print(f"stream FAILED: {name}: {exc}", file=sys.stderr)
            return 1
        finally:
            client.close()
        report = final["report"]
        print(
            f"\nstream — {report['model']} via {args.url}: "
            f"{final['windows']} window(s) over {final['steps']} step(s)"
        )
        print(
            f"throughput: {report['tiles_per_sec']:,.0f} tiles/sec over "
            f"{report['total_tiles']} tiles; cross-window dedup "
            f"{final['dedup_ratio']:.2f}x; forest cache "
            f"{report['cache_hits']} hits / {report['cache_misses']} misses"
        )
        return 0
    with Session(config) as session:
        generator = session.stream_source()
        try:
            while True:
                try:
                    chunk = next(generator)
                except StopIteration as stop:
                    result = stop.value
                    break
                print(
                    chunk_line(
                        chunk.index, chunk.start_step, chunk.stop_step,
                        chunk.tiles, chunk.planned_tiles, chunk.unique_tiles,
                        chunk.seconds,
                    ),
                    flush=True,
                )
        except StreamStalledError as exc:
            print(
                f"stream FAILED: StreamStalledError: {exc}", file=sys.stderr
            )
            return 1
    report = result.report
    print(
        f"\nstream — {report.model} ({config.streaming.source}): "
        f"{result.windows} window(s) over {result.steps} step(s)"
    )
    print(
        f"throughput: {report.tiles_per_sec:,.0f} tiles/sec over "
        f"{report.total_tiles} tiles; cross-window dedup "
        f"{result.dedup_ratio:.2f}x; forest cache "
        f"{report.cache_hits} hits / {report.cache_misses} misses"
    )
    return 0


COMMANDS = {
    "density": cmd_density,
    "simulate": cmd_simulate,
    "sweep": cmd_sweep,
    "tradeoff": cmd_tradeoff,
    "scaling": cmd_scaling,
    "run": cmd_run,
}


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--config", metavar="FILE", default=None,
        help="TOML or JSON RunConfig file; explicit flags override it",
    )
    parser.add_argument(
        "--set", dest="sets", action="append", metavar="SECTION.KEY=VALUE",
        default=[],
        help="config override (repeatable, applied after flags), "
        "e.g. --set engine.plan=trace",
    )


def _add_workload_args(
    parser: argparse.ArgumentParser, sampling: bool = True
) -> None:
    parser.add_argument("--model", default=None,
                        help="model name (config default: vgg16)")
    parser.add_argument("--dataset", default=None,
                        help="dataset name (config default: cifar10)")
    parser.add_argument("--preset", default=None, choices=PRESETS,
                        help="workload preset (config default: small)")
    parser.add_argument("--seed", type=int, default=None,
                        help="trace + sampling seed (config default: 7)")
    if sampling:
        parser.add_argument("--max-tiles", type=int, default=None,
                            help="tile sample cap per workload, 0 = exact "
                            "(config default: 24)")


def _add_backend_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", default=None, choices=available_backends(),
        help="ProSparsity transform backend; results are identical, "
        "fused/sharded are the fast tile-batched paths "
        "(config default: vectorized)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process count for the sharded backend "
        "(other backends reject this option)",
    )
    parser.add_argument(
        "--plan", default=None, choices=PLAN_MODES,
        help="execution planning scope: 'matrix' batches per workload, "
        "'trace' buckets and dedups tiles across the whole trace "
        "(config default: matrix)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Prosperity (HPCA 2025) reproduction experiments",
    )
    parser.add_argument(
        "-V", "--version", action="version", version=f"repro {_version()}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name in ("density", "simulate", "sweep", "scaling"):
        sub = subparsers.add_parser(name)
        _add_config_args(sub)
        _add_workload_args(sub)
        if name in ("density", "simulate", "sweep"):
            _add_backend_args(sub)
    run = subparsers.add_parser(
        "run", help="batched ProSparsity engine run with backend selection"
    )
    _add_config_args(run)
    # The engine always transforms every tile (no sampling): throughput
    # and cache numbers describe the full workload.
    _add_workload_args(run, sampling=False)
    _add_backend_args(run)
    run.add_argument("--batch", type=int, default=None,
                     help="max layers stacked into one engine pass "
                     "(config default: 8)")
    run.add_argument("--cache-size", type=int, default=None,
                     help="forest cache capacity in distinct tiles, 0 = off "
                     "(config default: 4096)")
    run.add_argument("--verify", action="store_true", default=None,
                     help="re-run through the reference oracle and compare")
    batch = subparsers.add_parser(
        "batch", help="run many configs through one shared scheduler/pool"
    )
    batch.add_argument(
        "--config", dest="configs", action="append", metavar="FILE",
        required=True,
        help="TOML or JSON RunConfig file; repeatable, one job per file — "
        "compatible engine jobs coalesce into shared planner batches",
    )
    batch.add_argument(
        "--set", dest="sets", action="append", metavar="SECTION.KEY=VALUE",
        default=[],
        help="config override applied to every job's config (repeatable)",
    )
    batch.add_argument(
        "--kind", default="run", choices=Session._QUEUEABLE,
        help="experiment to run for every config (default: run)",
    )
    serve = subparsers.add_parser(
        "serve", help="run the network serving front end (HTTP + JSON)"
    )
    _add_config_args(serve)
    serve.add_argument(
        "--host", default=None,
        help="listen address (config default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=None,
        help="listen port, 0 = ephemeral (config default: 0); the bound "
        "URL is printed on the first line",
    )
    submit = subparsers.add_parser(
        "submit", help="submit jobs to a running `repro serve` endpoint"
    )
    submit.add_argument(
        "--url", required=True, metavar="URL",
        help="serving endpoint, e.g. http://127.0.0.1:8707",
    )
    submit.add_argument(
        "--kind", default="run", choices=Session._QUEUEABLE,
        help="experiment to run for every job (default: run)",
    )
    submit.add_argument(
        "--count", type=int, default=1, metavar="N",
        help="how many jobs to submit concurrently (default: 1)",
    )
    submit.add_argument(
        "--tenant", dest="tenants", action="append", metavar="NAME",
        default=[],
        help="tenant to submit as (repeatable; jobs cycle through the "
        "list, default: the server's default tenant)",
    )
    submit.add_argument(
        "--priority", dest="priorities", action="append", metavar="CLASS",
        default=[],
        help="priority class (repeatable; jobs cycle through the list, "
        "default: the server's first class)",
    )
    submit.add_argument(
        "--records", default="digest", choices=RECORD_MODES,
        help="record transport: full arrays, content digest, or none "
        "(default: digest)",
    )
    submit.add_argument(
        "--timeout", type=float, default=300.0, metavar="SECONDS",
        help="per-request client timeout (default: 300)",
    )
    stream = subparsers.add_parser(
        "stream", help="sliding-window streaming inference over event traces"
    )
    _add_config_args(stream)
    # Streams transform every tile of every window (no sampling), the
    # same contract as `repro run`.
    _add_workload_args(stream, sampling=False)
    _add_backend_args(stream)
    stream.add_argument(
        "--source", dest="stream_source", default=None, choices=STREAM_SOURCES,
        help="event source: replay the workload trace, Poisson events, or "
        "a recurrent cell (config default: replay)",
    )
    stream.add_argument(
        "--window", type=int, default=None,
        help="timesteps per planner window (config default: 4)",
    )
    stream.add_argument(
        "--hop", type=int, default=None,
        help="window advance in timesteps, 0 = non-overlapping "
        "(config default: 0)",
    )
    stream.add_argument(
        "--url", default=None, metavar="URL",
        help="stream over the wire via POST /v1/streams on a running "
        "`repro serve` endpoint instead of in-process",
    )
    stream.add_argument(
        "--records", default="digest", choices=RECORD_MODES,
        help="record transport for --url mode (default: digest)",
    )
    stream.add_argument(
        "--timeout", type=float, default=300.0, metavar="SECONDS",
        help="client timeout for --url mode (default: 300)",
    )
    cache_cmd = subparsers.add_parser(
        "cache", help="inspect or maintain the persistent result store"
    )
    cache_sub = cache_cmd.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("stats", "show store location, entry count, size, and quarantine"),
        ("clear", "remove every cached entry (the store stays usable)"),
        ("verify", "checksum every entry, quarantine corrupt ones "
                   "(exit 1 if any)"),
    ):
        sub = cache_sub.add_parser(name, help=help_text)
        _add_config_args(sub)
    trade = subparsers.add_parser("tradeoff")
    _add_config_args(trade)
    trade.add_argument("--sparsity-increase", type=float, default=None,
                       help="measured dS (config default: 0.1335)")
    config_cmd = subparsers.add_parser(
        "config", help="inspect the merged run configuration"
    )
    config_sub = config_cmd.add_subparsers(dest="config_command", required=True)
    dump = config_sub.add_parser(
        "dump", help="print the merged config as TOML (or JSON)"
    )
    _add_config_args(dump)
    dump.add_argument("--json", action="store_true",
                      help="emit JSON instead of TOML")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "batch":
        return cmd_batch(args)
    if args.command == "cache":
        return cmd_cache(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "submit":
        return cmd_submit(args)
    if args.command == "stream":
        return cmd_stream(args)
    config = config_from_args(args)
    if args.command == "config":
        output = config.to_json() if args.json else config.to_toml()
        print(output, end="" if output.endswith("\n") else "\n")
        return 0
    with Session(config) as session:
        output = COMMANDS[args.command](config, session)
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
