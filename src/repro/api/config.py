"""Typed, serializable run configuration for the unified Session API.

:class:`RunConfig` is the one object that describes a complete
reproduction run: which workload to trace (``workload``), how the
ProSparsity engine executes it (``engine``), how the accelerator
simulator is configured (``simulator``), how tiles are sampled
(``sampling``), plus the design-sweep grid (``sweep``), the
Sec. VII-G trade-off input (``tradeoff``), and the concurrent-serving
knobs (``scheduler``: queue depth, coalescing window, stream
chunking). Every section is a frozen
dataclass, validated eagerly on construction with the same error wording
the execution layers raise (e.g. ``workers`` on a backend that cannot
take it reuses :func:`repro.engine.backends.backend_option_error`).

Configs round-trip through TOML and JSON (``from_file``/``to_file``,
``from_dict``/``to_dict``) and support two immutable update idioms:

* :meth:`RunConfig.with_overrides` — dotted-key overrides with native
  values, the sweep-loop workhorse::

      for backend in ("vectorized", "fused"):
          cfg = base.with_overrides({"engine.backend": backend})

* :meth:`RunConfig.with_sets` — ``"section.key=value"`` strings as the
  CLI's ``--set`` flag passes them, with type coercion driven by the
  target field's annotation.
"""

from __future__ import annotations

import json
import types
import typing

try:  # stdlib on 3.11+; the tomli backport covers 3.10
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - version-dependent
    try:
        import tomli as tomllib  # type: ignore[no-redef]
    except ModuleNotFoundError:
        tomllib = None  # TOML *writing* still works (hand-rolled emitter)
from dataclasses import dataclass, field, fields, replace
from pathlib import Path

from repro.arch.ppu import MODES, MODE_PROSPERITY
from repro.baselines import BASELINES
from repro.core.prosparsity import (
    DEFAULT_TILE_K,
    DEFAULT_TILE_M,
    validate_tile_shape,
)
from repro.engine.backends import (
    available_backends,
    backend_accepts_option,
    backend_option_error,
    unknown_backend_error,
    validate_workers,
)
from repro.engine.faults import FaultPlan
from repro.engine.planner import validate_plan_mode
from repro.engine.store import VERIFY_POLICIES
from repro.workloads import PRESETS

__all__ = [
    "CacheConfig",
    "EngineConfig",
    "OVERLOAD_POLICIES",
    "ResilienceConfig",
    "RunConfig",
    "SamplingConfig",
    "SchedulerConfig",
    "ServerConfig",
    "STREAM_SOURCES",
    "SimulatorConfig",
    "StreamingConfig",
    "SweepConfig",
    "TradeoffConfig",
    "WorkloadConfig",
    "engine_backend_options",
]


@dataclass(frozen=True)
class WorkloadConfig:
    """Which model/dataset trace a session runs on."""

    model: str = "vgg16"
    dataset: str = "cifar10"
    preset: str = "small"
    seed: int = 7


@dataclass(frozen=True)
class EngineConfig:
    """How the ProSparsity engine executes: backend, plan, batching."""

    backend: str = "vectorized"
    workers: int | None = None
    plan: str = "matrix"
    batch: int = 8
    cache_size: int = 4096
    tile_m: int = DEFAULT_TILE_M
    tile_k: int = DEFAULT_TILE_K
    verify: bool = False


@dataclass(frozen=True)
class SimulatorConfig:
    """Accelerator-simulation settings (mode ladder + baseline lineup)."""

    mode: str = MODE_PROSPERITY
    baselines: tuple[str, ...] = ("eyeriss", "ptb", "sato", "mint", "stellar", "a100")


@dataclass(frozen=True)
class SamplingConfig:
    """Tile sampling: ``max_tiles`` per workload, ``0`` = exact."""

    max_tiles: int = 24

    @property
    def effective(self) -> int | None:
        """The ``max_tiles`` value execution layers expect (``None`` = exact)."""
        return None if self.max_tiles == 0 else self.max_tiles


@dataclass(frozen=True)
class SweepConfig:
    """Tiling design-sweep grid (Fig. 7): m at fixed k, k at fixed m."""

    m_values: tuple[int, ...] = (64, 128, 256, 512)
    k_values: tuple[int, ...] = (8, 16, 32)


@dataclass(frozen=True)
class TradeoffConfig:
    """Sec. VII-G trade-off input: the measured sparsity increase dS."""

    sparsity_increase: float = 0.1335


@dataclass(frozen=True)
class SchedulerConfig:
    """Concurrent serving: queue depth, coalescing window, stream chunking.

    ``max_inflight`` bounds how many jobs may sit in the scheduler's
    queue at once (further ``submit()`` calls block until space frees).
    ``coalesce_window_ms`` is how long the dispatcher waits after the
    first queued job for more compatible jobs to arrive — every queued
    job is drained at the end of each window, so no job ever waits more
    than one window before dispatch. ``stream_chunk`` is how many
    completed workloads a streaming run groups into one yielded chunk.
    """

    max_inflight: int = 32
    coalesce_window_ms: float = 2.0
    stream_chunk: int = 1


#: Overload policies the scheduler's admission control understands.
OVERLOAD_POLICIES = ("block", "shed")


@dataclass(frozen=True)
class ServerConfig:
    """Network serving front end (:mod:`repro.server`) + tenancy.

    ``host``/``port`` are the listen address (``port=0`` binds an
    ephemeral port, reported by ``ReproServer.port``). ``tenants``
    restricts who may submit: empty means open tenancy (any tenant
    string is accepted, ``default_tenant`` when the request names
    none). Per-tenant quotas bound how much of the scheduler queue one
    tenant may occupy: ``tenant_max_inflight`` is an absolute cap on a
    tenant's queued jobs (0 = none) and ``tenant_queue_share`` a
    fractional cap of ``scheduler.max_inflight`` (1.0 = none); the
    effective quota is the tighter of the two, and a tenant at quota is
    refused with ``SchedulerSaturated`` — other tenants are unaffected.
    ``priorities`` are the priority classes in rank order with one
    positive ``priority_weights`` entry each: every coalesce window the
    dispatcher drains queued jobs in weighted-interleave order (e.g.
    weights ``(4, 1)`` dispatch up to 4 ``interactive`` jobs per
    ``batch`` job), so a flood of one class cannot starve another.
    Requests naming no priority get the first class.
    ``drain_timeout_s`` bounds how long a graceful drain (SIGTERM)
    waits for in-flight requests before shutting down anyway.
    """

    host: str = "127.0.0.1"
    port: int = 0
    tenants: tuple[str, ...] = ()
    default_tenant: str = "anonymous"
    tenant_max_inflight: int = 0
    tenant_queue_share: float = 1.0
    priorities: tuple[str, ...] = ("interactive", "batch")
    priority_weights: tuple[int, ...] = (4, 1)
    drain_timeout_s: float = 30.0


@dataclass(frozen=True)
class ResilienceConfig:
    """Failure handling: supervision, retries, deadlines, admission.

    ``overload_policy`` decides what a full scheduler queue does to new
    ``submit()`` calls: ``"block"`` (default) waits for space — the
    pre-existing backpressure behavior, preserved exactly — while
    ``"shed"`` waits at most ``shed_timeout_ms`` and then raises
    ``SchedulerSaturated``. An explicit ``submit(..., timeout=)`` always
    wins over the policy. ``deadline_ms`` (0 = none) bounds how long a
    job may wait in the queue before dispatch; expired jobs fail with
    ``DeadlineExceeded`` instead of running late. ``retries`` /
    ``retry_backoff_ms`` bound re-dispatch of *transient* failures
    (broken worker pools, injected ``engine_error`` faults); poisoned
    jobs are never retried, only isolated. ``max_pool_rebuilds`` /
    ``degrade_on_pool_failure`` are the ``sharded`` backend's
    supervision budget (see ``ShardedBackend``). ``faults`` is a fault
    plan spec for the deterministic injection harness
    (:mod:`repro.engine.faults`) — empty (the default) keeps every
    failure point inert.
    """

    overload_policy: str = "block"
    shed_timeout_ms: float = 100.0
    deadline_ms: float = 0.0
    retries: int = 1
    retry_backoff_ms: float = 10.0
    max_pool_rebuilds: int = 2
    degrade_on_pool_failure: bool = True
    faults: str = ""


@dataclass(frozen=True)
class CacheConfig:
    """Persistent result store (:mod:`repro.engine.store`).

    ``enabled`` turns the durable digest→records tier on (off by
    default — the in-memory ``engine.cache_size`` LRU is unaffected
    either way). ``path`` is the store root; empty means the user cache
    directory (``REPRO_STORE_DIR`` overrides it). ``max_bytes`` bounds
    the store on disk — publishes past the budget evict
    least-recently-used entries (0 = unbounded). ``verify`` is the read
    policy: ``"checksum"`` (default) validates every entry and
    quarantines corruption, ``"off"`` trusts published bytes.
    """

    enabled: bool = False
    path: str = ""
    max_bytes: int = 256 * 1024 * 1024
    verify: str = "checksum"


#: Stream source kinds :mod:`repro.streaming` provides.
STREAM_SOURCES = ("replay", "poisson", "recurrent")


@dataclass(frozen=True)
class StreamingConfig:
    """Sliding-window streaming inference (:mod:`repro.streaming`).

    ``window`` is how many event-stream timesteps one planner batch
    covers; ``hop`` is how far the window advances per chunk (``0``
    means ``window`` — tumbling, non-overlapping windows; a smaller hop
    re-delivers overlap timesteps as context, e.g. for recurrent
    sources, without re-planning their rows). ``max_inflight_windows``
    bounds how many windows may be buffered ahead of the consumer
    before the source is backpressured. ``source`` picks the event
    source: ``"replay"`` replays the ``[workload]`` trace as a
    timestep stream, ``"poisson"`` draws seeded synthetic spikes at
    ``rate`` (``rows`` x ``cols`` per step for ``steps`` steps), and
    ``"recurrent"`` steps the recurrent cell model with carried hidden
    state. ``stall_timeout_s`` bounds how long the runner waits on a
    silent source before raising ``StreamStalledError`` (0 = forever).
    """

    window: int = 4
    hop: int = 0
    max_inflight_windows: int = 2
    source: str = "replay"
    stall_timeout_s: float = 5.0
    rate: float = 0.15
    rows: int = 256
    cols: int = 64
    steps: int = 16


_SECTIONS: dict[str, type] = {
    "workload": WorkloadConfig,
    "engine": EngineConfig,
    "simulator": SimulatorConfig,
    "sampling": SamplingConfig,
    "sweep": SweepConfig,
    "tradeoff": TradeoffConfig,
    "scheduler": SchedulerConfig,
    "resilience": ResilienceConfig,
    "cache": CacheConfig,
    "server": ServerConfig,
    "streaming": StreamingConfig,
}


def _coerce(text: str, hint) -> object:
    """Coerce a ``--set`` value string to the target field's annotation."""
    origin = typing.get_origin(hint)
    if origin in (typing.Union, types.UnionType):  # e.g. int | None
        args = [a for a in typing.get_args(hint) if a is not type(None)]
        if text.lower() in ("none", "null"):
            return None
        return _coerce(text, args[0])
    if origin is tuple:
        items = [part for part in text.replace("[", "").replace("]", "").split(",")
                 if part.strip()]
        element = (typing.get_args(hint) or (str,))[0]
        return tuple(_coerce(item.strip(), element) for item in items)
    if hint is bool:
        lowered = text.lower()
        if lowered in ("true", "1", "yes", "on"):
            return True
        if lowered in ("false", "0", "no", "off"):
            return False
        raise ValueError(f"cannot parse {text!r} as a boolean")
    if hint is int:
        return int(text)
    if hint is float:
        return float(text)
    return text


def _section_from_dict(name: str, cls: type, data: dict):
    known = {f.name: f for f in fields(cls)}
    unknown = sorted(set(data) - set(known))
    if unknown:
        raise ValueError(
            f"unknown key(s) {unknown} in config section [{name}]; "
            f"known: {sorted(known)}"
        )
    values = {}
    hints = typing.get_type_hints(cls)
    for key, value in data.items():
        if typing.get_origin(hints[key]) is tuple and isinstance(value, list):
            value = tuple(value)
        values[key] = value
    return cls(**values)


def engine_backend_options(config: "RunConfig") -> dict:
    """Backend constructor options implied by the ``[resilience]`` section.

    Only options the configured backend actually accepts are returned
    (the ``sharded`` backend takes ``max_rebuilds``/``degrade``; others
    take none), so the result is always safe to splat into
    :func:`~repro.engine.backends.get_backend` or
    ``ProsperityEngine(backend_options=...)``.
    """
    options = {}
    for option, value in (
        ("max_rebuilds", config.resilience.max_pool_rebuilds),
        ("degrade", config.resilience.degrade_on_pool_failure),
    ):
        if backend_accepts_option(config.engine.backend, option):
            options[option] = value
    return options


def _toml_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        # TOML basic strings accept JSON's escape repertoire.
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(item) for item in value) + "]"
    raise TypeError(f"cannot serialize {value!r} to TOML")


@dataclass(frozen=True)
class RunConfig:
    """The complete, validated configuration of one reproduction run.

    Frozen: every update goes through :meth:`with_overrides` /
    :meth:`with_sets`, which return new instances. Validation runs on
    construction, so an invalid combination (unknown backend, ``workers``
    on a backend that cannot take it, bad plan mode, malformed tile
    shape) fails at config time with the exact error the execution layer
    would raise — never halfway into a run.
    """

    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)
    simulator: SimulatorConfig = field(default_factory=SimulatorConfig)
    sampling: SamplingConfig = field(default_factory=SamplingConfig)
    sweep: SweepConfig = field(default_factory=SweepConfig)
    tradeoff: TradeoffConfig = field(default_factory=TradeoffConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    server: ServerConfig = field(default_factory=ServerConfig)
    streaming: StreamingConfig = field(default_factory=StreamingConfig)

    def __post_init__(self) -> None:
        self.validate()

    # -- validation -----------------------------------------------------
    def validate(self) -> None:
        """Check cross-field consistency; raise ``ValueError`` on bad combos."""
        workload, engine = self.workload, self.engine
        if workload.preset not in PRESETS:
            raise ValueError(
                f"unknown preset {workload.preset!r}; known: {sorted(PRESETS)}"
            )
        if engine.backend not in available_backends():
            raise unknown_backend_error(engine.backend)
        if engine.workers is not None:
            validate_workers(engine.workers)
            if not backend_accepts_option(engine.backend, "workers"):
                raise backend_option_error(engine.backend, {"workers"})
        validate_plan_mode(engine.plan)
        if engine.batch < 1:
            raise ValueError(f"batch must be >= 1, got {engine.batch}")
        if engine.cache_size < 0:
            raise ValueError(
                f"cache_size must be >= 0, got {engine.cache_size}"
            )
        validate_tile_shape(engine.tile_m, engine.tile_k)
        if self.simulator.mode not in MODES:
            raise ValueError(
                f"unknown mode {self.simulator.mode!r}; expected one of {MODES}"
            )
        if not self.simulator.baselines:
            raise ValueError(
                "simulator.baselines must name at least one accelerator "
                "(the first is the speedup base)"
            )
        unknown = sorted(set(self.simulator.baselines) - set(BASELINES))
        if unknown:
            raise ValueError(
                f"unknown baseline(s) {unknown}; available: {sorted(BASELINES)}"
            )
        if self.sampling.max_tiles < 0:
            raise ValueError(
                f"max_tiles must be >= 0 (0 = exact), got {self.sampling.max_tiles}"
            )
        for axis, values in (("m_values", self.sweep.m_values),
                             ("k_values", self.sweep.k_values)):
            if not values or any(v < 1 for v in values):
                raise ValueError(
                    f"sweep {axis} must be non-empty positive ints, got {values}"
                )
        if self.tradeoff.sparsity_increase < 0:
            raise ValueError(
                "sparsity_increase must be >= 0, got "
                f"{self.tradeoff.sparsity_increase}"
            )
        if self.scheduler.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.scheduler.max_inflight}"
            )
        if self.scheduler.coalesce_window_ms < 0:
            raise ValueError(
                "coalesce_window_ms must be >= 0, got "
                f"{self.scheduler.coalesce_window_ms}"
            )
        if self.scheduler.stream_chunk < 1:
            raise ValueError(
                f"stream_chunk must be >= 1, got {self.scheduler.stream_chunk}"
            )
        resilience = self.resilience
        if resilience.overload_policy not in OVERLOAD_POLICIES:
            raise ValueError(
                f"unknown overload_policy {resilience.overload_policy!r}; "
                f"expected one of {OVERLOAD_POLICIES}"
            )
        for name, value in (
            ("shed_timeout_ms", resilience.shed_timeout_ms),
            ("deadline_ms", resilience.deadline_ms),
            ("retry_backoff_ms", resilience.retry_backoff_ms),
        ):
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if resilience.retries < 0:
            raise ValueError(f"retries must be >= 0, got {resilience.retries}")
        if resilience.max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {resilience.max_pool_rebuilds}"
            )
        # Same eager-validation contract as the engine fields: a bad
        # fault spec fails at config time with the harness's own error.
        FaultPlan.parse(resilience.faults)
        server = self.server
        if not 0 <= server.port <= 65535:
            raise ValueError(f"server port must be in 0..65535, got {server.port}")
        if not server.host:
            raise ValueError("server host must be non-empty")
        if not server.default_tenant:
            raise ValueError("server default_tenant must be non-empty")
        if server.tenants and server.default_tenant not in server.tenants:
            raise ValueError(
                f"server default_tenant {server.default_tenant!r} must appear "
                f"in the tenants list {list(server.tenants)}"
            )
        if server.tenant_max_inflight < 0:
            raise ValueError(
                "server tenant_max_inflight must be >= 0 (0 = no cap), got "
                f"{server.tenant_max_inflight}"
            )
        if not 0 < server.tenant_queue_share <= 1:
            raise ValueError(
                "server tenant_queue_share must be in (0, 1], got "
                f"{server.tenant_queue_share}"
            )
        if not server.priorities:
            raise ValueError(
                "server priorities must name at least one class "
                "(the first is the default)"
            )
        if len(set(server.priorities)) != len(server.priorities):
            raise ValueError(
                f"server priorities must be distinct, got {list(server.priorities)}"
            )
        if len(server.priority_weights) != len(server.priorities):
            raise ValueError(
                f"server priority_weights needs one weight per priority class "
                f"({len(server.priorities)}), got {len(server.priority_weights)}"
            )
        if any(weight < 1 for weight in server.priority_weights):
            raise ValueError(
                "server priority_weights must be positive ints, got "
                f"{list(server.priority_weights)}"
            )
        if server.drain_timeout_s < 0:
            raise ValueError(
                f"server drain_timeout_s must be >= 0, got {server.drain_timeout_s}"
            )
        cache = self.cache
        if cache.max_bytes < 0:
            raise ValueError(
                f"cache max_bytes must be >= 0 (0 = unbounded), got "
                f"{cache.max_bytes}"
            )
        if cache.verify not in VERIFY_POLICIES:
            raise ValueError(
                f"unknown verify policy {cache.verify!r}; choose from "
                + ", ".join(VERIFY_POLICIES)
            )
        streaming = self.streaming
        if streaming.window < 1:
            raise ValueError(
                f"streaming window must be >= 1, got {streaming.window}"
            )
        if not 0 <= streaming.hop <= streaming.window:
            raise ValueError(
                f"streaming hop must be in 0..window ({streaming.window}), "
                f"got {streaming.hop}"
            )
        if streaming.max_inflight_windows < 1:
            raise ValueError(
                "streaming max_inflight_windows must be >= 1, got "
                f"{streaming.max_inflight_windows}"
            )
        if streaming.source not in STREAM_SOURCES:
            raise ValueError(
                f"unknown stream source {streaming.source!r}; expected one "
                f"of {STREAM_SOURCES}"
            )
        if streaming.stall_timeout_s < 0:
            raise ValueError(
                "streaming stall_timeout_s must be >= 0 (0 = no timeout), "
                f"got {streaming.stall_timeout_s}"
            )
        if not 0.0 < streaming.rate <= 1.0:
            raise ValueError(
                f"streaming rate must be in (0, 1], got {streaming.rate}"
            )
        for name, value in (
            ("rows", streaming.rows),
            ("cols", streaming.cols),
            ("steps", streaming.steps),
        ):
            if value < 1:
                raise ValueError(
                    f"streaming {name} must be >= 1, got {value}"
                )

    # -- dict / file round-trip ----------------------------------------
    def to_dict(self) -> dict:
        """Nested plain-type dict (tuples become lists, ``None`` dropped).

        Dropping ``None`` keeps the dict TOML-representable; absent keys
        read back as their defaults, which is exactly ``None``'s meaning
        here — the round-trip is lossless.
        """
        out: dict[str, dict] = {}
        for name in _SECTIONS:
            section = getattr(self, name)
            entries = {}
            for f in fields(section):
                value = getattr(section, f.name)
                if value is None:
                    continue
                if isinstance(value, tuple):
                    value = list(value)
                entries[f.name] = value
            out[name] = entries
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunConfig":
        unknown = sorted(set(data) - set(_SECTIONS))
        if unknown:
            raise ValueError(
                f"unknown config section(s) {unknown}; known: {sorted(_SECTIONS)}"
            )
        sections = {
            name: _section_from_dict(name, section_cls, data.get(name, {}))
            for name, section_cls in _SECTIONS.items()
        }
        return cls(**sections)

    def to_toml(self) -> str:
        lines: list[str] = []
        for name, entries in self.to_dict().items():
            lines.append(f"[{name}]")
            for key, value in entries.items():
                lines.append(f"{key} = {_toml_value(value)}")
            lines.append("")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    @classmethod
    def from_file(cls, path: str | Path) -> "RunConfig":
        """Load a config from a ``.toml`` or ``.json`` file."""
        path = Path(path)
        if path.suffix == ".toml":
            if tomllib is None:  # pragma: no cover - version-dependent
                raise RuntimeError(
                    "reading TOML configs needs Python >= 3.11 (tomllib) or "
                    "the 'tomli' backport; use a .json config instead"
                )
            with open(path, "rb") as handle:
                data = tomllib.load(handle)
        elif path.suffix == ".json":
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        else:
            raise ValueError(
                f"config file must end in .toml or .json, got {path.name!r}"
            )
        return cls.from_dict(data)

    def to_file(self, path: str | Path) -> Path:
        """Write this config as TOML or JSON, chosen by the file suffix."""
        path = Path(path)
        if path.suffix == ".toml":
            text = self.to_toml()
        elif path.suffix == ".json":
            text = self.to_json()
        else:
            raise ValueError(
                f"config file must end in .toml or .json, got {path.name!r}"
            )
        path.write_text(text, encoding="utf-8")
        return path

    # -- immutable updates ---------------------------------------------
    def with_overrides(self, overrides: dict | None = None, **sections) -> "RunConfig":
        """New config with dotted-key and/or whole-section overrides.

        ``overrides`` maps ``"section.key"`` to a native value::

            cfg.with_overrides({"engine.backend": "sharded",
                                "engine.workers": 4})

        Section keyword arguments replace fields of one section at once::

            cfg.with_overrides(workload={"model": "lenet5"})

        The receiver is untouched; the returned config is re-validated.
        """
        updates: dict[str, dict] = {}
        for dotted, value in (overrides or {}).items():
            section, _, key = dotted.partition(".")
            if section not in _SECTIONS or not key:
                raise ValueError(
                    f"override key must be 'section.key' with section in "
                    f"{sorted(_SECTIONS)}, got {dotted!r}"
                )
            updates.setdefault(section, {})[key] = value
        for section, mapping in sections.items():
            if section not in _SECTIONS:
                raise ValueError(
                    f"unknown config section {section!r}; known: {sorted(_SECTIONS)}"
                )
            updates.setdefault(section, {}).update(mapping)
        new_sections = {}
        for name, section_cls in _SECTIONS.items():
            current = getattr(self, name)
            if name not in updates:
                new_sections[name] = current
                continue
            known = {f.name for f in fields(section_cls)}
            unknown = sorted(set(updates[name]) - known)
            if unknown:
                raise ValueError(
                    f"unknown key(s) {unknown} in config section [{name}]; "
                    f"known: {sorted(known)}"
                )
            hints = typing.get_type_hints(section_cls)
            coerced = {
                key: tuple(value)
                if typing.get_origin(hints[key]) is tuple
                and isinstance(value, list)
                else value
                for key, value in updates[name].items()
            }
            new_sections[name] = replace(current, **coerced)
        return RunConfig(**new_sections)

    def with_sets(self, assignments: list[str]) -> "RunConfig":
        """Apply CLI-style ``section.key=value`` strings (the ``--set`` flag).

        Value text is coerced by the target field's type annotation:
        ints, floats, booleans, ``none``/``null`` for optional fields,
        and comma-separated lists for tuple fields
        (``--set sweep.m_values=64,128``).
        """
        overrides: dict[str, object] = {}
        for assignment in assignments:
            dotted, sep, text = assignment.partition("=")
            dotted = dotted.strip()
            section, _, key = dotted.partition(".")
            if not sep or section not in _SECTIONS or not key:
                raise ValueError(
                    f"--set expects 'section.key=value' with section in "
                    f"{sorted(_SECTIONS)}, got {assignment!r}"
                )
            section_cls = _SECTIONS[section]
            hints = typing.get_type_hints(section_cls)
            if key not in hints:
                raise ValueError(
                    f"unknown key {key!r} in config section [{section}]; "
                    f"known: {sorted(hints)}"
                )
            overrides[dotted] = _coerce(text.strip(), hints[key])
        return self.with_overrides(overrides)
