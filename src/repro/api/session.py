"""The Session facade: one object that owns configuration and lifecycle.

A :class:`Session` binds a :class:`~repro.api.config.RunConfig` to live
execution resources — one transform backend (and, for ``sharded``, one
process pool), one :class:`~repro.engine.ProsperityEngine` with its
forest cache — and exposes every experiment the CLI offers as a method:
:meth:`run`, :meth:`simulate`, :meth:`sweep`, :meth:`density`,
:meth:`scaling`, :meth:`tradeoff`. All calls share the same backend and
engine, so a sharded pool is spawned at most once per session no matter
how many experiments run through it.

Results come back as structured :class:`RunResult` subclasses carrying
the config that produced them, the wall-clock, and the layer reports
(:class:`~repro.engine.EngineReport`, :class:`~repro.arch.SimReport`,
sweep points, density report) — no parsing of printed tables.

For concurrent callers, :meth:`submit` is a queue seam: jobs are routed
through a session-owned :class:`~repro.api.scheduler.Scheduler` (which
serializes execution against the shared engine and coalesces compatible
work) and returned as :class:`concurrent.futures.Future` objects — the
same Future-based contract the original single-worker queue exposed.
:meth:`stream` yields per-workload :class:`RunChunk` results as the
trace planner's buckets complete instead of one blocking final result,
and :class:`~repro.api.aio.AsyncSession` wraps the same scheduler for
``asyncio`` callers.

Quickstart::

    from repro.api import RunConfig, Session

    cfg = RunConfig().with_overrides({"workload.model": "lenet5",
                                      "workload.dataset": "mnist",
                                      "engine.backend": "fused"})
    with Session(cfg) as session:
        result = session.run()
        print(result.report.tiles_per_sec)
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.analysis.density import DensityReport, density_report
from repro.analysis.sweep import SweepPoint, sweep_tile_sizes
from repro.analysis.tradeoff import TradeoffResult, evaluate_tradeoff
from repro.api.config import RunConfig, engine_backend_options
from repro.arch.config import DEFAULT_CONFIG
from repro.arch.report import SimReport
from repro.arch.scaling import ScalingPoint, scaling_study
from repro.arch.simulator import ProsperitySimulator
from repro.baselines import BASELINES
from repro.core.prosparsity import ProSparsityStats
from repro.engine import (
    Backend,
    EngineReport,
    ProsperityEngine,
    WorkloadRun,
    faults,
    get_backend,
)
from repro.engine.store import open_store
from repro.snn.trace import ModelTrace
from repro.streaming import StreamResult, StreamRunner, StreamSource, build_source
from repro.workloads import get_trace

__all__ = [
    "DensityResult",
    "EngineRunResult",
    "RunChunk",
    "RunResult",
    "ScalingResult",
    "Session",
    "SimulationResult",
    "StreamRunResult",
    "SweepResult",
    "TradeoffRunResult",
]


@dataclass(frozen=True)
class RunResult:
    """Base result: the config that produced it plus wall-clock seconds."""

    config: RunConfig
    seconds: float

    @property
    def profile(self) -> dict[str, float]:
        """Pipeline-stage wall-clock breakdown, when the run produced one."""
        return {}


@dataclass(frozen=True)
class EngineRunResult(RunResult):
    """:meth:`Session.run` outcome: the engine report, records attached."""

    report: EngineReport = None  # type: ignore[assignment]
    verified: bool | None = None  # None = verification not requested

    @property
    def profile(self) -> dict[str, float]:
        return dict(self.report.profile)


@dataclass(frozen=True)
class RunChunk(RunResult):
    """One streamed slice of an engine run: workloads completed so far.

    :meth:`Session.stream` (and streaming scheduler jobs) yield these as
    the trace planner's shape buckets finish: each chunk carries the
    workloads whose final tiles were just scattered, in completion
    order. ``seconds`` is the wall-clock since the run started when the
    chunk was emitted; per-workload kernel time is not attributed to
    chunks (the final :class:`EngineRunResult` carries the full report).
    """

    index: int = 0
    runs: list[WorkloadRun] = field(default_factory=list)

    @property
    def tiles(self) -> int:
        return sum(run.tiles for run in self.runs)

    @property
    def workloads(self) -> tuple[str, ...]:
        return tuple(run.name for run in self.runs)

    @property
    def stats(self) -> ProSparsityStats:
        merged = ProSparsityStats()
        for run in self.runs:
            merged.merge(run.stats)
        return merged


@dataclass(frozen=True)
class SimulationResult(RunResult):
    """:meth:`Session.simulate` outcome: one SimReport per accelerator."""

    reports: dict[str, SimReport] = field(default_factory=dict)

    @property
    def prosperity(self) -> SimReport:
        return self.reports["prosperity"]


@dataclass(frozen=True)
class SweepResult(RunResult):
    """:meth:`Session.sweep` outcome: Fig. 7's two sweep axes."""

    m_sweep: list[SweepPoint] = field(default_factory=list)
    k_sweep: list[SweepPoint] = field(default_factory=list)

    @property
    def points(self) -> list[SweepPoint]:
        return [*self.m_sweep, *self.k_sweep]


@dataclass(frozen=True)
class DensityResult(RunResult):
    """:meth:`Session.density` outcome: the four-paradigm density report."""

    report: DensityReport = None  # type: ignore[assignment]


@dataclass(frozen=True)
class ScalingResult(RunResult):
    """:meth:`Session.scaling` outcome: the Sec. VIII-A scaling grid."""

    points: list[ScalingPoint] = field(default_factory=list)


@dataclass(frozen=True)
class TradeoffRunResult(RunResult):
    """:meth:`Session.tradeoff` outcome: the Sec. VII-G benefit/cost check."""

    result: TradeoffResult = None  # type: ignore[assignment]


@dataclass(frozen=True)
class StreamRunResult(RunResult):
    """A ``"stream"`` scheduler job's final outcome.

    Wraps the :class:`~repro.streaming.StreamResult` the underlying
    :meth:`Session.stream_source` generator returned; ``report`` exposes
    its :class:`~repro.engine.EngineReport` (``plan == "stream"``) for
    consumers that already understand engine reports.
    """

    result: StreamResult = None  # type: ignore[assignment]

    @property
    def report(self) -> EngineReport:
        return self.result.report

    @property
    def profile(self) -> dict[str, float]:
        return dict(self.result.report.profile)


class Session:
    """Config-driven facade over the engine, simulator, and analysis layers.

    Parameters
    ----------
    config:
        The run configuration; ``None`` uses :class:`RunConfig` defaults.
    engine:
        An already-constructed :class:`~repro.engine.ProsperityEngine` to
        share instead of building one from ``config`` — the serving
        scheduler uses this so many sessions (one per client config) run
        through one engine, one cache, and one sharded pool. A shared
        engine must match the config's engine section (backend name,
        tile shape, plan mode, and — when the config pins one — worker
        count); the session never closes it.

    The backend and engine are constructed lazily on first use and shared
    by every call — ``Session`` is the pool-hygiene boundary: one
    ``sharded`` session spawns exactly one process pool across any mix of
    :meth:`run` / :meth:`simulate` / :meth:`sweep` calls, and
    :meth:`close` (or the context manager) releases it.
    """

    _QUEUEABLE = (
        "run",
        "simulate",
        "sweep",
        "density",
        "scaling",
        "tradeoff",
        "stream",
    )

    def __init__(
        self,
        config: RunConfig | None = None,
        *,
        engine: ProsperityEngine | None = None,
    ):
        self.config = config if config is not None else RunConfig()
        self._owns_engine = engine is None
        if engine is not None:
            engine_cfg = self.config.engine
            engine_workers = getattr(engine.backend, "workers", None)
            mismatched = (
                engine.backend.name != engine_cfg.backend
                or engine.tile_m != engine_cfg.tile_m
                or engine.tile_k != engine_cfg.tile_k
                or engine.plan != engine_cfg.plan
                # workers=None in the config means "backend default":
                # any pool size is acceptable there.
                or (
                    engine_cfg.workers is not None
                    and engine_workers != engine_cfg.workers
                )
            )
            if mismatched:
                raise ValueError(
                    "shared engine does not match the session config: engine "
                    f"is backend={engine.backend.name!r} tile="
                    f"({engine.tile_m}, {engine.tile_k}) plan={engine.plan!r} "
                    f"workers={engine_workers}, config wants "
                    f"backend={engine_cfg.backend!r} tile="
                    f"({engine_cfg.tile_m}, {engine_cfg.tile_k}) "
                    f"plan={engine_cfg.plan!r} workers={engine_cfg.workers}"
                )
        self._backend: Backend | None = engine.backend if engine else None
        self._engine: ProsperityEngine | None = engine
        self._store = None  # session-owned ResultStore, created with the engine
        self._scheduler = None  # session-owned Scheduler, created on demand
        self._lock = threading.RLock()
        self._closed = False
        self._draining = False
        # A configured fault plan activates the deterministic injection
        # harness for this process (off when the spec is empty) — same
        # seam as Scheduler, so `repro run` chaos drills work too.
        if self.config.resilience.faults:
            faults.install(self.config.resilience.faults)

    @classmethod
    def from_file(cls, path: str | Path, sets: list[str] | None = None) -> "Session":
        """Session from a TOML/JSON config file, plus optional ``--set``s."""
        config = RunConfig.from_file(path)
        if sets:
            config = config.with_sets(sets)
        return cls(config)

    # -- lifecycle ------------------------------------------------------
    @property
    def backend(self) -> Backend:
        """The shared transform backend (constructed on first access)."""
        with self._lock:
            self._check_open()
            if self._backend is None:
                self._backend = get_backend(
                    self.config.engine.backend,
                    workers=self.config.engine.workers,
                    # [resilience] supervision knobs for backends that
                    # take them (sharded pool rebuild budget / degrade).
                    **engine_backend_options(self.config),
                )
            return self._backend

    @property
    def engine(self) -> ProsperityEngine:
        """The shared engine: one forest cache, one arena, one backend."""
        with self._lock:
            self._check_open()
            if self._engine is None:
                engine_cfg = self.config.engine
                # The session owns the persistent store (the engine only
                # borrows it) and drains/closes it with the engine. A
                # damaged store degrades to None-equivalent behavior
                # inside ResultStore itself, never here.
                self._store = open_store(self.config.cache)
                self._engine = ProsperityEngine(
                    backend=self.backend,
                    tile_m=engine_cfg.tile_m,
                    tile_k=engine_cfg.tile_k,
                    cache_size=engine_cfg.cache_size,
                    plan=engine_cfg.plan,
                    store=self._store,
                )
            return self._engine

    def close(self) -> None:
        """Drain the scheduler queue, then release engine and backend.

        Fully idempotent — a double (or concurrent) close is a no-op.
        Queued :meth:`submit` / :meth:`stream` jobs finish against a
        still-open session before resources go away; a shared (injected)
        engine is left open for its other users, so the backend — and
        any sharded pool — is closed exactly once, by its owner.
        """
        with self._lock:
            if self._closed or self._draining:
                return
            # Refuse new submissions, but let already-queued work finish
            # against a still-open session before resources go away.
            self._draining = True
            scheduler, self._scheduler = self._scheduler, None
        if scheduler is not None:
            scheduler.close(wait=True)
        with self._lock:
            self._closed = True
            if self._engine is not None:
                if self._owns_engine:
                    self._engine.close()
                self._engine = None
            if self._backend is not None:
                if self._owns_engine:
                    self._backend.close()
                self._backend = None
            if self._store is not None:
                self._store.close()  # drains queued publishes
                self._store = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    # -- workload plumbing ----------------------------------------------
    def trace(self) -> ModelTrace:
        """The configured model trace (cached by the workload registry)."""
        workload = self.config.workload
        return get_trace(
            workload.model, workload.dataset, workload.preset, workload.seed
        )

    def _rng(self) -> np.random.Generator:
        """A fresh, deterministically seeded sampling RNG per call.

        Every experiment starts from the same seed, so flag-driven and
        config-file-driven invocations sample identical tiles and produce
        bit-identical records.
        """
        return np.random.default_rng(self.config.workload.seed)

    # -- experiments ----------------------------------------------------
    def run(self) -> EngineRunResult:
        """Batched whole-trace engine run (the CLI's ``repro run``)."""
        with self._lock:
            self._check_open()
            start = time.perf_counter()
            trace = self.trace()
            report = self.engine.run(trace, batch=self.config.engine.batch)
            verified = None
            if self.config.engine.verify:
                verified = self.engine.verify_trace(trace)
            return EngineRunResult(
                config=self.config,
                seconds=time.perf_counter() - start,
                report=report,
                verified=verified,
            )

    def simulate(self) -> SimulationResult:
        """Race the configured baselines against the Prosperity simulator."""
        with self._lock:
            self._check_open()
            start = time.perf_counter()
            trace = self.trace()
            reports: dict[str, SimReport] = {}
            for name in self.config.simulator.baselines:
                reports[name] = BASELINES[name]().simulate(trace)
            engine_cfg = self.config.engine
            arch_config = DEFAULT_CONFIG.with_tile(
                m=engine_cfg.tile_m, k=engine_cfg.tile_k
            )
            simulator = ProsperitySimulator(
                config=arch_config,
                mode=self.config.simulator.mode,
                max_tiles_per_workload=self.config.sampling.effective,
                rng=self._rng(),
                engine=self.engine,  # shared: cache, backend, pool
            )
            reports["prosperity"] = simulator.simulate(trace)
            return SimulationResult(
                config=self.config,
                seconds=time.perf_counter() - start,
                reports=reports,
            )

    def sweep(self) -> SweepResult:
        """Fig. 7 tiling design sweep over the configured (m, k) grids."""
        with self._lock:
            self._check_open()
            start = time.perf_counter()
            m_sweep, k_sweep = sweep_tile_sizes(
                [self.trace()],
                m_values=self.config.sweep.m_values,
                k_values=self.config.sweep.k_values,
                max_tiles=self.config.sampling.effective,
                rng=self._rng(),
                backend=self.backend,  # shared instance: pool reused, kept open
                plan=self.config.engine.plan,
            )
            return SweepResult(
                config=self.config,
                seconds=time.perf_counter() - start,
                m_sweep=m_sweep,
                k_sweep=k_sweep,
            )

    def density(self) -> DensityResult:
        """Fig. 11 density comparison across sparsity paradigms."""
        with self._lock:
            self._check_open()
            start = time.perf_counter()
            report = density_report(
                self.trace(),
                tile_m=self.config.engine.tile_m,
                tile_k=self.config.engine.tile_k,
                max_tiles=self.config.sampling.effective,
                rng=self._rng(),
                engine=self.engine,
            )
            return DensityResult(
                config=self.config,
                seconds=time.perf_counter() - start,
                report=report,
            )

    def scaling(self) -> ScalingResult:
        """Sec. VIII-A multi-PPU scaling study."""
        with self._lock:
            self._check_open()
            start = time.perf_counter()
            points = scaling_study(
                self.trace(),
                max_tiles=self.config.sampling.effective,
                rng=self._rng(),
            )
            return ScalingResult(
                config=self.config,
                seconds=time.perf_counter() - start,
                points=points,
            )

    def tradeoff(self) -> TradeoffRunResult:
        """Sec. VII-G search-overhead trade-off for the configured dS."""
        with self._lock:
            self._check_open()
            start = time.perf_counter()
            result = evaluate_tradeoff(self.config.tradeoff.sparsity_increase)
            return TradeoffRunResult(
                config=self.config,
                seconds=time.perf_counter() - start,
                result=result,
            )

    # -- concurrency seam -----------------------------------------------
    @property
    def scheduler(self):
        """The session-owned :class:`~repro.api.scheduler.Scheduler`.

        Created on first use and seeded with this session's engine, so
        scheduled jobs share the session's cache, arena, and (for
        ``sharded``) process pool. Closed — after draining — by
        :meth:`close`.
        """
        from repro.api.scheduler import Scheduler

        with self._lock:
            self._check_open()
            if self._draining:
                raise RuntimeError("session is closing; no new submissions")
            if self._scheduler is None:
                scheduler = Scheduler(self.config)
                scheduler.adopt_engine(self.config, self.engine)
                self._scheduler = scheduler
            return self._scheduler

    def submit(self, kind: str, timeout: float | None = None) -> Future:
        """Queue an experiment for asynchronous execution.

        ``kind`` names any experiment method (``"run"``, ``"simulate"``,
        ``"sweep"``, ``"density"``, ``"scaling"``, ``"tradeoff"``, or
        ``"stream"`` — a sliding-window streaming job whose scheduler
        handle additionally yields per-window chunks).
        Submissions from any thread are routed through the session's
        :class:`~repro.api.scheduler.Scheduler`, which serializes
        execution against the shared engine — the safe default for
        process-pool backends — and coalesces compatible engine jobs
        into one planner batch. The returned
        :class:`concurrent.futures.Future` resolves to the same
        :class:`RunResult` objects the direct calls return.

        ``timeout`` bounds the wait for queue space (admission control):
        when it elapses the submission raises
        :class:`~repro.api.scheduler.SchedulerSaturated` instead of
        blocking further; ``None`` defers to the config's
        ``resilience.overload_policy``.
        """
        if kind not in self._QUEUEABLE:
            raise ValueError(
                f"unknown experiment {kind!r}; expected one of {self._QUEUEABLE}"
            )
        return self.scheduler.submit(kind, timeout=timeout).future

    def stream(self, chunk: int | None = None) -> Iterator[RunChunk]:
        """Stream an engine run as per-workload chunks, then the result.

        Instead of one blocking :meth:`run` result, yields a
        :class:`RunChunk` every time ``chunk`` workloads complete
        (default: ``scheduler.stream_chunk`` from the config) — the run
        executes trace-planned, so workloads finish as the planner's
        shape buckets complete, and records are bit-identical to
        :meth:`run`. The generator's ``return`` value (i.e.
        ``StopIteration.value``) is the final :class:`EngineRunResult`.
        """
        handle = self.scheduler.submit("run", stream=True, chunk=chunk)
        yield from handle.chunks()
        return handle.result()

    def stream_source(self, source: StreamSource | None = None):
        """Sliding-window streaming inference over an event-trace source.

        Yields one :class:`~repro.streaming.StreamChunk` per executed
        window and returns (``StopIteration.value``) the final
        :class:`~repro.streaming.StreamResult`. ``source`` defaults to
        whatever the ``[streaming]`` config section names (``replay`` /
        ``poisson`` / ``recurrent``); window geometry, in-flight budget,
        and the stall timeout also come from that section. Records are
        bit-identical to a batch :meth:`run` of the source's equivalent
        whole trace — tiles assemble at global matrix boundaries, and
        cross-window dedup rides the session engine's cache tiers.

        The session lock is held only while building the runner, not for
        the stream's lifetime: windows execute under the shared
        planner's ``exclusive()`` lock, so concurrent batch runs
        serialize per window rather than blocking for the whole stream.
        """
        with self._lock:
            self._check_open()
            streaming = self.config.streaming
            if source is None:
                source = build_source(self.config)
            runner = StreamRunner(
                source,
                self.engine,
                window=streaming.window,
                hop=streaming.hop,
                max_inflight_windows=streaming.max_inflight_windows,
                stall_timeout_s=streaming.stall_timeout_s,
            )
        result = yield from runner.run()
        return result
