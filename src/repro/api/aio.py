"""Asyncio facade over the serving scheduler.

:class:`AsyncSession` exposes the same experiments as
:class:`~repro.api.Session`, but every method is a coroutine that
awaits a :class:`~repro.api.scheduler.Scheduler` job instead of
blocking the event loop — concurrent ``await session.run()`` calls (or
one :meth:`gather`) therefore coalesce into shared planner batches
exactly like threaded ``submit()`` clients, and
:meth:`stream` is an async iterator over per-workload
:class:`~repro.api.session.RunChunk` results.

Quickstart::

    import asyncio
    from repro.api import AsyncSession, RunConfig

    async def main():
        base = RunConfig().with_overrides({"workload.model": "lenet5",
                                           "workload.dataset": "mnist",
                                           "engine.backend": "fused"})
        async with AsyncSession(base) as session:
            results = await session.gather(base, base, base)  # one batch
            async for chunk in session.stream():
                print(chunk.index, chunk.workloads)

    asyncio.run(main())
"""

from __future__ import annotations

import asyncio

from repro.api.config import RunConfig
from repro.api.scheduler import Job, JobHandle, Scheduler
from repro.api.session import RunResult

__all__ = ["AsyncSession"]


class AsyncSession:
    """Asyncio wrapper: ``await``-able experiments over one scheduler.

    Parameters
    ----------
    config:
        Default config for jobs submitted without one.
    scheduler:
        An existing :class:`Scheduler` to share (e.g. with threaded
        clients); the async session then does not close it. Without
        one, the session owns a private scheduler and closes it on
        ``async with`` exit / :meth:`close`.

    Execution happens on the scheduler's dispatcher thread; the event
    loop only ever waits on futures, so many coroutines can submit
    concurrently and be coalesced into one planner batch.
    """

    def __init__(
        self,
        config: RunConfig | None = None,
        *,
        scheduler: Scheduler | None = None,
    ):
        self._owns_scheduler = scheduler is None
        self.scheduler = scheduler if scheduler is not None else Scheduler(config)
        self.config = config if config is not None else self.scheduler.config

    async def __aenter__(self) -> "AsyncSession":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def close(self) -> None:
        """Drain and close the owned scheduler (shared ones stay open)."""
        if self._owns_scheduler:
            await asyncio.to_thread(self.scheduler.close)

    # -- experiments ----------------------------------------------------
    async def _submit(self, kind: str, config: RunConfig | None,
                      **kwargs) -> JobHandle:
        """Submit off-loop: ``submit()`` blocks on queue backpressure
        (``max_inflight``), which must never stall the event loop."""
        return await asyncio.to_thread(
            self.scheduler.submit, kind, config, **kwargs
        )

    async def _run_kind(
        self, kind: str, config: RunConfig | None, timeout: float | None = None
    ) -> RunResult:
        handle = await self._submit(kind, config, timeout=timeout)
        return await asyncio.wrap_future(handle.future)

    async def run(
        self, config: RunConfig | None = None, *, timeout: float | None = None
    ) -> RunResult:
        """``await``-able :meth:`Session.run` (coalescable across callers).

        ``timeout`` bounds the wait for queue space (raises
        ``SchedulerSaturated`` past it); ``None`` defers to the config's
        ``resilience.overload_policy``. The same contract applies to
        every experiment coroutine below.
        """
        return await self._run_kind("run", config, timeout)

    async def simulate(
        self, config: RunConfig | None = None, *, timeout: float | None = None
    ) -> RunResult:
        return await self._run_kind("simulate", config, timeout)

    async def sweep(
        self, config: RunConfig | None = None, *, timeout: float | None = None
    ) -> RunResult:
        return await self._run_kind("sweep", config, timeout)

    async def density(
        self, config: RunConfig | None = None, *, timeout: float | None = None
    ) -> RunResult:
        return await self._run_kind("density", config, timeout)

    async def scaling(
        self, config: RunConfig | None = None, *, timeout: float | None = None
    ) -> RunResult:
        return await self._run_kind("scaling", config, timeout)

    async def tradeoff(
        self, config: RunConfig | None = None, *, timeout: float | None = None
    ) -> RunResult:
        return await self._run_kind("tradeoff", config, timeout)

    async def gather(self, *jobs, timeout: float | None = None) -> list[RunResult]:
        """Submit many jobs as one batch and await every result in order.

        Each job is a :class:`~repro.api.scheduler.Job`, a bare
        :class:`RunConfig` (a run job), or an experiment kind name.
        Jobs enter the queue atomically, so compatible engine jobs land
        in the same coalesced planner batch. ``timeout`` bounds the
        admission wait for the whole batch (shed batches are rejected
        whole, before any handle is queued).
        """
        batch = [Job.of(job) for job in jobs]
        handles = await asyncio.to_thread(
            self.scheduler.submit_many, batch, timeout
        )
        return list(
            await asyncio.gather(
                *(asyncio.wrap_future(handle.future) for handle in handles)
            )
        )

    async def stream(self, config: RunConfig | None = None,
                     chunk: int | None = None):
        """Async iterator of :class:`RunChunk` results for one run job."""
        handle = await self._submit("run", config, stream=True, chunk=chunk)
        while True:
            item = await asyncio.to_thread(handle.next_chunk)
            if item is None:
                break
            yield item
