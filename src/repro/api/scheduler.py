"""Concurrent serving scheduler: cross-request micro-batching.

PR 4 left :meth:`Session.submit` as a one-worker queue seam; this module
widens it into a serving API. A :class:`Scheduler` accepts many
concurrent typed job submissions (:class:`Job` in, :class:`JobHandle`
out), groups compatible engine jobs by their engine signature —
``(backend, workers, tile shape, plan, cache size, [cache] section)``
— and coalesces
each group into **one** :class:`~repro.engine.planner.TracePlanner`
bucket batch: every client's tiles land in the same shape buckets, one
global content dedup runs per bucket across *all* requests, and one
fused kernel launch per bucket serves the whole group. This is the
paper-faithful way to scale throughput: Prosperity's product-sparsity
reuse gets strictly stronger as more concurrent work shares a dedup
scope, so serving N clients together costs far less than N serial runs.

Mechanics:

* **Coalescing window + fairness.** Jobs queue under a condition
  variable; the dispatcher waits ``coalesce_window_ms`` after the first
  arrival for more work to pile in, then drains *every* queued job —
  so no job ever waits more than one window before dispatch, no matter
  how busy the queue is.
* **Bounded queue depth.** At most ``max_inflight`` jobs may be queued;
  further ``submit()`` calls block until space frees (the serving
  backpressure seam).
* **Per-job scatter-back.** The planner already scatters records per
  workload; the scheduler slices those per job and builds each job its
  own :class:`~repro.engine.EngineReport` — records are bit-identical
  to running that job alone, for every backend and worker count,
  because bucket composition cannot change per-tile records (pinned by
  the planner's equivalence tests). Batch-scoped numbers (profile,
  cache traffic, ``planned_tiles``/``unique_tiles``) are attached to
  every report of the batch.
* **Shared resources.** One engine (forest cache, arena, and — for
  ``sharded`` — process pool) per engine signature, reused across every
  coalesced batch and every :class:`~repro.api.Session` the scheduler
  spawns for non-engine jobs. ``pools_spawned`` stays at one per
  signature no matter how many jobs run.
* **Cancellation + streaming.** Queued jobs can be cancelled until the
  dispatcher claims them; streaming jobs receive
  :class:`~repro.api.session.RunChunk` objects as the planner completes
  each workload (the ``on_workload`` seam), instead of one blocking
  final result.

:class:`~repro.api.aio.AsyncSession` wraps this scheduler for
``asyncio`` callers; ``repro batch`` drives it from the CLI.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.api.config import RunConfig, engine_backend_options
from repro.api.session import (
    EngineRunResult,
    RunChunk,
    RunResult,
    Session,
    StreamRunResult,
)
from repro.engine import EngineReport, ProsperityEngine, WorkloadRun
from repro.engine import faults
from repro.engine.parallel import PoolBrokenError
from repro.engine.pipeline import stats_from_records
from repro.engine.planner import PLANNED_PROFILE_STAGES
from repro.engine.store import open_store
from repro.workloads import get_trace

__all__ = [
    "JOB_KINDS",
    "BatchExecutionError",
    "DeadlineExceeded",
    "Job",
    "JobHandle",
    "Scheduler",
    "SchedulerSaturated",
    "StreamTimeoutError",
]


class SchedulerSaturated(RuntimeError):
    """``submit()`` timed out waiting for queue space (admission control).

    Raised when the queue stays full past the caller's ``timeout=`` or,
    under ``overload_policy="shed"``, past the configured
    ``shed_timeout_ms`` — the job was never queued and holds no
    resources. Shed jobs count in ``Scheduler.jobs_shed``.
    """


class DeadlineExceeded(TimeoutError):
    """A job's ``deadline_ms`` expired before the dispatcher claimed it.

    Deadlines bound *queue* latency: once a job starts executing it runs
    to completion (process-pool kernels are not interruptible), so the
    check happens at claim time and an expired job never runs at all.
    """

    def __init__(self, message: str, *, job_id: int | None = None, label: str = ""):
        super().__init__(message)
        self.job_id = job_id
        self.label = label


class BatchExecutionError(RuntimeError):
    """One job of a coalesced batch failed; names the culprit job.

    Each failed handle gets its *own* instance (never a shared object),
    with the triggering exception as ``__cause__``. Healthy jobs of the
    same batch are re-dispatched individually and still return
    bit-identical results.
    """

    def __init__(
        self,
        message: str,
        *,
        job_id: int | None = None,
        label: str = "",
        batch_size: int = 1,
    ):
        super().__init__(message)
        self.job_id = job_id
        self.label = label
        self.batch_size = batch_size


class StreamTimeoutError(TimeoutError):
    """``JobHandle.next_chunk`` timed out waiting for the next chunk.

    Subclasses :class:`TimeoutError` — the contract shared with
    ``result(timeout=)``. (The pre-1.4 ``queue.Empty`` compatibility
    base was bridged for one release and removed in 1.5.)
    """

#: Experiment kinds a scheduler accepts — the Session methods by name.
JOB_KINDS = Session._QUEUEABLE

#: Stream sentinel: pushed after a job's last chunk (or on cancellation).
_DONE = object()


def _engine_key(config: RunConfig) -> tuple:
    """Engine-compatibility signature: jobs sharing it share one engine
    (cache, arena, sharded pool, persistent store) and may coalesce
    into one batch.  The ``[cache]`` section is part of the signature:
    jobs with different store configurations must not silently share a
    store-backed engine."""
    engine = config.engine
    cache = config.cache
    return (
        engine.backend,
        engine.workers,
        engine.tile_m,
        engine.tile_k,
        engine.plan,
        engine.cache_size,
        cache.enabled,
        cache.path,
        cache.max_bytes,
        cache.verify,
    )


@dataclass(frozen=True)
class Job:
    """One typed job submission: an experiment kind plus its config.

    ``config=None`` runs under the scheduler's default config; a per-job
    :class:`RunConfig` overrides everything (workload, engine, sampling)
    for that job alone. ``label`` is free-form client metadata echoed on
    the handle (the CLI uses it for config file names).
    ``deadline_ms`` bounds the job's queue wait (``None`` defers to the
    effective config's ``resilience.deadline_ms``; ``0`` there means no
    deadline): a job still undispatched when it expires fails with
    :class:`DeadlineExceeded` instead of running late.

    ``tenant`` and ``priority`` are the multi-user serving dimensions
    from the scheduler config's ``[server]`` section: empty strings
    (the defaults) resolve to ``server.default_tenant`` and the first
    configured priority class at submission. A tenant at its queue
    quota is refused with :class:`SchedulerSaturated`; priority decides
    the job's weighted drain order within each coalesce window.
    """

    kind: str = "run"
    config: RunConfig | None = None
    label: str = ""
    deadline_ms: float | None = None
    tenant: str = ""
    priority: str = ""

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown experiment {self.kind!r}; expected one of {JOB_KINDS}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be > 0 (or None), got {self.deadline_ms}"
            )

    @classmethod
    def of(cls, value: "Job | RunConfig | str") -> "Job":
        """Coerce a kind name, a config (run job), or a Job to a Job."""
        if isinstance(value, Job):
            return value
        if isinstance(value, RunConfig):
            return cls(config=value)
        if isinstance(value, str):
            return cls(kind=value)
        raise TypeError(
            f"expected Job, RunConfig, or experiment name, got {type(value).__name__}"
        )


class JobHandle:
    """Ticket for one scheduled job: a Future plus an optional stream.

    ``future`` resolves to the same :class:`~repro.api.session.RunResult`
    subclass the direct ``Session`` call returns. While the job is still
    queued, :meth:`cancel` withdraws it; once the dispatcher claims it,
    cancellation fails (process-pool kernels are not interruptible).
    Streaming run jobs additionally deliver
    :class:`~repro.api.session.RunChunk` objects through
    :meth:`chunks` / :meth:`next_chunk` as workloads complete.
    """

    def __init__(self, job: Job, job_id: int, config: RunConfig,
                 stream_chunk: int | None = None):
        self.job = job
        self.id = job_id
        self.config = config  # effective config (job override or default)
        self.future: Future = Future()
        self.stream_chunk = stream_chunk
        # Effective serving dimensions, resolved against the scheduler's
        # [server] section at submission (defaults applied, names checked).
        self.tenant = job.tenant
        self.priority = job.priority
        # Absolute queue deadline (time.monotonic()), or None. Set by
        # the scheduler at submission; checked at dispatcher claim time.
        self.deadline_at: float | None = None
        self._chunks: queue.SimpleQueue | None = (
            queue.SimpleQueue() if stream_chunk is not None else None
        )
        self._stream_closed = False
        self._stream_lock = threading.Lock()
        self._exhausted = False

    # -- future facade --------------------------------------------------
    @property
    def streaming(self) -> bool:
        return self._chunks is not None

    def result(self, timeout: float | None = None) -> RunResult:
        return self.future.result(timeout)

    def exception(self, timeout: float | None = None):
        return self.future.exception(timeout)

    def done(self) -> bool:
        return self.future.done()

    def cancelled(self) -> bool:
        return self.future.cancelled()

    def cancel(self) -> bool:
        """Withdraw the job if it has not started; True on success."""
        ok = self.future.cancel()
        if ok:
            self._finish_stream()
        return ok

    # -- streaming ------------------------------------------------------
    def _push_chunk(self, chunk: RunChunk) -> None:
        if self._chunks is not None:
            self._chunks.put(chunk)

    def _finish_stream(self) -> None:
        """Terminate the chunk stream exactly once (idempotent)."""
        if self._chunks is None:
            return
        with self._stream_lock:
            if self._stream_closed:
                return
            self._stream_closed = True
        self._chunks.put(_DONE)

    def next_chunk(self, timeout: float | None = None) -> RunChunk | None:
        """Block for the next chunk; ``None`` once the stream is done.

        Raises the job's exception (or ``CancelledError``) after the
        stream terminates abnormally, and :class:`StreamTimeoutError` —
        a :class:`TimeoutError`, matching ``result(timeout=)`` — when no
        chunk arrives within ``timeout`` seconds.
        """
        if self._chunks is None:
            raise RuntimeError("job was not submitted with stream=True")
        if self._exhausted:
            return None
        try:
            item = self._chunks.get(timeout=timeout)
        except queue.Empty:
            raise StreamTimeoutError(
                f"no chunk within {timeout} s for job #{self.id}"
            ) from None
        if item is _DONE:
            self._exhausted = True
            if self.future.done():
                self.future.result()  # propagate error / cancellation
            return None
        return item

    def chunks(self):
        """Iterate the job's stream until the final chunk."""
        while (chunk := self.next_chunk()) is not None:
            yield chunk


class _ChunkAssembler:
    """Groups completed workloads into RunChunk objects for one stream."""

    def __init__(self, handle: JobHandle, started: float):
        self.handle = handle
        self.size = max(1, handle.stream_chunk or 1)
        self.started = started
        self.buffer: list[WorkloadRun] = []
        self.index = 0

    def add(self, run: WorkloadRun) -> None:
        self.buffer.append(run)
        if len(self.buffer) >= self.size:
            self.flush()

    def flush(self) -> None:
        if not self.buffer:
            return
        chunk = RunChunk(
            config=self.handle.config,
            seconds=time.perf_counter() - self.started,
            index=self.index,
            runs=self.buffer,
        )
        self.buffer = []
        self.index += 1
        self.handle._push_chunk(chunk)


class Scheduler:
    """Cross-request micro-batching scheduler over shared engines.

    Parameters
    ----------
    config:
        Default :class:`RunConfig` for jobs submitted without one; its
        ``[scheduler]`` section supplies ``max_inflight`` /
        ``coalesce_window_ms`` / ``stream_chunk`` unless overridden by
        the keyword arguments.
    max_inflight:
        Queue-depth bound; ``submit()`` blocks while the queue is full.
    coalesce_window_ms:
        How long the dispatcher lets compatible jobs pile up after the
        first arrival before dispatching everything queued. ``0``
        dispatches immediately (no cross-request batching unless jobs
        were enqueued together via :meth:`submit_many`).

    One dispatcher thread executes all work, so every engine (and any
    sharded process pool) is driven from a single thread — the safe
    default for process-pool backends. Execution resources live as long
    as the scheduler: one engine per distinct engine signature, one
    :class:`~repro.api.Session` per distinct job config (sharing that
    engine), all released by :meth:`close`.
    """

    def __init__(
        self,
        config: RunConfig | None = None,
        *,
        max_inflight: int | None = None,
        coalesce_window_ms: float | None = None,
    ):
        self.config = config if config is not None else RunConfig()
        sched_cfg = self.config.scheduler
        self.max_inflight = (
            sched_cfg.max_inflight if max_inflight is None else int(max_inflight)
        )
        window = (
            sched_cfg.coalesce_window_ms
            if coalesce_window_ms is None
            else coalesce_window_ms
        )
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if window < 0:
            raise ValueError(f"coalesce_window_ms must be >= 0, got {window}")
        self._window_seconds = window / 1000.0
        self._cv = threading.Condition()
        self._pending: deque[JobHandle] = deque()
        self._thread: threading.Thread | None = None
        self._closing = False
        self._closed = False
        self._ids = itertools.count(1)
        self._engines: dict[tuple, ProsperityEngine] = {}
        self._adopted: set[tuple] = set()  # engine keys the scheduler must not close
        self._stores: dict[tuple, object] = {}  # scheduler-owned persistent stores
        self._sessions: dict[RunConfig, Session] = {}
        self.resilience = self.config.resilience
        # Tenancy + priority classes come from the [server] section (the
        # network front end shares these semantics with in-process users).
        server_cfg = self.config.server
        self.server_cfg = server_cfg
        self._priorities: tuple[str, ...] = server_cfg.priorities
        self._priority_weights = dict(
            zip(server_cfg.priorities, server_cfg.priority_weights)
        )
        # Effective per-tenant queue quota: the tighter of the absolute
        # cap and the fractional share of max_inflight; None = unlimited.
        quotas = []
        if server_cfg.tenant_max_inflight > 0:
            quotas.append(server_cfg.tenant_max_inflight)
        if server_cfg.tenant_queue_share < 1.0:
            quotas.append(
                max(1, int(self.max_inflight * server_cfg.tenant_queue_share))
            )
        self.tenant_quota: int | None = min(quotas) if quotas else None
        # A configured fault plan activates the deterministic injection
        # harness for this process (off when the spec is empty).
        if self.resilience.faults:
            faults.install(self.resilience.faults)
        #: Serving statistics (informational; updated by the dispatcher).
        self.jobs_submitted = 0
        self.jobs_coalesced = 0  # jobs that ran inside a >1-job batch
        self.batches = 0  # coalesced planner batches executed
        #: Per-tenant / per-priority submission totals (observability).
        self.jobs_by_tenant: dict[str, int] = {}
        self.jobs_by_priority: dict[str, int] = {}
        #: Resilience counters.
        self.jobs_shed = 0  # submits rejected by admission control
        self.jobs_retried = 0  # job dispatches retried on transient failure
        self.jobs_expired = 0  # jobs failed by queue-deadline expiry
        self.isolation_reruns = 0  # solo re-dispatches after a batch failure

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self, wait: bool = True) -> None:
        """Stop accepting jobs, then release engines and sessions.

        ``wait=True`` (the default) drains the queue first — every
        already-submitted job completes against live resources.
        ``wait=False`` cancels whatever is still queued. Idempotent.
        """
        with self._cv:
            if self._closed:
                return
            self._closing = True
            if not wait:
                while self._pending:
                    self._pending.popleft().cancel()
            self._cv.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join()
        with self._cv:
            if self._closed:
                return
            self._closed = True
        # Sessions first (they never close the shared engines), then the
        # engines the scheduler constructed; adopted engines stay open
        # for their owners.
        for session in self._sessions.values():
            session.close()
        self._sessions.clear()
        for key, engine in self._engines.items():
            if key not in self._adopted:
                engine.close()
        self._engines.clear()
        # Stores last: the engines above may still flush async writes.
        for store in self._stores.values():
            store.close()
        self._stores.clear()

    @property
    def pools_spawned(self) -> int:
        """Total process pools spawned across all scheduler engines."""
        return sum(
            getattr(engine.backend, "pools_spawned", 0)
            for engine in self._engines.values()
        )

    @property
    def stats(self) -> dict:
        """Serving + resilience counters as one snapshot dict.

        Backend supervision numbers (``pool_rebuilds``, ``degraded``)
        aggregate over the scheduler's live engines, so read them before
        :meth:`close` releases the engines.
        """
        with self._cv:
            engines = list(self._engines.values())
        pool_rebuilds = 0
        degraded = False
        for engine in engines:
            counters = engine.backend.failure_counters()
            pool_rebuilds += counters.get("pool_rebuilds", 0)
            degraded = degraded or bool(counters.get("degraded"))
        # Persistent-store traffic aggregates over distinct stores (two
        # engines never share one today, but dedupe by identity anyway).
        store_totals = {
            "store_hits": 0,
            "store_misses": 0,
            "store_corrupt": 0,
            "store_evictions": 0,
        }
        seen_stores: set[int] = set()
        for engine in engines:
            store = getattr(engine, "store", None)
            if store is None or id(store) in seen_stores:
                continue
            seen_stores.add(id(store))
            counters = store.counters()
            for name in store_totals:
                store_totals[name] += counters.get(name, 0)
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_coalesced": self.jobs_coalesced,
            "jobs_by_tenant": dict(self.jobs_by_tenant),
            "jobs_by_priority": dict(self.jobs_by_priority),
            "batches": self.batches,
            "jobs_shed": self.jobs_shed,
            "jobs_retried": self.jobs_retried,
            "jobs_expired": self.jobs_expired,
            "isolation_reruns": self.isolation_reruns,
            "pool_rebuilds": pool_rebuilds,
            "pools_spawned": self.pools_spawned,
            "degraded": degraded,
            **store_totals,
        }

    def adopt_engine(self, config: RunConfig, engine: ProsperityEngine) -> None:
        """Share an externally-owned engine for ``config``'s signature.

        Jobs whose engine signature matches then run through ``engine``
        (its cache, arena, and pool) instead of a scheduler-constructed
        one; :meth:`close` leaves it open for its owner. ``Session``
        uses this so ``session.submit()`` reuses the session's engine.
        """
        key = _engine_key(config)
        with self._cv:
            existing = self._engines.get(key)
            if existing is not None and existing is not engine:
                raise RuntimeError(
                    "an engine is already registered for this signature"
                )
            self._engines[key] = engine
            self._adopted.add(key)

    # -- submission -----------------------------------------------------
    def submit(
        self,
        job: Job | RunConfig | str = "run",
        config: RunConfig | None = None,
        *,
        stream: bool = False,
        chunk: int | None = None,
        timeout: float | None = None,
    ) -> JobHandle:
        """Queue one job; blocks while ``max_inflight`` jobs are queued.

        ``job`` is a :class:`Job`, a kind name (``config`` then supplies
        the per-job override), or a bare :class:`RunConfig` (a run job).
        ``stream=True`` (run jobs only) makes the handle yield
        :class:`~repro.api.session.RunChunk` objects as workloads
        complete; ``chunk`` overrides the config's
        ``scheduler.stream_chunk`` grouping.

        ``timeout`` bounds the wait for queue space in seconds, raising
        :class:`SchedulerSaturated` when it elapses. ``None`` defers to
        the configured overload policy: ``"block"`` waits indefinitely
        (the pre-resilience behavior, unchanged), ``"shed"`` waits at
        most ``resilience.shed_timeout_ms``.
        """
        if isinstance(job, str):
            job = Job(kind=job, config=config)
        else:
            job = Job.of(job)
            if config is not None:
                raise ValueError(
                    "pass the config inside the Job (or use submit(kind, config))"
                )
        if job.kind == "stream":
            # Stream jobs always deliver per-window chunks — the whole
            # point of the kind — so the handle is streaming regardless.
            stream = True
        if stream and job.kind not in ("run", "stream"):
            raise ValueError(
                f"streaming is only supported for 'run' and 'stream' jobs, "
                f"got {job.kind!r}"
            )
        return self._enqueue([self._handle_for(job, stream, chunk)], timeout)[0]

    def submit_many(self, jobs, timeout: float | None = None) -> list[JobHandle]:
        """Atomically queue several jobs — they dispatch as one batch.

        All handles enter the queue under one lock acquisition, so the
        dispatcher's next drain sees them together even with a zero
        coalescing window (the CLI ``repro batch`` path). ``timeout``
        follows the same admission-control contract as :meth:`submit`;
        a shed batch is rejected whole (no handle is queued).
        """
        handles = [self._handle_for(Job.of(job), False, None) for job in jobs]
        return self._enqueue(handles, timeout)

    def gather(self, jobs) -> list[RunResult]:
        """Submit many jobs together and wait for every result in order."""
        return [handle.result() for handle in self.submit_many(jobs)]

    def _handle_for(self, job: Job, stream: bool, chunk: int | None) -> JobHandle:
        effective = job.config if job.config is not None else self.config
        stream_chunk = None
        if stream:
            stream_chunk = chunk if chunk is not None else (
                effective.scheduler.stream_chunk
            )
            if stream_chunk < 1:
                raise ValueError(f"stream chunk must be >= 1, got {stream_chunk}")
        handle = JobHandle(job, next(self._ids), effective, stream_chunk)
        server_cfg = self.server_cfg
        handle.tenant = job.tenant or server_cfg.default_tenant
        if server_cfg.tenants and handle.tenant not in server_cfg.tenants:
            raise ValueError(
                f"unknown tenant {handle.tenant!r}; configured tenants: "
                f"{sorted(server_cfg.tenants)}"
            )
        handle.priority = job.priority or self._priorities[0]
        if handle.priority not in self._priorities:
            raise ValueError(
                f"unknown priority {handle.priority!r}; configured "
                f"priorities: {list(self._priorities)}"
            )
        deadline_ms = job.deadline_ms
        if deadline_ms is None:
            deadline_ms = effective.resilience.deadline_ms or None
        if deadline_ms:
            handle.deadline_at = time.monotonic() + deadline_ms / 1000.0
        return handle

    def _enqueue(
        self, handles: list[JobHandle], timeout: float | None = None
    ) -> list[JobHandle]:
        # Admission control: an explicit timeout always wins; otherwise
        # the "shed" policy bounds the wait and "block" (the default)
        # keeps the original unbounded backpressure exactly.
        if timeout is None and self.resilience.overload_policy == "shed":
            timeout = self.resilience.shed_timeout_ms / 1000.0
        admission_deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            # Block for queue space: enough room for the whole batch, or
            # an empty queue (so one oversized submit_many still fits) —
            # and, per tenant, room under the tenant's queue quota.
            while True:
                if self._closing or self._closed:
                    raise RuntimeError("scheduler is closed; no new submissions")
                blocked_tenant = self._tenant_over_quota(handles)
                if blocked_tenant is None and (
                    len(self._pending) + len(handles) <= self.max_inflight
                    or not self._pending
                ):
                    break
                if admission_deadline is None:
                    self._cv.wait()
                    continue
                remaining = admission_deadline - time.monotonic()
                if remaining <= 0:
                    self.jobs_shed += len(handles)
                    if blocked_tenant is not None:
                        raise SchedulerSaturated(
                            f"tenant {blocked_tenant!r} stayed at its queue "
                            f"quota ({self.tenant_quota} job(s)) for "
                            f"{timeout * 1000:.0f} ms; {len(handles)} job(s) "
                            "shed — other tenants are unaffected"
                        )
                    raise SchedulerSaturated(
                        f"scheduler queue stayed full ({self.max_inflight} "
                        f"inflight) for {timeout * 1000:.0f} ms; "
                        f"{len(handles)} job(s) shed"
                    )
                self._cv.wait(timeout=remaining)
            self._pending.extend(handles)
            self.jobs_submitted += len(handles)
            for handle in handles:
                self.jobs_by_tenant[handle.tenant] = (
                    self.jobs_by_tenant.get(handle.tenant, 0) + 1
                )
                self.jobs_by_priority[handle.priority] = (
                    self.jobs_by_priority.get(handle.priority, 0) + 1
                )
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop, name="repro-scheduler", daemon=True
                )
                self._thread.start()
            self._cv.notify_all()
        return handles

    def _tenant_over_quota(self, handles: list[JobHandle]) -> str | None:
        """First tenant among ``handles`` whose quota would be exceeded.

        Called under ``_cv``. A tenant with nothing queued always fits
        (mirroring the oversized-``submit_many`` escape hatch for the
        global bound), so one batch larger than the quota can still run.
        """
        if self.tenant_quota is None:
            return None
        queued: dict[str, int] = {}
        for pending in self._pending:
            queued[pending.tenant] = queued.get(pending.tenant, 0) + 1
        adding: dict[str, int] = {}
        for handle in handles:
            adding[handle.tenant] = adding.get(handle.tenant, 0) + 1
        for tenant, count in adding.items():
            already = queued.get(tenant, 0)
            if already and already + count > self.tenant_quota:
                return tenant
        return None

    def queue_depths(self) -> dict:
        """Live queue-depth snapshot by tenant and by priority class.

        The network front end surfaces this under ``/metrics``; depths
        count jobs queued but not yet claimed by the dispatcher.
        """
        with self._cv:
            pending = list(self._pending)
        by_tenant: dict[str, int] = {}
        by_priority: dict[str, int] = {}
        for handle in pending:
            by_tenant[handle.tenant] = by_tenant.get(handle.tenant, 0) + 1
            by_priority[handle.priority] = by_priority.get(handle.priority, 0) + 1
        return {
            "queued": len(pending),
            "by_tenant": by_tenant,
            "by_priority": by_priority,
        }

    # -- dispatcher -----------------------------------------------------
    def _weighted_order(self, handles: list[JobHandle]) -> list[JobHandle]:
        """Order one drained window by priority-weighted interleave.

        Jobs are grouped by priority class (FIFO within a class) and
        interleaved in rank order by the configured weights — with
        weights ``(4, 1)``, each round dispatches up to 4 jobs of the
        first class, then 1 of the second, until every class drains.
        Everything queued still dispatches within the window (the PR 5
        no-starvation guarantee); weights decide *order*, which is what
        bounds a lower class's wait when higher-priority work floods in.
        """
        if len(handles) < 2 or len(self._priorities) < 2:
            return handles
        classes: dict[str, deque[JobHandle]] = {
            priority: deque() for priority in self._priorities
        }
        for handle in handles:
            classes[handle.priority].append(handle)
        ordered: list[JobHandle] = []
        while len(ordered) < len(handles):
            for priority in self._priorities:
                queued = classes[priority]
                for _ in range(self._priority_weights[priority]):
                    if not queued:
                        break
                    ordered.append(queued.popleft())
        return ordered

    def _loop(self) -> None:
        while True:
            with self._cv:
                while not self._pending and not self._closing:
                    self._cv.wait()
                if not self._pending:
                    return  # closing, queue drained
                if self._window_seconds and not self._closing:
                    # Coalescing window: let concurrent clients pile in.
                    # Everything queued is drained at the end, so no job
                    # waits more than one window.
                    deadline = time.monotonic() + self._window_seconds
                    while not self._closing:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cv.wait(timeout=remaining)
                batch = self._weighted_order(list(self._pending))
                self._pending.clear()
                self._cv.notify_all()  # wake submitters blocked on depth
            self._dispatch(batch)

    def _dispatch(self, batch: list[JobHandle]) -> None:
        claimed: list[JobHandle] = []
        for handle in batch:
            if not handle.future.set_running_or_notify_cancel():
                handle._finish_stream()  # cancelled while queued
            elif self._expired(handle):
                # Deadline check at claim time: the job waited out its
                # queue budget and must fail instead of running late.
                self.jobs_expired += 1
                handle.future.set_exception(
                    DeadlineExceeded(
                        f"job #{handle.id} missed its "
                        f"{self._deadline_ms(handle):.0f} ms queue deadline",
                        job_id=handle.id,
                        label=handle.job.label,
                    )
                )
                handle._finish_stream()
            else:
                claimed.append(handle)
        # Group compatible engine jobs (first-appearance order); every
        # other kind executes alone through its config's session.
        units: list[tuple[str, object]] = []
        groups: dict[tuple, list[JobHandle]] = {}
        for handle in claimed:
            if handle.job.kind == "run":
                key = _engine_key(handle.config)
                group = groups.get(key)
                if group is None:
                    groups[key] = group = []
                    units.append(("group", group))
                group.append(handle)
            else:
                units.append(("single", handle))
        for kind, unit in units:
            if kind == "single":
                self._run_single(unit)
            elif len(unit) == 1 and not unit[0].streaming:
                self._run_single(unit[0])
            else:
                self._run_coalesced(unit)

    # -- execution ------------------------------------------------------
    @staticmethod
    def _expired(handle: JobHandle) -> bool:
        return handle.deadline_at is not None and time.monotonic() > handle.deadline_at

    @staticmethod
    def _deadline_ms(handle: JobHandle) -> float:
        if handle.job.deadline_ms is not None:
            return handle.job.deadline_ms
        return handle.config.resilience.deadline_ms

    @staticmethod
    def _transient(exc: BaseException) -> bool:
        """Failures worth re-dispatching: the retry may see a healthy
        pool (or a burned-out injected fault). Poisoned jobs and spent
        rebuild budgets are persistent — retrying cannot help."""
        if isinstance(exc, PoolBrokenError):
            return False
        return isinstance(exc, BrokenProcessPool) or bool(
            getattr(exc, "transient", False)
        )

    def _engine_for(self, config: RunConfig) -> ProsperityEngine:
        key = _engine_key(config)
        with self._cv:
            engine = self._engines.get(key)
            if engine is None:
                engine_cfg = config.engine
                store = open_store(config.cache)
                engine = ProsperityEngine(
                    backend=engine_cfg.backend,
                    tile_m=engine_cfg.tile_m,
                    tile_k=engine_cfg.tile_k,
                    cache_size=engine_cfg.cache_size,
                    workers=engine_cfg.workers,
                    plan=engine_cfg.plan,
                    backend_options=engine_backend_options(config),
                    store=store,
                )
                self._engines[key] = engine
                if store is not None:
                    # The scheduler, not the engine, owns the store it
                    # constructed — mirror the Session ownership seam.
                    self._stores[key] = store
            return engine

    def _session_for(self, config: RunConfig) -> Session:
        session = self._sessions.get(config)
        if session is None:
            session = Session(config, engine=self._engine_for(config))
            self._sessions[config] = session
        return session

    def _run_single(self, handle: JobHandle) -> None:
        """Execute one job exactly as its own Session call would, with
        bounded retry for transient failures (broken pools, injected
        ``engine_error`` faults)."""
        retries = handle.config.resilience.retries
        backoff = handle.config.resilience.retry_backoff_ms / 1000.0
        for attempt in range(retries + 1):
            try:
                faults.poison_fault([handle.job.label], site="scheduler.single")
                session = self._session_for(handle.config)
                if handle.job.kind == "stream":
                    # Session.stream() (the per-workload batch-run
                    # stream) is a different method; the "stream" job
                    # kind drives stream_source() window by window,
                    # relaying chunks through the handle as they finish.
                    result = self._drive_stream(handle, session)
                else:
                    result = getattr(session, handle.job.kind)()
            except BaseException as exc:  # noqa: BLE001 - delivered via the future
                if attempt < retries and self._transient(exc):
                    self.jobs_retried += 1
                    if backoff:
                        time.sleep(backoff * (attempt + 1))
                    continue
                handle.future.set_exception(exc)
            else:
                handle.future.set_result(result)
            break
        handle._finish_stream()

    @staticmethod
    def _drive_stream(handle: JobHandle, session: Session) -> "StreamRunResult":
        """Pump one sliding-window stream job on the dispatcher thread.

        Chunks flow through the handle as windows complete; the future
        resolves to a :class:`~repro.api.session.StreamRunResult`
        wrapping the stream's final result. Runs on the dispatcher like
        every other single job, so window execution is serialized
        against coalesced batches on the shared engine.
        """
        started = time.perf_counter()
        generator = session.stream_source()
        try:
            while True:
                handle._push_chunk(next(generator))
        except StopIteration as stop:
            return StreamRunResult(
                config=handle.config,
                seconds=time.perf_counter() - started,
                result=stop.value,
            )

    def _run_coalesced(self, handles: list[JobHandle]) -> None:
        """One planner batch for a whole group of compatible run jobs.

        Every job's workloads enter one trace plan: shared shape
        buckets, one global content dedup, one kernel launch per bucket
        through the (possibly sharded) backend, then per-job
        scatter-back into individual :class:`EngineReport` objects.
        Batch-scoped numbers (profile, cache traffic, planned/unique
        tile counts) are attached to every job's report.

        Failure semantics: a failed batch is retried while the failure
        is transient (bounded by ``resilience.retries``); a persistent
        failure triggers blast-radius isolation — every unresolved job
        is re-dispatched alone, so only the genuinely poisoned job(s)
        fail (each with its *own* :class:`BatchExecutionError` naming
        it) while healthy jobs still return bit-identical results.
        A streaming job whose batch is re-dispatched restarts its chunk
        stream (chunk indices begin again at 0).
        """
        # Per-job isolation: a job whose trace cannot even be built fails
        # alone; the rest of the group still coalesces and runs.
        jobs = []
        for handle in handles:
            workload_cfg = handle.config.workload
            try:
                trace = get_trace(
                    workload_cfg.model,
                    workload_cfg.dataset,
                    workload_cfg.preset,
                    workload_cfg.seed,
                )
            except BaseException as exc:  # noqa: BLE001 - delivered via the future
                handle.future.set_exception(exc)
                handle._finish_stream()
                continue
            jobs.append((handle, trace, list(trace.workloads)))
        if not jobs:
            return
        try:
            failure = self._try_batch(jobs)
            if failure is not None:
                self._isolate(jobs, failure)
        except BaseException as exc:  # noqa: BLE001 - dispatcher must survive
            for handle, _, _ in jobs:
                if not handle.future.done():
                    handle.future.set_exception(self._blame(handle, exc, len(jobs)))
        finally:
            for handle, _, _ in jobs:
                handle._finish_stream()

    def _try_batch(self, jobs: list[tuple]) -> BaseException | None:
        """Run ``jobs`` as one coalesced planner batch with bounded retry.

        Transient failures (a worker pool that broke and was rebuilt, an
        injected ``engine_error``) re-dispatch the batch up to the
        scheduler config's ``resilience.retries`` times — a retry is
        safe because shard inputs are pure functions of the traces, so
        results stay bit-identical. Returns ``None`` once every job's
        future is resolved, or the final exception (unresolved futures
        are then the caller's to fail or isolate).
        """
        retries = self.resilience.retries
        backoff = self.resilience.retry_backoff_ms / 1000.0
        failure: BaseException | None = None
        for attempt in range(retries + 1):
            live = [job for job in jobs if not job[0].future.done()]
            if not live:
                return None
            try:
                self._execute_batch(live)
                return None
            except BaseException as exc:  # noqa: BLE001 - classified below
                failure = exc
                if attempt < retries and self._transient(exc):
                    self.jobs_retried += len(live)
                    if backoff:
                        time.sleep(backoff * (attempt + 1))
                    continue
                break
        return failure

    def _isolate(self, jobs: list[tuple], failure: BaseException) -> None:
        """Blast-radius isolation after a persistent batch failure.

        Each still-unresolved job is re-dispatched alone: only the
        genuinely poisoned job(s) get an exception — each handle its own
        :class:`BatchExecutionError` instance naming that job — while
        healthy jobs run to bit-identical results (bucket composition
        cannot change per-tile records, so solo == coalesced).
        """
        batch_size = len(jobs)
        if batch_size == 1:
            handle = jobs[0][0]
            if not handle.future.done():
                handle.future.set_exception(self._blame(handle, failure, batch_size))
            return
        for job in jobs:
            handle = job[0]
            if handle.future.done():
                continue
            self.isolation_reruns += 1
            solo_failure = self._try_batch([job])
            if solo_failure is not None and not handle.future.done():
                handle.future.set_exception(
                    self._blame(handle, solo_failure, batch_size)
                )
            handle._finish_stream()

    @staticmethod
    def _blame(
        handle: JobHandle, exc: BaseException, batch_size: int
    ) -> BatchExecutionError:
        """A per-handle exception naming the job (never a shared object)."""
        if isinstance(exc, BatchExecutionError) and exc.job_id == handle.id:
            return exc
        label = f" ({handle.job.label})" if handle.job.label else ""
        error = BatchExecutionError(
            f"job #{handle.id}{label} failed in a coalesced batch of "
            f"{batch_size}: {exc}",
            job_id=handle.id,
            label=handle.job.label,
            batch_size=batch_size,
        )
        error.__cause__ = exc
        return error

    def _execute_batch(self, jobs: list[tuple]) -> None:
        """One planner pass over ``jobs``; exceptions propagate to the
        supervisor (:meth:`_try_batch`) with the affected futures left
        unresolved for retry or isolation."""
        faults.poison_fault(
            [job[0].job.label for job in jobs], site="scheduler.batch"
        )
        handles = [handle for handle, _, _ in jobs]
        engine = self._engine_for(handles[0].config)
        owners: list[tuple[int, int]] = []  # global index -> (job, local)
        for position, (_, _, workloads) in enumerate(jobs):
            owners.extend((position, local) for local in range(len(workloads)))
        sources = [w.spikes for _, _, workloads in jobs for w in workloads]
        cache = engine.cache
        hits0 = cache.hits if cache else 0
        misses0 = cache.misses if cache else 0
        store = engine.store
        store0 = store.counters() if store is not None else {}
        profile0 = dict(getattr(engine.backend, "profile", None) or {})
        counters0 = engine.backend.failure_counters()
        profile = {stage: 0.0 for stage in PLANNED_PROFILE_STAGES}
        started = time.perf_counter()
        assemblers = [
            _ChunkAssembler(handle, started) if handle.streaming else None
            for handle, _, _ in jobs
        ]

        def on_workload(index: int, records) -> None:
            position, local = owners[index]
            assembler = assemblers[position]
            if assembler is None:
                return
            workload = jobs[position][2][local]
            # Copy: the callback payload is a view of the batch-wide
            # records array; a chunk a client retains must not pin
            # every other client's records in memory.
            records = records.copy()
            assembler.add(
                WorkloadRun(
                    name=workload.name,
                    kind=workload.kind,
                    tiles=len(records),
                    records=records,
                    stats=stats_from_records(records),
                    seconds=0.0,  # per-chunk kernel time is not attributed
                )
            )

        streaming = any(assembler is not None for assembler in assemblers)
        with engine.planner.exclusive():
            plan = engine.planner.plan(
                sources, engine.tile_m, engine.tile_k, profile=profile
            )
            per_workload = engine.planner.execute(
                plan,
                engine.backend,
                cache=cache,
                profile=profile,
                on_workload=on_workload if streaming else None,
            )
        elapsed = time.perf_counter() - started
        backend_profile = getattr(engine.backend, "profile", None)
        if backend_profile:
            for stage, seconds in backend_profile.items():
                profile[stage] = (
                    profile.get(stage, 0.0) + seconds - profile0.get(stage, 0.0)
                )
        cache_hits = (cache.hits - hits0) if cache else 0
        cache_misses = (cache.misses - misses0) if cache else 0
        store1 = store.counters() if store is not None else {}
        store_delta = {
            name: store1.get(name, 0) - store0.get(name, 0) for name in store1
        }
        counters1 = engine.backend.failure_counters()
        pool_rebuilds = counters1.get("pool_rebuilds", 0) - counters0.get(
            "pool_rebuilds", 0
        )
        backend_retries = counters1.get("retries", 0) - counters0.get("retries", 0)
        degraded = counters1.get("degraded") if counters1 else None
        total = plan.total_tiles
        # Book the batch before delivering results: a client that
        # wakes on its future must already see the serving counters.
        self.batches += 1
        if len(jobs) > 1:
            self.jobs_coalesced += len(jobs)

        offset = 0
        for position, (handle, trace, workloads) in enumerate(jobs):
            job_records = per_workload[offset : offset + len(workloads)]
            offset += len(workloads)
            report = EngineReport(
                backend=engine.backend.name,
                tile_m=engine.tile_m,
                tile_k=engine.tile_k,
                batch=handle.config.engine.batch,
                model=trace.model,
                dataset=trace.dataset,
                workers=getattr(engine.backend, "workers", None),
                plan="trace",  # coalesced batches are always trace-planned
                planned_tiles=plan.total_tiles,
                unique_tiles=plan.unique_tiles,
                cache_hits=cache_hits,
                cache_misses=cache_misses,
                # Batch-scoped persistent-store traffic, like cache.
                store_hits=store_delta.get("store_hits", 0),
                store_misses=store_delta.get("store_misses", 0),
                store_corrupt=store_delta.get("store_corrupt", 0),
                store_evictions=store_delta.get("store_evictions", 0),
                store_active=store.enabled if store is not None else None,
                profile=dict(profile),
                jit_active=getattr(engine.backend, "jit_active", None),
                # Batch-scoped supervision deltas, like profile/cache.
                pool_rebuilds=pool_rebuilds,
                retries=backend_retries,
                degraded=degraded,
            )
            job_tiles = 0
            for workload, records in zip(workloads, job_records):
                job_tiles += len(records)
                # Copy out of the batch-wide records array: one
                # client's retained result must only hold its own
                # records, not the whole coalesced batch.
                records = records.copy()
                report.runs.append(
                    WorkloadRun(
                        name=workload.name,
                        kind=workload.kind,
                        tiles=len(records),
                        records=records,
                        stats=stats_from_records(records),
                        seconds=elapsed * (len(records) / total) if total else 0.0,
                    )
                )
            verified = None
            if handle.config.engine.verify:
                verified = engine.verify_trace(trace)
            assembler = assemblers[position]
            if assembler is not None:
                assembler.flush()
            handle.future.set_result(
                EngineRunResult(
                    config=handle.config,
                    seconds=elapsed * (job_tiles / total) if total else 0.0,
                    report=report,
                    verified=verified,
                )
            )
            handle._finish_stream()
