"""Concurrent serving scheduler: cross-request micro-batching.

PR 4 left :meth:`Session.submit` as a one-worker queue seam; this module
widens it into a serving API. A :class:`Scheduler` accepts many
concurrent typed job submissions (:class:`Job` in, :class:`JobHandle`
out), groups compatible engine jobs by their engine signature —
``(backend, workers, tile shape, plan, cache size)`` — and coalesces
each group into **one** :class:`~repro.engine.planner.TracePlanner`
bucket batch: every client's tiles land in the same shape buckets, one
global content dedup runs per bucket across *all* requests, and one
fused kernel launch per bucket serves the whole group. This is the
paper-faithful way to scale throughput: Prosperity's product-sparsity
reuse gets strictly stronger as more concurrent work shares a dedup
scope, so serving N clients together costs far less than N serial runs.

Mechanics:

* **Coalescing window + fairness.** Jobs queue under a condition
  variable; the dispatcher waits ``coalesce_window_ms`` after the first
  arrival for more work to pile in, then drains *every* queued job —
  so no job ever waits more than one window before dispatch, no matter
  how busy the queue is.
* **Bounded queue depth.** At most ``max_inflight`` jobs may be queued;
  further ``submit()`` calls block until space frees (the serving
  backpressure seam).
* **Per-job scatter-back.** The planner already scatters records per
  workload; the scheduler slices those per job and builds each job its
  own :class:`~repro.engine.EngineReport` — records are bit-identical
  to running that job alone, for every backend and worker count,
  because bucket composition cannot change per-tile records (pinned by
  the planner's equivalence tests). Batch-scoped numbers (profile,
  cache traffic, ``planned_tiles``/``unique_tiles``) are attached to
  every report of the batch.
* **Shared resources.** One engine (forest cache, arena, and — for
  ``sharded`` — process pool) per engine signature, reused across every
  coalesced batch and every :class:`~repro.api.Session` the scheduler
  spawns for non-engine jobs. ``pools_spawned`` stays at one per
  signature no matter how many jobs run.
* **Cancellation + streaming.** Queued jobs can be cancelled until the
  dispatcher claims them; streaming jobs receive
  :class:`~repro.api.session.RunChunk` objects as the planner completes
  each workload (the ``on_workload`` seam), instead of one blocking
  final result.

:class:`~repro.api.aio.AsyncSession` wraps this scheduler for
``asyncio`` callers; ``repro batch`` drives it from the CLI.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass

from repro.api.config import RunConfig
from repro.api.session import EngineRunResult, RunChunk, RunResult, Session
from repro.engine import EngineReport, ProsperityEngine, WorkloadRun
from repro.engine.pipeline import stats_from_records
from repro.engine.planner import PLANNED_PROFILE_STAGES
from repro.workloads import get_trace

__all__ = [
    "JOB_KINDS",
    "Job",
    "JobHandle",
    "Scheduler",
]

#: Experiment kinds a scheduler accepts — the Session methods by name.
JOB_KINDS = Session._QUEUEABLE

#: Stream sentinel: pushed after a job's last chunk (or on cancellation).
_DONE = object()


def _engine_key(config: RunConfig) -> tuple:
    """Engine-compatibility signature: jobs sharing it share one engine
    (cache, arena, sharded pool) and may coalesce into one batch."""
    engine = config.engine
    return (
        engine.backend,
        engine.workers,
        engine.tile_m,
        engine.tile_k,
        engine.plan,
        engine.cache_size,
    )


@dataclass(frozen=True)
class Job:
    """One typed job submission: an experiment kind plus its config.

    ``config=None`` runs under the scheduler's default config; a per-job
    :class:`RunConfig` overrides everything (workload, engine, sampling)
    for that job alone. ``label`` is free-form client metadata echoed on
    the handle (the CLI uses it for config file names).
    """

    kind: str = "run"
    config: RunConfig | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown experiment {self.kind!r}; expected one of {JOB_KINDS}"
            )

    @classmethod
    def of(cls, value: "Job | RunConfig | str") -> "Job":
        """Coerce a kind name, a config (run job), or a Job to a Job."""
        if isinstance(value, Job):
            return value
        if isinstance(value, RunConfig):
            return cls(config=value)
        if isinstance(value, str):
            return cls(kind=value)
        raise TypeError(
            f"expected Job, RunConfig, or experiment name, got {type(value).__name__}"
        )


class JobHandle:
    """Ticket for one scheduled job: a Future plus an optional stream.

    ``future`` resolves to the same :class:`~repro.api.session.RunResult`
    subclass the direct ``Session`` call returns. While the job is still
    queued, :meth:`cancel` withdraws it; once the dispatcher claims it,
    cancellation fails (process-pool kernels are not interruptible).
    Streaming run jobs additionally deliver
    :class:`~repro.api.session.RunChunk` objects through
    :meth:`chunks` / :meth:`next_chunk` as workloads complete.
    """

    def __init__(self, job: Job, job_id: int, config: RunConfig,
                 stream_chunk: int | None = None):
        self.job = job
        self.id = job_id
        self.config = config  # effective config (job override or default)
        self.future: Future = Future()
        self.stream_chunk = stream_chunk
        self._chunks: queue.SimpleQueue | None = (
            queue.SimpleQueue() if stream_chunk is not None else None
        )
        self._stream_closed = False
        self._stream_lock = threading.Lock()
        self._exhausted = False

    # -- future facade --------------------------------------------------
    @property
    def streaming(self) -> bool:
        return self._chunks is not None

    def result(self, timeout: float | None = None) -> RunResult:
        return self.future.result(timeout)

    def exception(self, timeout: float | None = None):
        return self.future.exception(timeout)

    def done(self) -> bool:
        return self.future.done()

    def cancelled(self) -> bool:
        return self.future.cancelled()

    def cancel(self) -> bool:
        """Withdraw the job if it has not started; True on success."""
        ok = self.future.cancel()
        if ok:
            self._finish_stream()
        return ok

    # -- streaming ------------------------------------------------------
    def _push_chunk(self, chunk: RunChunk) -> None:
        if self._chunks is not None:
            self._chunks.put(chunk)

    def _finish_stream(self) -> None:
        """Terminate the chunk stream exactly once (idempotent)."""
        if self._chunks is None:
            return
        with self._stream_lock:
            if self._stream_closed:
                return
            self._stream_closed = True
        self._chunks.put(_DONE)

    def next_chunk(self, timeout: float | None = None) -> RunChunk | None:
        """Block for the next chunk; ``None`` once the stream is done.

        Raises the job's exception (or ``CancelledError``) after the
        stream terminates abnormally, and ``queue.Empty`` on timeout.
        """
        if self._chunks is None:
            raise RuntimeError("job was not submitted with stream=True")
        if self._exhausted:
            return None
        item = self._chunks.get(timeout=timeout)
        if item is _DONE:
            self._exhausted = True
            if self.future.done():
                self.future.result()  # propagate error / cancellation
            return None
        return item

    def chunks(self):
        """Iterate the job's stream until the final chunk."""
        while (chunk := self.next_chunk()) is not None:
            yield chunk


class _ChunkAssembler:
    """Groups completed workloads into RunChunk objects for one stream."""

    def __init__(self, handle: JobHandle, started: float):
        self.handle = handle
        self.size = max(1, handle.stream_chunk or 1)
        self.started = started
        self.buffer: list[WorkloadRun] = []
        self.index = 0

    def add(self, run: WorkloadRun) -> None:
        self.buffer.append(run)
        if len(self.buffer) >= self.size:
            self.flush()

    def flush(self) -> None:
        if not self.buffer:
            return
        chunk = RunChunk(
            config=self.handle.config,
            seconds=time.perf_counter() - self.started,
            index=self.index,
            runs=self.buffer,
        )
        self.buffer = []
        self.index += 1
        self.handle._push_chunk(chunk)


class Scheduler:
    """Cross-request micro-batching scheduler over shared engines.

    Parameters
    ----------
    config:
        Default :class:`RunConfig` for jobs submitted without one; its
        ``[scheduler]`` section supplies ``max_inflight`` /
        ``coalesce_window_ms`` / ``stream_chunk`` unless overridden by
        the keyword arguments.
    max_inflight:
        Queue-depth bound; ``submit()`` blocks while the queue is full.
    coalesce_window_ms:
        How long the dispatcher lets compatible jobs pile up after the
        first arrival before dispatching everything queued. ``0``
        dispatches immediately (no cross-request batching unless jobs
        were enqueued together via :meth:`submit_many`).

    One dispatcher thread executes all work, so every engine (and any
    sharded process pool) is driven from a single thread — the safe
    default for process-pool backends. Execution resources live as long
    as the scheduler: one engine per distinct engine signature, one
    :class:`~repro.api.Session` per distinct job config (sharing that
    engine), all released by :meth:`close`.
    """

    def __init__(
        self,
        config: RunConfig | None = None,
        *,
        max_inflight: int | None = None,
        coalesce_window_ms: float | None = None,
    ):
        self.config = config if config is not None else RunConfig()
        sched_cfg = self.config.scheduler
        self.max_inflight = (
            sched_cfg.max_inflight if max_inflight is None else int(max_inflight)
        )
        window = (
            sched_cfg.coalesce_window_ms
            if coalesce_window_ms is None
            else coalesce_window_ms
        )
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if window < 0:
            raise ValueError(f"coalesce_window_ms must be >= 0, got {window}")
        self._window_seconds = window / 1000.0
        self._cv = threading.Condition()
        self._pending: deque[JobHandle] = deque()
        self._thread: threading.Thread | None = None
        self._closing = False
        self._closed = False
        self._ids = itertools.count(1)
        self._engines: dict[tuple, ProsperityEngine] = {}
        self._adopted: set[tuple] = set()  # engine keys the scheduler must not close
        self._sessions: dict[RunConfig, Session] = {}
        #: Serving statistics (informational; updated by the dispatcher).
        self.jobs_submitted = 0
        self.jobs_coalesced = 0  # jobs that ran inside a >1-job batch
        self.batches = 0  # coalesced planner batches executed

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self, wait: bool = True) -> None:
        """Stop accepting jobs, then release engines and sessions.

        ``wait=True`` (the default) drains the queue first — every
        already-submitted job completes against live resources.
        ``wait=False`` cancels whatever is still queued. Idempotent.
        """
        with self._cv:
            if self._closed:
                return
            self._closing = True
            if not wait:
                while self._pending:
                    self._pending.popleft().cancel()
            self._cv.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join()
        with self._cv:
            if self._closed:
                return
            self._closed = True
        # Sessions first (they never close the shared engines), then the
        # engines the scheduler constructed; adopted engines stay open
        # for their owners.
        for session in self._sessions.values():
            session.close()
        self._sessions.clear()
        for key, engine in self._engines.items():
            if key not in self._adopted:
                engine.close()
        self._engines.clear()

    @property
    def pools_spawned(self) -> int:
        """Total process pools spawned across all scheduler engines."""
        return sum(
            getattr(engine.backend, "pools_spawned", 0)
            for engine in self._engines.values()
        )

    def adopt_engine(self, config: RunConfig, engine: ProsperityEngine) -> None:
        """Share an externally-owned engine for ``config``'s signature.

        Jobs whose engine signature matches then run through ``engine``
        (its cache, arena, and pool) instead of a scheduler-constructed
        one; :meth:`close` leaves it open for its owner. ``Session``
        uses this so ``session.submit()`` reuses the session's engine.
        """
        key = _engine_key(config)
        with self._cv:
            existing = self._engines.get(key)
            if existing is not None and existing is not engine:
                raise RuntimeError(
                    "an engine is already registered for this signature"
                )
            self._engines[key] = engine
            self._adopted.add(key)

    # -- submission -----------------------------------------------------
    def submit(
        self,
        job: Job | RunConfig | str = "run",
        config: RunConfig | None = None,
        *,
        stream: bool = False,
        chunk: int | None = None,
    ) -> JobHandle:
        """Queue one job; blocks while ``max_inflight`` jobs are queued.

        ``job`` is a :class:`Job`, a kind name (``config`` then supplies
        the per-job override), or a bare :class:`RunConfig` (a run job).
        ``stream=True`` (run jobs only) makes the handle yield
        :class:`~repro.api.session.RunChunk` objects as workloads
        complete; ``chunk`` overrides the config's
        ``scheduler.stream_chunk`` grouping.
        """
        if isinstance(job, str):
            job = Job(kind=job, config=config)
        else:
            job = Job.of(job)
            if config is not None:
                raise ValueError(
                    "pass the config inside the Job (or use submit(kind, config))"
                )
        if stream and job.kind != "run":
            raise ValueError(f"streaming is only supported for 'run' jobs, got {job.kind!r}")
        return self._enqueue([self._handle_for(job, stream, chunk)])[0]

    def submit_many(self, jobs) -> list[JobHandle]:
        """Atomically queue several jobs — they dispatch as one batch.

        All handles enter the queue under one lock acquisition, so the
        dispatcher's next drain sees them together even with a zero
        coalescing window (the CLI ``repro batch`` path).
        """
        handles = [self._handle_for(Job.of(job), False, None) for job in jobs]
        return self._enqueue(handles)

    def gather(self, jobs) -> list[RunResult]:
        """Submit many jobs together and wait for every result in order."""
        return [handle.result() for handle in self.submit_many(jobs)]

    def _handle_for(self, job: Job, stream: bool, chunk: int | None) -> JobHandle:
        effective = job.config if job.config is not None else self.config
        stream_chunk = None
        if stream:
            stream_chunk = chunk if chunk is not None else (
                effective.scheduler.stream_chunk
            )
            if stream_chunk < 1:
                raise ValueError(f"stream chunk must be >= 1, got {stream_chunk}")
        return JobHandle(job, next(self._ids), effective, stream_chunk)

    def _enqueue(self, handles: list[JobHandle]) -> list[JobHandle]:
        with self._cv:
            # Block for queue space: enough room for the whole batch, or
            # an empty queue (so one oversized submit_many still fits).
            while True:
                if self._closing or self._closed:
                    raise RuntimeError("scheduler is closed; no new submissions")
                if (
                    len(self._pending) + len(handles) <= self.max_inflight
                    or not self._pending
                ):
                    break
                self._cv.wait()
            self._pending.extend(handles)
            self.jobs_submitted += len(handles)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop, name="repro-scheduler", daemon=True
                )
                self._thread.start()
            self._cv.notify_all()
        return handles

    # -- dispatcher -----------------------------------------------------
    def _loop(self) -> None:
        while True:
            with self._cv:
                while not self._pending and not self._closing:
                    self._cv.wait()
                if not self._pending:
                    return  # closing, queue drained
                if self._window_seconds and not self._closing:
                    # Coalescing window: let concurrent clients pile in.
                    # Everything queued is drained at the end, so no job
                    # waits more than one window.
                    deadline = time.monotonic() + self._window_seconds
                    while not self._closing:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cv.wait(timeout=remaining)
                batch = list(self._pending)
                self._pending.clear()
                self._cv.notify_all()  # wake submitters blocked on depth
            self._dispatch(batch)

    def _dispatch(self, batch: list[JobHandle]) -> None:
        claimed: list[JobHandle] = []
        for handle in batch:
            if handle.future.set_running_or_notify_cancel():
                claimed.append(handle)
            else:
                handle._finish_stream()  # cancelled while queued
        # Group compatible engine jobs (first-appearance order); every
        # other kind executes alone through its config's session.
        units: list[tuple[str, object]] = []
        groups: dict[tuple, list[JobHandle]] = {}
        for handle in claimed:
            if handle.job.kind == "run":
                key = _engine_key(handle.config)
                group = groups.get(key)
                if group is None:
                    groups[key] = group = []
                    units.append(("group", group))
                group.append(handle)
            else:
                units.append(("single", handle))
        for kind, unit in units:
            if kind == "single":
                self._run_single(unit)
            elif len(unit) == 1 and not unit[0].streaming:
                self._run_single(unit[0])
            else:
                self._run_coalesced(unit)

    # -- execution ------------------------------------------------------
    def _engine_for(self, config: RunConfig) -> ProsperityEngine:
        key = _engine_key(config)
        with self._cv:
            engine = self._engines.get(key)
            if engine is None:
                engine_cfg = config.engine
                engine = ProsperityEngine(
                    backend=engine_cfg.backend,
                    tile_m=engine_cfg.tile_m,
                    tile_k=engine_cfg.tile_k,
                    cache_size=engine_cfg.cache_size,
                    workers=engine_cfg.workers,
                    plan=engine_cfg.plan,
                )
                self._engines[key] = engine
            return engine

    def _session_for(self, config: RunConfig) -> Session:
        session = self._sessions.get(config)
        if session is None:
            session = Session(config, engine=self._engine_for(config))
            self._sessions[config] = session
        return session

    def _run_single(self, handle: JobHandle) -> None:
        """Execute one job exactly as its own Session call would."""
        try:
            session = self._session_for(handle.config)
            result = getattr(session, handle.job.kind)()
        except BaseException as exc:  # noqa: BLE001 - delivered via the future
            handle.future.set_exception(exc)
        else:
            handle.future.set_result(result)
        finally:
            handle._finish_stream()

    def _run_coalesced(self, handles: list[JobHandle]) -> None:
        """One planner batch for a whole group of compatible run jobs.

        Every job's workloads enter one trace plan: shared shape
        buckets, one global content dedup, one kernel launch per bucket
        through the (possibly sharded) backend, then per-job
        scatter-back into individual :class:`EngineReport` objects.
        Batch-scoped numbers (profile, cache traffic, planned/unique
        tile counts) are attached to every job's report.
        """
        # Per-job isolation: a job whose trace cannot even be built fails
        # alone; the rest of the group still coalesces and runs.
        jobs = []
        for handle in handles:
            workload_cfg = handle.config.workload
            try:
                trace = get_trace(
                    workload_cfg.model,
                    workload_cfg.dataset,
                    workload_cfg.preset,
                    workload_cfg.seed,
                )
            except BaseException as exc:  # noqa: BLE001 - delivered via the future
                handle.future.set_exception(exc)
                handle._finish_stream()
                continue
            jobs.append((handle, trace, list(trace.workloads)))
        if not jobs:
            return
        handles = [handle for handle, _, _ in jobs]
        try:
            engine = self._engine_for(handles[0].config)
            owners: list[tuple[int, int]] = []  # global index -> (job, local)
            for position, (_, _, workloads) in enumerate(jobs):
                owners.extend((position, local) for local in range(len(workloads)))
            sources = [w.spikes for _, _, workloads in jobs for w in workloads]

            cache = engine.cache
            hits0 = cache.hits if cache else 0
            misses0 = cache.misses if cache else 0
            profile0 = dict(getattr(engine.backend, "profile", None) or {})
            profile = {stage: 0.0 for stage in PLANNED_PROFILE_STAGES}
            started = time.perf_counter()
            assemblers = [
                _ChunkAssembler(handle, started) if handle.streaming else None
                for handle, _, _ in jobs
            ]

            def on_workload(index: int, records) -> None:
                position, local = owners[index]
                assembler = assemblers[position]
                if assembler is None:
                    return
                workload = jobs[position][2][local]
                # Copy: the callback payload is a view of the batch-wide
                # records array; a chunk a client retains must not pin
                # every other client's records in memory.
                records = records.copy()
                assembler.add(
                    WorkloadRun(
                        name=workload.name,
                        kind=workload.kind,
                        tiles=len(records),
                        records=records,
                        stats=stats_from_records(records),
                        seconds=0.0,  # per-chunk kernel time is not attributed
                    )
                )

            streaming = any(assembler is not None for assembler in assemblers)
            with engine.planner.exclusive():
                plan = engine.planner.plan(
                    sources, engine.tile_m, engine.tile_k, profile=profile
                )
                per_workload = engine.planner.execute(
                    plan,
                    engine.backend,
                    cache=cache,
                    profile=profile,
                    on_workload=on_workload if streaming else None,
                )
            elapsed = time.perf_counter() - started
            backend_profile = getattr(engine.backend, "profile", None)
            if backend_profile:
                for stage, seconds in backend_profile.items():
                    profile[stage] = (
                        profile.get(stage, 0.0) + seconds - profile0.get(stage, 0.0)
                    )
            cache_hits = (cache.hits - hits0) if cache else 0
            cache_misses = (cache.misses - misses0) if cache else 0
            total = plan.total_tiles
            # Book the batch before delivering results: a client that
            # wakes on its future must already see the serving counters.
            self.batches += 1
            if len(jobs) > 1:
                self.jobs_coalesced += len(jobs)

            offset = 0
            for position, (handle, trace, workloads) in enumerate(jobs):
                job_records = per_workload[offset : offset + len(workloads)]
                offset += len(workloads)
                report = EngineReport(
                    backend=engine.backend.name,
                    tile_m=engine.tile_m,
                    tile_k=engine.tile_k,
                    batch=handle.config.engine.batch,
                    model=trace.model,
                    dataset=trace.dataset,
                    workers=getattr(engine.backend, "workers", None),
                    plan="trace",  # coalesced batches are always trace-planned
                    planned_tiles=plan.total_tiles,
                    unique_tiles=plan.unique_tiles,
                    cache_hits=cache_hits,
                    cache_misses=cache_misses,
                    profile=dict(profile),
                    jit_active=getattr(engine.backend, "jit_active", None),
                )
                job_tiles = 0
                for workload, records in zip(workloads, job_records):
                    job_tiles += len(records)
                    # Copy out of the batch-wide records array: one
                    # client's retained result must only hold its own
                    # records, not the whole coalesced batch.
                    records = records.copy()
                    report.runs.append(
                        WorkloadRun(
                            name=workload.name,
                            kind=workload.kind,
                            tiles=len(records),
                            records=records,
                            stats=stats_from_records(records),
                            seconds=elapsed * (len(records) / total) if total else 0.0,
                        )
                    )
                verified = None
                if handle.config.engine.verify:
                    verified = engine.verify_trace(trace)
                assembler = assemblers[position]
                if assembler is not None:
                    assembler.flush()
                handle.future.set_result(
                    EngineRunResult(
                        config=handle.config,
                        seconds=elapsed * (job_tiles / total) if total else 0.0,
                        report=report,
                        verified=verified,
                    )
                )
                handle._finish_stream()
        except BaseException as exc:  # noqa: BLE001 - delivered via the futures
            for handle in handles:
                if not handle.future.done():
                    handle.future.set_exception(exc)
                handle._finish_stream()
