"""ServeClient: the Python client for a ``repro serve`` endpoint.

One :class:`ServeClient` holds one persistent ``http.client``
connection to a :class:`~repro.server.app.ReproServer` and speaks the
JSON protocol defined in :mod:`repro.server.protocol`. Server-side
serving failures come back as the *same* exception types the in-process
:class:`~repro.api.Scheduler` raises — a caller migrating from
``Session``/``Scheduler`` to the network path keeps its error handling:

======  ==========================================================
status  raised
======  ==========================================================
429     :class:`~repro.api.scheduler.SchedulerSaturated`
504     :class:`~repro.api.scheduler.DeadlineExceeded` (job-scoped)
500     :class:`~repro.api.scheduler.BatchExecutionError` when the
        server names that type, else :class:`ServeError`
400     :class:`ServeRequestError` (a ``ValueError``)
503     :class:`ServeUnavailable` (draining / injected rejection)
======  ==========================================================

``submit()`` blocks until the job completes (the server holds the
request open); run-job records decode back to numpy arrays in ``full``
mode, byte-identical to what ``Session.run()`` returns. ``stream()``
opens a ``POST /v1/streams`` job over a *dedicated* connection and
yields one :class:`ServeStreamChunk` per executed window as the server
flushes it; the final frame's result summary is the generator's return
value, and in-band stream errors re-raise locally with the same mapping
as above. The client is deliberately **not** thread-safe — it owns a
single connection; use one client per thread (they are cheap) for
concurrent load.
"""

from __future__ import annotations

import http.client
import json
import urllib.parse

from repro.api.config import RunConfig
from repro.api.scheduler import (
    BatchExecutionError,
    DeadlineExceeded,
    SchedulerSaturated,
)
from repro.server.protocol import STATUS_BY_ERROR, decode_records

__all__ = [
    "ServeClient",
    "ServeError",
    "ServeRequestError",
    "ServeResult",
    "ServeStreamChunk",
    "ServeUnavailable",
]


class ServeError(RuntimeError):
    """A serving request failed for a reason with no richer local type."""

    def __init__(self, message: str, *, status: int = 0, error_type: str = ""):
        super().__init__(message)
        self.status = status
        self.error_type = error_type


class ServeRequestError(ServeError, ValueError):
    """The server rejected the request as invalid (HTTP 400)."""


class ServeUnavailable(ServeError):
    """The server is not taking jobs (HTTP 503: draining or injected)."""


class ServeResult:
    """One completed job as the wire reported it.

    ``result`` is the kind-specific payload dict; for run jobs each
    entry of ``result["report"]["runs"]`` carries its decoded numpy
    ``records`` array when the job was submitted with
    ``records="full"`` (``None`` in ``digest``/``none`` modes — the
    raw wire body, including any digest, stays under ``"records_wire"``).
    """

    def __init__(self, body: dict):
        self.job_id: int = body["job_id"]
        self.tenant: str = body["tenant"]
        self.priority: str = body["priority"]
        self.kind: str = body["kind"]
        self.result: dict = body["result"]
        self.seconds: float = self.result.get("seconds", 0.0)
        report = self.result.get("report")
        if report:
            for run in report["runs"]:
                wire = run.pop("records")
                run["records_wire"] = wire
                run["records"] = decode_records(wire)

    @property
    def report(self) -> dict | None:
        return self.result.get("report")

    def records(self, name: str):
        """Decoded records for one workload by name (run jobs, full mode)."""
        report = self.report
        if report is None:
            raise ValueError(f"{self.kind!r} job results carry no records")
        for run in report["runs"]:
            if run["name"] == name:
                return run["records"]
        raise KeyError(f"no workload {name!r} in this result")


class ServeStreamChunk:
    """One streamed window frame as the wire reported it.

    Mirrors :class:`~repro.streaming.StreamChunk` field-for-field; each
    entry of ``runs`` carries its decoded numpy ``records`` array in
    ``full`` mode (``None`` otherwise — the raw wire body stays under
    ``"records_wire"``), so concatenating a workload's records across a
    stream's chunks reproduces the batch array byte-for-byte.
    """

    def __init__(self, body: dict, *, job_id: int | None = None):
        self.job_id = job_id
        self.index: int = body["chunk"]
        self.start_step: int = body["start_step"]
        self.stop_step: int = body["stop_step"]
        self.final: bool = body["final"]
        self.seconds: float = body["seconds"]
        self.tiles: int = body["tiles"]
        self.planned_tiles: int = body["planned_tiles"]
        self.unique_tiles: int = body["unique_tiles"]
        self.cache_hits: int = body["cache_hits"]
        self.cache_misses: int = body["cache_misses"]
        self.runs: list[dict] = body["runs"]
        for run in self.runs:
            wire = run.pop("records")
            run["records_wire"] = wire
            run["records"] = decode_records(wire)

    def records(self, name: str):
        """Decoded records for one workload by name (full mode)."""
        for run in self.runs:
            if run["name"] == name:
                return run["records"]
        raise KeyError(f"no workload {name!r} in this chunk")


def _raise_for_error(status: int, body: dict) -> None:
    detail = body.get("error") or {}
    error_type = detail.get("type", "")
    message = detail.get("message", f"server returned HTTP {status}")
    job_id = detail.get("job_id")
    label = detail.get("label", "")
    if status == 429:
        raise SchedulerSaturated(message)
    if status == 504:
        raise DeadlineExceeded(message, job_id=job_id, label=label)
    if error_type == "BatchExecutionError":
        raise BatchExecutionError(
            message, job_id=job_id, label=label,
            batch_size=detail.get("batch_size", 1),
        )
    if status == 400:
        raise ServeRequestError(message, status=status, error_type=error_type)
    if status == 503:
        raise ServeUnavailable(message, status=status, error_type=error_type)
    raise ServeError(message, status=status, error_type=error_type)


class ServeClient:
    """Blocking JSON-over-HTTP client for one serving endpoint."""

    def __init__(self, url: str, *, timeout: float = 300.0):
        parsed = urllib.parse.urlsplit(url if "//" in url else f"//{url}")
        if parsed.scheme not in ("", "http"):
            raise ValueError(f"only http:// endpoints are supported, got {url!r}")
        if not parsed.hostname or not parsed.port:
            raise ValueError(f"endpoint must include host and port, got {url!r}")
        self.host = parsed.hostname
        self.port = parsed.port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # -- transport ------------------------------------------------------
    def _request(self, method: str, path: str, body: dict | None = None) -> tuple[int, dict]:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        try:
            self._conn.request(method, path, body=payload, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # One reconnect: the server may have closed an idle
            # keep-alive connection between requests.
            self.close()
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._conn.request(method, path, body=payload, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        try:
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError as exc:
            raise ServeError(
                f"non-JSON response (HTTP {response.status}): {raw[:200]!r}",
                status=response.status,
            ) from exc
        return response.status, parsed

    # -- API ------------------------------------------------------------
    def submit(
        self,
        kind: str = "run",
        *,
        config: RunConfig | dict | None = None,
        tenant: str = "",
        priority: str = "",
        label: str = "",
        deadline_ms: float | None = None,
        timeout_s: float | None = None,
        records: str = "full",
    ) -> ServeResult:
        """Submit one job and block until its result (or mapped error).

        ``config`` is either a full :class:`RunConfig` or a sparse dict
        of sections overlaid on the server's default config.
        """
        request: dict = {"kind": kind, "records": records}
        if config is not None:
            request["config"] = (
                config.to_dict() if isinstance(config, RunConfig) else config
            )
        if tenant:
            request["tenant"] = tenant
        if priority:
            request["priority"] = priority
        if label:
            request["label"] = label
        if deadline_ms is not None:
            request["deadline_ms"] = deadline_ms
        if timeout_s is not None:
            request["timeout_s"] = timeout_s
        status, body = self._request("POST", "/v1/jobs", request)
        if status != 200:
            _raise_for_error(status, body)
        return ServeResult(body)

    def stream(
        self,
        *,
        config: RunConfig | dict | None = None,
        tenant: str = "",
        priority: str = "",
        label: str = "",
        deadline_ms: float | None = None,
        timeout_s: float | None = None,
        records: str = "full",
    ):
        """Open one streaming job; yields a :class:`ServeStreamChunk`
        per executed window as the server flushes it.

        A generator: the final frame's result summary (the
        ``StreamResult`` dict) is the generator's *return value* —
        capture it with ``yield from`` or :class:`StopIteration`'s
        ``value``. Pre-admission failures raise with the same mapping
        as :meth:`submit`; mid-stream failures arrive as the in-band
        final frame and re-raise here by their ``error.type``.

        Each stream runs over its own dedicated connection, so a
        long-lived stream never blocks this client's request
        connection — concurrent ``submit()`` calls stay legal.
        """
        request: dict = {"records": records}
        if config is not None:
            request["config"] = (
                config.to_dict() if isinstance(config, RunConfig) else config
            )
        if tenant:
            request["tenant"] = tenant
        if priority:
            request["priority"] = priority
        if label:
            request["label"] = label
        if deadline_ms is not None:
            request["deadline_ms"] = deadline_ms
        if timeout_s is not None:
            request["timeout_s"] = timeout_s
        payload = json.dumps(request).encode("utf-8")
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(
                "POST", "/v1/streams", body=payload,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                try:
                    parsed = json.loads(raw.decode("utf-8")) if raw else {}
                except ValueError as exc:
                    raise ServeError(
                        f"non-JSON response (HTTP {response.status}): "
                        f"{raw[:200]!r}",
                        status=response.status,
                    ) from exc
                _raise_for_error(response.status, parsed)
            # http.client de-chunks transparently; each readline() is
            # one NDJSON frame, available the moment the server flushes.
            header = json.loads(response.readline())
            job_id = header.get("job_id")
            while True:
                line = response.readline()
                if not line:
                    raise ServeError(
                        "stream ended without a final frame", status=200
                    )
                frame = json.loads(line)
                if frame.get("done"):
                    # Drain the chunked terminator so the socket closes
                    # cleanly (an unread tail would RST the server).
                    response.read()
                    error = frame.get("error")
                    if error:
                        status = STATUS_BY_ERROR.get(
                            error.get("type", ""), 500
                        )
                        _raise_for_error(status, {"error": error})
                    return frame["result"]
                yield ServeStreamChunk(frame, job_id=job_id)
        finally:
            conn.close()

    def metrics(self) -> dict:
        status, body = self._request("GET", "/metrics")
        if status != 200:
            _raise_for_error(status, body)
        return body

    def health(self) -> dict:
        """``/healthz`` payload plus the status code (no exception)."""
        status, body = self._request("GET", "/healthz")
        return {"status_code": status, **body}

    def drain(self) -> dict:
        """Ask the server to drain gracefully (``POST /admin/drain``)."""
        status, body = self._request("POST", "/admin/drain")
        if status != 202:
            _raise_for_error(status, body)
        return body
