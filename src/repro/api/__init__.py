"""repro.api — the unified, typed entry point to the reproduction.

This package is the canonical way to drive the system:

* :class:`RunConfig` — a frozen, validated, serializable description of
  a run (workload / engine / simulator / sampling / sweep / tradeoff
  sections; TOML + JSON round-trip; ``with_overrides`` for sweeps).
* :class:`Session` — one facade owning backend/engine lifecycle, with
  ``run()`` / ``simulate()`` / ``sweep()`` / ``density()`` /
  ``scaling()`` / ``tradeoff()`` returning structured results, and a
  ``submit()`` queue seam for concurrent callers.

The lower-level entry points (``ProsperityEngine``,
``ProsperitySimulator``, ``sweep_tile_sizes``) remain supported, but new
code — and the ``repro`` CLI — should go through ``Session`` so
configuration stays in one typed object and pooled resources are shared.
"""

from repro.api.config import (
    EngineConfig,
    RunConfig,
    SamplingConfig,
    SimulatorConfig,
    SweepConfig,
    TradeoffConfig,
    WorkloadConfig,
)
from repro.api.session import (
    DensityResult,
    EngineRunResult,
    RunResult,
    ScalingResult,
    Session,
    SimulationResult,
    SweepResult,
    TradeoffRunResult,
)

__all__ = [
    "DensityResult",
    "EngineConfig",
    "EngineRunResult",
    "RunConfig",
    "RunResult",
    "SamplingConfig",
    "ScalingResult",
    "Session",
    "SimulationResult",
    "SimulatorConfig",
    "SweepConfig",
    "SweepResult",
    "TradeoffConfig",
    "TradeoffRunResult",
    "WorkloadConfig",
]
