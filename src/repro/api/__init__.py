"""repro.api — the unified, typed entry point to the reproduction.

This package is the canonical way to drive the system:

* :class:`RunConfig` — a frozen, validated, serializable description of
  a run (workload / engine / simulator / sampling / sweep / tradeoff /
  scheduler sections; TOML + JSON round-trip; ``with_overrides`` for
  sweeps).
* :class:`Session` — one facade owning backend/engine lifecycle, with
  ``run()`` / ``simulate()`` / ``sweep()`` / ``density()`` /
  ``scaling()`` / ``tradeoff()`` returning structured results, a
  ``submit()`` queue seam for concurrent callers, and ``stream()``
  yielding per-workload chunks as they complete.
* :class:`Scheduler` — the serving layer: many concurrent typed job
  submissions (:class:`Job` / :class:`JobHandle`), compatible engine
  jobs coalesced into shared trace-planner batches (one global dedup,
  one kernel launch per shape bucket, per-job scatter-back), bounded
  queue depth, cancellation, and streaming — plus the resilience
  layer: admission control (:class:`SchedulerSaturated`), queue
  deadlines (:class:`DeadlineExceeded`), transient-failure retries,
  and blast-radius isolation of poisoned coalesced jobs
  (:class:`BatchExecutionError`), configured by the ``[resilience]``
  section (:class:`ResilienceConfig`).
* :class:`AsyncSession` — ``asyncio`` wrappers (``await run()`` /
  ``gather()`` / ``async for chunk in stream()``) over the scheduler.
* :class:`ServeClient` — the network client for a ``repro serve``
  endpoint (:mod:`repro.server`): jobs over HTTP/JSON with the same
  exception types the in-process scheduler raises (429 →
  :class:`SchedulerSaturated`, 504 → :class:`DeadlineExceeded`, 500 →
  :class:`BatchExecutionError`), records byte-identical to
  ``Session.run()``; tenancy/priorities come from the ``[server]``
  config section (:class:`ServerConfig`).

The lower-level entry points (``ProsperityEngine``,
``ProsperitySimulator``, ``sweep_tile_sizes``) remain supported, but new
code — and the ``repro`` CLI — should go through ``Session`` (or, for
many concurrent jobs, ``Scheduler``) so configuration stays in one
typed object and pooled resources are shared.
"""

from repro.api.aio import AsyncSession
from repro.api.client import (
    ServeClient,
    ServeError,
    ServeRequestError,
    ServeResult,
    ServeStreamChunk,
    ServeUnavailable,
)
from repro.api.config import (
    STREAM_SOURCES,
    EngineConfig,
    ResilienceConfig,
    RunConfig,
    SamplingConfig,
    SchedulerConfig,
    ServerConfig,
    SimulatorConfig,
    StreamingConfig,
    SweepConfig,
    TradeoffConfig,
    WorkloadConfig,
)
from repro.api.scheduler import (
    BatchExecutionError,
    DeadlineExceeded,
    Job,
    JobHandle,
    Scheduler,
    SchedulerSaturated,
    StreamTimeoutError,
)
from repro.api.session import (
    DensityResult,
    EngineRunResult,
    RunChunk,
    RunResult,
    ScalingResult,
    Session,
    SimulationResult,
    StreamRunResult,
    SweepResult,
    TradeoffRunResult,
)
from repro.streaming import (
    PoissonEventSource,
    RecurrentSource,
    StreamChunk,
    StreamResult,
    StreamRunner,
    StreamSource,
    StreamStalledError,
    TraceReplaySource,
    build_source,
)

__all__ = [
    "STREAM_SOURCES",
    "AsyncSession",
    "BatchExecutionError",
    "DeadlineExceeded",
    "DensityResult",
    "EngineConfig",
    "EngineRunResult",
    "Job",
    "JobHandle",
    "PoissonEventSource",
    "RecurrentSource",
    "ResilienceConfig",
    "RunChunk",
    "RunConfig",
    "RunResult",
    "SamplingConfig",
    "ScalingResult",
    "Scheduler",
    "SchedulerConfig",
    "SchedulerSaturated",
    "ServeClient",
    "ServeError",
    "ServeRequestError",
    "ServeResult",
    "ServeStreamChunk",
    "ServeUnavailable",
    "ServerConfig",
    "Session",
    "SimulationResult",
    "SimulatorConfig",
    "StreamChunk",
    "StreamResult",
    "StreamRunResult",
    "StreamRunner",
    "StreamSource",
    "StreamStalledError",
    "StreamTimeoutError",
    "StreamingConfig",
    "SweepConfig",
    "SweepResult",
    "TraceReplaySource",
    "TradeoffConfig",
    "TradeoffRunResult",
    "WorkloadConfig",
    "build_source",
]
