"""NumPy SNN substrate: neurons, layers, models, and workload tracing."""

from repro.snn.datasets import SPECS, DatasetSpec, get_spec
from repro.snn.layers import (
    AvgPool2d,
    Flatten,
    MaxPool2d,
    SpikeDrivenSelfAttention,
    SpikingConv2d,
    SpikingLinear,
    SpikingSelfAttention,
    TransformerFFN,
)
from repro.snn.network import Residual, Sequential, SpikingModel
from repro.snn.neurons import (
    FSNeuron,
    IFNeuron,
    LIFNeuron,
    calibrate_threshold,
    firing_rate,
)
from repro.snn.trace import (
    GeMMWorkload,
    ModelTrace,
    WorkloadRecorder,
    record_gemm,
    recording,
)

__all__ = [
    "SPECS",
    "DatasetSpec",
    "get_spec",
    "AvgPool2d",
    "Flatten",
    "MaxPool2d",
    "SpikeDrivenSelfAttention",
    "SpikingConv2d",
    "SpikingLinear",
    "SpikingSelfAttention",
    "TransformerFFN",
    "Residual",
    "Sequential",
    "SpikingModel",
    "FSNeuron",
    "IFNeuron",
    "LIFNeuron",
    "calibrate_threshold",
    "firing_rate",
    "GeMMWorkload",
    "ModelTrace",
    "WorkloadRecorder",
    "record_gemm",
    "recording",
]
