"""Input spike encodings (Sec. II-A: information propagates as spikes)."""

from __future__ import annotations

import numpy as np


def rate_encode(
    values: np.ndarray, time_steps: int, rng: np.random.Generator
) -> np.ndarray:
    """Bernoulli rate coding: P(spike at t) = normalized intensity.

    ``values`` is any non-negative tensor; output is ``(T,) + values.shape``
    binary. Same pixel intensity -> same spike probability each step, which
    preserves spatial correlation in the spike domain.
    """
    values = np.asarray(values, dtype=np.float64)
    peak = values.max()
    prob = values / peak if peak > 0 else np.zeros_like(values)
    draws = rng.random((time_steps,) + values.shape)
    return draws < prob[None]


def latency_encode(values: np.ndarray, time_steps: int) -> np.ndarray:
    """Time-to-first-spike coding: brighter inputs spike earlier, once."""
    values = np.asarray(values, dtype=np.float64)
    peak = values.max()
    norm = values / peak if peak > 0 else np.zeros_like(values)
    # Brightest value -> time step 0; zero input -> never spikes.
    fire_time = np.where(norm > 0, np.ceil((1.0 - norm) * (time_steps - 1)), time_steps)
    steps = np.arange(time_steps).reshape((time_steps,) + (1,) * values.ndim)
    return steps == fire_time[None]


def direct_threshold_encode(values: np.ndarray, time_steps: int, levels: int | None = None) -> np.ndarray:
    """Deterministic multi-threshold coding.

    Step ``t`` fires where the normalized input exceeds ``(t+1)/(T+1)``:
    smooth inputs yield *nested* spike sets across time steps — exactly
    the subset structure (PM relations) product sparsity feeds on, and a
    good model of direct-coded first layers in trained SNNs.
    """
    values = np.asarray(values, dtype=np.float64)
    peak = values.max()
    norm = values / peak if peak > 0 else np.zeros_like(values)
    levels = time_steps if levels is None else levels
    thresholds = (np.arange(time_steps) % levels + 1) / (levels + 1)
    shape = (time_steps,) + (1,) * values.ndim
    return norm[None] > thresholds.reshape(shape)
