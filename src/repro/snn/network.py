"""Network containers and the tracing entry point."""

from __future__ import annotations

import numpy as np

from repro.snn.layers import Layer
from repro.snn.trace import ModelTrace, WorkloadRecorder, recording


class Sequential(Layer):
    """Feed-forward chain of layers."""

    def __init__(self, layers: list[Layer], name: str = "sequential"):
        super().__init__(name)
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]


class Residual(Layer):
    """Binary residual connection: OR of branch output with its input.

    Spiking transformers commonly keep residual paths binary (membrane
    shortcut); OR preserves the spike alphabet while retaining the
    correlation structure ProSparsity exploits.
    """

    def __init__(self, body: Layer, name: str = "residual"):
        super().__init__(name)
        self.body = body

    def forward(self, spikes: np.ndarray) -> np.ndarray:
        out = self.body(spikes)
        if out.dtype == bool and spikes.dtype == bool and out.shape == spikes.shape:
            return out | spikes
        return out


class SpikingModel:
    """A named SNN plus the input pipeline needed to trace it.

    Subclasses (or factory-built instances) provide ``build_input`` and a
    ``network``; :meth:`trace` runs one forward pass under a recorder and
    returns the resulting :class:`ModelTrace`.
    """

    def __init__(self, name: str, dataset: str, network: Layer):
        self.name = name
        self.dataset = dataset
        self.network = network

    def build_input(self, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def trace(self, rng: np.random.Generator) -> ModelTrace:
        """Run one recorded inference; first run also calibrates thresholds."""
        recorder = WorkloadRecorder()
        x = self.build_input(rng)
        with recording(recorder):
            self.network(x)
        return ModelTrace(
            model=self.name, dataset=self.dataset, workloads=recorder.workloads
        )
