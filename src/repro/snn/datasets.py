"""Synthetic dataset generators (substitutes for CIFAR/DVS/NLP corpora).

The accelerator study only consumes per-layer spike statistics, so the
generators aim at matching the *structure* of the real inputs:

* images — spatially smooth (filtered noise) with object-like blobs, so
  im2col rows of neighbouring pixels are similar (the source of PM/EM
  matches in spiking CNNs);
* DVS streams — sparse events clustered along moving edges, temporally
  correlated across steps;
* token sequences — Zipf-distributed ids with repeated tokens, embedded
  through a fixed table (repeats create identical embedding rows).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.utils.rng import default_rng


@dataclass(frozen=True)
class DatasetSpec:
    """Shape metadata for one synthetic dataset."""

    name: str
    kind: str  # "image" | "dvs" | "text" | "audio"
    channels: int = 3
    size: int = 32
    classes: int = 10
    seq_len: int = 64
    vocab: int = 2000


SPECS: dict[str, DatasetSpec] = {
    "cifar10": DatasetSpec("cifar10", "image", channels=3, size=32, classes=10),
    "cifar100": DatasetSpec("cifar100", "image", channels=3, size=32, classes=100),
    "mnist": DatasetSpec("mnist", "image", channels=1, size=28, classes=10),
    "cifar10dvs": DatasetSpec("cifar10dvs", "dvs", channels=2, size=64, classes=10),
    "sst2": DatasetSpec("sst2", "text", classes=2, seq_len=64),
    "sst5": DatasetSpec("sst5", "text", classes=5, seq_len=64),
    "mr": DatasetSpec("mr", "text", classes=2, seq_len=64),
    "qqp": DatasetSpec("qqp", "text", classes=2, seq_len=64),
    "mnli": DatasetSpec("mnli", "text", classes=3, seq_len=64),
    # Google Speech Commands stand-in: 40 mel bands x 101 frames is the
    # standard MFCC front end for the 12-keyword task (tc-res8 input).
    "speechcommands": DatasetSpec(
        "speechcommands", "audio", channels=40, size=101, classes=12
    ),
}


def get_spec(name: str) -> DatasetSpec:
    try:
        return SPECS[name.lower().replace("-", "")]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(SPECS)}") from None


def synthetic_image(
    spec: DatasetSpec, rng: np.random.Generator | None = None
) -> np.ndarray:
    """One smooth ``(C, H, W)`` image in [0, 1] with blob structure."""
    rng = rng if rng is not None else default_rng()
    noise = rng.random((spec.channels, spec.size, spec.size))
    smooth = ndimage.gaussian_filter(noise, sigma=(0, 2.5, 2.5))
    # Add a bright object blob on a dimmer background, like a centred subject.
    yy, xx = np.mgrid[0 : spec.size, 0 : spec.size]
    cy, cx = rng.uniform(0.3, 0.7, size=2) * spec.size
    radius = spec.size * rng.uniform(0.15, 0.3)
    blob = np.exp(-(((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * radius**2)))
    image = 0.5 * smooth + 0.5 * blob[None]
    image -= image.min()
    peak = image.max()
    return image / peak if peak > 0 else image


def synthetic_audio(
    spec: DatasetSpec, rng: np.random.Generator | None = None
) -> np.ndarray:
    """One mel-spectrogram-like ``(C, L)`` patch in [0, 1].

    Keyword audio is a few formant bands sweeping slowly over ~1 s of
    frames on a quiet background. Smooth band trajectories make
    neighbouring frames (im2col1d rows) similar — the temporal
    correlation that seeds PM/EM matches in speech SNNs, just as blob
    structure does for images.
    """
    rng = rng if rng is not None else default_rng()
    bands, frames = spec.channels, spec.size
    noise = rng.random((bands, frames))
    background = ndimage.gaussian_filter(noise, sigma=(1.5, 4.0))
    energy = np.zeros((bands, frames))
    yy = np.arange(bands, dtype=np.float64)
    tt = np.linspace(0.0, 1.0, frames)
    for _ in range(rng.integers(2, 5)):
        center = rng.uniform(0.1, 0.9) * bands
        sweep = rng.uniform(-0.3, 0.3) * bands
        width = bands * rng.uniform(0.04, 0.12)
        onset, release = np.sort(rng.uniform(0.0, 1.0, size=2))
        envelope = np.clip((tt - onset) / 0.1, 0.0, 1.0) * np.clip(
            (release + 0.1 - tt) / 0.1, 0.0, 1.0
        )
        track = center + sweep * tt
        energy += envelope[None, :] * np.exp(
            -((yy[:, None] - track[None, :]) ** 2) / (2 * width**2)
        )
    patch = 0.3 * background + 0.7 * energy
    patch -= patch.min()
    peak = patch.max()
    return patch / peak if peak > 0 else patch


def synthetic_dvs(
    spec: DatasetSpec, time_steps: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """A ``(T, 2, H, W)`` binary event stream: a moving edge plus noise.

    Polarity channels fire along a translating bright edge; most of the
    frame is silent, matching the high sparsity of real DVS data.
    """
    rng = rng if rng is not None else default_rng()
    events = np.zeros((time_steps, 2, spec.size, spec.size), dtype=bool)
    edge_y = rng.uniform(0.2, 0.8) * spec.size
    velocity = rng.uniform(0.5, 2.0)
    thickness = max(1, spec.size // 16)
    for t in range(time_steps):
        row = int(edge_y + velocity * t) % spec.size
        rows = [(row + d) % spec.size for d in range(thickness)]
        mask = rng.random((len(rows), spec.size)) < 0.6
        events[t, 0, rows, :] = mask
        events[t, 1, rows, :] = ~mask & (rng.random((len(rows), spec.size)) < 0.3)
        noise = rng.random((2, spec.size, spec.size)) < 0.01
        events[t] |= noise
    return events


def synthetic_tokens(
    spec: DatasetSpec, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Zipf-distributed token ids of shape ``(seq_len,)``.

    Natural-language token frequencies are Zipfian, so short sequences
    contain many repeated ids — repeated ids embed to identical rows,
    seeding exact-match product sparsity just like real text does.
    """
    rng = rng if rng is not None else default_rng()
    ranks = np.arange(1, spec.vocab + 1, dtype=np.float64)
    probs = 1.0 / ranks**1.1
    probs /= probs.sum()
    return rng.choice(spec.vocab, size=spec.seq_len, p=probs)


class EmbeddingTable:
    """Fixed random token-embedding lookup used by the NLP models."""

    def __init__(self, vocab: int, dim: int, rng: np.random.Generator | None = None):
        rng = rng if rng is not None else default_rng()
        self.table = rng.normal(0.0, 1.0, size=(vocab, dim))

    def __call__(self, token_ids: np.ndarray) -> np.ndarray:
        return self.table[np.asarray(token_ids, dtype=np.int64)]
