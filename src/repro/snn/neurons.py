"""Spiking neuron models (Sec. II-A).

Implements the neuron models the paper's workloads use:

* :class:`LIFNeuron` — leaky integrate-and-fire, the model all evaluated
  SNNs use (Gerstner's formulation with hard reset);
* :class:`IFNeuron` — non-leaky special case;
* :class:`FSNeuron` — the few-spikes neuron of Stöckl & Maass used by the
  Stellar baseline; it emits at most ``n_bits`` spikes per stimulus using
  a fixed geometric weighting, trading accuracy for sparsity.

All neurons operate on a leading time axis: input currents of shape
``(T, ...)`` produce binary spike trains of the same shape. Thresholds can
be *calibrated* to hit a target firing rate (:func:`calibrate_threshold`),
substituting for trained model checkpoints — what matters downstream is
the spike-matrix density and correlation structure, not task accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ensure_positive


@dataclass
class LIFNeuron:
    """Leaky integrate-and-fire neuron layer.

    Membrane update per time step (discrete LIF with hard reset):

    ``v[t] = v[t-1] * (1 - 1/tau) + I[t]``;  spike when ``v >= v_threshold``
    then reset ``v`` to ``v_reset``.

    ``v_threshold`` may be a scalar or an array broadcastable against the
    per-step state (e.g. per-channel thresholds shaped ``(C, 1, 1)``),
    matching trained SNNs whose effective thresholds vary per channel.
    """

    tau: float = 2.0
    v_threshold: float | np.ndarray = 1.0
    v_reset: float = 0.0

    def __post_init__(self) -> None:
        ensure_positive(self.tau, "tau")
        if self.tau < 1.0:
            raise ValueError(f"tau must be >= 1 (decay in [0,1]), got {self.tau}")

    @property
    def decay(self) -> float:
        return 1.0 - 1.0 / self.tau

    def forward(self, currents: np.ndarray) -> np.ndarray:
        """Integrate input currents over time; return binary spikes."""
        currents = np.asarray(currents, dtype=np.float64)
        if currents.ndim < 1:
            raise ValueError("currents must have a leading time axis")
        spikes = np.zeros(currents.shape, dtype=bool)
        v = np.zeros(currents.shape[1:], dtype=np.float64)
        for t in range(currents.shape[0]):
            v = v * self.decay + currents[t]
            fired = v >= self.v_threshold
            spikes[t] = fired
            v = np.where(fired, self.v_reset, v)
        return spikes

    def membrane_trace(self, currents: np.ndarray) -> np.ndarray:
        """Pre-reset membrane potentials per step (for analysis/tests)."""
        currents = np.asarray(currents, dtype=np.float64)
        trace = np.zeros(currents.shape, dtype=np.float64)
        v = np.zeros(currents.shape[1:], dtype=np.float64)
        for t in range(currents.shape[0]):
            v = v * self.decay + currents[t]
            trace[t] = v
            v = np.where(v >= self.v_threshold, self.v_reset, v)
        return trace


@dataclass
class IFNeuron(LIFNeuron):
    """Integrate-and-fire: LIF without leak (tau -> infinity)."""

    tau: float = float("inf")

    def __post_init__(self) -> None:  # tau=inf is legal here
        if self.tau != float("inf"):
            super().__post_init__()

    @property
    def decay(self) -> float:
        return 1.0 if self.tau == float("inf") else super().decay


@dataclass
class FSNeuron:
    """Few-spikes neuron (Stöckl & Maass 2021), as used by Stellar.

    The neuron converts an analog activation into at most ``n_bits`` spikes
    within a stimulus window using geometrically decaying thresholds
    ``h * 2^-i`` — effectively a binary expansion of the activation. Dense
    activations thus map to very few spikes, which is where Stellar's
    sparsity advantage comes from (at the cost of modifying the algorithm).
    """

    n_bits: int = 4
    h: float = 1.0

    def __post_init__(self) -> None:
        if self.n_bits < 1:
            raise ValueError("n_bits must be >= 1")
        ensure_positive(self.h, "h")

    def forward(self, activation: np.ndarray) -> np.ndarray:
        """Encode analog activations into an ``(n_bits, ...)`` spike train."""
        activation = np.clip(np.asarray(activation, dtype=np.float64), 0.0, None)
        spikes = np.zeros((self.n_bits,) + activation.shape, dtype=bool)
        residual = activation.copy()
        for i in range(self.n_bits):
            threshold = self.h * (2.0 ** -(i + 1))
            fired = residual >= threshold
            spikes[i] = fired
            residual = residual - np.where(fired, threshold, 0.0)
        return spikes

    def decode(self, spikes: np.ndarray) -> np.ndarray:
        """Reconstruct the quantized activation from an FS spike train."""
        spikes = np.asarray(spikes, dtype=np.float64)
        weights = self.h * (2.0 ** -(np.arange(self.n_bits) + 1))
        return np.tensordot(weights, spikes, axes=(0, 0))


def firing_rate(spikes: np.ndarray) -> float:
    """Fraction of 1s in a spike train — the bit density it induces."""
    spikes = np.asarray(spikes, dtype=bool)
    return float(spikes.mean()) if spikes.size else 0.0


def calibrate_threshold(
    neuron: LIFNeuron,
    currents: np.ndarray,
    target_rate: float,
    tolerance: float = 0.01,
    max_iterations: int = 30,
) -> float:
    """Bisect ``v_threshold`` so the neuron fires at ``target_rate``.

    Firing rate is monotonically non-increasing in the threshold, so
    bisection over a bracket derived from the current magnitudes converges.
    This is the stand-in for trained batch-norm/threshold parameters: it
    pins the *bit density* of each layer to the paper's reported values.
    """
    if not 0.0 < target_rate < 1.0:
        raise ValueError(f"target_rate must be in (0, 1), got {target_rate}")
    currents = np.asarray(currents, dtype=np.float64)
    scale = float(np.abs(currents).max())
    if scale == 0.0:
        return float(np.asarray(neuron.v_threshold).ravel()[0])
    low, high = 0.0, scale * max(2.0, currents.shape[0])
    best = float(np.asarray(neuron.v_threshold).ravel()[0])
    for _ in range(max_iterations):
        mid = 0.5 * (low + high)
        if mid <= 0.0:
            break
        neuron.v_threshold = mid
        rate = firing_rate(neuron.forward(currents))
        best = mid
        if abs(rate - target_rate) <= tolerance:
            break
        if rate > target_rate:
            low = mid  # too many spikes -> raise threshold
        else:
            high = mid
    neuron.v_threshold = best
    return best


def heterogeneous_rates(
    mean_rate: float,
    channels: int,
    rng: np.random.Generator,
    concentration: float = 1.5,
    floor: float = 0.005,
    ceil: float = 0.95,
) -> np.ndarray:
    """Per-channel target rates with a heavy-tailed (Beta) spread.

    Trained SNNs show strongly heterogeneous channel activity — many
    near-silent channels and a few busy ones — which is a major source of
    the subset structure ProSparsity exploits. A Beta distribution with
    mean ``mean_rate`` and low concentration reproduces that skew while
    keeping the layer-average density on target.
    """
    if not 0.0 < mean_rate < 1.0:
        raise ValueError(f"mean_rate must be in (0, 1), got {mean_rate}")
    a = mean_rate * concentration
    b = (1.0 - mean_rate) * concentration
    rates = rng.beta(a, b, size=channels)
    return np.clip(rates, floor, ceil)


def calibrate_threshold_channels(
    neuron: LIFNeuron,
    currents: np.ndarray,
    target_rates: np.ndarray,
    channel_axis: int = 1,
    max_iterations: int = 25,
) -> np.ndarray:
    """Vectorized per-channel bisection of ``v_threshold``.

    ``channel_axis`` indexes into ``currents`` itself (e.g. 1 for conv
    currents shaped ``(T, C, H, W)``, ``ndim - 1`` for linear currents).
    All channels bisect concurrently: each iteration simulates once with
    the full threshold vector and updates every channel's bracket
    independently.
    """
    currents = np.asarray(currents, dtype=np.float64)
    target_rates = np.asarray(target_rates, dtype=np.float64)
    channel_axis = channel_axis % currents.ndim
    if channel_axis == 0:
        raise ValueError("channel_axis must not be the time axis")
    # Threshold broadcasts against the per-step state (currents minus the
    # time axis), so the channel slot shifts down by one.
    shape = [1] * (currents.ndim - 1)
    shape[channel_axis - 1] = -1

    def reshape(vector: np.ndarray) -> np.ndarray:
        return vector.reshape(shape)

    channels = target_rates.shape[0]
    if currents.shape[channel_axis] != channels:
        raise ValueError(
            f"target_rates has {channels} channels but currents axis "
            f"{channel_axis} has {currents.shape[channel_axis]}"
        )
    reduce_axes = tuple(i for i in range(currents.ndim) if i != channel_axis)
    scale = np.abs(currents).max(axis=reduce_axes)
    scale = np.where(scale > 0, scale, 1.0)
    low = np.zeros(channels)
    high = scale * max(2.0, currents.shape[0])
    mid = 0.5 * (low + high)
    for _ in range(max_iterations):
        neuron.v_threshold = reshape(mid)
        spikes = neuron.forward(currents)
        rates = spikes.mean(axis=reduce_axes)
        too_many = rates > target_rates
        low = np.where(too_many, mid, low)
        high = np.where(too_many, high, mid)
        mid = 0.5 * (low + high)
    neuron.v_threshold = reshape(mid)
    return mid
