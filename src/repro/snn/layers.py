"""Spiking layers: the building blocks of the evaluated SNN models.

Each layer that performs a spiking GeMM reports it to the active
:class:`~repro.snn.trace.WorkloadRecorder`. Layers carrying a spiking
neuron support *threshold calibration on first forward*: normalization
statistics and the firing threshold are fitted so the output spike train
hits the layer's target firing rate — the stand-in for trained weights
(see DESIGN.md, substitutions).
"""

from __future__ import annotations

import numpy as np

from repro.snn import functional as F
from repro.snn.neurons import (
    LIFNeuron,
    calibrate_threshold,
    calibrate_threshold_channels,
    heterogeneous_rates,
)
from repro.snn.trace import record_gemm
from repro.utils.rng import default_rng


class Layer:
    """Base class: a named module with a ``forward`` method."""

    def __init__(self, name: str = ""):
        self.name = name or self.__class__.__name__

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}({self.name!r})"


class _SpikingGeMMLayer(Layer):
    """Shared machinery: weight init, normalization, LIF calibration."""

    def __init__(
        self,
        name: str,
        fan_in: int,
        fan_out: int,
        target_rate: float,
        tau: float,
        rng: np.random.Generator | None,
        rate_spread: float = 1.5,
    ):
        super().__init__(name)
        rng = rng if rng is not None else default_rng()
        scale = np.sqrt(2.0 / fan_in)
        self.weight = rng.normal(0.0, scale, size=(fan_in, fan_out))
        self.neuron = LIFNeuron(tau=tau)
        self.target_rate = target_rate
        # rate_spread > 0 draws heavy-tailed per-channel target rates
        # (trained-SNN-like heterogeneity); 0 calibrates one shared rate.
        self.rate_spread = rate_spread
        self._rng = rng
        self._calibrated = False
        self._norm_mean: np.ndarray | None = None
        self._norm_std: np.ndarray | None = None

    def _normalize(self, currents: np.ndarray, channel_axis: int) -> np.ndarray:
        """Batch-norm-style per-channel normalization (stats fit once)."""
        if self._norm_mean is None:
            self._norm_mean, self._norm_std = F.batch_norm_stats(currents, channel_axis)
        shape = [1] * currents.ndim
        shape[channel_axis] = -1
        return (currents - self._norm_mean.reshape(shape)) / self._norm_std.reshape(shape)

    def _fire(self, currents: np.ndarray, channel_axis: int) -> np.ndarray:
        if not self._calibrated:
            if self.rate_spread > 0:
                rates = heterogeneous_rates(
                    self.target_rate,
                    currents.shape[channel_axis],
                    self._rng,
                    concentration=self.rate_spread,
                )
                calibrate_threshold_channels(
                    self.neuron, currents, rates, channel_axis=channel_axis
                )
            else:
                calibrate_threshold(self.neuron, currents, self.target_rate)
            self._calibrated = True
        return self.neuron.forward(currents)


class SpikingConv2d(_SpikingGeMMLayer):
    """Conv + folded BN + LIF, lowered to a spiking GeMM via im2col.

    Input/output: ``(T, C, H, W)`` binary spikes.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        padding: int = 1,
        name: str = "conv",
        target_rate: float = 0.25,
        tau: float = 2.0,
        rng: np.random.Generator | None = None,
        rate_spread: float = 1.5,
    ):
        super().__init__(
            name, in_channels * kernel * kernel, out_channels, target_rate, tau, rng,
            rate_spread=rate_spread,
        )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding

    def forward(self, spikes: np.ndarray) -> np.ndarray:
        spikes = np.asarray(spikes)
        t, c, h, w = spikes.shape
        if c != self.in_channels:
            raise ValueError(f"{self.name}: expected {self.in_channels} channels, got {c}")
        oh = F.conv_output_size(h, self.kernel, self.stride, self.padding)
        ow = F.conv_output_size(w, self.kernel, self.stride, self.padding)
        cols = F.im2col(spikes, self.kernel, self.stride, self.padding)
        if spikes.dtype == bool:
            record_gemm(self.name, cols, self.out_channels, kind="conv", time_steps=t)
        currents = cols.astype(np.float64) @ self.weight
        currents = F.fold_gemm_output(currents, t, oh, ow)
        currents = self._normalize(currents, channel_axis=1)
        return self._fire(currents, channel_axis=1)


class SpikingConv1d(_SpikingGeMMLayer):
    """Temporal conv + folded BN + LIF, lowered via 1D im2col.

    Input/output: ``(T, C, L)`` binary spikes — the speech-command path
    (tc-res-style models treat mel bands as channels and convolve along
    the frame axis).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        padding: int = 1,
        name: str = "conv1d",
        target_rate: float = 0.25,
        tau: float = 2.0,
        rng: np.random.Generator | None = None,
        rate_spread: float = 1.5,
    ):
        super().__init__(
            name, in_channels * kernel, out_channels, target_rate, tau, rng,
            rate_spread=rate_spread,
        )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding

    def forward(self, spikes: np.ndarray) -> np.ndarray:
        spikes = np.asarray(spikes)
        t, c, length = spikes.shape
        if c != self.in_channels:
            raise ValueError(f"{self.name}: expected {self.in_channels} channels, got {c}")
        ol = F.conv_output_size(length, self.kernel, self.stride, self.padding)
        cols = F.im2col1d(spikes, self.kernel, self.stride, self.padding)
        if spikes.dtype == bool:
            record_gemm(self.name, cols, self.out_channels, kind="conv", time_steps=t)
        currents = cols.astype(np.float64) @ self.weight
        currents = F.fold_gemm_output_1d(currents, t, ol)
        currents = self._normalize(currents, channel_axis=1)
        return self._fire(currents, channel_axis=1)


class SpikingLinear(_SpikingGeMMLayer):
    """Fully connected + LIF. Input ``(T, ..., in_features)`` binary spikes."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        name: str = "linear",
        target_rate: float = 0.25,
        tau: float = 2.0,
        fire: bool = True,
        rng: np.random.Generator | None = None,
        rate_spread: float = 1.5,
    ):
        super().__init__(
            name, in_features, out_features, target_rate, tau, rng,
            rate_spread=rate_spread,
        )
        self.in_features = in_features
        self.out_features = out_features
        self.fire = fire

    def forward(self, spikes: np.ndarray) -> np.ndarray:
        spikes = np.asarray(spikes)
        if spikes.shape[-1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} features, got {spikes.shape[-1]}"
            )
        flat = spikes.reshape(-1, self.in_features)
        if spikes.dtype == bool:
            record_gemm(
                self.name, flat, self.out_features, kind="linear",
                time_steps=spikes.shape[0],
            )
        currents = (flat.astype(np.float64) @ self.weight).reshape(
            spikes.shape[:-1] + (self.out_features,)
        )
        currents = self._normalize(currents, channel_axis=currents.ndim - 1)
        if not self.fire:
            return currents
        return self._fire(currents, channel_axis=currents.ndim - 1)


class MaxPool2d(Layer):
    """Window-OR pooling on binary spike maps."""

    def __init__(self, window: int = 2, name: str = "maxpool"):
        super().__init__(name)
        self.window = window

    def forward(self, spikes: np.ndarray) -> np.ndarray:
        return F.max_pool_spikes(spikes, self.window)


class AvgPool2d(Layer):
    """Average pooling (float path, used before classifier heads)."""

    def __init__(self, window: int = 2, name: str = "avgpool"):
        super().__init__(name)
        self.window = window

    def forward(self, values: np.ndarray) -> np.ndarray:
        return F.avg_pool(values, self.window)


class MaxPool1d(Layer):
    """Window-OR pooling on binary spike sequences."""

    def __init__(self, window: int = 2, name: str = "maxpool1d"):
        super().__init__(name)
        self.window = window

    def forward(self, spikes: np.ndarray) -> np.ndarray:
        return F.max_pool_spikes_1d(spikes, self.window)


class AvgPool1d(Layer):
    """Average pooling over sequences (float path)."""

    def __init__(self, window: int = 2, name: str = "avgpool1d"):
        super().__init__(name)
        self.window = window

    def forward(self, values: np.ndarray) -> np.ndarray:
        return F.avg_pool_1d(values, self.window)


class Flatten(Layer):
    """(T, C, H, W) -> (T, C*H*W), keeping the time axis."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(x).reshape(x.shape[0], -1)


class SpikingSelfAttention(Layer):
    """Spikformer's Spiking Self-Attention (SSA, Zhou et al. 2022).

    Q, K, V are binary spike tensors produced by linear+LIF branches. The
    attention product is computed as ``Q (K^T V)`` — softmax-free — so both
    matrix products keep a *binary left operand* and remain spiking GeMMs,
    which Prosperity's PPU executes (paper Sec. IV "Support for
    Transformers"). Each per-(timestep, head) product is recorded as its
    own workload: rows of different heads multiply different operands, so
    they must not share a ProSparsity scope.
    """

    def __init__(
        self,
        dim: int,
        heads: int,
        name: str = "ssa",
        target_rate: float = 0.2,
        tau: float = 2.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(name)
        if dim % heads:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        rng = rng if rng is not None else default_rng()
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        common = dict(target_rate=target_rate, tau=tau)
        self.q_proj = SpikingLinear(dim, dim, name=f"{name}.q", rng=rng, **common)
        self.k_proj = SpikingLinear(dim, dim, name=f"{name}.k", rng=rng, **common)
        self.v_proj = SpikingLinear(dim, dim, name=f"{name}.v", rng=rng, **common)
        self.out_proj = SpikingLinear(dim, dim, name=f"{name}.out", rng=rng, **common)
        self.attn_neuron = LIFNeuron(tau=tau)
        self._attn_calibrated = False
        self.target_rate = target_rate

    def forward(self, spikes: np.ndarray) -> np.ndarray:
        t, length, dim = spikes.shape
        q = self.q_proj(spikes)
        k = self.k_proj(spikes)
        v = self.v_proj(spikes)

        scale = 1.0 / np.sqrt(self.head_dim)
        attn_out = np.zeros((t, length, dim), dtype=np.float64)
        for step in range(t):
            for head in range(self.heads):
                lo, hi = head * self.head_dim, (head + 1) * self.head_dim
                q_h, k_h, v_h = q[step, :, lo:hi], k[step, :, lo:hi], v[step, :, lo:hi]
                # K^T V: binary left operand (head_dim x L) times (L x head_dim).
                k_t = np.ascontiguousarray(k_h.T)
                record_gemm(f"{self.name}.kv", k_t, self.head_dim, kind="attention")
                kv = k_t.astype(np.float64) @ v_h.astype(np.float64)
                # Q (K^T V): binary left operand (L x head_dim).
                record_gemm(f"{self.name}.qkv", q_h, self.head_dim, kind="attention")
                attn_out[step, :, lo:hi] = q_h.astype(np.float64) @ kv * scale

        if not self._attn_calibrated:
            calibrate_threshold(self.attn_neuron, attn_out, self.target_rate)
            self._attn_calibrated = True
        attn_spikes = self.attn_neuron.forward(attn_out)
        return self.out_proj(attn_spikes)


class SpikeDrivenSelfAttention(Layer):
    """SDT's Spike-Driven Self-Attention (Yao et al. 2024).

    Attention is computed with masks and column sums — Hadamard products
    and additions only, no attention GeMM (handled by Prosperity's SFU
    AND/OR units). Only the Q/K/V/out projections are spiking GeMMs.
    """

    def __init__(
        self,
        dim: int,
        heads: int,
        name: str = "sdsa",
        target_rate: float = 0.15,
        tau: float = 2.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(name)
        rng = rng if rng is not None else default_rng()
        common = dict(target_rate=target_rate, tau=tau)
        self.q_proj = SpikingLinear(dim, dim, name=f"{name}.q", rng=rng, **common)
        self.k_proj = SpikingLinear(dim, dim, name=f"{name}.k", rng=rng, **common)
        self.v_proj = SpikingLinear(dim, dim, name=f"{name}.v", rng=rng, **common)
        self.out_proj = SpikingLinear(dim, dim, name=f"{name}.out", rng=rng, **common)
        self.gate_neuron = LIFNeuron(tau=tau)
        self._gate_calibrated = False
        self.target_rate = target_rate

    def forward(self, spikes: np.ndarray) -> np.ndarray:
        q = self.q_proj(spikes)
        k = self.k_proj(spikes)
        v = self.v_proj(spikes)
        # Column-wise sum of K⊙V over tokens, gated through a spiking neuron,
        # then broadcast-masked by Q: pure element-wise / reduction datapath.
        kv = (k & v).sum(axis=1, keepdims=True).astype(np.float64)
        if not self._gate_calibrated:
            calibrate_threshold(self.gate_neuron, kv, self.target_rate)
            self._gate_calibrated = True
        gate = self.gate_neuron.forward(kv)
        masked = q & gate
        return self.out_proj(masked)


class TransformerFFN(Layer):
    """Feed-forward block: two spiking linears with expansion ``ratio``."""

    def __init__(
        self,
        dim: int,
        ratio: int = 4,
        name: str = "ffn",
        target_rate: float = 0.2,
        tau: float = 2.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(name)
        rng = rng if rng is not None else default_rng()
        self.up = SpikingLinear(
            dim, dim * ratio, name=f"{name}.up", target_rate=target_rate, tau=tau, rng=rng
        )
        self.down = SpikingLinear(
            dim * ratio, dim, name=f"{name}.down", target_rate=target_rate, tau=tau, rng=rng
        )

    def forward(self, spikes: np.ndarray) -> np.ndarray:
        return self.down(self.up(spikes))
