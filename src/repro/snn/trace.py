"""Workload extraction: from SNN forward passes to spiking-GeMM traces.

The paper drives its simulator with per-layer binary spike matrices
extracted from PyTorch runs ("We extract the runtime information and use
it in our experiment"). Here, layers report every spiking GeMM they
perform to the active :class:`WorkloadRecorder`; the resulting
:class:`ModelTrace` is the interface between the SNN substrate and every
accelerator model in :mod:`repro.baselines` / :mod:`repro.arch`.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.core.spike_matrix import SpikeMatrix


@dataclass
class GeMMWorkload:
    """One spiking GeMM: binary ``(M, K)`` activations times ``(K, N)`` weights.

    Attributes
    ----------
    name:
        Layer path, e.g. ``"features.3.conv"``.
    spikes:
        The binary left operand (time steps already unrolled into rows).
    n:
        Output feature dimension (columns of the weight operand).
    kind:
        ``"conv"`` | ``"linear"`` | ``"attention"`` — attention GeMMs have a
        *dynamic* right operand (another spike product), which only GPU and
        Prosperity support (Sec. VII-A).
    time_steps:
        SNN time steps folded into M, kept for PTB-style time batching.
    """

    name: str
    spikes: SpikeMatrix
    n: int
    kind: str = "linear"
    time_steps: int = 1

    @property
    def m(self) -> int:
        return self.spikes.rows

    @property
    def k(self) -> int:
        return self.spikes.cols

    @property
    def dense_macs(self) -> int:
        """Dense multiply-accumulate count (the GPU/Eyeriss workload)."""
        return self.m * self.k * self.n

    @property
    def spike_accumulations(self) -> int:
        """Bit-sparse accumulate count (one add per spike per output col)."""
        return int(self.spikes.nnz) * self.n

    @property
    def bit_density(self) -> float:
        return self.spikes.bit_density


@dataclass
class ModelTrace:
    """All spiking GeMMs of one model on one input, in execution order."""

    model: str
    dataset: str
    workloads: list[GeMMWorkload] = field(default_factory=list)

    @property
    def total_dense_macs(self) -> int:
        return sum(w.dense_macs for w in self.workloads)

    @property
    def total_spikes(self) -> int:
        return sum(w.spikes.nnz for w in self.workloads)

    @property
    def total_elements(self) -> int:
        return sum(w.spikes.bits.size for w in self.workloads)

    @property
    def bit_density(self) -> float:
        elements = self.total_elements
        return self.total_spikes / elements if elements else 0.0

    def linear_only(self) -> "ModelTrace":
        """Drop attention GeMMs — what PTB/SATO/MINT can execute (Sec. VII-A)."""
        return ModelTrace(
            model=self.model,
            dataset=self.dataset,
            workloads=[w for w in self.workloads if w.kind != "attention"],
        )

    def __iter__(self) -> Iterator[GeMMWorkload]:
        return iter(self.workloads)

    def __len__(self) -> int:
        return len(self.workloads)


class WorkloadRecorder:
    """Collects GeMM workloads emitted by layers during a forward pass."""

    def __init__(self) -> None:
        self.workloads: list[GeMMWorkload] = []

    def record(
        self,
        name: str,
        spikes: np.ndarray,
        n: int,
        kind: str = "linear",
        time_steps: int = 1,
    ) -> None:
        self.workloads.append(
            GeMMWorkload(
                name=name,
                spikes=SpikeMatrix(np.asarray(spikes, dtype=bool)),
                n=int(n),
                kind=kind,
                time_steps=time_steps,
            )
        )


_ACTIVE_RECORDER: list[WorkloadRecorder] = []


@contextlib.contextmanager
def recording(recorder: WorkloadRecorder) -> Iterator[WorkloadRecorder]:
    """Activate a recorder for the duration of a forward pass."""
    _ACTIVE_RECORDER.append(recorder)
    try:
        yield recorder
    finally:
        _ACTIVE_RECORDER.pop()


def active_recorder() -> WorkloadRecorder | None:
    """The innermost active recorder, or None outside a recording block."""
    return _ACTIVE_RECORDER[-1] if _ACTIVE_RECORDER else None


def record_gemm(
    name: str,
    spikes: np.ndarray,
    n: int,
    kind: str = "linear",
    time_steps: int = 1,
) -> None:
    """Report a spiking GeMM to the active recorder, if any."""
    recorder = active_recorder()
    if recorder is not None:
        recorder.record(name, spikes, n, kind=kind, time_steps=time_steps)
