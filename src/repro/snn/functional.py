"""Stateless tensor ops for the SNN substrate: im2col, pooling, norms."""

from __future__ import annotations

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive conv output ({out}) for size={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def im2col(
    images: np.ndarray, kernel: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Lower convolution inputs to a matrix (Chellapilla et al., Sec. II-B).

    Parameters
    ----------
    images:
        ``(T, C, H, W)`` input (binary spikes or float currents).

    Returns
    -------
    ``(T * OH * OW, C * kernel * kernel)`` matrix whose rows are flattened
    receptive fields; multiplying by reshaped kernels realizes the conv.
    The row ordering (time major, then raster order) matches how Prosperity
    unrolls time steps into the spike matrix.
    """
    images = np.asarray(images)
    if images.ndim != 4:
        raise ValueError(f"expected (T, C, H, W), got shape {images.shape}")
    t, c, h, w = images.shape
    oh = conv_output_size(h, kernel, stride, padding)
    ow = conv_output_size(w, kernel, stride, padding)
    if padding:
        padded = np.zeros((t, c, h + 2 * padding, w + 2 * padding), dtype=images.dtype)
        padded[:, :, padding : padding + h, padding : padding + w] = images
        images = padded
    # Strided sliding-window view, then reorder to rows of receptive fields.
    windows = np.lib.stride_tricks.sliding_window_view(images, (kernel, kernel), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]  # (T, C, OH, OW, k, k)
    windows = windows.transpose(0, 2, 3, 1, 4, 5)  # (T, OH, OW, C, k, k)
    return windows.reshape(t * oh * ow, c * kernel * kernel)


def im2col1d(
    sequences: np.ndarray, kernel: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """1D im2col for temporal-conv speech models.

    Parameters
    ----------
    sequences:
        ``(T, C, L)`` input (binary spikes or float currents).

    Returns
    -------
    ``(T * OL, C * kernel)`` matrix whose rows are flattened receptive
    fields along the sequence axis — the 1D analogue of :func:`im2col`,
    with the same time-major row ordering.
    """
    sequences = np.asarray(sequences)
    if sequences.ndim != 3:
        raise ValueError(f"expected (T, C, L), got shape {sequences.shape}")
    t, c, length = sequences.shape
    ol = conv_output_size(length, kernel, stride, padding)
    if padding:
        padded = np.zeros((t, c, length + 2 * padding), dtype=sequences.dtype)
        padded[:, :, padding : padding + length] = sequences
        sequences = padded
    windows = np.lib.stride_tricks.sliding_window_view(sequences, kernel, axis=2)
    windows = windows[:, :, ::stride, :]  # (T, C, OL, k)
    windows = windows.transpose(0, 2, 1, 3)  # (T, OL, C, k)
    return windows.reshape(t * ol, c * kernel)


def fold_gemm_output_1d(result: np.ndarray, t: int, ol: int) -> np.ndarray:
    """Reshape a ``(T*OL, C_out)`` GeMM result back to ``(T, C_out, OL)``."""
    result = np.asarray(result)
    c_out = result.shape[1]
    return result.reshape(t, ol, c_out).transpose(0, 2, 1)


def max_pool_spikes_1d(spikes: np.ndarray, window: int = 2) -> np.ndarray:
    """Max-pool binary spike sequences; on {0,1} data this is a window OR."""
    spikes = np.asarray(spikes)
    t, c, length = spikes.shape
    if length % window:
        raise ValueError(f"sequence length {length} not divisible by window {window}")
    view = spikes.reshape(t, c, length // window, window)
    return view.max(axis=3)


def avg_pool_1d(values: np.ndarray, window: int = 2) -> np.ndarray:
    """Average-pool float sequences (used before classifier heads)."""
    values = np.asarray(values, dtype=np.float64)
    t, c, length = values.shape
    if length % window:
        raise ValueError(f"sequence length {length} not divisible by window {window}")
    view = values.reshape(t, c, length // window, window)
    return view.mean(axis=3)


def col2im_shape(t: int, out_channels: int, oh: int, ow: int) -> tuple[int, int, int, int]:
    """Output tensor shape corresponding to an im2col GeMM result."""
    return (t, out_channels, oh, ow)


def fold_gemm_output(result: np.ndarray, t: int, oh: int, ow: int) -> np.ndarray:
    """Reshape a ``(T*OH*OW, C_out)`` GeMM result back to ``(T, C_out, OH, OW)``."""
    result = np.asarray(result)
    c_out = result.shape[1]
    return result.reshape(t, oh, ow, c_out).transpose(0, 3, 1, 2)


def max_pool_spikes(spikes: np.ndarray, window: int = 2) -> np.ndarray:
    """Max-pool binary spike maps; on {0,1} data max-pool is a window OR."""
    spikes = np.asarray(spikes)
    t, c, h, w = spikes.shape
    if h % window or w % window:
        raise ValueError(f"spatial dims {(h, w)} not divisible by window {window}")
    view = spikes.reshape(t, c, h // window, window, w // window, window)
    return view.max(axis=(3, 5))


def avg_pool(values: np.ndarray, window: int = 2) -> np.ndarray:
    """Average-pool float maps (used before classifier heads)."""
    values = np.asarray(values, dtype=np.float64)
    t, c, h, w = values.shape
    if h % window or w % window:
        raise ValueError(f"spatial dims {(h, w)} not divisible by window {window}")
    view = values.reshape(t, c, h // window, window, w // window, window)
    return view.mean(axis=(3, 5))


def global_avg_pool(values: np.ndarray) -> np.ndarray:
    """(T, C, H, W) -> (T, C) global average."""
    return np.asarray(values, dtype=np.float64).mean(axis=(2, 3))


def batch_norm_stats(currents: np.ndarray, channel_axis: int = 1) -> tuple[np.ndarray, np.ndarray]:
    """Per-channel mean/std over all other axes (training-style statistics)."""
    currents = np.asarray(currents, dtype=np.float64)
    axes = tuple(i for i in range(currents.ndim) if i != channel_axis)
    mean = currents.mean(axis=axes)
    std = currents.std(axis=axes)
    return mean, np.where(std > 1e-12, std, 1.0)


def layer_norm(values: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Normalize over the trailing feature axis (transformer LayerNorm)."""
    values = np.asarray(values, dtype=np.float64)
    mean = values.mean(axis=-1, keepdims=True)
    std = values.std(axis=-1, keepdims=True)
    return (values - mean) / (std + eps)


def softmax(values: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax (SFU exp/div path)."""
    values = np.asarray(values, dtype=np.float64)
    shifted = values - values.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)
