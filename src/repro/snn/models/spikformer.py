"""Spikformer (Zhou et al. 2022): spiking vision transformer with SSA."""

from __future__ import annotations

import numpy as np

from repro.snn.datasets import get_spec, synthetic_dvs, synthetic_image
from repro.snn.encoding import direct_threshold_encode
from repro.snn.layers import (
    Layer,
    MaxPool2d,
    SpikingConv2d,
    SpikingSelfAttention,
    TransformerFFN,
)
from repro.snn.network import Residual, Sequential, SpikingModel


class PatchEmbed(Layer):
    """Spiking patch embedding: conv+LIF stages with pooling down to tokens."""

    def __init__(
        self,
        in_channels: int,
        dim: int,
        pool_stages: int,
        name: str = "patch_embed",
        target_rate: float = 0.25,
        tau: float = 2.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(name)
        layers: list[Layer] = []
        channels = in_channels
        for stage in range(pool_stages):
            out_channels = dim // (2 ** (pool_stages - 1 - stage))
            layers.append(
                SpikingConv2d(
                    channels, out_channels, kernel=3, padding=1,
                    name=f"{name}.conv{stage}", target_rate=target_rate,
                    tau=tau, rng=rng,
                )
            )
            layers.append(MaxPool2d(2, name=f"{name}.pool{stage}"))
            channels = out_channels
        self.body = Sequential(layers, name=name)
        self.dim = dim

    def forward(self, spikes: np.ndarray) -> np.ndarray:
        out = self.body(spikes)  # (T, dim, H', W')
        t, dim, h, w = out.shape
        return out.reshape(t, dim, h * w).transpose(0, 2, 1)  # (T, L, dim)


class TransformerBlock(Layer):
    """SSA + FFN with binary residual connections."""

    def __init__(
        self,
        dim: int,
        heads: int,
        name: str,
        target_rate: float,
        tau: float,
        rng: np.random.Generator | None,
        mlp_ratio: int = 4,
    ):
        super().__init__(name)
        self.attn = Residual(
            SpikingSelfAttention(
                dim, heads, name=f"{name}.ssa", target_rate=target_rate,
                tau=tau, rng=rng,
            ),
            name=f"{name}.attn_res",
        )
        self.ffn = Residual(
            TransformerFFN(
                dim, ratio=mlp_ratio, name=f"{name}.ffn",
                target_rate=target_rate, tau=tau, rng=rng,
            ),
            name=f"{name}.ffn_res",
        )

    def forward(self, spikes: np.ndarray) -> np.ndarray:
        return self.ffn(self.attn(spikes))


def build_spikformer(
    dataset: str = "cifar10",
    rng: np.random.Generator | None = None,
    time_steps: int | None = None,
    dim: int | None = None,
    depth: int | None = None,
    heads: int | None = None,
    target_rate: float = 0.15,
    tau: float = 2.0,
) -> SpikingModel:
    """Spikformer with the paper's default configs.

    CIFAR: Spikformer-4-384 (4 blocks, 384 dim, 12 heads, T=4, 8x8 tokens).
    DVS: Spikformer-2-256 on 64x64 events (T=8, 8x8 tokens).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    spec = get_spec(dataset)
    is_dvs = spec.kind == "dvs"
    time_steps = time_steps if time_steps is not None else (8 if is_dvs else 4)
    dim = dim if dim is not None else (256 if is_dvs else 384)
    depth = depth if depth is not None else (2 if is_dvs else 4)
    heads = heads if heads is not None else (8 if is_dvs else 12)
    pool_stages = 3 if is_dvs else 2  # 64 -> 8 for DVS, 32 -> 8 for CIFAR

    embed = PatchEmbed(
        spec.channels, dim, pool_stages, target_rate=target_rate, tau=tau, rng=rng
    )
    blocks = [
        TransformerBlock(
            dim, heads, name=f"block{i}", target_rate=target_rate, tau=tau, rng=rng
        )
        for i in range(depth)
    ]
    network = Sequential([embed] + blocks, name="spikformer")

    class _SpikformerModel(SpikingModel):
        def build_input(self, rng_in: np.random.Generator) -> np.ndarray:
            spec_in = get_spec(self.dataset)
            if spec_in.kind == "dvs":
                return synthetic_dvs(spec_in, time_steps, rng_in)
            image = synthetic_image(spec_in, rng_in)
            return direct_threshold_encode(image, time_steps)

    return _SpikformerModel("spikformer", dataset, network)
