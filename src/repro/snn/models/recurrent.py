"""Recurrent spiking network: one stepwise cell over speech frames.

Unlike the feed-forward zoo, the recurrent family carries *state* between
timesteps: each frame's input spikes are concatenated with the previous
hidden spikes, driven through one weight matrix, and fired through a LIF
neuron whose membrane also persists. One trace row per timestep — which
is exactly what makes the family streamable: the
:class:`~repro.streaming.source.RecurrentSource` steps the same cell
window by window and, given the same seeds, reproduces the batch trace
row for row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.snn import functional as F
from repro.snn.datasets import get_spec, synthetic_audio
from repro.snn.layers import Layer, SpikingLinear
from repro.snn.network import SpikingModel
from repro.snn.trace import record_gemm
from repro.utils.rng import default_rng


@dataclass
class RecurrentState:
    """Carried per-timestep state: hidden spikes plus LIF membrane."""

    hidden: np.ndarray  # (hidden_dim,) bool
    membrane: np.ndarray  # (hidden_dim,) float64

    def copy(self) -> "RecurrentState":
        return RecurrentState(self.hidden.copy(), self.membrane.copy())


class RecurrentSpikingCell:
    """One recurrent spiking layer, stepped a single frame at a time.

    The GeMM row for step ``t`` is ``z_t = [x_t | h_{t-1}]`` — input
    spikes concatenated with the previous hidden spikes — so the full
    sequence stacks into one ``(T, input_dim + hidden_dim)`` binary
    workload. Normalization statistics and the firing threshold are
    calibrated once on a closed-loop rollout (deterministic given the
    calibration frames), so stepping the cell incrementally later is
    bit-reproducible.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        name: str = "cell",
        target_rate: float = 0.25,
        tau: float = 2.0,
        rng: np.random.Generator | None = None,
    ):
        rng = rng if rng is not None else default_rng()
        self.name = name
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        fan_in = input_dim + hidden_dim
        self.weight = rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, hidden_dim))
        self.decay = 1.0 - 1.0 / tau
        self.target_rate = target_rate
        self.v_threshold: float | None = None
        self._norm_mean: np.ndarray | None = None
        self._norm_std: np.ndarray | None = None

    # -- state ----------------------------------------------------------
    def init_state(self) -> RecurrentState:
        return RecurrentState(
            hidden=np.zeros(self.hidden_dim, dtype=bool),
            membrane=np.zeros(self.hidden_dim, dtype=np.float64),
        )

    # -- stepping -------------------------------------------------------
    def step(
        self, x_t: np.ndarray, state: RecurrentState
    ) -> tuple[np.ndarray, RecurrentState]:
        """Advance one frame; returns (z_t row, next state)."""
        if self.v_threshold is None:
            raise RuntimeError(f"{self.name}: step() before calibrate()")
        z = np.concatenate([np.asarray(x_t, dtype=bool), state.hidden])
        current = z.astype(np.float64) @ self.weight
        current = (current - self._norm_mean) / self._norm_std
        v = state.membrane * self.decay + current
        fired = v >= self.v_threshold
        membrane = np.where(fired, 0.0, v)
        return z, RecurrentState(hidden=fired, membrane=membrane)

    def rollout(self, frames: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Step every frame from a fresh state; returns (Z, H) stacks."""
        state = self.init_state()
        zs, hs = [], []
        for x_t in frames:
            z, state = self.step(x_t, state)
            zs.append(z)
            hs.append(state.hidden)
        return np.stack(zs), np.stack(hs)

    # -- calibration ----------------------------------------------------
    def calibrate(self, frames: np.ndarray) -> None:
        """Fit norm stats (open loop) and bisect the threshold (closed loop).

        The hidden rate depends on the threshold through the recurrent
        feedback, so each bisection iteration replays the whole
        calibration sequence. Idempotent and deterministic: recalibrating
        on the same frames lands on the same threshold.
        """
        frames = np.asarray(frames, dtype=bool)
        z0 = np.hstack(
            [frames, np.zeros((len(frames), self.hidden_dim), dtype=bool)]
        )
        currents = z0.astype(np.float64) @ self.weight
        self._norm_mean, self._norm_std = F.batch_norm_stats(currents, channel_axis=1)
        low, high = 0.0, float(len(frames)) + 2.0
        best = 1.0
        for _ in range(25):
            mid = 0.5 * (low + high)
            self.v_threshold = mid
            _, hidden = self.rollout(frames)
            rate = float(hidden.mean())
            best = mid
            if abs(rate - self.target_rate) <= 0.01:
                break
            if rate > self.target_rate:
                low = mid
            else:
                high = mid
        self.v_threshold = best


def encode_frames(patch: np.ndarray, rate: float = 0.3) -> np.ndarray:
    """Binarize a ``(C, L)`` spectrogram into ``(L, C)`` frame spikes.

    One global quantile threshold pins the overall spike rate; smooth
    band trajectories then give consecutive frames heavily overlapping
    spike sets — the temporal correlation the recurrent cell (and the
    product-sparsity engine downstream) feeds on.
    """
    patch = np.asarray(patch, dtype=np.float64)
    threshold = np.quantile(patch, 1.0 - rate)
    return (patch.T > threshold)


class _RecurrentNet(Layer):
    """Stepwise rollout wrapped as a traceable network.

    Records two workloads: the cell GeMM over stacked ``z`` rows and the
    classifier head over stacked hidden spikes — one row per timestep in
    both, which keeps the trace windowable at timestep granularity.
    """

    def __init__(self, cell: RecurrentSpikingCell, head: SpikingLinear):
        super().__init__("recurrent")
        self.cell = cell
        self.head = head

    def forward(self, frames: np.ndarray) -> np.ndarray:
        if self.cell.v_threshold is None:
            self.cell.calibrate(frames)
        zs, hidden = self.cell.rollout(frames)
        record_gemm(
            self.cell.name, zs, self.cell.hidden_dim, kind="linear",
            time_steps=len(frames),
        )
        return self.head(hidden)


def build_recurrent(
    dataset: str = "speechcommands",
    rng: np.random.Generator | None = None,
    hidden_dim: int = 128,
    target_rate: float = 0.25,
    tau: float = 2.0,
    input_rate: float = 0.3,
) -> SpikingModel:
    """Recurrent spiking net over speech frames (one GeMM row per step)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    spec = get_spec(dataset)
    cell = RecurrentSpikingCell(
        spec.channels, hidden_dim, name="cell", target_rate=target_rate,
        tau=tau, rng=rng,
    )
    head = SpikingLinear(
        hidden_dim, spec.classes, name="head", fire=False,
        target_rate=target_rate, tau=tau, rng=rng,
    )
    network = _RecurrentNet(cell, head)

    class _RecurrentModel(SpikingModel):
        def build_input(self, rng_in: np.random.Generator) -> np.ndarray:
            patch = synthetic_audio(get_spec(self.dataset), rng_in)
            return encode_frames(patch, rate=input_rate)

    return _RecurrentModel("recurrent", dataset, network)
