"""Spiking ResNet-18 / ResNet-19 (He et al.; spiking variant per Fang et al.)."""

from __future__ import annotations

import numpy as np

from repro.snn.datasets import get_spec, synthetic_image
from repro.snn.encoding import direct_threshold_encode
from repro.snn.layers import Flatten, Layer, SpikingConv2d, SpikingLinear
from repro.snn.network import Sequential, SpikingModel


class BasicBlock(Layer):
    """Two 3x3 spiking convs with a binary (OR) residual shortcut.

    When the block changes resolution or width, the shortcut is a strided
    1x1 spiking conv so both branches stay binary and shape-compatible.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int,
        name: str,
        target_rate: float,
        tau: float,
        rng: np.random.Generator,
    ):
        super().__init__(name)
        self.conv1 = SpikingConv2d(
            in_channels, out_channels, kernel=3, stride=stride, padding=1,
            name=f"{name}.conv1", target_rate=target_rate, tau=tau, rng=rng,
        )
        self.conv2 = SpikingConv2d(
            out_channels, out_channels, kernel=3, stride=1, padding=1,
            name=f"{name}.conv2", target_rate=target_rate, tau=tau, rng=rng,
        )
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Layer | None = SpikingConv2d(
                in_channels, out_channels, kernel=1, stride=stride, padding=0,
                name=f"{name}.shortcut", target_rate=target_rate, tau=tau, rng=rng,
            )
        else:
            self.shortcut = None

    def forward(self, spikes: np.ndarray) -> np.ndarray:
        out = self.conv2(self.conv1(spikes))
        identity = spikes if self.shortcut is None else self.shortcut(spikes)
        return out | identity


def _build_resnet(
    arch_name: str,
    blocks_per_stage: list[int],
    dataset: str,
    rng: np.random.Generator,
    time_steps: int,
    target_rate: float,
    tau: float,
    scale: float,
) -> SpikingModel:
    spec = get_spec(dataset)

    def width(channels: int) -> int:
        return max(8, int(round(channels * scale)))

    layers: list[Layer] = [
        SpikingConv2d(
            spec.channels, width(64), kernel=3, padding=1, name="stem",
            target_rate=target_rate, tau=tau, rng=rng,
        )
    ]
    in_channels = width(64)
    for stage, (channels, blocks) in enumerate(zip((64, 128, 256, 512), blocks_per_stage)):
        for block in range(blocks):
            stride = 2 if stage > 0 and block == 0 else 1
            layers.append(
                BasicBlock(
                    in_channels, width(channels), stride,
                    name=f"stage{stage}.block{block}",
                    target_rate=target_rate, tau=tau, rng=rng,
                )
            )
            in_channels = width(channels)
    final_size = 32 // 8  # three stride-2 stages from 32x32
    layers.append(Flatten(name="flatten"))
    layers.append(
        SpikingLinear(
            in_channels * final_size * final_size, spec.classes, name="head",
            target_rate=target_rate, tau=tau, fire=False, rng=rng,
        )
    )
    network = Sequential(layers, name=arch_name)

    class _ResNetModel(SpikingModel):
        def build_input(self, rng_in: np.random.Generator) -> np.ndarray:
            image = synthetic_image(get_spec(self.dataset), rng_in)
            return direct_threshold_encode(image, time_steps)

    return _ResNetModel(arch_name, dataset, network)


def build_resnet18(
    dataset: str = "cifar10",
    rng: np.random.Generator | None = None,
    time_steps: int = 4,
    target_rate: float = 0.12,
    tau: float = 2.0,
    scale: float = 1.0,
) -> SpikingModel:
    """Spiking ResNet-18 — the sparser CNN workload of Figs. 8/11."""
    rng = rng if rng is not None else np.random.default_rng(0)
    return _build_resnet(
        "resnet18", [2, 2, 2, 2], dataset, rng, time_steps, target_rate, tau, scale
    )


def build_resnet19(
    dataset: str = "cifar10",
    rng: np.random.Generator | None = None,
    time_steps: int = 4,
    target_rate: float = 0.15,
    tau: float = 2.0,
    scale: float = 1.0,
) -> SpikingModel:
    """Spiking ResNet-19 (used in the LoAS dual-sparsity study, Table V)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    return _build_resnet(
        "resnet19", [3, 3, 2, 2], dataset, rng, time_steps, target_rate, tau, scale
    )
