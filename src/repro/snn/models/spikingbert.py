"""SpikingBERT (Bal & Sengupta 2024): BERT distilled into a spiking model.

A shallower encoder stack than SpikeBERT (4 blocks here) at 768 hidden,
trained in the original via implicit differentiation on average spiking
rates; architecturally it is an SSA-style spiking encoder, which is all
the accelerator study needs. Its reported bit density (20.49% on SST-2,
Table II) is noticeably higher than SpikeBERT's.
"""

from __future__ import annotations

import numpy as np

from repro.snn.datasets import get_spec, synthetic_tokens
from repro.snn.models.spikebert import SpikeEncoder
from repro.snn.models.spikformer import TransformerBlock
from repro.snn.network import Sequential, SpikingModel


def build_spikingbert(
    dataset: str = "sst2",
    rng: np.random.Generator | None = None,
    time_steps: int = 4,
    dim: int = 768,
    depth: int = 4,
    heads: int = 12,
    target_rate: float = 0.12,
    tau: float = 2.0,
) -> SpikingModel:
    """SpikingBERT with 4 encoder blocks at 768 hidden dims."""
    rng = rng if rng is not None else np.random.default_rng(0)
    spec = get_spec(dataset)
    encoder = SpikeEncoder(
        spec.vocab, dim, time_steps, target_rate=target_rate, tau=tau, rng=rng
    )
    blocks = [
        TransformerBlock(
            dim, heads, name=f"block{i}", target_rate=target_rate, tau=tau, rng=rng
        )
        for i in range(depth)
    ]
    network = Sequential([encoder] + blocks, name="spikingbert")

    class _SpikingBERTModel(SpikingModel):
        def build_input(self, rng_in: np.random.Generator) -> np.ndarray:
            return synthetic_tokens(get_spec(self.dataset), rng_in)

    return _SpikingBERTModel("spikingbert", dataset, network)
