"""Spiking LeNet-5 ("LN5" in the paper's Fig. 11 density study)."""

from __future__ import annotations

import numpy as np

from repro.snn.datasets import get_spec, synthetic_image
from repro.snn.encoding import direct_threshold_encode
from repro.snn.layers import Flatten, MaxPool2d, SpikingConv2d, SpikingLinear
from repro.snn.network import Sequential, SpikingModel


def build_lenet5(
    dataset: str = "mnist",
    rng: np.random.Generator | None = None,
    time_steps: int = 4,
    target_rate: float = 0.30,
    tau: float = 2.0,
    scale: float = 1.0,
) -> SpikingModel:
    """Classic LeNet-5 topology with LIF activations on 28x28 input."""
    rng = rng if rng is not None else np.random.default_rng(0)
    spec = get_spec(dataset)

    def width(value: int) -> int:
        return max(4, int(round(value * scale)))

    common = dict(target_rate=target_rate, tau=tau, rng=rng)
    layers = [
        SpikingConv2d(spec.channels, width(6), kernel=5, padding=2, name="conv0", **common),
        MaxPool2d(2, name="pool0"),          # 28 -> 14
        SpikingConv2d(width(6), width(16), kernel=5, padding=0, name="conv1", **common),
        MaxPool2d(2, name="pool1"),          # 10 -> 5
        Flatten(name="flatten"),
        SpikingLinear(width(16) * 5 * 5, width(120), name="fc0", **common),
        SpikingLinear(width(120), width(84), name="fc1", **common),
        SpikingLinear(width(84), spec.classes, name="head", fire=False, **common),
    ]
    network = Sequential(layers, name="lenet5")

    class _LeNetModel(SpikingModel):
        def build_input(self, rng_in: np.random.Generator) -> np.ndarray:
            image = synthetic_image(get_spec(self.dataset), rng_in)
            return direct_threshold_encode(image, time_steps)

    return _LeNetModel("lenet5", dataset, network)
