"""Spiking TC-ResNet-8 for keyword spotting (Choi et al. 2019, spiking).

The temporal-convolution ResNet treats the mel bands of a speech-command
spectrogram as input *channels* and convolves along the frame axis only,
so every layer lowers to a 1D im2col spiking GeMM. This is the
speech-command workload family of ROADMAP item 5: an always-on,
low-latency model whose frame-to-frame input correlation feeds the same
product-sparsity structure the vision models show spatially.
"""

from __future__ import annotations

import numpy as np

from repro.snn.datasets import get_spec, synthetic_audio
from repro.snn.encoding import direct_threshold_encode
from repro.snn.layers import Flatten, Layer, SpikingConv1d, SpikingLinear
from repro.snn.network import Sequential, SpikingModel


class TemporalBlock(Layer):
    """Two kernel-9 spiking 1D convs with a binary (OR) residual shortcut.

    When the block changes stride or width, the shortcut is a strided
    1x1 spiking conv so both branches stay binary and shape-compatible
    (the 1D analogue of the ResNet :class:`BasicBlock`).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int,
        name: str,
        target_rate: float,
        tau: float,
        rng: np.random.Generator,
    ):
        super().__init__(name)
        self.conv1 = SpikingConv1d(
            in_channels, out_channels, kernel=9, stride=stride, padding=4,
            name=f"{name}.conv1", target_rate=target_rate, tau=tau, rng=rng,
        )
        self.conv2 = SpikingConv1d(
            out_channels, out_channels, kernel=9, stride=1, padding=4,
            name=f"{name}.conv2", target_rate=target_rate, tau=tau, rng=rng,
        )
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Layer | None = SpikingConv1d(
                in_channels, out_channels, kernel=1, stride=stride, padding=0,
                name=f"{name}.shortcut", target_rate=target_rate, tau=tau, rng=rng,
            )
        else:
            self.shortcut = None

    def forward(self, spikes: np.ndarray) -> np.ndarray:
        out = self.conv2(self.conv1(spikes))
        identity = spikes if self.shortcut is None else self.shortcut(spikes)
        return out | identity


def build_tcres8(
    dataset: str = "speechcommands",
    rng: np.random.Generator | None = None,
    time_steps: int = 4,
    target_rate: float = 0.25,
    tau: float = 2.0,
    scale: float = 1.0,
) -> SpikingModel:
    """TC-ResNet-8 topology: a stem conv plus three strided blocks."""
    rng = rng if rng is not None else np.random.default_rng(0)
    spec = get_spec(dataset)

    def width(value: int) -> int:
        return max(4, int(round(value * scale)))

    common = dict(target_rate=target_rate, tau=tau, rng=rng)
    # Frame counts through the strided blocks: 101 -> 51 -> 26 -> 13.
    frames = spec.size
    for _ in range(3):
        frames = (frames + 2 * 4 - 9) // 2 + 1
    layers: list[Layer] = [
        SpikingConv1d(
            spec.channels, width(16), kernel=3, stride=1, padding=1,
            name="conv0", **common,
        ),
        TemporalBlock(width(16), width(24), stride=2, name="block1", **common),
        TemporalBlock(width(24), width(32), stride=2, name="block2", **common),
        TemporalBlock(width(32), width(48), stride=2, name="block3", **common),
        Flatten(name="flatten"),
        SpikingLinear(width(48) * frames, spec.classes, name="head", fire=False, **common),
    ]
    network = Sequential(layers, name="tcres8")

    class _TCResModel(SpikingModel):
        def build_input(self, rng_in: np.random.Generator) -> np.ndarray:
            patch = synthetic_audio(get_spec(self.dataset), rng_in)
            return direct_threshold_encode(patch, time_steps)

    return _TCResModel("tcres8", dataset, network)
