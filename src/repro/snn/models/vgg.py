"""Spiking VGG models (VGG-16 and VGG-9, Simonyan & Zisserman / Sengupta).

Configurations follow the CIFAR-scale variants used by the SNN literature
the paper evaluates: 3x3 convs, max-pool after each stage, direct-coded
input, T=4 time steps.
"""

from __future__ import annotations

import numpy as np

from repro.snn.datasets import get_spec, synthetic_image
from repro.snn.encoding import direct_threshold_encode
from repro.snn.layers import Flatten, MaxPool2d, SpikingConv2d, SpikingLinear
from repro.snn.network import Sequential, SpikingModel

VGG16_CFG: list[int | str] = [
    64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512, "M",
    512, 512, 512, "M",
]
VGG9_CFG: list[int | str] = [64, 64, "M", 128, 128, "M", 256, 256, "M"]


def _scaled(channels: int, scale: float) -> int:
    return max(8, int(round(channels * scale)))


def layer_rate_profile(base_rate: float, count: int, decay: float = 0.3) -> list[float]:
    """Geometrically declining per-layer firing rates.

    Trained SNNs fire densely in early layers and sparsely in deep ones;
    ``decay`` is the last/first rate ratio (paper-consistent profiles put
    deep conv layers well below 10%). The first layer starts above
    ``base_rate`` so the element-weighted average stays near it.
    """
    if count <= 1:
        return [base_rate] * max(count, 1)
    first = min(0.9, base_rate * 1.4)
    ratio = decay ** (1.0 / (count - 1))
    return [max(0.01, first * ratio**i) for i in range(count)]


class _VGGModel(SpikingModel):
    """Shared input pipeline for VGG variants (image datasets only)."""

    def __init__(self, name, dataset, network, time_steps, pad_to: int):
        super().__init__(name, dataset, network)
        self.time_steps = time_steps
        self.pad_to = pad_to

    def build_input(self, rng: np.random.Generator) -> np.ndarray:
        spec = get_spec(self.dataset)
        image = synthetic_image(spec, rng)
        if spec.size < self.pad_to:
            padded = np.zeros((spec.channels, self.pad_to, self.pad_to))
            offset = (self.pad_to - spec.size) // 2
            padded[:, offset : offset + spec.size, offset : offset + spec.size] = image
            image = padded
        return direct_threshold_encode(image, self.time_steps)


def _build_vgg(
    arch_name: str,
    cfg: list[int | str],
    dataset: str,
    rng: np.random.Generator,
    time_steps: int,
    target_rate: float,
    tau: float,
    scale: float,
    hidden: int,
) -> _VGGModel:
    spec = get_spec(dataset)
    size = 32  # CIFAR-scale; smaller datasets (MNIST) are padded up
    conv_count = sum(1 for item in cfg if item != "M")
    rates = layer_rate_profile(target_rate, conv_count)
    layers: list = []
    in_channels = spec.channels
    stage = size
    index = 0
    for item in cfg:
        if item == "M":
            layers.append(MaxPool2d(2, name=f"pool{index}"))
            stage //= 2
            continue
        out_channels = _scaled(int(item), scale)
        layers.append(
            SpikingConv2d(
                in_channels,
                out_channels,
                kernel=3,
                padding=1,
                name=f"conv{index}",
                target_rate=rates[index],
                tau=tau,
                rng=rng,
            )
        )
        in_channels = out_channels
        index += 1
    flat_features = in_channels * stage * stage
    layers.append(Flatten(name="flatten"))
    layers.append(
        SpikingLinear(
            flat_features, _scaled(hidden, scale), name="fc0",
            target_rate=rates[-1], tau=tau, rng=rng,
        )
    )
    layers.append(
        SpikingLinear(
            _scaled(hidden, scale), spec.classes, name="head",
            target_rate=rates[-1], tau=tau, fire=False, rng=rng,
        )
    )
    network = Sequential(layers, name=arch_name)
    return _VGGModel(arch_name, dataset, network, time_steps, pad_to=size)


def build_vgg16(
    dataset: str = "cifar100",
    rng: np.random.Generator | None = None,
    time_steps: int = 4,
    target_rate: float = 0.34,
    tau: float = 2.0,
    scale: float = 1.0,
) -> SpikingModel:
    """Spiking VGG-16 (the paper's headline CNN workload, Tables I/IV)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    return _build_vgg(
        "vgg16", VGG16_CFG, dataset, rng, time_steps, target_rate, tau, scale, hidden=512
    )


def build_vgg9(
    dataset: str = "cifar10",
    rng: np.random.Generator | None = None,
    time_steps: int = 4,
    target_rate: float = 0.25,
    tau: float = 2.0,
    scale: float = 1.0,
) -> SpikingModel:
    """Spiking VGG-9 (appears in the Fig. 11 density comparison)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    return _build_vgg(
        "vgg9", VGG9_CFG, dataset, rng, time_steps, target_rate, tau, scale, hidden=1024
    )
