"""Spiking AlexNet (CIFAR-scale), used in the LoAS dual-sparsity study."""

from __future__ import annotations

import numpy as np

from repro.snn.datasets import get_spec, synthetic_image
from repro.snn.encoding import direct_threshold_encode
from repro.snn.layers import Flatten, MaxPool2d, SpikingConv2d, SpikingLinear
from repro.snn.network import Sequential, SpikingModel


def build_alexnet(
    dataset: str = "cifar10",
    rng: np.random.Generator | None = None,
    time_steps: int = 4,
    target_rate: float = 0.29,
    tau: float = 2.0,
    scale: float = 1.0,
) -> SpikingModel:
    """CIFAR-adapted spiking AlexNet (3x3 kernels, three pooling stages)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    spec = get_spec(dataset)

    def width(value: int) -> int:
        return max(8, int(round(value * scale)))

    common = dict(target_rate=target_rate, tau=tau, rng=rng)
    layers = [
        SpikingConv2d(spec.channels, width(64), kernel=3, padding=1, name="conv0", **common),
        MaxPool2d(2, name="pool0"),   # 32 -> 16
        SpikingConv2d(width(64), width(192), kernel=3, padding=1, name="conv1", **common),
        MaxPool2d(2, name="pool1"),   # 16 -> 8
        SpikingConv2d(width(192), width(384), kernel=3, padding=1, name="conv2", **common),
        SpikingConv2d(width(384), width(256), kernel=3, padding=1, name="conv3", **common),
        SpikingConv2d(width(256), width(256), kernel=3, padding=1, name="conv4", **common),
        MaxPool2d(2, name="pool2"),   # 8 -> 4
        Flatten(name="flatten"),
        SpikingLinear(width(256) * 4 * 4, width(1024), name="fc0", **common),
        SpikingLinear(width(1024), spec.classes, name="head", fire=False, **common),
    ]
    network = Sequential(layers, name="alexnet")

    class _AlexNetModel(SpikingModel):
        def build_input(self, rng_in: np.random.Generator) -> np.ndarray:
            image = synthetic_image(get_spec(self.dataset), rng_in)
            return direct_threshold_encode(image, time_steps)

    return _AlexNetModel("alexnet", dataset, network)
