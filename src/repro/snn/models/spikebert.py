"""SpikeBERT (Lv et al. 2023): a language Spikformer distilled from BERT.

12 transformer-encoder blocks, 768 hidden size (the paper calls out this
scale as the reason A100 stays competitive on SpikeBERT), SSA attention,
T=4. Token embeddings are converted to spikes by a calibrated LIF front
end fed the embedding as a constant current each step.
"""

from __future__ import annotations

import numpy as np

from repro.snn.datasets import EmbeddingTable, get_spec, synthetic_tokens
from repro.snn.layers import Layer
from repro.snn.models.spikformer import TransformerBlock
from repro.snn.network import Sequential, SpikingModel
from repro.snn.neurons import LIFNeuron, calibrate_threshold


class SpikeEncoder(Layer):
    """Embed tokens, then emit T binary steps through a calibrated LIF."""

    def __init__(
        self,
        vocab: int,
        dim: int,
        time_steps: int,
        target_rate: float,
        tau: float,
        rng: np.random.Generator,
        name: str = "encoder",
    ):
        super().__init__(name)
        self.embedding = EmbeddingTable(vocab, dim, rng)
        self.neuron = LIFNeuron(tau=tau)
        self.time_steps = time_steps
        self.target_rate = target_rate
        self._calibrated = False

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        embedded = self.embedding(token_ids)  # (L, dim)
        currents = np.repeat(embedded[None], self.time_steps, axis=0)
        if not self._calibrated:
            calibrate_threshold(self.neuron, currents, self.target_rate)
            self._calibrated = True
        return self.neuron.forward(currents)  # (T, L, dim) binary


def build_spikebert(
    dataset: str = "sst2",
    rng: np.random.Generator | None = None,
    time_steps: int = 4,
    dim: int = 768,
    depth: int = 12,
    heads: int = 12,
    target_rate: float = 0.07,
    tau: float = 2.0,
) -> SpikingModel:
    """SpikeBERT with the paper's 12-block, 768-dim configuration."""
    rng = rng if rng is not None else np.random.default_rng(0)
    spec = get_spec(dataset)
    encoder = SpikeEncoder(
        spec.vocab, dim, time_steps, target_rate=target_rate, tau=tau, rng=rng
    )
    blocks = [
        TransformerBlock(
            dim, heads, name=f"block{i}", target_rate=target_rate, tau=tau, rng=rng
        )
        for i in range(depth)
    ]
    network = Sequential([encoder] + blocks, name="spikebert")

    class _SpikeBERTModel(SpikingModel):
        def build_input(self, rng_in: np.random.Generator) -> np.ndarray:
            return synthetic_tokens(get_spec(self.dataset), rng_in)

    return _SpikeBERTModel("spikebert", dataset, network)
