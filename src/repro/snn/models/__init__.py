"""Model registry: every SNN the paper evaluates, by name."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.snn.models.alexnet import build_alexnet
from repro.snn.models.lenet import build_lenet5
from repro.snn.models.recurrent import build_recurrent
from repro.snn.models.resnet import build_resnet18, build_resnet19
from repro.snn.models.sdt import build_sdt
from repro.snn.models.spikebert import build_spikebert
from repro.snn.models.spikformer import build_spikformer
from repro.snn.models.spikingbert import build_spikingbert
from repro.snn.models.tcres import build_tcres8
from repro.snn.models.vgg import build_vgg9, build_vgg16
from repro.snn.network import SpikingModel

MODEL_BUILDERS: dict[str, Callable[..., SpikingModel]] = {
    "vgg16": build_vgg16,
    "vgg9": build_vgg9,
    "resnet18": build_resnet18,
    "resnet19": build_resnet19,
    "lenet5": build_lenet5,
    "alexnet": build_alexnet,
    "spikformer": build_spikformer,
    "sdt": build_sdt,
    "spikebert": build_spikebert,
    "spikingbert": build_spikingbert,
    "tcres8": build_tcres8,
    "recurrent": build_recurrent,
}

# Whether a model is a spiking transformer (drives the Fig. 8 baseline set:
# prior SNN ASICs run only the linear layers of transformers).
TRANSFORMER_MODELS = {"spikformer", "sdt", "spikebert", "spikingbert"}


def build_model(
    name: str, dataset: str, rng: np.random.Generator | None = None, **kwargs
) -> SpikingModel:
    """Instantiate a registered model for a dataset.

    Extra keyword arguments pass through to the builder (e.g. ``scale`` for
    reduced test-size variants, ``depth``/``dim`` for transformers).
    """
    try:
        builder = MODEL_BUILDERS[name.lower()]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; known: {sorted(MODEL_BUILDERS)}") from None
    return builder(dataset=dataset, rng=rng, **kwargs)


__all__ = [
    "MODEL_BUILDERS",
    "TRANSFORMER_MODELS",
    "build_model",
    "build_alexnet",
    "build_lenet5",
    "build_recurrent",
    "build_resnet18",
    "build_resnet19",
    "build_sdt",
    "build_spikebert",
    "build_spikformer",
    "build_spikingbert",
    "build_tcres8",
    "build_vgg9",
    "build_vgg16",
]
