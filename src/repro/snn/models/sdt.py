"""Spike-Driven Transformer (SDT, Yao et al. 2024).

SDT replaces the attention matrix product with masking and column sums
(spike-driven self-attention), so its attention stage contributes no GeMM
— only the projections and FFN do. This is why SDT workloads in Fig. 8
stress the linear-layer path.
"""

from __future__ import annotations

import numpy as np

from repro.snn.datasets import get_spec, synthetic_dvs, synthetic_image
from repro.snn.encoding import direct_threshold_encode
from repro.snn.layers import Layer, SpikeDrivenSelfAttention, TransformerFFN
from repro.snn.models.spikformer import PatchEmbed
from repro.snn.network import Residual, Sequential, SpikingModel


class SDTBlock(Layer):
    """SDSA + FFN with binary residuals."""

    def __init__(
        self,
        dim: int,
        heads: int,
        name: str,
        target_rate: float,
        tau: float,
        rng: np.random.Generator | None,
    ):
        super().__init__(name)
        self.attn = Residual(
            SpikeDrivenSelfAttention(
                dim, heads, name=f"{name}.sdsa", target_rate=target_rate,
                tau=tau, rng=rng,
            ),
            name=f"{name}.attn_res",
        )
        self.ffn = Residual(
            TransformerFFN(
                dim, ratio=4, name=f"{name}.ffn", target_rate=target_rate,
                tau=tau, rng=rng,
            ),
            name=f"{name}.ffn_res",
        )

    def forward(self, spikes: np.ndarray) -> np.ndarray:
        return self.ffn(self.attn(spikes))


def build_sdt(
    dataset: str = "cifar10",
    rng: np.random.Generator | None = None,
    time_steps: int | None = None,
    dim: int | None = None,
    depth: int | None = None,
    heads: int | None = None,
    target_rate: float = 0.12,
    tau: float = 2.0,
) -> SpikingModel:
    """SDT-2-512 for CIFAR, SDT-2-256 for DVS (paper defaults)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    spec = get_spec(dataset)
    is_dvs = spec.kind == "dvs"
    time_steps = time_steps if time_steps is not None else (8 if is_dvs else 4)
    dim = dim if dim is not None else (256 if is_dvs else 512)
    depth = depth if depth is not None else 2
    heads = heads if heads is not None else 8
    pool_stages = 3 if is_dvs else 2

    embed = PatchEmbed(
        spec.channels, dim, pool_stages, name="patch_embed",
        target_rate=target_rate, tau=tau, rng=rng,
    )
    blocks = [
        SDTBlock(dim, heads, name=f"block{i}", target_rate=target_rate, tau=tau, rng=rng)
        for i in range(depth)
    ]
    network = Sequential([embed] + blocks, name="sdt")

    class _SDTModel(SpikingModel):
        def build_input(self, rng_in: np.random.Generator) -> np.ndarray:
            spec_in = get_spec(self.dataset)
            if spec_in.kind == "dvs":
                return synthetic_dvs(spec_in, time_steps, rng_in)
            image = synthetic_image(spec_in, rng_in)
            return direct_threshold_encode(image, time_steps)

    return _SDTModel("sdt", dataset, network)
