"""Architecture scalability models (paper Sec. VIII-A).

Two scaling axes the paper discusses as future extensions:

* **Intra-PPU**: issue several independent forest nodes to the Processor
  per cycle. Nodes at the same tree level have no dependencies, so the
  achievable parallelism is bounded by the forest's *critical path*
  (prefix chains must still execute in order).
* **Inter-PPU**: replicate the PPU and distribute tiles. Tiles are
  independent, but per-tile work varies with local sparsity, so a static
  round-robin distribution stalls on the most loaded PPU — the scaling
  efficiency measured here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import ProsperityConfig
from repro.arch.ppu import MODE_PROSPERITY, compute_phase_cycles, prosparsity_phase_cycles
from repro.core.prosparsity import TILE_RECORD_FIELDS, transform_matrix
from repro.snn.trace import ModelTrace

_FIELD = {name: i for i, name in enumerate(TILE_RECORD_FIELDS)}


@dataclass(frozen=True)
class ScalingPoint:
    """Outcome of one scaling configuration."""

    num_ppus: int
    issue_width: int
    cycles: float
    speedup: float       # vs the 1-PPU, single-issue baseline
    efficiency: float    # speedup / (num_ppus * issue_width)


def intra_ppu_tile_cycles(
    config: ProsperityConfig,
    records: np.ndarray,
    n: int,
    issue_width: int,
) -> np.ndarray:
    """Compute-phase cycles per tile with multi-issue.

    Work shrinks by the issue width, but the critical path — the longest
    prefix chain, each link costing at least one accumulate step plus the
    average residual run — cannot be parallelized away.
    """
    if issue_width < 1:
        raise ValueError("issue_width must be >= 1")
    base = compute_phase_cycles(config, records, n, MODE_PROSPERITY).astype(np.float64)
    n_tiles = -(-n // config.tile_n)
    m = records[:, _FIELD["m"]].astype(np.float64)
    product = records[:, _FIELD["product_nnz"]].astype(np.float64)
    depth = records[:, _FIELD["forest_depth"]].astype(np.float64)
    # Critical path: depth links, each at least one cycle plus the mean
    # per-row residual accumulation, repeated for every n-tile pass.
    avg_row_ops = 1.0 + product / np.maximum(m, 1.0)
    critical = (depth + 1.0) * avg_row_ops * n_tiles
    return np.maximum(base / issue_width, critical)


def multi_ppu_workload_cycles(
    config: ProsperityConfig,
    records: np.ndarray,
    n: int,
    num_ppus: int,
    issue_width: int = 1,
) -> float:
    """Latency of one workload on ``num_ppus`` PPUs (round-robin tiles)."""
    if num_ppus < 1:
        raise ValueError("num_ppus must be >= 1")
    if len(records) == 0:
        return 0.0
    compute = intra_ppu_tile_cycles(config, records, n, issue_width)
    prosparsity = prosparsity_phase_cycles(
        config, records[:, _FIELD["m"]]
    ).astype(np.float64)
    per_ppu_totals = np.zeros(num_ppus)
    for index in range(len(records)):
        ppu = index % num_ppus
        # Within a PPU the inter-phase pipeline hides the ProSparsity
        # phase behind the previous tile's compute (Fig. 6); the first
        # tile assigned to each PPU exposes its phase.
        if per_ppu_totals[ppu] == 0.0:
            per_ppu_totals[ppu] += prosparsity[index]
        per_ppu_totals[ppu] += compute[index]
    return float(per_ppu_totals.max())


def scaling_study(
    trace: ModelTrace,
    ppu_counts: tuple[int, ...] = (1, 2, 4, 8),
    issue_widths: tuple[int, ...] = (1, 2, 4),
    config: ProsperityConfig | None = None,
    max_tiles: int | None = 64,
    rng: np.random.Generator | None = None,
) -> list[ScalingPoint]:
    """Evaluate the Sec. VIII-A scaling grid over a model trace."""
    config = config if config is not None else ProsperityConfig()
    rng = rng if rng is not None else np.random.default_rng(0)
    per_workload_records: list[tuple[np.ndarray, int, float]] = []
    for workload in trace.workloads:
        result = transform_matrix(
            workload.spikes, config.tile_m, config.tile_k,
            keep_transforms=False, max_tiles=max_tiles, rng=rng,
        )
        per_workload_records.append(
            (result.tile_records, workload.n, 1.0 / result.stats.sample_fraction)
        )

    def total_cycles(num_ppus: int, issue_width: int) -> float:
        total = 0.0
        for records, n, scale in per_workload_records:
            total += scale * multi_ppu_workload_cycles(
                config, records, n, num_ppus, issue_width
            )
        return total

    baseline = total_cycles(1, 1)
    points = []
    for num_ppus in ppu_counts:
        for issue_width in issue_widths:
            cycles = total_cycles(num_ppus, issue_width)
            speedup = baseline / cycles if cycles else float("inf")
            points.append(
                ScalingPoint(
                    num_ppus=num_ppus,
                    issue_width=issue_width,
                    cycles=cycles,
                    speedup=speedup,
                    efficiency=speedup / (num_ppus * issue_width),
                )
            )
    return points
