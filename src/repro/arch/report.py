"""Common result containers shared by Prosperity and all baseline models."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LayerResult:
    """Simulation outcome for one spiking-GeMM workload."""

    name: str
    cycles: float
    compute_cycles: float = 0.0
    memory_cycles: float = 0.0
    overhead_cycles: float = 0.0
    dense_macs: int = 0
    processed_ops: int = 0
    dram_bytes: float = 0.0
    energy_pj: dict[str, float] = field(default_factory=dict)

    @property
    def total_energy_pj(self) -> float:
        return sum(self.energy_pj.values())


@dataclass
class SimReport:
    """End-to-end simulation result over one model trace."""

    accelerator: str
    model: str
    dataset: str
    frequency_hz: float
    layers: list[LayerResult] = field(default_factory=list)

    @property
    def cycles(self) -> float:
        return sum(layer.cycles for layer in self.layers)

    @property
    def seconds(self) -> float:
        return self.cycles / self.frequency_hz

    @property
    def total_dense_macs(self) -> int:
        return sum(layer.dense_macs for layer in self.layers)

    @property
    def energy_pj(self) -> float:
        return sum(layer.total_energy_pj for layer in self.layers)

    @property
    def energy_j(self) -> float:
        return self.energy_pj * 1e-12

    @property
    def energy_breakdown_pj(self) -> dict[str, float]:
        total: dict[str, float] = {}
        for layer in self.layers:
            for key, value in layer.energy_pj.items():
                total[key] = total.get(key, 0.0) + value
        return total

    @property
    def avg_power_w(self) -> float:
        seconds = self.seconds
        return self.energy_j / seconds if seconds > 0 else 0.0

    def throughput_gops(self, op_per_mac: int = 2) -> float:
        """Effective throughput in dense-equivalent GOP/s (Table IV metric)."""
        seconds = self.seconds
        if seconds <= 0:
            return 0.0
        return self.total_dense_macs * op_per_mac / seconds / 1e9

    def energy_efficiency_gops_per_j(self, op_per_mac: int = 2) -> float:
        """Dense-equivalent GOP per joule (Table IV energy efficiency)."""
        energy = self.energy_j
        if energy <= 0:
            return 0.0
        return self.total_dense_macs * op_per_mac / energy / 1e9


def speedup(baseline: SimReport, target: SimReport) -> float:
    """Wall-clock speedup of ``target`` relative to ``baseline``."""
    if target.seconds <= 0:
        return float("inf")
    return baseline.seconds / target.seconds


def energy_efficiency_gain(baseline: SimReport, target: SimReport) -> float:
    """Energy-efficiency gain of ``target`` relative to ``baseline``."""
    if target.energy_j <= 0:
        return float("inf")
    return baseline.energy_j / target.energy_j


def geometric_mean(values: list[float]) -> float:
    """Geometric mean used for the Fig. 8 summary columns."""
    import numpy as np

    array = np.asarray([v for v in values if v > 0], dtype=np.float64)
    if array.size == 0:
        return 0.0
    return float(np.exp(np.log(array).mean()))
