"""End-to-end Prosperity simulator: layer-by-layer latency and energy.

Drives the per-tile cycle model (:mod:`repro.arch.ppu`) over the tile
records produced by the ProSparsity transform, folds in DRAM streaming and
the Spiking Neuron Array, and accounts energy per component — the software
equivalent of the paper's cycle-accurate simulator + CACTI + DRAMsim3
stack.
"""

from __future__ import annotations

import numpy as np

from repro.arch import energy as energy_model
from repro.arch.config import DEFAULT_CONFIG, ProsperityConfig
from repro.arch.energy import EnergyModel
from repro.arch.memory import MemorySystem, TrafficSummary
from repro.arch.neuron_array import NeuronArray
from repro.arch.ppu import (
    MODE_BIT,
    MODE_DENSE,
    MODE_PROSPARSITY_SLOW,
    MODE_PROSPERITY,
    MODES,
    pipeline_tile_cycles,
)
from repro.arch.report import LayerResult, SimReport
from repro.arch.sorter import BitonicSorter
from repro.core.prosparsity import TILE_RECORD_FIELDS
from repro.engine.backends import Backend
from repro.engine.pipeline import ProsperityEngine
from repro.snn.trace import GeMMWorkload, ModelTrace
from repro.utils.bitops import pack_rows, popcount_rows

_FIELD = {name: i for i, name in enumerate(TILE_RECORD_FIELDS)}


def _light_records(
    matrix, tile_m: int, tile_k: int
) -> np.ndarray:
    """Per-tile records without the prefix search (dense / bit-only modes).

    Product columns mirror the bit columns so the record layout stays
    uniform; forest depth is 1 (unused in these modes).
    """
    records = []
    for tile in matrix.tile(tile_m, tile_k):
        counts = popcount_rows(pack_rows(tile.bits))
        bit_nnz = int(counts.sum())
        zero_rows = int((counts == 0).sum())
        records.append(
            (tile.m, tile.k, bit_nnz, bit_nnz, zero_rows, zero_rows, 0, 0, 1)
        )
    return np.array(records, dtype=np.int64).reshape(len(records), len(TILE_RECORD_FIELDS))


class ProsperitySimulator:
    """Simulates one Prosperity instance in a given execution mode.

    .. note:: Direct construction remains supported, but
       :meth:`repro.api.Session.simulate` is the canonical entry point:
       it drives this simulator (plus the baseline lineup) from a typed
       :class:`~repro.api.RunConfig` and shares one engine across calls.

    Parameters
    ----------
    config:
        Architecture parameters (Table III defaults).
    mode:
        One of :data:`repro.arch.ppu.MODES` — the Fig. 9 ablation ladder.
    max_tiles_per_workload:
        When set, sample at most this many tiles per GeMM and scale counts
        by the sampled fraction (keeps large sweeps tractable; unbiased in
        expectation).
    backend:
        ProSparsity transform backend (see :mod:`repro.engine.backends`);
        every backend yields bit-identical tile records, so simulation
        results are backend-independent — only wall-clock time changes.
    workers:
        Process count forwarded to the ``sharded`` backend (``None``
        leaves the backend default; other backends reject it).
    plan:
        Execution-planning mode for the transform (``"matrix"`` or
        ``"trace"``); under ``"trace"`` :meth:`simulate` transforms the
        whole trace in one cross-workload plan instead of per workload.
        Simulation results are identical — only wall-clock changes.
        Ignored when a pre-built ``engine`` is given (its plan wins).
    engine:
        Pre-built :class:`ProsperityEngine` to share a forest cache
        across simulators; overrides ``backend`` when given.
    """

    def __init__(
        self,
        config: ProsperityConfig = DEFAULT_CONFIG,
        mode: str = MODE_PROSPERITY,
        max_tiles_per_workload: int | None = None,
        rng: np.random.Generator | None = None,
        backend: str | Backend = "reference",
        workers: int | None = None,
        plan: str = "matrix",
        engine: ProsperityEngine | None = None,
    ):
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
        self.config = config
        self.mode = mode
        self.max_tiles = max_tiles_per_workload
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._owns_engine = engine is None
        self.engine = (
            engine
            if engine is not None
            else ProsperityEngine(
                backend=backend,
                tile_m=config.tile_m,
                tile_k=config.tile_k,
                workers=workers,
                plan=plan,
            )
        )
        self.memory = MemorySystem(config)
        self.memory.validate_tiles()
        self.neuron_array = NeuronArray(config)
        self.energy = EnergyModel(config)
        self.name = f"prosperity[{mode}]" if mode != MODE_PROSPERITY else "prosperity"

    @property
    def plan(self) -> str:
        """The engine's execution-planning mode."""
        return self.engine.plan

    def close(self) -> None:
        """Release engine resources (e.g. a sharded worker pool).

        Only engines this simulator constructed are closed; a shared
        ``engine=`` passed in stays open for its other users (same
        ownership rule as ``sweep_tile_sizes``).
        """
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "ProsperitySimulator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _records_for(
        self, workload: GeMMWorkload, transform=None
    ) -> tuple[np.ndarray, float]:
        """Tile records plus the fraction of tiles they cover.

        ``transform``, when given, is a precomputed
        :class:`~repro.core.prosparsity.ProSparsityResult` from a
        trace-level plan (bit-identical to transforming here).
        """
        if self.mode in (MODE_DENSE, MODE_BIT):
            records = _light_records(
                workload.spikes, self.config.tile_m, self.config.tile_k
            )
            return records, 1.0
        if transform is None:
            transform = self.engine.transform_matrix(
                workload.spikes,
                self.config.tile_m,
                self.config.tile_k,
                keep_transforms=False,
                max_tiles=self.max_tiles,
                rng=self.rng,
            )
        return transform.tile_records, transform.stats.sample_fraction

    def _traffic(self, workload: GeMMWorkload) -> TrafficSummary:
        if workload.kind == "attention":
            # The dynamic right operand is produced on chip by a previous
            # PPU pass; it streams in once rather than once per m-tile.
            return TrafficSummary(
                spike_bytes=workload.m * workload.k / 8.0,
                weight_bytes=workload.k * workload.n * self.config.weight_bits / 8.0,
                output_bytes=workload.m * workload.n / 8.0,
            )
        return self.memory.workload_traffic(workload.m, workload.k, workload.n)

    def _component_energy(
        self,
        workload: GeMMWorkload,
        records: np.ndarray,
        inv: float,
        cycles: float,
        traffic: TrafficSummary,
    ) -> dict[str, float]:
        """Per-component energy in pJ for one workload.

        ``inv`` is the reciprocal of the tile sampling fraction; every
        quantity derived from ``records`` is scaled by it so the estimate
        covers the full workload. Workload-global terms (DRAM, neuron
        array, output partial-sum traffic, static) use exact counts.
        """
        cfg = self.config
        n = workload.n
        m_col = records[:, _FIELD["m"]].astype(np.float64)
        k_col = records[:, _FIELD["k"]].astype(np.float64)
        bit_nnz = float(records[:, _FIELD["bit_nnz"]].sum()) * inv
        product_nnz = float(records[:, _FIELD["product_nnz"]].sum()) * inv
        reused_rows = float(records[:, _FIELD["reused_rows"]].sum()) * inv
        rows = float(m_col.sum()) * inv
        tile_bits = float((m_col * k_col).sum()) * inv

        breakdown: dict[str, float] = {}
        uses_ppu_frontend = self.mode in (MODE_PROSPERITY, MODE_PROSPARSITY_SLOW)
        if uses_ppu_frontend:
            # Detector: every query activates the full TCAM array (m^2 k
            # bit ops per tile — the dominant Sec. VII-G overhead term),
            # plus one popcount pass over the tile.
            searches_bits = float((m_col * cfg.tcam_entries * k_col).sum()) * inv
            breakdown["detector"] = (
                searches_bits * energy_model.E_TCAM_SEARCH_BIT
                + tile_bits * energy_model.E_POPCOUNT_BIT
            )
            # Pruner: filter + argmax comparator activity per query row,
            # plus the XOR sparsifier (per bit).
            breakdown["pruner"] = (
                rows * 4 * energy_model.E_INT_COMPARE + tile_bits * 0.05
            )
            # Dispatcher: bitonic comparator activity + table write/read.
            sorter = BitonicSorter(max(cfg.tile_m, 2))
            sorter_cmps = len(records) * inv * sorter.comparisons(cfg.tile_m)
            entry_bytes = (cfg.tile_k + 16) / 8.0
            table_bytes = 2.0 * rows * entry_bytes
            breakdown["dispatcher"] = (
                sorter_cmps * energy_model.E_INT_COMPARE
                + table_bytes * energy_model.E_TABLE_BYTE
            )
        else:
            breakdown["detector"] = 0.0
            breakdown["pruner"] = 0.0
            breakdown["dispatcher"] = 0.0

        if self.mode == MODE_DENSE:
            adds = float(workload.m) * workload.k * n
        elif self.mode == MODE_BIT:
            adds = bit_nnz * n
        else:
            adds = product_nnz * n
        breakdown["processor"] = adds * energy_model.E_ADD_8BIT

        # Buffers: weight reads per accumulate, spike streaming (detector +
        # processor), output partial-sum read/write per k-tile pass and
        # prefix loads.
        spike_bytes = 2.0 * tile_bits / 8.0
        k_tiles = -(-workload.k // cfg.tile_k)
        psum_bytes = 2.0 * workload.m * n * 3.0 * k_tiles
        prefix_bytes = reused_rows * n * 3.0
        wide = energy_model.E_SRAM_WIDE_FACTOR  # full-row psum bursts
        breakdown["buffers"] = (
            adds * self.energy.weight_buffer_byte
            + spike_bytes * self.energy.spike_buffer_byte
            + (psum_bytes + prefix_bytes) * self.energy.output_buffer_byte * wide
        )

        breakdown["neuron_sfu"] = workload.m * n * energy_model.E_LIF_UPDATE
        breakdown["dram"] = traffic.total * self.energy.dram_byte
        breakdown["static"] = self.energy.static_energy_pj(cycles)
        return breakdown

    # ------------------------------------------------------------------
    def simulate_workload(
        self, workload: GeMMWorkload, transform=None
    ) -> LayerResult:
        """Latency + energy for one spiking GeMM."""
        records, fraction = self._records_for(workload, transform)
        inv = 1.0 / fraction
        total, compute, exposed = pipeline_tile_cycles(
            self.config, records, workload.n, self.mode
        )
        compute_total = compute * inv
        exposed_total = exposed * inv

        traffic = self._traffic(workload)
        dram_cycles = self.memory.dram_cycles(traffic)
        neuron_cycles = self.neuron_array.cycles(workload.m * workload.n)

        cycles = max(compute_total, dram_cycles, neuron_cycles) + exposed_total
        energy = self._component_energy(workload, records, inv, cycles, traffic)

        if self.mode == MODE_DENSE:
            processed = workload.m * workload.k
        elif self.mode == MODE_BIT:
            processed = int(records[:, _FIELD["bit_nnz"]].sum() * inv)
        else:
            processed = int(records[:, _FIELD["product_nnz"]].sum() * inv)

        return LayerResult(
            name=workload.name,
            cycles=cycles,
            compute_cycles=compute_total,
            memory_cycles=dram_cycles,
            overhead_cycles=exposed_total,
            dense_macs=workload.dense_macs,
            processed_ops=processed,
            dram_bytes=traffic.total,
            energy_pj=energy,
        )

    def simulate(self, trace: ModelTrace) -> SimReport:
        """Simulate a full model trace.

        Under ``plan="trace"`` the ProSparsity transform runs once over
        the whole trace (cross-workload shape buckets, global content
        dedup) instead of per workload; the per-layer records — and
        therefore every latency/energy number — are bit-identical.
        """
        report = SimReport(
            accelerator=self.name,
            model=trace.model,
            dataset=trace.dataset,
            frequency_hz=self.config.frequency_hz,
        )
        transforms = self._trace_transforms(trace)
        for workload, transform in zip(trace.workloads, transforms):
            report.layers.append(self.simulate_workload(workload, transform))
        return report

    def _trace_transforms(self, trace: ModelTrace) -> list:
        """Whole-trace transform results when trace planning is on."""
        if self.engine.plan != "trace" or self.mode in (MODE_DENSE, MODE_BIT):
            return [None] * len(trace.workloads)
        return self.engine.transform_trace(
            trace.workloads,
            self.config.tile_m,
            self.config.tile_k,
            max_tiles=self.max_tiles,
            rng=self.rng,
        )

    @property
    def area_mm2(self) -> float:
        return energy_model.area_model(self.config).total
