"""ProSparsity Processing Unit: functional model + per-tile cycle model.

Two layers of fidelity live here:

* :class:`PPU` wires the actual unit models (TCAM, Pruner, sorter, address
  decoder, PE accumulation) into a working tile datapath — slow, but
  bit-exact; tests cross-validate it against :mod:`repro.core`.
* :func:`tile_cycles` is the analytic per-tile cycle model the end-to-end
  simulator uses, evaluated vectorized over tile records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import ProsperityConfig
from repro.arch.decoder import AddressDecoder
from repro.arch.pruner_unit import Pruner
from repro.arch.sorter import BitonicSorter
from repro.arch.tcam import TCAM
from repro.core.forest import NO_PREFIX
from repro.core.prosparsity import TILE_RECORD_FIELDS
from repro.utils.bitops import popcount_rows, pack_rows
from repro.utils.validation import ensure_binary_matrix

# Execution modes (Fig. 9 ablation ladder).
MODE_DENSE = "dense"
MODE_BIT = "bit_unstructured"
MODE_PROSPARSITY_SLOW = "prosparsity_slow_dispatch"
MODE_PROSPERITY = "prosperity"
MODES = (MODE_DENSE, MODE_BIT, MODE_PROSPARSITY_SLOW, MODE_PROSPERITY)

# The tree-walk Dispatcher (Sec. V-D "Search Time Issue") performs one
# table lookup per visited row through a banked product sparsity table
# servicing this many lookups per cycle. Because the execution order is
# unknown until the walk completes, none of it hides behind compute —
# reproducing the paper's ~1.49x gap between slow and overhead-free
# dispatch (Fig. 9).
SLOW_DISPATCH_LOOKUPS_PER_CYCLE = 1.5

_FIELD = {name: i for i, name in enumerate(TILE_RECORD_FIELDS)}


class PPU:
    """Functional ProSparsity Processing Unit over one tile."""

    def __init__(self, config: ProsperityConfig):
        self.config = config
        self.tcam = TCAM(config.tile_m, config.tile_k)
        self.pruner = Pruner(config.tile_m)
        self.sorter = BitonicSorter(max(config.tile_m, 2))
        self.decoder = AddressDecoder(weight_row_bytes=config.tile_n)

    def process_tile(self, tile_bits: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Run Detector -> Pruner -> Dispatcher -> Processor end to end.

        Returns the ``(m, n)`` output tile. Bit-exact with the dense GeMM;
        the unit models below are exercised exactly as the hardware would.
        """
        tile_bits = ensure_binary_matrix(tile_bits, "tile")
        weights = np.asarray(weights, dtype=np.float64)
        m, k = tile_bits.shape
        if weights.shape[0] != k:
            raise ValueError("weight rows must match tile columns")

        # Detector: pre-load (Step 0), then one subset search per row.
        self.tcam.load(tile_bits)
        popcounts = popcount_rows(pack_rows(tile_bits))
        outputs = []
        for row in range(m):
            subset_indices = self.tcam.search_subsets(tile_bits[row])
            outputs.append(
                self.pruner.prune(row, tile_bits, subset_indices, popcounts)
            )

        # Dispatcher: stable popcount order via the bitonic network.
        order = self.sorter.sort(popcounts)

        # Processor: prefix-seeded accumulation in dispatch order.
        n = weights.shape[1]
        result = np.zeros((m, n), dtype=np.float64)
        for row in order:
            meta = outputs[int(row)]
            acc = result[meta.prefix].copy() if meta.prefix != NO_PREFIX else np.zeros(n)
            for address in self.decoder.decode_row(meta.pattern):
                acc += weights[address // self.config.tile_n]
            result[int(row)] = acc
        return result


@dataclass(frozen=True)
class TilePhaseCycles:
    """Cycle counts for one tile's two pipeline phases."""

    prosparsity: float
    compute: float
    dispatch_overhead: float = 0.0


def prosparsity_phase_cycles(config: ProsperityConfig, m: np.ndarray) -> np.ndarray:
    """Detector/Pruner/Dispatcher phase: m + pipeline depth (Sec. VI-A).

    The bitonic sort runs concurrently and is shorter than m for every
    legal tile, so the phase is bounded by the row pipeline.
    """
    sorter = BitonicSorter(max(config.tile_m, 2))
    depth = config.prosparsity_pipeline_depth
    return np.maximum(m + depth, sorter.stages(config.tile_m))


def compute_phase_cycles(
    config: ProsperityConfig,
    records: np.ndarray,
    n: int,
    mode: str = MODE_PROSPERITY,
) -> np.ndarray:
    """Processor phase per tile, already multiplied by the N-tile loop.

    Per row the Processor spends ``max(1, residual_ops)`` cycles; the
    whole (m, k) tile repeats for each n-tile (the meta information is
    reused across the N loop).
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
    m = records[:, _FIELD["m"]]
    k = records[:, _FIELD["k"]]
    if mode == MODE_DENSE:
        work = m * k
    elif mode == MODE_BIT:
        work = records[:, _FIELD["bit_nnz"]] + records[:, _FIELD["zero_bit_rows"]]
    else:  # both ProSparsity modes share the compute phase
        work = (
            records[:, _FIELD["product_nnz"]]
            + records[:, _FIELD["zero_residual_rows"]]
        )
    n_tiles = -(-n // config.tile_n)
    return (work + config.processor_pipeline_depth) * n_tiles


def dispatch_overhead_cycles(records: np.ndarray) -> np.ndarray:
    """Exposed cycles of the tree-walk Dispatcher (slow-dispatch ablation).

    Without suffix links the Dispatcher must BFS the forest through the
    product sparsity table before any row can issue: m lookups per tile,
    serialized ahead of compute and impossible to hide behind the
    previous tile (the issue order is unknown until the walk finishes).
    """
    m = records[:, _FIELD["m"]]
    return m / SLOW_DISPATCH_LOOKUPS_PER_CYCLE


def pipeline_tile_cycles(
    config: ProsperityConfig,
    records: np.ndarray,
    n: int,
    mode: str = MODE_PROSPERITY,
) -> tuple[float, float, float]:
    """Total (cycles, compute_cycles, overhead_cycles) over a tile stream.

    Implements the inter-phase pipeline of Fig. 6: tile i's ProSparsity
    phase overlaps tile i-1's compute phase, so only the first tile's
    phase and any excess (phase longer than the previous compute) is
    exposed. In bit/dense modes the PPU front end is bypassed entirely.
    """
    if len(records) == 0:
        return 0.0, 0.0, 0.0
    compute = compute_phase_cycles(config, records, n, mode).astype(np.float64)
    if mode in (MODE_DENSE, MODE_BIT):
        return float(compute.sum()), float(compute.sum()), 0.0

    prosparsity = prosparsity_phase_cycles(
        config, records[:, _FIELD["m"]]
    ).astype(np.float64)

    # Exposed overhead: the first tile's full phase plus any part of later
    # phases that outlasts the preceding tile's compute.
    exposed = prosparsity[0] + np.maximum(prosparsity[1:] - compute[:-1], 0.0).sum()
    if mode == MODE_PROSPARSITY_SLOW:
        # The serialized tree walk is exposed on every tile.
        exposed += float(dispatch_overhead_cycles(records).sum())
    total = float(compute.sum() + exposed)
    return total, float(compute.sum()), float(exposed)
