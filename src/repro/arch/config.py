"""Prosperity architecture configuration (paper Table III)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BufferConfig:
    """On-chip SRAM sizes in bytes (spike / weight / output buffers)."""

    spike_bytes: int = 8 * 1024
    weight_bytes: int = 32 * 1024
    output_bytes: int = 96 * 1024


@dataclass(frozen=True)
class DRAMConfig:
    """DDR4 4Gb x16 2133R, 4 channels => 64 GB/s aggregate."""

    bandwidth_bytes_per_s: float = 64e9
    energy_per_byte_pj: float = 20.0

    def bytes_per_cycle(self, frequency_hz: float) -> float:
        return self.bandwidth_bytes_per_s / frequency_hz


@dataclass(frozen=True)
class ProsperityConfig:
    """Full Table III setup.

    Tile sizes ``m/n/k``, PE array width, pipeline depths, unit counts and
    memory system. ``prosparsity_pipeline_depth`` covers Detector steps
    2-6 (Fig. 5); ``processor_pipeline_depth`` covers issue/decode-load/
    execute/write-back.
    """

    tile_m: int = 256
    tile_n: int = 128
    tile_k: int = 16
    num_pes: int = 128
    frequency_hz: float = 500e6
    weight_bits: int = 8
    prosparsity_pipeline_depth: int = 4
    processor_pipeline_depth: int = 4
    tcam_entries: int = 256
    popcount_units: int = 8
    neuron_array_cells: int = 32
    sfu_mul_units: int = 32
    sfu_exp_units: int = 8
    buffers: BufferConfig = field(default_factory=BufferConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)

    def __post_init__(self) -> None:
        if self.tile_m <= 0 or self.tile_n <= 0 or self.tile_k <= 0:
            raise ValueError("tile sizes must be positive")
        if self.num_pes <= 0:
            raise ValueError("num_pes must be positive")
        if self.tile_n > self.num_pes:
            raise ValueError(
                f"tile_n ({self.tile_n}) cannot exceed PE count ({self.num_pes}): "
                "one PE produces one output column per cycle"
            )

    def with_tile(self, m: int | None = None, k: int | None = None) -> "ProsperityConfig":
        """Copy with modified tile sizes (for the Fig. 7 design sweep).

        On-chip buffers are resized to hold the new tiles (never below the
        Table III baseline) — this is what makes area and power grow
        super-linearly with m in the sweep, exactly the cost the paper
        weighs against the latency gains.
        """
        from dataclasses import replace

        new_m = m if m is not None else self.tile_m
        new_k = k if k is not None else self.tile_k
        base = BufferConfig()
        buffers = BufferConfig(
            spike_bytes=max(base.spike_bytes, 2 * new_m * new_k // 8),
            weight_bytes=max(
                base.weight_bytes, 2 * new_k * self.tile_n * self.weight_bits // 8
            ),
            output_bytes=max(base.output_bytes, new_m * self.tile_n * 3),
        )
        return replace(
            self,
            tile_m=new_m,
            tile_k=new_k,
            tcam_entries=new_m,
            buffers=buffers,
        )


DEFAULT_CONFIG = ProsperityConfig()
