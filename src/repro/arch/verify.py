"""Self-check harness: functional PPU vs. analytic transform vs. dense.

Downstream users extending the PPU (new pruning rules, different tile
shapes) can run this harness to confirm three independent implementations
still agree on random inputs:

1. the dense NumPy GeMM (ground truth),
2. the vectorized ProSparsity transform + ordered execution
   (:mod:`repro.core`), and
3. the functional PPU built from the hardware unit models (real TCAM
   search, real bitonic network, real bit-scan decoding).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.config import ProsperityConfig
from repro.arch.ppu import PPU
from repro.core.prosparsity import execute_tile, transform_tile
from repro.core.reference import dense_spiking_gemm
from repro.core.spike_matrix import SpikeTile


@dataclass
class VerificationReport:
    """Outcome of a consistency sweep."""

    tiles_checked: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures


def verify_tile(
    bits: np.ndarray,
    weights: np.ndarray,
    config: ProsperityConfig,
    atol: float = 1e-9,
) -> list[str]:
    """Compare all three implementations on one tile; return mismatches."""
    failures = []
    dense = dense_spiking_gemm(bits, weights)

    transform = transform_tile(SpikeTile(bits))
    core = execute_tile(transform, weights)
    if not np.allclose(core, dense, atol=atol):
        failures.append("core transform diverged from dense GeMM")

    ppu = PPU(config)
    hardware = ppu.process_tile(bits, weights)
    if not np.allclose(hardware, dense, atol=atol):
        failures.append("functional PPU diverged from dense GeMM")
    return failures


def verify_consistency(
    n_tiles: int = 20,
    tile_m: int = 64,
    tile_k: int = 16,
    tile_n: int = 16,
    density_range: tuple[float, float] = (0.05, 0.6),
    rng: np.random.Generator | None = None,
) -> VerificationReport:
    """Randomized cross-validation sweep over ``n_tiles`` tiles."""
    rng = rng if rng is not None else np.random.default_rng(0)
    config = ProsperityConfig(
        tile_m=tile_m, tile_k=tile_k, tile_n=tile_n,
        num_pes=max(tile_n, 1), tcam_entries=tile_m,
    )
    report = VerificationReport()
    for index in range(n_tiles):
        density = rng.uniform(*density_range)
        bits = rng.random((tile_m, tile_k)) < density
        weights = rng.normal(size=(tile_k, tile_n))
        for failure in verify_tile(bits, weights, config):
            report.failures.append(f"tile {index} (density {density:.2f}): {failure}")
        report.tiles_checked += 1
    return report
