"""On-chip buffers and DRAM traffic model (double-buffered streaming)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.config import ProsperityConfig


@dataclass
class Buffer:
    """An SRAM buffer with capacity checking and access counters."""

    name: str
    capacity_bytes: int
    reads_bytes: float = 0.0
    writes_bytes: float = 0.0

    def check_fits(self, bytes_needed: int) -> None:
        if bytes_needed > self.capacity_bytes:
            raise ValueError(
                f"{self.name} buffer overflow: need {bytes_needed} B, "
                f"capacity {self.capacity_bytes} B"
            )

    def read(self, num_bytes: float) -> None:
        self.reads_bytes += num_bytes

    def write(self, num_bytes: float) -> None:
        self.writes_bytes += num_bytes


@dataclass
class TrafficSummary:
    """DRAM bytes moved for one workload."""

    spike_bytes: float = 0.0
    weight_bytes: float = 0.0
    output_bytes: float = 0.0

    @property
    def total(self) -> float:
        return self.spike_bytes + self.weight_bytes + self.output_bytes


@dataclass
class MemorySystem:
    """Buffers + DRAM for one Prosperity instance.

    Implements the tiling loop's traffic pattern (Sec. V-A): outputs are
    stationary on chip across the K loop, spikes stream once, and each
    weight tile reloads once per M tile. Double buffering lets DRAM
    streaming overlap compute; the effective per-layer latency is
    ``max(compute, memory)`` plus the first-tile fill.
    """

    config: ProsperityConfig
    spike: Buffer = field(init=False)
    weight: Buffer = field(init=False)
    output: Buffer = field(init=False)

    def __post_init__(self) -> None:
        buffers = self.config.buffers
        self.spike = Buffer("spike", buffers.spike_bytes)
        self.weight = Buffer("weight", buffers.weight_bytes)
        self.output = Buffer("output", buffers.output_bytes)

    def validate_tiles(self) -> None:
        """Check Table III tile sizes fit the configured buffers."""
        cfg = self.config
        # Double-buffered spike tile: 2 * m * k bits.
        self.spike.check_fits(2 * cfg.tile_m * cfg.tile_k // 8)
        # Double-buffered weight tile: 2 * k * n bytes (8-bit weights).
        self.weight.check_fits(2 * cfg.tile_k * cfg.tile_n * cfg.weight_bits // 8)
        # Output tile: m * n partial sums at 24 bits.
        self.output.check_fits(cfg.tile_m * cfg.tile_n * 3)

    def workload_traffic(self, m: int, k: int, n: int) -> TrafficSummary:
        """DRAM traffic for an ``(M, K) x (K, N)`` spiking GeMM."""
        cfg = self.config
        m_tiles = -(-m // cfg.tile_m)
        spike_bytes = m * k / 8.0                 # binary spikes stream once
        weight_bytes = float(m_tiles) * k * n * cfg.weight_bits / 8.0
        output_bytes = m * n / 8.0                 # next layer's binary spikes
        return TrafficSummary(spike_bytes, weight_bytes, output_bytes)

    def dram_cycles(self, traffic: TrafficSummary) -> float:
        """Cycles to stream the traffic at full DRAM bandwidth."""
        per_cycle = self.config.dram.bytes_per_cycle(self.config.frequency_hz)
        return traffic.total / per_cycle
