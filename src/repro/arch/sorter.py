"""Bitonic stable sorter model — the Dispatcher's temporal-order engine.

The Dispatcher sorts row indices by popcount; stability is obtained by
sorting composite keys ``(popcount, index)``, which is exactly how a
hardware bitonic network achieves a stable order with ties. Latency is
the classic ``log2(m) * (log2(m) + 1) / 2`` compare-exchange stages.
"""

from __future__ import annotations

from math import ceil, log2

import numpy as np


class BitonicSorter:
    """Parallel bitonic sorting network over up to ``capacity`` keys."""

    def __init__(self, capacity: int):
        if capacity < 2:
            raise ValueError("capacity must be at least 2")
        self.capacity = capacity

    def stages(self, count: int | None = None) -> int:
        """Compare-exchange stages (cycles) to sort ``count`` keys."""
        count = self.capacity if count is None else count
        if count <= 1:
            return 0
        bits = ceil(log2(count))
        return bits * (bits + 1) // 2

    def comparisons(self, count: int | None = None) -> int:
        """Total comparator activations (energy model input)."""
        count = self.capacity if count is None else count
        if count <= 1:
            return 0
        padded = 2 ** ceil(log2(count))
        return (padded // 2) * self.stages(padded)

    def sort(self, keys: np.ndarray) -> np.ndarray:
        """Run the actual bitonic network; returns a stable argsort.

        Executed in software on composite keys ``key * capacity + index``
        — functionally identical to the hardware and checked in tests
        against ``np.argsort(kind="stable")``.
        """
        keys = np.asarray(keys, dtype=np.int64)
        count = keys.shape[0]
        padded = 2 ** ceil(log2(max(count, 2)))
        big = np.iinfo(np.int64).max // 2
        composite = np.full(padded, big, dtype=np.int64)
        scale = padded  # index fits below this multiplier
        composite[:count] = keys * scale + np.arange(count)

        size = 2
        while size <= padded:
            stride = size // 2
            while stride >= 1:
                for i in range(padded):
                    partner = i ^ stride
                    if partner > i:
                        ascending = (i & size) == 0
                        a, b = composite[i], composite[partner]
                        if (a > b) == ascending:
                            composite[i], composite[partner] = b, a
                stride //= 2
            size *= 2

        order = composite[composite < big] % scale
        return order.astype(np.int64)
