"""28 nm area and energy models (substitute for Synopsys DC + CACTI).

Per-event energies and per-unit areas are analytic constants calibrated so
that the Table III configuration lands on the paper's Fig. 10 breakdown
(area 0.529 mm^2 dominated by buffers and the Dispatcher's product
sparsity table; power dominated by DRAM and the always-searching TCAM).
The SRAM model follows CACTI's square-root capacity scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2, sqrt

from repro.arch.config import ProsperityConfig

# --- Per-event energies (pJ), 28 nm ------------------------------------
E_TCAM_SEARCH_BIT = 0.131   # one TCAM cell participating in a search
E_POPCOUNT_BIT = 0.05       # popcount tree, per input bit
E_INT_COMPARE = 0.4         # 9-bit comparator op (pruner / sorter)
E_TABLE_BYTE = 0.8          # product sparsity table access, per byte
E_ADD_8BIT = 0.86           # 8-bit PE accumulate (per lane)
E_LIF_UPDATE = 2.0          # one LIF membrane update + compare
E_SFU_MUL = 3.5             # 8-bit multiply in the SFU
E_SRAM_BYTE_BASE = 0.35     # SRAM access energy floor per byte
E_SRAM_BYTE_SLOPE = 0.08    # adds per sqrt(KB) of capacity
# Wide-word sequential accesses (full psum rows) amortize decode/sense
# energy across the line; CACTI reports ~3x lower energy per byte for
# such accesses versus random word access.
E_SRAM_WIDE_FACTOR = 0.3

# --- Static power (mW) --------------------------------------------------
STATIC_POWER_MW = 12.0

# --- Areas (mm^2) --------------------------------------------------------
A_TCAM_BIT = 2.4e-6         # TCAM cell (double-buffered array included)
A_POPCOUNT_UNIT = 4.0e-4
A_COMPARATOR = 1.0e-5       # pruner subset-filter / argmax channel
A_SORTER_NODE = 6.0e-6      # bitonic compare-exchange node
A_TABLE_BYTE = 3.0e-5       # product sparsity table (dual-ported, 2x buffered)
A_PE = 4.3e-4               # 8-bit adder + psum register lane
A_LIF_CELL = 2.0e-4
A_SFU_MUL = 1.5e-4
A_SFU_EXP = 4.0e-4
A_SRAM_BYTE = 2.2e-6        # 28 nm SRAM macro density (~0.45 MB/mm^2)
A_OTHER = 0.008             # control, NoC, misc


def sram_energy_per_byte(capacity_bytes: int) -> float:
    """CACTI-style access energy: grows with the square root of capacity."""
    kb = max(capacity_bytes / 1024.0, 0.25)
    return E_SRAM_BYTE_BASE + E_SRAM_BYTE_SLOPE * sqrt(kb)


@dataclass(frozen=True)
class AreaBreakdown:
    """Component areas in mm^2 (paper Fig. 10a)."""

    detector: float
    pruner: float
    dispatcher: float
    processor: float
    neuron_sfu: float
    buffers: float
    other: float

    @property
    def total(self) -> float:
        return (
            self.detector + self.pruner + self.dispatcher + self.processor
            + self.neuron_sfu + self.buffers + self.other
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "detector": self.detector,
            "pruner": self.pruner,
            "dispatcher": self.dispatcher,
            "processor": self.processor,
            "neuron_sfu": self.neuron_sfu,
            "buffers": self.buffers,
            "other": self.other,
        }


def area_model(config: ProsperityConfig) -> AreaBreakdown:
    """Analytic area for a Prosperity instance.

    Scaling behaviour matches the paper's Fig. 7 cost curves: the TCAM and
    the sorter grow super-linearly in ``tile_m`` (m x k cells plus
    m log^2 m compare-exchange nodes), the product sparsity table grows
    linearly in ``m``, and buffers scale with the tile footprint.
    """
    m, k, n = config.tile_m, config.tile_k, config.tile_n
    # Detector: double-buffered m x k TCAM plus popcount units.
    detector = 2 * m * k * A_TCAM_BIT + config.popcount_units * A_POPCOUNT_UNIT
    # Pruner: m-channel proper-subset filter + argmax tree.
    pruner = 2 * m * A_COMPARATOR * 4
    # Dispatcher: product sparsity table (double-buffered; each of m entries
    # holds prefix index + k-bit pattern) and the bitonic sorter network.
    entry_bytes = (k + 16) / 8.0
    stages = max(1.0, log2(max(m, 2)) * (log2(max(m, 2)) + 1) / 2)
    sorter_nodes = (m / 2) * stages
    dispatcher = 2 * m * entry_bytes * A_TABLE_BYTE + sorter_nodes * A_SORTER_NODE
    processor = config.num_pes * A_PE + 0.019  # PEs + address decoder/control
    neuron_sfu = (
        config.neuron_array_cells * A_LIF_CELL
        + config.sfu_mul_units * A_SFU_MUL
        + config.sfu_exp_units * A_SFU_EXP
    )
    buffer_bytes = (
        config.buffers.spike_bytes
        + config.buffers.weight_bytes
        + config.buffers.output_bytes
    )
    buffers = buffer_bytes * A_SRAM_BYTE
    return AreaBreakdown(
        detector=detector,
        pruner=pruner,
        dispatcher=dispatcher,
        processor=processor,
        neuron_sfu=neuron_sfu,
        buffers=buffers,
        other=A_OTHER,
    )


@dataclass(frozen=True)
class EnergyModel:
    """Bundles per-event energy constants with config-derived SRAM costs."""

    config: ProsperityConfig

    @property
    def spike_buffer_byte(self) -> float:
        return sram_energy_per_byte(self.config.buffers.spike_bytes)

    @property
    def weight_buffer_byte(self) -> float:
        return sram_energy_per_byte(self.config.buffers.weight_bytes)

    @property
    def output_buffer_byte(self) -> float:
        return sram_energy_per_byte(self.config.buffers.output_bytes)

    @property
    def dram_byte(self) -> float:
        return self.config.dram.energy_per_byte_pj

    def tcam_search(self) -> float:
        """One query against all m entries of k bits."""
        return self.config.tcam_entries * self.config.tile_k * E_TCAM_SEARCH_BIT

    def static_energy_pj(self, cycles: float) -> float:
        seconds = cycles / self.config.frequency_hz
        return STATIC_POWER_MW * 1e-3 * seconds * 1e12
