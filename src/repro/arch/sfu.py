"""Special Function Unit: exp/mul/div support for spiking transformers.

Prosperity reuses the PPU for the GeMM-like parts of spiking attention
and dispatches softmax / LayerNorm scalar work (exponentiation, division,
multiplication) to the SFU (Sec. IV "Support for Transformers"). The SFU
here is a throughput model plus functional reference implementations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import ProsperityConfig
from repro.snn.functional import layer_norm, softmax


@dataclass
class SFU:
    """Throughput model for the SFU's multiplier/exponent/divider banks."""

    config: ProsperityConfig

    def softmax_cycles(self, rows: int, cols: int) -> float:
        """exp per element (8 EXP units), then a divide per element."""
        exps = rows * cols / self.config.sfu_exp_units
        divides = rows * cols  # single divider, pipelined 1/cycle
        return exps + divides

    def layer_norm_cycles(self, rows: int, cols: int) -> float:
        """mean/var accumulate + scale multiply through the MUL bank."""
        multiplies = 2 * rows * cols / self.config.sfu_mul_units
        return multiplies

    @staticmethod
    def softmax_reference(values: np.ndarray) -> np.ndarray:
        return softmax(values)

    @staticmethod
    def layer_norm_reference(values: np.ndarray) -> np.ndarray:
        return layer_norm(values)
