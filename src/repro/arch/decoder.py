"""Address decoder model — bit-scan-forward spike consumption (Sec. V-E).

The Processor's decoder repeatedly finds the first set bit of the
ProSparsity pattern (one spike per cycle), emits the weight-buffer address
for that column, and clears the bit — supporting fully unstructured
sparsity with one accumulate per cycle.
"""

from __future__ import annotations

import numpy as np

from repro.utils.bitops import bit_scan_forward


class AddressDecoder:
    """Walks a residual pattern, producing one weight address per cycle."""

    def __init__(self, weight_row_bytes: int):
        if weight_row_bytes <= 0:
            raise ValueError("weight_row_bytes must be positive")
        self.weight_row_bytes = weight_row_bytes

    def decode_row(self, pattern: np.ndarray) -> list[int]:
        """All weight-buffer byte addresses for a pattern, in issue order."""
        remaining = np.array(pattern, dtype=bool)
        addresses: list[int] = []
        while True:
            index = bit_scan_forward(remaining)
            if index < 0:
                break
            addresses.append(index * self.weight_row_bytes)
            remaining[index] = False  # flip the found bit (Step 10)
        return addresses

    def cycles(self, pattern_nnz: int) -> int:
        """One accumulate cycle per residual spike; EM rows take one cycle."""
        return max(1, int(pattern_nnz))
