"""Spiking Neuron Array: 32 LIF cells post-processing GeMM outputs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import ProsperityConfig
from repro.snn.neurons import LIFNeuron


@dataclass
class NeuronArray:
    """Converts accumulated currents into next-layer spikes.

    The array streams the output matrix through ``cells`` parallel LIF
    units; one membrane update per cell per cycle. This work overlaps the
    Processor's accumulation of subsequent rows in steady state, so only
    its excess over the compute phase appears on the critical path.
    """

    config: ProsperityConfig

    @property
    def cells(self) -> int:
        return self.config.neuron_array_cells

    def cycles(self, outputs: int) -> float:
        """Cycles to update ``outputs`` neurons (M x N values per step)."""
        return outputs / self.cells

    def fire(self, currents: np.ndarray, threshold: float = 1.0, tau: float = 2.0) -> np.ndarray:
        """Functional reference: run the LIF dynamics on output currents."""
        neuron = LIFNeuron(tau=tau, v_threshold=threshold)
        return neuron.forward(currents)
