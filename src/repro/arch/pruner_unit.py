"""Pruner datapath model (Sec. V-C, Fig. 5b).

Per query row and per cycle: (1) the proper-subset filter drops EM
candidates with larger indices, (2) an argmax over (popcount, index)
selects the single prefix, (3) a bit-wise XOR produces the ProSparsity
pattern. One row per cycle, fully pipelined with the Detector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.forest import NO_PREFIX


@dataclass
class PrunerOutput:
    """Spatial meta information for one query row."""

    row: int
    prefix: int
    pattern: np.ndarray


class Pruner:
    """Selects one prefix per row from the Detector's subset indices."""

    def __init__(self, channels: int):
        if channels <= 0:
            raise ValueError("channels must be positive")
        self.channels = channels
        self.comparisons = 0  # energy counter

    def prune(
        self,
        row: int,
        tile_bits: np.ndarray,
        subset_indices: np.ndarray,
        popcounts: np.ndarray,
    ) -> PrunerOutput:
        """Apply the filter + argmax + XOR pipeline for one query row."""
        tile_bits = np.asarray(tile_bits, dtype=bool)
        row_bits = tile_bits[row]
        candidates = [int(j) for j in subset_indices if j != row]
        # Proper-subset filter: an EM candidate (equal popcount) with a
        # larger index is a temporal violation under the stable popcount
        # sort, so it is removed before the argmax.
        query_count = int(popcounts[row])
        legal = [
            j
            for j in candidates
            if popcounts[j] > 0 and not (popcounts[j] == query_count and j > row)
        ]
        self.comparisons += len(candidates) + max(len(legal) - 1, 0)
        if not legal:
            return PrunerOutput(row=row, prefix=NO_PREFIX, pattern=row_bits.copy())
        best = max(legal, key=lambda j: (int(popcounts[j]), j))
        # Prefix is a subset of the query row, so XOR == set difference.
        return PrunerOutput(row=row, prefix=best, pattern=row_bits ^ tile_bits[best])

    def cycles(self, num_rows: int) -> int:
        """One row per cycle (pipelined)."""
        return num_rows
