"""Ternary CAM model — the Detector's parallel subset search (Sec. V-B).

A TCAM entry stores one spike row; a query masks the row's 1-bits to
"don't care" (X) and matches the 0-bits exactly. An entry matches iff it
has no spike where the query has none — i.e. the entry is a *subset* of
the query row. Every query completes in one clock.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_binary_matrix


class TCAM:
    """Double-buffered ternary CAM with ``entries`` rows of ``width`` bits."""

    def __init__(self, entries: int, width: int):
        if entries <= 0 or width <= 0:
            raise ValueError("entries and width must be positive")
        self.entries = entries
        self.width = width
        self._store: np.ndarray | None = None
        self.searches = 0  # activity counter for the energy model

    def load(self, tile_bits: np.ndarray) -> None:
        """Pre-load a spike tile (Step 0); shorter tiles occupy a prefix."""
        bits = ensure_binary_matrix(tile_bits, "TCAM tile")
        if bits.shape[0] > self.entries or bits.shape[1] > self.width:
            raise ValueError(
                f"tile {bits.shape} exceeds TCAM capacity "
                f"({self.entries} x {self.width})"
            )
        self._store = bits

    def search_subsets(self, query_row: np.ndarray) -> np.ndarray:
        """All entry indices whose stored row is a subset of ``query_row``.

        Hardware: mask(query)'s 1-positions become X; a stored row matches
        when all its 1s land on X positions. One cycle per query.
        """
        if self._store is None:
            raise RuntimeError("TCAM not loaded")
        query = np.asarray(query_row, dtype=bool)
        if query.shape[0] != self._store.shape[1]:
            raise ValueError("query width does not match loaded tile")
        self.searches += 1
        # entry & ~query == 0  <=>  entry ⊆ query
        violations = self._store & ~query[None, :]
        return np.flatnonzero(~violations.any(axis=1))

    def search_cycles(self, num_queries: int) -> int:
        """One cycle per query row."""
        return num_queries

    def bit_operations(self, num_queries: int) -> int:
        """Bitwise match operations: every cell participates per search.

        This is the m^2 x k term of the paper's Sec. VII-G cost analysis.
        """
        rows = self._store.shape[0] if self._store is not None else self.entries
        return num_queries * rows * self.width
