"""Prosperity architecture simulator."""

from repro.arch.config import DEFAULT_CONFIG, BufferConfig, DRAMConfig, ProsperityConfig
from repro.arch.energy import AreaBreakdown, EnergyModel, area_model
from repro.arch.memory import Buffer, MemorySystem, TrafficSummary
from repro.arch.neuron_array import NeuronArray
from repro.arch.ppu import (
    MODE_BIT,
    MODE_DENSE,
    MODE_PROSPARSITY_SLOW,
    MODE_PROSPERITY,
    MODES,
    PPU,
    pipeline_tile_cycles,
)
from repro.arch.report import (
    LayerResult,
    SimReport,
    energy_efficiency_gain,
    geometric_mean,
    speedup,
)
from repro.arch.scaling import ScalingPoint, multi_ppu_workload_cycles, scaling_study
from repro.arch.sfu import SFU
from repro.arch.simulator import ProsperitySimulator
from repro.arch.sorter import BitonicSorter
from repro.arch.tcam import TCAM

__all__ = [
    "DEFAULT_CONFIG",
    "BufferConfig",
    "DRAMConfig",
    "ProsperityConfig",
    "AreaBreakdown",
    "EnergyModel",
    "area_model",
    "Buffer",
    "MemorySystem",
    "TrafficSummary",
    "NeuronArray",
    "MODE_BIT",
    "MODE_DENSE",
    "MODE_PROSPARSITY_SLOW",
    "MODE_PROSPERITY",
    "MODES",
    "PPU",
    "pipeline_tile_cycles",
    "LayerResult",
    "SimReport",
    "energy_efficiency_gain",
    "geometric_mean",
    "speedup",
    "ScalingPoint",
    "multi_ppu_workload_cycles",
    "scaling_study",
    "SFU",
    "ProsperitySimulator",
    "BitonicSorter",
    "TCAM",
]
