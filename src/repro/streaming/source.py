"""Event-stream sources: where a stream's per-timestep spike rows come from.

A :class:`StreamSource` models an *unbounded-style* event trace as a
sequence of timesteps, each delivering zero or more binary rows per
named workload. The :class:`~repro.streaming.runner.StreamRunner` pulls
steps strictly in order (each step exactly once), so sources may carry
state between steps — the whole point of :class:`RecurrentSource`.

Three sources cover the paper-relevant shapes:

* :class:`TraceReplaySource` — replays any registered workload trace
  (:func:`repro.workloads.get_trace`) as a timestep stream, mapping each
  workload's rows onto the stream clock proportionally. Streamed records
  are bit-identical to the batch run of the same trace.
* :class:`PoissonEventSource` — seeded synthetic spike events at a
  configured Bernoulli rate, a fixed ``rows x cols`` block per step.
  Deterministic given its seed, and :meth:`batch_trace` exposes the
  equivalent whole-matrix workload for identity checks.
* :class:`RecurrentSource` — steps the recurrent spiking cell of
  :mod:`repro.snn.models.recurrent` one frame at a time, carrying
  hidden/membrane state across windows. Because both of that family's
  workloads have exactly one trace row per timestep, stepping the same
  calibrated cell reproduces the batch trace row for row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.snn.models import build_model
from repro.snn.trace import GeMMWorkload, ModelTrace
from repro.core.spike_matrix import SpikeMatrix
from repro.workloads import get_trace, preset_kwargs

__all__ = [
    "PoissonEventSource",
    "RecurrentSource",
    "StreamSource",
    "StreamWorkload",
    "TraceReplaySource",
    "build_source",
]


@dataclass(frozen=True)
class StreamWorkload:
    """Static description of one workload a source feeds rows into."""

    name: str
    kind: str  # "conv" | "linear" | "attention"
    cols: int  # K — fixed for the stream's lifetime
    n: int  # output feature dimension (weight columns)


class StreamSource:
    """Base class: named workloads plus an ordered ``emit(step)`` feed.

    Contract: the runner calls :meth:`emit` with ``step`` = 0, 1, ...,
    ``steps - 1``, each exactly once and in order — sources may therefore
    keep per-step state. ``emit`` returns ``{workload name: (r, cols)
    bool array}``; workloads with no rows this step may be omitted.
    """

    name: str = "stream"
    workloads: tuple[StreamWorkload, ...] = ()
    steps: int = 0

    def emit(self, step: int) -> dict[str, np.ndarray]:
        raise NotImplementedError

    def batch_trace(self) -> ModelTrace:
        """The equivalent whole-trace batch workload (identity oracle)."""
        raise NotImplementedError

    def _check_step(self, step: int, expected: int) -> None:
        if step != expected:
            raise ValueError(
                f"{self.name}: emit({step}) out of order; expected step "
                f"{expected} (sources are stateful and strictly sequential)"
            )


class TraceReplaySource(StreamSource):
    """Replay a batch :class:`ModelTrace` as a timestep event stream.

    The stream clock is the trace's largest ``time_steps``; each
    workload's ``m`` rows are mapped proportionally onto that clock, so
    step ``s`` delivers rows ``[floor(s*m/T), floor((s+1)*m/T))`` — every
    row exactly once, in matrix order. Tiling downstream therefore cuts
    the same global row bands the batch path does, which is what makes
    the streamed records bit-identical to ``ProsperityEngine.run``.
    """

    def __init__(self, trace: ModelTrace, name: str | None = None):
        self.trace = trace
        self.name = name if name is not None else f"{trace.model}/{trace.dataset}"
        self.steps = max((w.time_steps for w in trace.workloads), default=1)
        self.workloads = tuple(
            StreamWorkload(name=w.name, kind=w.kind, cols=w.k, n=w.n)
            for w in trace.workloads
        )
        self._emitted = 0

    def emit(self, step: int) -> dict[str, np.ndarray]:
        self._check_step(step, self._emitted)
        self._emitted += 1
        out: dict[str, np.ndarray] = {}
        for workload in self.trace.workloads:
            m = workload.m
            lo = (step * m) // self.steps
            hi = ((step + 1) * m) // self.steps
            if hi > lo:
                out[workload.name] = workload.spikes.bits[lo:hi]
        return out

    def batch_trace(self) -> ModelTrace:
        return self.trace


class PoissonEventSource(StreamSource):
    """Seeded synthetic spike events: one Bernoulli block per step.

    Every step emits a ``rows x cols`` binary block whose entries fire
    independently at ``rate`` — the event-camera-style stand-in for an
    unbounded sensor stream. All blocks are drawn up front from one
    seeded generator, so the stream is deterministic and
    :meth:`batch_trace` can expose the concatenated matrix as a single
    batch workload for bit-identity checks.
    """

    def __init__(
        self,
        rate: float = 0.15,
        rows: int = 256,
        cols: int = 64,
        steps: int = 16,
        seed: int = 7,
    ):
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        for label, value in (("rows", rows), ("cols", cols), ("steps", steps)):
            if value < 1:
                raise ValueError(f"{label} must be >= 1, got {value}")
        self.name = f"poisson(rate={rate})"
        self.rate = rate
        self.rows = rows
        self.cols = cols
        self.steps = steps
        rng = np.random.default_rng(seed)
        self._bits = rng.random((steps * rows, cols)) < rate
        self.workloads = (
            StreamWorkload(name="events", kind="linear", cols=cols, n=cols),
        )
        self._emitted = 0

    def emit(self, step: int) -> dict[str, np.ndarray]:
        self._check_step(step, self._emitted)
        self._emitted += 1
        return {"events": self._bits[step * self.rows : (step + 1) * self.rows]}

    def batch_trace(self) -> ModelTrace:
        return ModelTrace(
            model="poisson",
            dataset="synthetic",
            workloads=[
                GeMMWorkload(
                    name="events",
                    spikes=SpikeMatrix(self._bits),
                    n=self.cols,
                    kind="linear",
                    time_steps=self.steps,
                )
            ],
        )


class RecurrentSource(StreamSource):
    """Step the recurrent spiking cell frame by frame, carrying state.

    Rebuilds the exact model :func:`repro.workloads.get_trace` builds for
    ``("recurrent", dataset, preset, seed)`` — same generator, same
    preset overrides, same synthetic frames — calibrates the cell on the
    full frame sequence once (exactly what the batch forward pass does),
    then steps it one frame per stream timestep. Each step emits one
    ``z = [x_t | h_{t-1}]`` row to the ``"cell"`` workload and one hidden
    row to the ``"head"`` workload, so the streamed rows equal the batch
    trace's rows one for one and the hidden/membrane state genuinely
    crosses window boundaries.
    """

    def __init__(
        self, dataset: str = "speechcommands", preset: str = "small", seed: int = 7
    ):
        kwargs = preset_kwargs("recurrent", preset)
        rng = np.random.default_rng(seed)
        model = build_model("recurrent", dataset, rng=rng, **kwargs)
        self._frames = model.build_input(rng)
        cell = model.network.cell
        cell.calibrate(self._frames)
        self._cell = cell
        self.state = cell.init_state()
        self.name = f"recurrent/{dataset}"
        self.dataset = dataset
        self.preset = preset
        self.seed = seed
        self.steps = len(self._frames)
        self.workloads = (
            StreamWorkload(
                name=cell.name,
                kind="linear",
                cols=cell.input_dim + cell.hidden_dim,
                n=cell.hidden_dim,
            ),
            StreamWorkload(
                name="head",
                kind="linear",
                cols=cell.hidden_dim,
                n=model.network.head.weight.shape[1],
            ),
        )
        self._emitted = 0

    def emit(self, step: int) -> dict[str, np.ndarray]:
        self._check_step(step, self._emitted)
        self._emitted += 1
        z, self.state = self._cell.step(self._frames[step], self.state)
        return {
            self._cell.name: z[None, :],
            "head": self.state.hidden[None, :],
        }

    def batch_trace(self) -> ModelTrace:
        return get_trace("recurrent", self.dataset, self.preset, self.seed)


def build_source(config) -> StreamSource:
    """The :class:`StreamSource` a ``[streaming]`` config section names.

    ``"replay"`` streams the ``[workload]`` section's trace;
    ``"poisson"`` draws from the streaming section's ``rate`` / ``rows``
    / ``cols`` / ``steps`` knobs (seeded by ``workload.seed``);
    ``"recurrent"`` steps the recurrent cell model — on the configured
    dataset when the workload section already names the recurrent model,
    else on its home dataset.
    """
    streaming = config.streaming
    workload = config.workload
    if streaming.source == "replay":
        trace = get_trace(
            workload.model, workload.dataset, workload.preset, workload.seed
        )
        return TraceReplaySource(trace)
    if streaming.source == "poisson":
        return PoissonEventSource(
            rate=streaming.rate,
            rows=streaming.rows,
            cols=streaming.cols,
            steps=streaming.steps,
            seed=workload.seed,
        )
    if streaming.source == "recurrent":
        dataset = (
            workload.dataset if workload.model == "recurrent" else "speechcommands"
        )
        return RecurrentSource(
            dataset=dataset, preset=workload.preset, seed=workload.seed
        )
    raise ValueError(f"unknown stream source {streaming.source!r}")
