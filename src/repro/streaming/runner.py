"""Sliding-window streaming execution over an event-trace source.

:class:`StreamRunner` turns a :class:`~repro.streaming.source.
StreamSource` into a sequence of :class:`StreamChunk` results while
keeping the records **bit-identical** to one batch
:meth:`~repro.engine.pipeline.ProsperityEngine.run` over the equivalent
whole trace. The identity argument has three legs:

1. Tiles are assembled at *global* matrix boundaries, not window
   boundaries: each workload's incoming rows accumulate in a
   :class:`_TileAssembler` that only cuts a tile band once ``tile_m``
   full rows exist (the final partial band flushes at end of stream).
   Every streamed tile therefore has byte-for-byte the content of the
   corresponding batch tile from ``SpikeMatrix.tile``.
2. Backends compute each tile's record independently of its stack
   neighbours (pinned by the planner equivalence suite), so planning a
   window's tiles in a small plan yields the same records as planning
   the whole trace at once.
3. Per window, each workload's completed tiles are planned in global
   row-major order (the assembler emits bands in row order and splits
   ``k``-inner), so concatenating a workload's records across chunks
   reproduces the batch record array exactly.

A producer thread steps the source and feeds assembled tiles through a
bounded queue — ``max_inflight_windows`` is real backpressure, the
producer blocks once the consumer falls behind. Window execution runs
on the consuming thread through the engine's shared planner (under
``exclusive()``) with the engine's cache, so cross-window and
cross-stream dedup ride the same content-digest tiers (memory
:class:`~repro.engine.pipeline.ForestCache`, then the persistent
:class:`~repro.engine.store.ResultStore`) as batch runs. A stalled
source (see the ``stream_stall`` fault kind) surfaces as
:class:`StreamStalledError` after ``stall_timeout_s``.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.prosparsity import TILE_RECORD_FIELDS
from repro.core.spike_matrix import SpikeTile, TileCoord
from repro.engine.faults import stream_fault
from repro.engine.pipeline import (
    EngineReport,
    WorkloadRun,
    stats_from_records,
)
from repro.streaming.source import StreamSource

__all__ = [
    "StreamChunk",
    "StreamResult",
    "StreamRunner",
    "StreamStalledError",
]

_NFIELDS = len(TILE_RECORD_FIELDS)


class StreamStalledError(TimeoutError):
    """The stream source produced no window within the stall timeout."""


@dataclass(frozen=True)
class StreamChunk:
    """Result of one executed stream window.

    ``runs`` holds one :class:`~repro.engine.pipeline.WorkloadRun` per
    workload that completed at least one tile this window; concatenating
    a workload's ``records`` across all chunks of a stream reproduces
    the batch run's record array bit for bit.
    """

    index: int
    start_step: int
    stop_step: int
    seconds: float
    runs: list[WorkloadRun] = field(default_factory=list)
    planned_tiles: int = 0
    unique_tiles: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    final: bool = False

    @property
    def tiles(self) -> int:
        return sum(run.tiles for run in self.runs)

    @property
    def workloads(self) -> tuple[str, ...]:
        return tuple(run.name for run in self.runs)

    @property
    def dedup_ratio(self) -> float:
        return self.planned_tiles / self.unique_tiles if self.unique_tiles else 0.0


@dataclass(frozen=True)
class StreamResult:
    """Aggregate outcome of a completed stream.

    ``report`` is a normal :class:`~repro.engine.pipeline.EngineReport`
    (``plan == "stream"``) whose per-workload record arrays equal the
    batch run of the same trace — the report downstream consumers
    (metrics, protocol encoding, regression checks) already understand.
    """

    report: EngineReport
    windows: int
    steps: int

    @property
    def dedup_ratio(self) -> float:
        return self.report.dedup_ratio


class _TileAssembler:
    """Accumulates one workload's incoming rows; cuts global tile bands.

    Rows arrive in matrix order (the source contract). Whenever
    ``tile_m`` buffered rows exist, a full band is cut and split
    ``k``-inner into :class:`SpikeTile` objects whose content matches
    ``SpikeMatrix.tile`` on the eventual full matrix — the final partial
    band (rows % tile_m) is only cut by :meth:`flush` at end of stream,
    exactly like the batch tiler's unpadded edge tiles.
    """

    def __init__(self, cols: int, tile_m: int, tile_k: int):
        self.cols = cols
        self.tile_m = tile_m
        self.tile_k = tile_k
        self._rows: list[np.ndarray] = []
        self._buffered = 0
        self._row_start = 0  # global row index of the buffer head

    def add(self, rows: np.ndarray) -> None:
        rows = np.ascontiguousarray(rows, dtype=bool)
        if rows.ndim != 2 or rows.shape[1] != self.cols:
            raise ValueError(
                f"stream rows must be (r, {self.cols}), got {rows.shape}"
            )
        if len(rows):
            self._rows.append(rows)
            self._buffered += len(rows)

    def _take(self, count: int) -> np.ndarray:
        parts: list[np.ndarray] = []
        need = count
        while need:
            head = self._rows[0]
            if len(head) <= need:
                parts.append(head)
                self._rows.pop(0)
                need -= len(head)
            else:
                parts.append(head[:need])
                self._rows[0] = head[need:]
                need = 0
        self._buffered -= count
        return parts[0] if len(parts) == 1 else np.vstack(parts)

    def _band_tiles(self, band: np.ndarray) -> list[SpikeTile]:
        row_start = self._row_start
        self._row_start += len(band)
        return [
            SpikeTile(
                band[:, col_start : col_start + self.tile_k],
                TileCoord(row_start, col_start),
            )
            for col_start in range(0, self.cols, self.tile_k)
        ]

    def cut(self) -> list[SpikeTile]:
        """All complete ``tile_m`` bands buffered so far, in row order."""
        tiles: list[SpikeTile] = []
        while self._buffered >= self.tile_m:
            tiles.extend(self._band_tiles(self._take(self.tile_m)))
        return tiles

    def flush(self) -> list[SpikeTile]:
        """Complete bands plus the final partial band (end of stream)."""
        tiles = self.cut()
        if self._buffered:
            tiles.extend(self._band_tiles(self._take(self._buffered)))
        return tiles


@dataclass(frozen=True)
class _Window:
    index: int
    start_step: int
    stop_step: int
    tiles: list[list[SpikeTile]]  # one entry per source workload
    final: bool


class StreamRunner:
    """Drives a :class:`StreamSource` through an engine, window by window.

    Parameters mirror the ``[streaming]`` config section: ``window`` is
    the number of source steps per executed window, ``hop`` the stride
    between window starts (``0`` means non-overlapping, i.e. ``hop ==
    window``), ``max_inflight_windows`` bounds how many assembled
    windows may wait for execution before the producer blocks, and
    ``stall_timeout_s`` converts a silent source into a
    :class:`StreamStalledError` (``0`` waits forever).

    With ``hop < window`` consecutive windows overlap on the stream
    clock; overlapped steps are still emitted (and enter tile assembly)
    exactly once — the overlap affects *source state pacing* semantics,
    not row duplication — so record bit-identity with the batch run
    holds for every hop.
    """

    def __init__(
        self,
        source: StreamSource,
        engine,
        window: int = 4,
        hop: int = 0,
        max_inflight_windows: int = 2,
        stall_timeout_s: float = 5.0,
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if hop < 0 or hop > window:
            raise ValueError(f"hop must be in [0, window], got {hop}")
        if max_inflight_windows < 1:
            raise ValueError(
                f"max_inflight_windows must be >= 1, got {max_inflight_windows}"
            )
        if stall_timeout_s < 0:
            raise ValueError(f"stall_timeout_s must be >= 0, got {stall_timeout_s}")
        self.source = source
        self.engine = engine
        self.window = window
        self.hop = hop or window
        self.max_inflight_windows = max_inflight_windows
        self.stall_timeout_s = stall_timeout_s
        self._queue: queue.Queue = queue.Queue(maxsize=max_inflight_windows)
        self._cancel = threading.Event()

    # -- producer -------------------------------------------------------
    def _produce(self) -> None:
        """Step the source, assemble tiles, enqueue windows (own thread)."""
        source = self.source
        site = f"stream.{source.name}"
        assemblers = [
            _TileAssembler(w.cols, self.engine.tile_m, self.engine.tile_k)
            for w in source.workloads
        ]
        names = [w.name for w in source.workloads]
        try:
            steps = source.steps
            lo = 0
            start = 0
            index = 0
            while lo < steps and not self._cancel.is_set():
                stop = min(start + self.window, steps)
                for step in range(lo, stop):
                    stall = stream_fault(site)
                    if stall:
                        time.sleep(stall)
                    if self._cancel.is_set():
                        return
                    emitted = source.emit(step)
                    unknown = set(emitted) - set(names)
                    if unknown:
                        raise ValueError(
                            f"{source.name}: emit({step}) produced rows for "
                            f"undeclared workloads {sorted(unknown)}"
                        )
                    for assembler, name in zip(assemblers, names):
                        rows = emitted.get(name)
                        if rows is not None:
                            assembler.add(rows)
                final = stop >= steps
                tiles = [
                    assembler.flush() if final else assembler.cut()
                    for assembler in assemblers
                ]
                self._put(_Window(index, lo, stop, tiles, final))
                lo = stop
                start += self.hop
                index += 1
            if index == 0:
                # Empty source: still close the stream with a final
                # zero-step window so consumers get exactly one chunk.
                self._put(_Window(0, 0, 0, [[] for _ in assemblers], True))
        except BaseException as exc:  # noqa: BLE001 — relayed to consumer
            self._put(("error", exc))
        else:
            self._put(("done", None))

    def _put(self, item) -> None:
        """Blocking put that stays responsive to consumer cancellation."""
        while not self._cancel.is_set():
            try:
                self._queue.put(item, timeout=0.1)
                return
            except queue.Full:
                continue

    # -- consumer -------------------------------------------------------
    def run(self):
        """Generator of :class:`StreamChunk`; returns :class:`StreamResult`.

        Drive it with ``for chunk in runner.run()`` (the return value is
        then on ``StopIteration.value``) or ``result = yield from
        runner.run()`` inside another generator. Closing the generator
        early cancels the producer thread cleanly.
        """
        engine = self.engine
        source = self.source
        report = EngineReport(
            backend=engine.backend.name,
            tile_m=engine.tile_m,
            tile_k=engine.tile_k,
            batch=1,
            model=source.name,
            dataset="stream",
            workers=getattr(engine.backend, "workers", None),
            plan="stream",
            jit_active=getattr(engine.backend, "jit_active", None),
        )
        hits0 = engine.cache.hits if engine.cache else 0
        misses0 = engine.cache.misses if engine.cache else 0
        store0 = engine.store.counters() if engine.store is not None else {}
        backend_profile0 = dict(getattr(engine.backend, "profile", None) or {})
        profile: dict[str, float] = {}
        # One records list per workload, concatenated into the final
        # report — across chunks they reproduce the batch record arrays.
        records: list[list[np.ndarray]] = [[] for _ in source.workloads]
        seconds = [0.0 for _ in source.workloads]
        windows = 0
        stop_step = 0

        producer = threading.Thread(
            target=self._produce, name="stream-producer", daemon=True
        )
        producer.start()
        try:
            while True:
                try:
                    item = self._queue.get(
                        timeout=self.stall_timeout_s or None
                    )
                except queue.Empty:
                    raise StreamStalledError(
                        f"stream {source.name!r} produced no window within "
                        f"{self.stall_timeout_s:.1f}s (window {windows}, "
                        f"step {stop_step})"
                    ) from None
                if isinstance(item, tuple):
                    kind, payload = item
                    if kind == "error":
                        raise payload
                    break  # ("done", None)
                chunk = self._execute_window(
                    item, report, records, seconds, profile
                )
                windows += 1
                stop_step = item.stop_step
                yield chunk
        finally:
            self._cancel.set()
            # Unblock a producer stuck on a full queue, then reap it.
            while True:
                try:
                    self._queue.get_nowait()
                except queue.Empty:
                    break
            producer.join(timeout=5.0)

        for workload, chunks_records, spent in zip(
            source.workloads, records, seconds
        ):
            merged = (
                np.concatenate(chunks_records)
                if chunks_records
                else np.empty((0, _NFIELDS), dtype=np.int64)
            )
            report.runs.append(
                WorkloadRun(
                    name=workload.name,
                    kind=workload.kind,
                    tiles=len(merged),
                    records=merged,
                    stats=stats_from_records(merged),
                    seconds=spent,
                )
            )
        if engine.cache:
            report.cache_hits = engine.cache.hits - hits0
            report.cache_misses = engine.cache.misses - misses0
        if engine.store is not None:
            store1 = engine.store.counters()
            report.store_hits = store1["store_hits"] - store0["store_hits"]
            report.store_misses = store1["store_misses"] - store0["store_misses"]
            report.store_corrupt = store1["store_corrupt"] - store0["store_corrupt"]
            report.store_evictions = (
                store1["store_evictions"] - store0["store_evictions"]
            )
            report.store_active = engine.store.enabled
        backend_profile = getattr(engine.backend, "profile", None)
        if backend_profile:
            for stage, stage_seconds in backend_profile.items():
                profile[stage] = (
                    profile.get(stage, 0.0)
                    + stage_seconds
                    - backend_profile0.get(stage, 0.0)
                )
        report.profile = profile
        report.jit_active = getattr(engine.backend, "jit_active", None)
        return StreamResult(report=report, windows=windows, steps=source.steps)

    def _execute_window(
        self,
        window: _Window,
        report: EngineReport,
        records: list[list[np.ndarray]],
        seconds: list[float],
        profile: dict[str, float],
    ) -> StreamChunk:
        """Plan + execute one window's completed tiles on this thread."""
        engine = self.engine
        hits0 = engine.cache.hits if engine.cache else 0
        misses0 = engine.cache.misses if engine.cache else 0
        start = time.perf_counter()
        with engine.planner.exclusive():
            plan = engine.planner.plan(
                window.tiles, engine.tile_m, engine.tile_k, profile=profile
            )
            per_workload = engine.planner.execute(
                plan, engine.backend, cache=engine.cache, profile=profile
            )
        elapsed = time.perf_counter() - start
        if engine.store is not None:
            # Same IO discipline as batch runs: publish new durable
            # entries off the compute path, once per window.
            engine.store.kick()

        total = plan.total_tiles
        runs: list[WorkloadRun] = []
        for owner, (workload, window_records) in enumerate(
            zip(self.source.workloads, per_workload)
        ):
            if not len(window_records):
                continue
            share = elapsed * (len(window_records) / total) if total else 0.0
            records[owner].append(window_records)
            seconds[owner] += share
            runs.append(
                WorkloadRun(
                    name=workload.name,
                    kind=workload.kind,
                    tiles=len(window_records),
                    records=window_records,
                    stats=stats_from_records(window_records),
                    seconds=share,
                )
            )
        report.planned_tiles += plan.total_tiles
        report.unique_tiles += plan.unique_tiles
        return StreamChunk(
            index=window.index,
            start_step=window.start_step,
            stop_step=window.stop_step,
            seconds=elapsed,
            runs=runs,
            planned_tiles=plan.total_tiles,
            unique_tiles=plan.unique_tiles,
            cache_hits=(engine.cache.hits - hits0) if engine.cache else 0,
            cache_misses=(engine.cache.misses - misses0) if engine.cache else 0,
            final=window.final,
        )
