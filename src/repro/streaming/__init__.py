"""Sliding-window streaming inference over unbounded event traces.

The streaming subsystem runs the ProSparsity pipeline *incrementally*:
a :class:`StreamSource` delivers spike rows one timestep at a time, the
:class:`StreamRunner` assembles them into global tile bands and executes
sliding windows through a shared engine, and every record is
bit-identical to the equivalent batch :meth:`~repro.engine.pipeline.
ProsperityEngine.run`. Higher layers (``Session.stream_source``, the
scheduler's ``"stream"`` job kind, ``repro stream``, and the server's
``POST /v1/streams``) are thin wrappers over these two classes.
"""

from repro.streaming.runner import (
    StreamChunk,
    StreamResult,
    StreamRunner,
    StreamStalledError,
)
from repro.streaming.source import (
    PoissonEventSource,
    RecurrentSource,
    StreamSource,
    StreamWorkload,
    TraceReplaySource,
    build_source,
)

__all__ = [
    "PoissonEventSource",
    "RecurrentSource",
    "StreamChunk",
    "StreamResult",
    "StreamRunner",
    "StreamSource",
    "StreamStalledError",
    "StreamWorkload",
    "TraceReplaySource",
    "build_source",
]
