"""Bit-level primitives used throughout the ProSparsity pipeline.

These are the software twins of the hardware primitives in the Prosperity
architecture: the TCAM's masked subset match (:func:`subset_matrix`), the
popcount units in the Detector (:func:`popcount_rows`), and the Processor's
bit-scan-forward address decoder (:func:`bit_scan_forward`).

Spike rows are represented in two interchangeable forms:

* **bool matrix** — an ``(m, k)`` ``np.ndarray`` of ``bool``; the canonical
  user-facing representation.
* **packed matrix** — an ``(m, ceil(k / 8))`` ``np.ndarray`` of ``uint8``
  produced by ``np.packbits`` along axis 1; used for vectorized set algebra.
"""

from __future__ import annotations

import numpy as np

# Number of set bits for every possible byte value, used to vectorize
# popcounts over packed rows.
_BYTE_POPCOUNT = np.array([bin(value).count("1") for value in range(256)], dtype=np.int64)


def pack_rows(matrix: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(m, k)`` matrix into ``(m, ceil(k/8))`` uint8 rows.

    Bits beyond ``k`` in the final byte are zero, so packed rows of equal
    width are directly comparable with bitwise operators.
    """
    matrix = np.asarray(matrix, dtype=bool)
    if matrix.ndim != 2:
        raise ValueError(f"expected 2-D matrix, got shape {matrix.shape}")
    return np.packbits(matrix, axis=1)


def unpack_rows(packed: np.ndarray, k: int) -> np.ndarray:
    """Inverse of :func:`pack_rows`: recover the ``(m, k)`` boolean matrix."""
    packed = np.asarray(packed, dtype=np.uint8)
    if packed.ndim != 2:
        raise ValueError(f"expected 2-D packed matrix, got shape {packed.shape}")
    unpacked = np.unpackbits(packed, axis=1)
    if unpacked.shape[1] < k:
        raise ValueError(f"packed rows hold {unpacked.shape[1]} bits, need {k}")
    return unpacked[:, :k].astype(bool)


def popcount_rows(packed: np.ndarray) -> np.ndarray:
    """Number of set bits per packed row (the Detector's NO vector)."""
    packed = np.asarray(packed, dtype=np.uint8)
    return _BYTE_POPCOUNT[packed].sum(axis=-1)


def subset_matrix(packed: np.ndarray) -> np.ndarray:
    """All-pairs subset test, the software model of the TCAM search.

    Returns a boolean ``(m, m)`` matrix ``S`` with ``S[i, j]`` true when row
    ``j`` is a subset of row ``i`` (``S_j ⊆ S_i``), including ``i == j``.

    The TCAM realizes one *row* of this matrix per clock by masking the
    query row's 1-bits to don't-care and matching all entries in parallel;
    here we materialize all rows at once with a broadcast.
    """
    packed = np.asarray(packed, dtype=np.uint8)
    rows_i = packed[:, None, :]
    rows_j = packed[None, :, :]
    return ((rows_i & rows_j) == rows_j).all(axis=2)


def is_subset(packed_a: np.ndarray, packed_b: np.ndarray) -> bool:
    """True when packed row ``a`` is a subset of packed row ``b``."""
    packed_a = np.asarray(packed_a, dtype=np.uint8)
    packed_b = np.asarray(packed_b, dtype=np.uint8)
    return bool(((packed_a & packed_b) == packed_a).all())


def bits_to_int(bits: np.ndarray) -> int:
    """Encode a 1-D bit vector as an arbitrary-precision int (bit 0 = col 0)."""
    bits = np.asarray(bits, dtype=bool)
    value = 0
    for index in np.flatnonzero(bits):
        value |= 1 << int(index)
    return value


def int_to_bits(value: int, k: int) -> np.ndarray:
    """Decode an int back into a length-``k`` bit vector (bit 0 = col 0)."""
    if value < 0:
        raise ValueError("bit-set encodings are non-negative")
    if value >> k:
        raise ValueError(f"value {value} does not fit in {k} bits")
    return np.array([(value >> i) & 1 for i in range(k)], dtype=bool)


def bit_scan_forward(bits: np.ndarray) -> int:
    """Index of the first set bit, or -1 when the vector is all zero.

    This is the Processor's address decoder primitive (Step 10 in the
    paper's Fig. 5): it locates the next spike to consume and the caller
    then flips that bit to zero.
    """
    indices = np.flatnonzero(np.asarray(bits, dtype=bool))
    if indices.size == 0:
        return -1
    return int(indices[0])


def iterate_set_bits(bits: np.ndarray) -> list[int]:
    """All set-bit indices in bit-scan-forward order (ascending)."""
    return [int(index) for index in np.flatnonzero(np.asarray(bits, dtype=bool))]
