"""Shared low-level utilities: bit manipulation, RNG, validation helpers."""

from repro.utils.bitops import (
    bit_scan_forward,
    bits_to_int,
    int_to_bits,
    is_subset,
    pack_rows,
    popcount_rows,
    subset_matrix,
    unpack_rows,
)
from repro.utils.rng import default_rng
from repro.utils.validation import (
    ensure_binary_matrix,
    ensure_positive,
    ensure_shape_2d,
)

__all__ = [
    "bit_scan_forward",
    "bits_to_int",
    "int_to_bits",
    "is_subset",
    "pack_rows",
    "popcount_rows",
    "subset_matrix",
    "unpack_rows",
    "default_rng",
    "ensure_binary_matrix",
    "ensure_positive",
    "ensure_shape_2d",
]
