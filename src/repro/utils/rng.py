"""Deterministic random number generation for reproducible experiments."""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 20250503


def default_rng(seed: int | None = None) -> np.random.Generator:
    """A seeded :class:`numpy.random.Generator`.

    All experiment entry points accept an explicit seed; this helper pins
    the repository-wide default so benchmark tables are reproducible
    run-to-run.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)
