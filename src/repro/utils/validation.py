"""Input validation helpers shared across the library."""

from __future__ import annotations

import numpy as np


def ensure_shape_2d(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Return ``matrix`` as a 2-D ndarray or raise ``ValueError``."""
    array = np.asarray(matrix)
    if array.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {array.shape}")
    return array


def ensure_binary_matrix(matrix: np.ndarray, name: str = "spike matrix") -> np.ndarray:
    """Return ``matrix`` as a 2-D bool ndarray, rejecting non-binary input."""
    array = ensure_shape_2d(matrix, name)
    if array.dtype != bool:
        unique = np.unique(array)
        if not np.isin(unique, (0, 1)).all():
            raise ValueError(f"{name} must contain only 0/1 values")
        array = array.astype(bool)
    return array


def ensure_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value
