"""Workload registry: the paper's model x dataset evaluation grid.

Traces are expensive to build (one calibrated forward pass per model), so
this module caches them per (model, dataset, preset) within a process.
Two presets exist:

* ``"paper"`` — the configurations of Sec. VII-A (full channel widths,
  SpikeBERT at 12x768, etc.); used by the benchmark harness.
* ``"small"`` — reduced widths/depths with identical structure; used by
  tests and quick examples.
"""

from __future__ import annotations

import numpy as np

from repro.snn.models import build_model
from repro.snn.trace import ModelTrace

#: The 16 model/dataset pairs of Fig. 8 (speedup + energy efficiency).
FIG8_GRID: tuple[tuple[str, str], ...] = (
    ("vgg16", "cifar10"),
    ("vgg16", "cifar100"),
    ("resnet18", "cifar10"),
    ("resnet18", "cifar100"),
    ("spikformer", "cifar10"),
    ("spikformer", "cifar10dvs"),
    ("spikformer", "cifar100"),
    ("sdt", "cifar10"),
    ("sdt", "cifar10dvs"),
    ("sdt", "cifar100"),
    ("spikebert", "sst2"),
    ("spikebert", "mr"),
    ("spikebert", "sst5"),
    ("spikingbert", "sst2"),
    ("spikingbert", "qqp"),
    ("spikingbert", "mnli"),
)

#: The Fig. 11 density-comparison grid (adds VGG-9 / LeNet-5 workloads).
FIG11_GRID: tuple[tuple[str, str], ...] = (
    ("vgg16", "cifar10"),
    ("vgg16", "cifar100"),
    ("vgg9", "cifar10"),
    ("vgg9", "mnist"),
    ("resnet18", "cifar10"),
    ("resnet18", "cifar100"),
    ("lenet5", "mnist"),
    ("spikformer", "cifar10"),
    ("spikformer", "cifar100"),
    ("sdt", "cifar10"),
    ("sdt", "cifar100"),
    ("spikebert", "sst2"),
    ("spikebert", "mr"),
    ("spikebert", "sst5"),
    ("spikingbert", "sst2"),
    ("spikingbert", "qqp"),
    ("tcres8", "speechcommands"),
    ("recurrent", "speechcommands"),
)

# Builder overrides per preset. "small" shrinks width/depth but keeps the
# architecture (and therefore the sparsity structure) intact.
_PRESET_KWARGS: dict[str, dict[str, dict]] = {
    "paper": {
        "spikebert": dict(depth=12, dim=768),
        "spikingbert": dict(depth=4, dim=768),
        "tcres8": dict(time_steps=8),
        "recurrent": dict(hidden_dim=256),
    },
    "small": {
        "vgg16": dict(scale=0.25),
        "vgg9": dict(scale=0.25),
        "resnet18": dict(scale=0.25),
        "resnet19": dict(scale=0.25),
        "alexnet": dict(scale=0.25),
        "lenet5": dict(scale=0.5),
        "spikformer": dict(dim=192, depth=2, heads=6),
        "sdt": dict(dim=128, depth=1, heads=4),
        "spikebert": dict(dim=192, depth=2, heads=6),
        "spikingbert": dict(dim=192, depth=2, heads=6),
        "tcres8": dict(scale=0.5, time_steps=4),
        "recurrent": dict(hidden_dim=64),
    },
}

#: Valid ``preset`` names for :func:`get_trace` (and config validation).
PRESETS: tuple[str, ...] = tuple(sorted(_PRESET_KWARGS))

_TRACE_CACHE: dict[tuple, ModelTrace] = {}


def get_trace(
    model: str, dataset: str, preset: str = "small", seed: int = 7
) -> ModelTrace:
    """Build (or fetch from cache) the trace for one model/dataset pair."""
    if preset not in _PRESET_KWARGS:
        raise KeyError(f"unknown preset {preset!r}; known: {sorted(_PRESET_KWARGS)}")
    # The cache key folds in the preset's builder overrides, not just the
    # preset *name*: presets are mutable module data (tests and sweeps
    # adjust them), and a stale entry keyed only by name would silently
    # serve a trace built with different overrides — the streaming replay
    # sources depend on this key being exact.
    kwargs = _PRESET_KWARGS[preset].get(model, {})
    key = (model, dataset, preset, seed, tuple(sorted(kwargs.items())))
    if key not in _TRACE_CACHE:
        rng = np.random.default_rng(seed)
        instance = build_model(model, dataset, rng=rng, **kwargs)
        _TRACE_CACHE[key] = instance.trace(rng)
    return _TRACE_CACHE[key]


def preset_kwargs(model: str, preset: str) -> dict:
    """Builder overrides one preset applies to one model (a copy).

    The streaming sources use this to rebuild a model with *exactly* the
    overrides :func:`get_trace` would apply, so a stepped replay stays
    bit-identical to the cached batch trace.
    """
    if preset not in _PRESET_KWARGS:
        raise KeyError(f"unknown preset {preset!r}; known: {sorted(_PRESET_KWARGS)}")
    return dict(_PRESET_KWARGS[preset].get(model, {}))


def clear_trace_cache() -> None:
    """Drop all cached traces (tests use this for isolation)."""
    _TRACE_CACHE.clear()
