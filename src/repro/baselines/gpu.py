"""NVIDIA A100 GPU model: roofline with shape-dependent utilization.

The paper runs SNNs through PyTorch + SpikingJelly on an A100. Spiking
GeMMs execute as *dense FP32 CUDA-core matmuls* (SpikingJelly keeps
float32 state and binary-as-float spikes; no tensor-core path without
explicit casts), the SIMT pipeline cannot skip zeros, each layer pays
kernel-launch latency, and LIF updates run as per-time-step elementwise
kernels. Large models (SpikeBERT) amortize the launches and approach
FP32 peak, which is exactly why the paper sees only minor Prosperity
speedup there (Sec. VII-C); small CNN layers are overhead-dominated.
"""

from __future__ import annotations

from repro.arch.report import LayerResult
from repro.baselines.base import AcceleratorModel
from repro.snn.trace import GeMMWorkload

PEAK_FP32_FLOPS = 19.5e12       # A100 CUDA-core peak (FP32, dense)
HBM_BANDWIDTH = 1.5e12          # bytes/s
KERNEL_LAUNCH_S = 10e-6         # per-kernel framework + launch latency
AVG_POWER_W = 180.0             # measured-average board power under SNN load
MAX_UTILIZATION = 0.6
MIN_UTILIZATION = 0.02


def tensor_core_utilization(m: int, k: int, n: int) -> float:
    """Fraction of FP32 peak sustained for an (M, K, N) dense matmul.

    Utilization saturates once every dimension fills the tile/wave
    quantization of the cuBLAS path; SNN layers (small M, modest K) sit
    below that.
    """
    fill = min(m / 2048.0, 1.0) * min(k / 1024.0, 1.0) * min(n / 1024.0, 1.0)
    return max(MIN_UTILIZATION, MAX_UTILIZATION * fill ** 0.5)


class A100Model(AcceleratorModel):
    """End-to-end GPU latency/energy for spiking models via PyTorch."""

    name = "a100"
    area_mm2 = 826.0
    supports_attention = True   # GPUs run the full transformer
    frequency_hz = 1.41e9       # boost clock, for cycle bookkeeping only

    def __init__(
        self,
        peak_flops: float = PEAK_FP32_FLOPS,
        hbm_bandwidth: float = HBM_BANDWIDTH,
        kernel_launch_s: float = KERNEL_LAUNCH_S,
        avg_power_w: float = AVG_POWER_W,
    ):
        self.peak_flops = peak_flops
        self.hbm_bandwidth = hbm_bandwidth
        self.kernel_launch_s = kernel_launch_s
        self.avg_power_w = avg_power_w

    def simulate_workload(self, workload: GeMMWorkload) -> LayerResult:
        m, k, n = workload.m, workload.k, workload.n
        flops = 2.0 * workload.dense_macs     # dense FP32 multiply-adds
        util = tensor_core_utilization(m, k, n)
        compute_s = flops / (self.peak_flops * util)
        # FP32 operands + output + the LIF state read-modify-write
        # passes (membrane, spike, current) that follow every layer.
        bytes_moved = 4.0 * (m * k + k * n + 2 * m * n) + 16.0 * m * n
        memory_s = bytes_moved / self.hbm_bandwidth
        # SpikingJelly launches the GeMM once, but the LIF neuron loops
        # over time steps with several elementwise kernels per step —
        # the dominant cost for small SNN layers. Attention products run
        # inside one batched bmm (no per-step neuron pass).
        if workload.kind == "attention":
            launches = 1
        else:
            launches = 1 + 4 * max(workload.time_steps, 1)
        seconds = max(compute_s, memory_s) + self.kernel_launch_s * launches
        cycles = seconds * self.frequency_hz
        energy = {"board": self.avg_power_w * seconds * 1e12}
        return LayerResult(
            name=workload.name,
            cycles=cycles,
            compute_cycles=compute_s * self.frequency_hz,
            memory_cycles=memory_s * self.frequency_hz,
            dense_macs=workload.dense_macs,
            processed_ops=workload.dense_macs,
            dram_bytes=bytes_moved,
            energy_pj=energy,
        )
