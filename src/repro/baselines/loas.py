"""LoAS baseline (Yin et al. 2024): dual-side sparsity via weight pruning.

LoAS prunes SNN weights to very low density (<5%) and processes both
sparse sides: an accumulate happens only where a spike meets a surviving
weight. ProSparsity is orthogonal — it shrinks the *activation* side
further (Table V) — so this module provides both the LoAS execution model
and the pruned-weight mask generator used for the synergy study.
"""

from __future__ import annotations

import numpy as np

from repro.arch.report import LayerResult
from repro.baselines.base import AcceleratorModel, dram_cycles, row_popcounts
from repro.core.prosparsity import ProSparsityStats, transform_matrix
from repro.snn.trace import GeMMWorkload, ModelTrace

E_ADD = 0.86
E_BUFFER_PER_ADD = 1.4
E_DRAM_BYTE = 20.0
STATIC_POWER_MW = 22.0

# Table V weight densities after LoAS pruning.
LOAS_WEIGHT_DENSITY = {"alexnet": 0.018, "vgg16": 0.018, "resnet19": 0.040}


def pruned_weight_mask(
    k: int, n: int, density: float, rng: np.random.Generator
) -> np.ndarray:
    """Unstructured weight mask at the target density (LoAS-style)."""
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    return rng.random((k, n)) < density


def dual_sparse_ops(workload: GeMMWorkload, weight_density: float) -> float:
    """Expected accumulates with both sides sparse.

    For unstructured pruning, each of the workload's spikes pairs with an
    expected ``weight_density * n`` surviving weights.
    """
    spikes = float(row_popcounts(workload).sum())
    return spikes * workload.n * weight_density


class LoASModel(AcceleratorModel):
    """Fully temporal-parallel dual-sparse dataflow."""

    name = "loas"
    area_mm2 = 0.85
    supports_attention = False

    def __init__(
        self,
        weight_density: float = 0.02,
        num_pes: int = 128,
        frequency_hz: float = 500e6,
        intersection_efficiency: float = 0.5,
        dram_bandwidth: float = 64e9,
    ):
        self.weight_density = weight_density
        self.num_pes = num_pes
        self.frequency_hz = frequency_hz
        self.intersection_efficiency = intersection_efficiency
        self.dram_bandwidth = dram_bandwidth

    def simulate_workload(self, workload: GeMMWorkload) -> LayerResult:
        adds = dual_sparse_ops(workload, self.weight_density)
        compute = adds / (self.num_pes * self.intersection_efficiency)
        traffic = (
            workload.m * workload.k / 8.0
            + workload.k * workload.n * self.weight_density * 2.0  # value+index
            + workload.m * workload.n / 8.0
        )
        memory = dram_cycles(traffic, self.dram_bandwidth, self.frequency_hz)
        cycles = max(compute, memory)
        energy = {
            "compute": adds * E_ADD,
            "buffers": adds * E_BUFFER_PER_ADD,
            "dram": traffic * E_DRAM_BYTE,
            "static": STATIC_POWER_MW * 1e-3 * cycles / self.frequency_hz * 1e12,
        }
        return LayerResult(
            name=workload.name,
            cycles=cycles,
            compute_cycles=compute,
            memory_cycles=memory,
            dense_macs=workload.dense_macs,
            processed_ops=int(adds),
            dram_bytes=traffic,
            energy_pj=energy,
        )


def activation_density_with_prosparsity(
    trace: ModelTrace,
    tile_m: int = 256,
    tile_k: int = 16,
    max_tiles: int | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[float, float]:
    """(bit density, ProSparsity density) over a trace — the Table V metric.

    LoAS's weight pruning leaves activations untouched, so applying
    ProSparsity on top reduces the activation side by the same ratio as on
    the unpruned model.
    """
    stats = ProSparsityStats()
    for workload in trace.workloads:
        result = transform_matrix(
            workload.spikes, tile_m, tile_k,
            keep_transforms=False, max_tiles=max_tiles, rng=rng,
        )
        stats.merge(result.stats)
    return stats.bit_density, stats.product_density
