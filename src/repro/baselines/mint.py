"""MINT baseline (Yin et al., ASP-DAC 2024): quantized bit sparsity.

MINT quantizes weights and membrane potentials to 2 bits on a SATA-style
systolic design, shrinking memory footprint/traffic 4x and the adder cost,
while exploiting plain (unstructured) bit sparsity. ProSparsity is
orthogonal: MINT still performs one accumulate per spike.
"""

from __future__ import annotations

from repro.arch.report import LayerResult
from repro.baselines.base import AcceleratorModel, dram_cycles, row_popcounts
from repro.snn.trace import GeMMWorkload

E_ADD_2BIT = 0.53           # 2-bit adder datapath
E_BUFFER_PER_ADD = 1.7      # narrower words move less SRAM data
E_DRAM_BYTE = 20.0
STATIC_POWER_MW = 120.0


class MINTModel(AcceleratorModel):
    """Bit-sparse systolic accelerator with 2-bit quantization."""

    name = "mint"
    area_mm2 = 0.71
    supports_attention = False

    def __init__(
        self,
        num_pes: int = 128,
        frequency_hz: float = 500e6,
        systolic_efficiency: float = 0.13,
        weight_bits: int = 2,
        dram_bandwidth: float = 64e9,
    ):
        # systolic_efficiency absorbs SATA-style dataflow overheads;
        # calibrated to MINT's published ~2.1x over Eyeriss (Table IV).
        self.num_pes = num_pes
        self.frequency_hz = frequency_hz
        self.systolic_efficiency = systolic_efficiency
        self.weight_bits = weight_bits
        self.dram_bandwidth = dram_bandwidth

    def simulate_workload(self, workload: GeMMWorkload) -> LayerResult:
        spikes = float(row_popcounts(workload).sum())
        adds = spikes * workload.n
        compute = adds / (self.num_pes * self.systolic_efficiency)
        traffic = (
            workload.m * workload.k / 8.0
            + workload.k * workload.n * self.weight_bits / 8.0  # 4x smaller
            + workload.m * workload.n / 8.0
        )
        memory = dram_cycles(traffic, self.dram_bandwidth, self.frequency_hz)
        cycles = max(compute, memory)
        energy = {
            "compute": adds * E_ADD_2BIT,
            "buffers": adds * E_BUFFER_PER_ADD,
            "dram": traffic * E_DRAM_BYTE,
            "static": STATIC_POWER_MW * 1e-3 * cycles / self.frequency_hz * 1e12,
        }
        return LayerResult(
            name=workload.name,
            cycles=cycles,
            compute_cycles=compute,
            memory_cycles=memory,
            dense_macs=workload.dense_macs,
            processed_ops=int(adds),
            dram_bytes=traffic,
            energy_pj=energy,
        )
