"""SATO baseline (Liu et al., DAC 2022): temporal-oriented dataflow.

SATO distributes spike rows across PE groups with a bucket sort; each
group accumulates its row's spikes. Zero skipping is unstructured, but a
round of concurrent rows finishes only when its *longest* row does — the
workload-imbalance penalty the paper calls out (Sec. VII-C).
"""

from __future__ import annotations

import numpy as np

from repro.arch.report import LayerResult
from repro.baselines.base import AcceleratorModel, dram_cycles, row_popcounts
from repro.snn.trace import GeMMWorkload

E_ADD = 1.5
E_BUFFER_PER_ADD = 2.75
E_DRAM_BYTE = 20.0
STATIC_POWER_MW = 100.0


class SATOModel(AcceleratorModel):
    """Bucket-sorted row distribution over parallel PE groups."""

    name = "sato"
    area_mm2 = 1.13
    supports_attention = False

    def __init__(
        self,
        num_pes: int = 128,
        pe_groups: int = 16,
        frequency_hz: float = 500e6,
        distribution_efficiency: float = 0.08,
        dram_bandwidth: float = 64e9,
    ):
        # distribution_efficiency folds in the bucket-sort pre-pass, the
        # temporal-oriented unrolling and residual imbalance; calibrated to
        # SATO's published ~1.14x over Eyeriss on VGG-16 (Table IV).
        if num_pes % pe_groups:
            raise ValueError("num_pes must divide evenly into pe_groups")
        self.num_pes = num_pes
        self.pe_groups = pe_groups
        self.lanes_per_group = num_pes // pe_groups
        self.frequency_hz = frequency_hz
        self.distribution_efficiency = distribution_efficiency
        self.dram_bandwidth = dram_bandwidth

    def round_cycles(self, popcounts: np.ndarray, n: int) -> float:
        """Cycle count honoring per-round imbalance.

        The bucket sort sorts rows by spike count before distribution,
        which mitigates — but does not remove — the straggler effect:
        rounds still stall on their longest member.
        """
        counts = np.sort(popcounts)[::-1]  # bucket sort: group similar rows
        groups = self.pe_groups
        pad = (-len(counts)) % groups
        if pad:
            counts = np.concatenate([counts, np.zeros(pad, dtype=counts.dtype)])
        rounds = counts.reshape(-1, groups)
        per_round = rounds.max(axis=1)  # stall on the longest row
        col_passes = -(-n // self.lanes_per_group)
        return float(per_round.sum()) * col_passes / self.distribution_efficiency

    def simulate_workload(self, workload: GeMMWorkload) -> LayerResult:
        popcounts = row_popcounts(workload)
        compute = self.round_cycles(popcounts, workload.n)
        adds = float(popcounts.sum()) * workload.n
        traffic = (
            workload.m * workload.k / 8.0
            + workload.k * workload.n
            + workload.m * workload.n / 8.0
        )
        memory = dram_cycles(traffic, self.dram_bandwidth, self.frequency_hz)
        cycles = max(compute, memory)
        energy = {
            "compute": adds * E_ADD,
            "buffers": adds * E_BUFFER_PER_ADD,
            "dram": traffic * E_DRAM_BYTE,
            "static": STATIC_POWER_MW * 1e-3 * cycles / self.frequency_hz * 1e12,
        }
        return LayerResult(
            name=workload.name,
            cycles=cycles,
            compute_cycles=compute,
            memory_cycles=memory,
            dense_macs=workload.dense_macs,
            processed_ops=int(adds),
            dram_bytes=traffic,
            energy_pj=energy,
        )
