"""PTB baseline: Parallel Time Batching (Lee et al., HPCA 2022).

PTB packs a time window of spikes per neuron into one word and squeezes
out windows with no spikes — *structured* bit sparsity: whenever any step
in a window spikes, the whole window is processed. The cost of that
structure is exactly what Prosperity's unstructured dataflow removes
(Fig. 9's first rung: 2.28x).
"""

from __future__ import annotations


from repro.arch.report import LayerResult
from repro.baselines.base import AcceleratorModel, dram_cycles
from repro.snn.trace import GeMMWorkload

E_ADD = 3.4
E_BUFFER_PER_ADD = 6.3
E_DRAM_BYTE = 20.0
STATIC_POWER_MW = 100.0


def windowed_density(workload: GeMMWorkload, window: int) -> float:
    """Fraction of elements PTB actually processes.

    Rows are time-major (t * positions + p); a (position, column) site is
    live for a whole window when any of its steps spiked.
    """
    bits = workload.spikes.bits
    t = max(workload.time_steps, 1)
    if t <= 1 or bits.shape[0] % t:
        return float(bits.any(axis=0).mean()) if t > 1 else workload.bit_density
    positions = bits.shape[0] // t
    per_step = bits.reshape(t, positions, bits.shape[1])
    window = min(window, t)
    usable = (t // window) * window
    grouped = per_step[:usable].reshape(usable // window, window, positions, -1)
    live = grouped.any(axis=1)  # window is processed if any step spiked
    processed = live.sum() * window
    tail = per_step[usable:].size  # leftover steps processed densely
    return float((processed + tail) / bits.size)


class PTBModel(AcceleratorModel):
    """Systolic array with time-window structured sparsity."""

    name = "ptb"
    area_mm2 = 0.93
    supports_attention = False

    def __init__(
        self,
        num_pes: int = 128,
        frequency_hz: float = 500e6,
        window: int = 4,
        systolic_efficiency: float = 0.15,
        dram_bandwidth: float = 64e9,
    ):
        # systolic_efficiency folds in array fill/drain, window squeeze
        # bookkeeping and mapping losses; calibrated so PTB lands at its
        # published ~1.4x over Eyeriss on VGG-16 (Table IV).
        self.num_pes = num_pes
        self.frequency_hz = frequency_hz
        self.window = window
        self.systolic_efficiency = systolic_efficiency
        self.dram_bandwidth = dram_bandwidth

    def simulate_workload(self, workload: GeMMWorkload) -> LayerResult:
        density = windowed_density(workload, self.window)
        processed = density * workload.m * workload.k  # spike words touched
        adds = processed * workload.n
        compute = adds / (self.num_pes * self.systolic_efficiency)
        traffic = (
            workload.m * workload.k / 8.0
            + workload.k * workload.n
            + workload.m * workload.n / 8.0
        )
        memory = dram_cycles(traffic, self.dram_bandwidth, self.frequency_hz)
        cycles = max(compute, memory)
        energy = {
            "compute": adds * E_ADD,
            "buffers": adds * E_BUFFER_PER_ADD,
            "dram": traffic * E_DRAM_BYTE,
            "static": STATIC_POWER_MW * 1e-3 * cycles / self.frequency_hz * 1e12,
        }
        return LayerResult(
            name=workload.name,
            cycles=cycles,
            compute_cycles=compute,
            memory_cycles=memory,
            dense_macs=workload.dense_macs,
            processed_ops=int(adds),
            dram_bytes=traffic,
            energy_pj=energy,
        )
