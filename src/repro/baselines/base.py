"""Common interface for baseline accelerator models.

Every baseline consumes the same :class:`~repro.snn.trace.ModelTrace` the
Prosperity simulator does and emits the same :class:`SimReport`, so the
comparison tables (Table IV, Fig. 8) are generated uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.arch.report import LayerResult, SimReport
from repro.snn.trace import GeMMWorkload, ModelTrace


class AcceleratorModel:
    """Base class: subclasses implement :meth:`simulate_workload`."""

    name = "accelerator"
    frequency_hz = 500e6
    area_mm2 = 0.0
    #: Whether the design can execute the dynamic GeMMs of spiking
    #: attention (prior SNN ASICs cannot — Sec. VII-A).
    supports_attention = False

    def simulate_workload(self, workload: GeMMWorkload) -> LayerResult:
        raise NotImplementedError

    def prepare_trace(self, trace: ModelTrace) -> ModelTrace:
        """Drop workloads this accelerator cannot run (attention GeMMs)."""
        if self.supports_attention:
            return trace
        return trace.linear_only()

    def simulate(self, trace: ModelTrace) -> SimReport:
        trace = self.prepare_trace(trace)
        report = SimReport(
            accelerator=self.name,
            model=trace.model,
            dataset=trace.dataset,
            frequency_hz=self.frequency_hz,
        )
        for workload in trace.workloads:
            report.layers.append(self.simulate_workload(workload))
        return report


def row_popcounts(workload: GeMMWorkload) -> np.ndarray:
    """Spikes per row of the workload's activation matrix."""
    return workload.spikes.bits.sum(axis=1).astype(np.int64)


def dram_cycles(bytes_moved: float, bandwidth_bytes_per_s: float, frequency_hz: float) -> float:
    """Cycles to stream ``bytes_moved`` at the given DRAM bandwidth."""
    return bytes_moved / (bandwidth_bytes_per_s / frequency_hz)
