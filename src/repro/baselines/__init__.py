"""Baseline accelerator models the paper compares against."""

from repro.baselines.base import AcceleratorModel
from repro.baselines.eyeriss import EyerissModel
from repro.baselines.gpu import A100Model
from repro.baselines.loas import (
    LOAS_WEIGHT_DENSITY,
    LoASModel,
    activation_density_with_prosparsity,
    dual_sparse_ops,
    pruned_weight_mask,
)
from repro.baselines.mint import MINTModel
from repro.baselines.ptb import PTBModel, windowed_density
from repro.baselines.sato import SATOModel
from repro.baselines.stellar import StellarModel, fs_density

BASELINES = {
    "eyeriss": EyerissModel,
    "ptb": PTBModel,
    "sato": SATOModel,
    "mint": MINTModel,
    "stellar": StellarModel,
    "loas": LoASModel,
    "a100": A100Model,
}

__all__ = [
    "AcceleratorModel",
    "EyerissModel",
    "A100Model",
    "LOAS_WEIGHT_DENSITY",
    "LoASModel",
    "activation_density_with_prosparsity",
    "dual_sparse_ops",
    "pruned_weight_mask",
    "MINTModel",
    "PTBModel",
    "windowed_density",
    "SATOModel",
    "StellarModel",
    "fs_density",
    "BASELINES",
]
