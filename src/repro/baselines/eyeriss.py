"""Eyeriss baseline: dense row-stationary DNN accelerator (Chen et al.).

Eyeriss processes the spiking GeMM densely — every (row, column, k)
product is computed regardless of spike values — making it the
normalization baseline of Table IV and Fig. 8. 168 PEs, 8-bit MACs,
row-stationary dataflow whose mapping efficiency on these layer shapes is
the dominant utilization loss.
"""

from __future__ import annotations

from repro.arch.report import LayerResult
from repro.baselines.base import AcceleratorModel, dram_cycles
from repro.snn.trace import GeMMWorkload

# Energy constants (pJ, 28 nm, system-level per event).
E_MAC = 6.9                 # 8-bit MAC, system-level (incl. control/clock)
E_BUFFER_PER_MAC = 8.3      # ifmap/weight/psum register + SRAM movement
E_DRAM_BYTE = 20.0
STATIC_POWER_MW = 30.0


class EyerissModel(AcceleratorModel):
    """Dense baseline with row-stationary mapping efficiency."""

    name = "eyeriss"
    area_mm2 = 1.068
    supports_attention = False

    def __init__(
        self,
        num_pes: int = 168,
        frequency_hz: float = 500e6,
        mapping_efficiency: float = 0.20,
        dram_bandwidth: float = 64e9,
    ):
        self.num_pes = num_pes
        self.frequency_hz = frequency_hz
        self.mapping_efficiency = mapping_efficiency
        self.dram_bandwidth = dram_bandwidth

    def simulate_workload(self, workload: GeMMWorkload) -> LayerResult:
        macs = workload.dense_macs
        compute = macs / (self.num_pes * self.mapping_efficiency)
        # Dense processing treats activations as 8-bit words.
        traffic = (
            workload.m * workload.k          # activations
            + workload.k * workload.n        # weights (fit reuse on chip)
            + workload.m * workload.n        # outputs
        )
        memory = dram_cycles(traffic, self.dram_bandwidth, self.frequency_hz)
        cycles = max(compute, memory)
        energy = {
            "compute": macs * E_MAC,
            "buffers": macs * E_BUFFER_PER_MAC,
            "dram": traffic * E_DRAM_BYTE,
            "static": STATIC_POWER_MW * 1e-3 * cycles / self.frequency_hz * 1e12,
        }
        return LayerResult(
            name=workload.name,
            cycles=cycles,
            compute_cycles=compute,
            memory_cycles=memory,
            dense_macs=macs,
            processed_ops=macs,
            dram_bytes=traffic,
            energy_pj=energy,
        )
