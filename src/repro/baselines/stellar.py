"""Stellar baseline (Mao et al., HPCA 2024): FS-neuron co-design.

Stellar swaps LIF for few-spikes (FS) neurons, which emit at most two
spikes over a longer encoding window — an *algorithmic* sparsity gain
that modifies the model (unlike lossless ProSparsity). Since Stellar's
trained FS patterns are closed-source, the density is derived here by
FS-re-encoding the traced LIF activity (the paper itself falls back to
Stellar's reported statistics; our re-encoding reproduces those ratios).
"""

from __future__ import annotations

import numpy as np

from repro.arch.report import LayerResult
from repro.baselines.base import AcceleratorModel, dram_cycles
from repro.snn.trace import GeMMWorkload

E_ADD_12BIT = 2.75
E_BUFFER_PER_ADD = 3.7
E_DRAM_BYTE = 20.0
STATIC_POWER_MW = 80.0

FS_WINDOW_BITS = 8      # FS encoding window length
FS_MAX_SPIKES = 2       # Stöckl & Maass: two spikes suffice for high accuracy


def fs_density(workload: GeMMWorkload) -> float:
    """Density after re-encoding per-neuron activity with FS neurons.

    Each (position, feature) site's spike count over the T LIF steps is a
    proxy for its analog activation; FS transmits its binary expansion
    over an ``FS_WINDOW_BITS``-slot window, truncated to the
    ``FS_MAX_SPIKES`` most significant spikes.
    """
    bits = workload.spikes.bits
    t = max(workload.time_steps, 1)
    if t <= 1 or bits.shape[0] % t:
        counts = bits.sum(axis=0, keepdims=True).astype(np.float64)
        t_eff = bits.shape[0]
    else:
        positions = bits.shape[0] // t
        counts = bits.reshape(t, positions, bits.shape[1]).sum(axis=0).astype(np.float64)
        t_eff = t
    value = counts / t_eff                            # activation proxy in [0, 1]
    code = np.rint(value * (2**FS_WINDOW_BITS - 1)).astype(np.int64)
    popcounts = np.zeros_like(code)
    for bit in range(FS_WINDOW_BITS):
        popcounts += (code >> bit) & 1
    spikes = np.minimum(popcounts, FS_MAX_SPIKES)
    return float(spikes.sum() / (code.size * FS_WINDOW_BITS))


class StellarModel(AcceleratorModel):
    """Systolic FS-neuron accelerator (168 PEs, 12-bit adders)."""

    name = "stellar"
    area_mm2 = 0.768
    supports_attention = False

    def __init__(
        self,
        num_pes: int = 168,
        frequency_hz: float = 500e6,
        systolic_efficiency: float = 0.19,
        dram_bandwidth: float = 64e9,
    ):
        # Calibrated to Stellar's published ~6.5x over Eyeriss (Table IV)
        # given the FS densities our re-encoding produces.
        self.num_pes = num_pes
        self.frequency_hz = frequency_hz
        self.systolic_efficiency = systolic_efficiency
        self.dram_bandwidth = dram_bandwidth

    def simulate_workload(self, workload: GeMMWorkload) -> LayerResult:
        density = fs_density(workload)
        positions = workload.m / max(workload.time_steps, 1)
        fs_elements = positions * workload.k * FS_WINDOW_BITS
        adds = density * fs_elements * workload.n
        compute = adds / (self.num_pes * self.systolic_efficiency)
        traffic = (
            fs_elements / 8.0
            + workload.k * workload.n * 12 / 8.0      # 12-bit weights
            + workload.m * workload.n / 8.0
        )
        memory = dram_cycles(traffic, self.dram_bandwidth, self.frequency_hz)
        cycles = max(compute, memory)
        energy = {
            "compute": adds * E_ADD_12BIT,
            "buffers": adds * E_BUFFER_PER_ADD,
            "dram": traffic * E_DRAM_BYTE,
            "static": STATIC_POWER_MW * 1e-3 * cycles / self.frequency_hz * 1e12,
        }
        return LayerResult(
            name=workload.name,
            cycles=cycles,
            compute_cycles=compute,
            memory_cycles=memory,
            dense_macs=workload.dense_macs,
            processed_ops=int(adds),
            dram_bytes=traffic,
            energy_pj=energy,
        )
