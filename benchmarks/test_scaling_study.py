"""Sec. VIII-A: architecture scalability (intra- and inter-PPU).

The paper discusses, without evaluating, two scaling directions: issuing
multiple independent forest nodes per cycle (intra-PPU) and replicating
PPUs over tiles (inter-PPU). This study quantifies both on a real trace:
inter-PPU scales near-linearly (tiles are independent; imbalance costs a
few percent), while intra-PPU saturates against the forest's prefix
chains (critical path).
"""

import pytest

from benchmarks.conftest import save_result
from repro.analysis.report import format_percent, format_ratio, format_table
from repro.arch.scaling import scaling_study
from repro.workloads import get_trace


def regenerate(rng):
    trace = get_trace("vgg16", "cifar100", preset="paper")
    points = scaling_study(
        trace, ppu_counts=(1, 2, 4, 8), issue_widths=(1, 2, 4),
        max_tiles=24, rng=rng,
    )
    rows = [
        [p.num_ppus, p.issue_width, format_ratio(p.speedup),
         format_percent(p.efficiency)]
        for p in points
    ]
    table = format_table(
        ["PPUs", "issue width", "speedup", "efficiency"],
        rows,
        title="Sec. VIII-A — Prosperity scaling study (VGG-16/CIFAR100)",
    )
    return table, points


@pytest.mark.benchmark(group="scaling")
def test_scaling(benchmark, bench_rng):
    table, points = benchmark.pedantic(
        regenerate, args=(bench_rng,), rounds=1, iterations=1
    )
    save_result("scaling_study", table)
    by_combo = {(p.num_ppus, p.issue_width): p for p in points}
    # Inter-PPU: near-linear tile-level scaling.
    assert by_combo[(8, 1)].speedup > 5.0
    assert by_combo[(8, 1)].efficiency > 0.6
    # Intra-PPU: saturates well below linear due to prefix chains.
    assert by_combo[(1, 4)].speedup < 4.0
    assert by_combo[(1, 4)].speedup > 1.2
