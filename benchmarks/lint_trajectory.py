"""Strict lint for the committed perf trajectory (``BENCH_engine.json``).

The benchmark suite's loader (``_load_history`` in
``test_engine_throughput.py``) *tolerates* malformed records — it skips
them with a warning so one bad merge cannot disarm the whole regression
guard. CI, by contrast, should refuse to land a malformed trajectory at
all: this script applies the same entry schema strictly and exits
non-zero listing every problem. Stdlib-only on purpose, so the lint job
can run it without installing the package.

Usage::

    python benchmarks/lint_trajectory.py [path/to/BENCH_engine.json]
"""

from __future__ import annotations

import json
import pathlib
import sys

#: Mirrors ``ENTRY_REQUIRED`` in test_engine_throughput.py (kept
#: stdlib-only here so the lint needs no package imports).
ENTRY_REQUIRED = (("workload", str), ("backend", str), ("tiles_per_sec", (int, float)))

RECORD_REQUIRED = (("sha", str), ("quick", bool), ("entries", list))


def entry_problems(entry, where: str) -> list[str]:
    if not isinstance(entry, dict):
        return [f"{where}: entry is not an object: {entry!r}"]
    problems = []
    for name, kind in ENTRY_REQUIRED:
        value = entry.get(name)
        if isinstance(value, bool) or not isinstance(value, kind):
            problems.append(f"{where}: bad {name!r}: {value!r}")
    return problems


def lint(path: pathlib.Path) -> list[str]:
    """Every schema violation in ``path`` (empty list = clean)."""
    if not path.exists():
        return []  # no trajectory yet is a valid state (fresh repo)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        return [f"cannot parse: {error}"]
    if not isinstance(data, dict) or not isinstance(data.get("history"), list):
        return ["top level must be an object with a 'history' list (schema 2)"]
    if data.get("schema") != 2:
        return [f"bad schema marker: {data.get('schema')!r} (expected 2)"]
    problems: list[str] = []
    seen_keys: set[tuple] = set()
    for position, record in enumerate(data["history"]):
        where = f"history[{position}]"
        if not isinstance(record, dict):
            problems.append(f"{where}: record is not an object: {record!r}")
            continue
        for name, kind in RECORD_REQUIRED:
            value = record.get(name)
            if not isinstance(value, kind) or (
                kind is not bool and isinstance(value, bool)
            ):
                problems.append(f"{where}: bad {name!r}: {value!r}")
        key = (record.get("sha"), record.get("date"))
        if key in seen_keys:
            problems.append(f"{where}: duplicate (sha, date) key {key!r}")
        seen_keys.add(key)
        if not isinstance(record.get("entries"), list):
            continue
        entry_keys: set[tuple] = set()
        for index, entry in enumerate(record["entries"]):
            problems.extend(entry_problems(entry, f"{where}.entries[{index}]"))
            if isinstance(entry, dict):
                entry_key = (entry.get("workload"), entry.get("backend"))
                if entry_key in entry_keys:
                    problems.append(
                        f"{where}.entries[{index}]: duplicate "
                        f"(workload, backend) key {entry_key!r}"
                    )
                entry_keys.add(entry_key)
    return problems


def main(argv: list[str]) -> int:
    default = pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"
    path = pathlib.Path(argv[1]) if len(argv) > 1 else default
    problems = lint(path)
    for problem in problems:
        print(f"{path}: {problem}", file=sys.stderr)
    if problems:
        print(f"{path}: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"{path}: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
