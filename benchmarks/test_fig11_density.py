"""Fig. 11: density comparison — bit vs FS-neuron vs product sparsity.

Paper: product sparsity reduces density by up to 19.7x and 5.0x on
average versus bit sparsity, and 3.2x on average versus Stellar's FS
neurons; every workload lands below ~5% product density in the paper
(we reproduce the ordering and the multi-x reduction band).
"""

import numpy as np
import pytest

from benchmarks.conftest import MAX_TILES, save_result
from repro.analysis.density import density_report
from repro.analysis.report import format_percent, format_table
from repro.arch.report import geometric_mean
from repro.workloads import FIG11_GRID, get_trace


def regenerate(rng):
    reports = []
    for model, dataset in FIG11_GRID:
        trace = get_trace(model, dataset, preset="paper")
        reports.append(density_report(trace, max_tiles=MAX_TILES, rng=rng))
    rows = [
        [
            f"{r.model}/{r.dataset}",
            format_percent(r.bit_density),
            format_percent(r.fs_density),
            format_percent(r.product_density),
            f"{r.reduction_vs_bit:.1f}x",
        ]
        for r in reports
    ]
    mean_bit = float(np.mean([r.bit_density for r in reports]))
    mean_fs = float(np.mean([r.fs_density for r in reports]))
    mean_pro = float(np.mean([r.product_density for r in reports]))
    rows.append(
        [
            "MEAN",
            format_percent(mean_bit),
            format_percent(mean_fs),
            format_percent(mean_pro),
            f"{mean_bit / mean_pro:.1f}x",
        ]
    )
    table = format_table(
        ["workload", "bit (PTB/SATO)", "FS neuron (Stellar)", "product (ours)", "vs bit"],
        rows,
        title="Fig. 11 — density comparison "
        "(paper: product sparsity 5.0x below bit on average, up to 19.7x)",
    )
    return table, reports


@pytest.mark.benchmark(group="fig11")
def test_fig11(benchmark, bench_rng):
    table, reports = benchmark.pedantic(
        regenerate, args=(bench_rng,), rounds=1, iterations=1
    )
    save_result("fig11_density", table)
    # Product density below bit density on every workload.
    assert all(r.product_density < r.bit_density for r in reports)
    # Multi-x average reduction vs bit sparsity (paper 5.0x).
    mean_reduction = geometric_mean([r.reduction_vs_bit for r in reports])
    assert mean_reduction > 2.5
    # Product sparsity also beats FS neurons on average (paper 3.2x).
    fs_ratio = geometric_mean(
        [r.fs_density / r.product_density for r in reports if r.product_density > 0]
    )
    assert fs_ratio > 1.0
