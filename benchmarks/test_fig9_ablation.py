"""Fig. 9: ablation ladder.

Paper (speedups vs Eyeriss=1.0): PTB 2.62 -> unstructured bit sparsity
5.97 (2.28x) -> +ProSparsity with high-overhead dispatch 12.87 (2.16x)
-> overhead-free dispatch 19.12 (1.49x).
"""

import pytest

from benchmarks.conftest import MAX_TILES, save_result
from repro.analysis.report import format_table
from repro.arch.ppu import MODE_BIT, MODE_PROSPARSITY_SLOW, MODE_PROSPERITY
from repro.arch.report import geometric_mean
from repro.arch.simulator import ProsperitySimulator
from repro.baselines import EyerissModel, PTBModel
from repro.workloads import get_trace

WORKLOADS = (
    ("vgg16", "cifar100"),
    ("resnet18", "cifar10"),
    ("spikformer", "cifar10"),
    ("spikingbert", "sst2"),
)


def regenerate(rng):
    ladder = {
        "eyeriss (dense)": [],
        "ptb (structured bit)": [],
        "bit unstructured": [],
        "prosparsity slow dispatch": [],
        "prosperity (overhead-free)": [],
    }
    for model, dataset in WORKLOADS:
        trace = get_trace(model, dataset, preset="paper")
        base = EyerissModel().simulate(trace).seconds
        ladder["eyeriss (dense)"].append(1.0)
        ladder["ptb (structured bit)"].append(
            base / PTBModel().simulate(trace).seconds
        )
        for label, mode in (
            ("bit unstructured", MODE_BIT),
            ("prosparsity slow dispatch", MODE_PROSPARSITY_SLOW),
            ("prosperity (overhead-free)", MODE_PROSPERITY),
        ):
            report = ProsperitySimulator(
                mode=mode, max_tiles_per_workload=MAX_TILES, rng=rng
            ).simulate(trace)
            ladder[label].append(base / report.seconds)

    geomeans = {label: geometric_mean(values) for label, values in ladder.items()}
    rows = [[label, f"{value:.2f}x"] for label, value in geomeans.items()]
    table = format_table(
        ["configuration", "speedup vs dense"],
        rows,
        title="Fig. 9 — ablation ladder (paper: 1.00 / 2.62 / 5.97 / 12.87 / 19.12)",
    )
    return table, geomeans


@pytest.mark.benchmark(group="fig9")
def test_fig9(benchmark, bench_rng):
    table, geomeans = benchmark.pedantic(
        regenerate, args=(bench_rng,), rounds=1, iterations=1
    )
    save_result("fig9_ablation", table)
    bit = geomeans["bit unstructured"]
    ptb = geomeans["ptb (structured bit)"]
    slow = geomeans["prosparsity slow dispatch"]
    fast = geomeans["prosperity (overhead-free)"]
    # Each rung improves on the previous (paper: 2.28x, 2.16x, 1.49x).
    assert bit / ptb > 1.3
    assert slow / bit > 1.3
    assert 1.1 < fast / slow < 2.5
