"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables or figures and
writes the rendered table to ``benchmarks/results/<name>.txt`` (pytest
captures stdout, so files are the canonical artifact). Traces are built
once per session through the :mod:`repro.workloads` cache.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Tile sampling cap per workload: keeps the full-grid benchmarks tractable
# while remaining an unbiased density/cycle estimator.
MAX_TILES = 24


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def bench_rng() -> np.random.Generator:
    return np.random.default_rng(42)


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
