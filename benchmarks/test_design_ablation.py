"""Design-choice ablation: pruning rules and temporal ordering.

Quantifies the two heuristics of Sec. III-D on real traces: choosing the
*largest* subset as prefix (vs smallest / lowest-index / random / none)
and executing in stable-popcount order (vs program order, where a row
can only reuse already-finished smaller-index rows — the paper's Fig. 1
motivation for temporal optimization).
"""

import pytest

from benchmarks.conftest import save_result
from repro.analysis.ablation import ablate_design_choices
from repro.analysis.report import format_percent, format_table
from repro.workloads import get_trace


def regenerate(rng):
    trace = get_trace("vgg16", "cifar100", preset="paper")
    points = ablate_design_choices(
        trace, max_tiles_per_workload=3, rng=rng
    )
    rows = [
        [
            p.prefix_policy,
            p.order_policy,
            format_percent(p.product_density),
            f"{p.reduction:.2f}x",
        ]
        for p in sorted(points, key=lambda p: p.product_density)
    ]
    table = format_table(
        ["prefix policy", "order", "product density", "reduction vs bit"],
        rows,
        title="Design ablation — pruning rule x execution order (VGG-16)",
    )
    return table, points


@pytest.mark.benchmark(group="ablation")
def test_design_ablation(benchmark, bench_rng):
    table, points = benchmark.pedantic(
        regenerate, args=(bench_rng,), rounds=1, iterations=1
    )
    save_result("design_ablation", table)
    by_combo = {(p.prefix_policy, p.order_policy): p for p in points}
    paper = by_combo[("largest", "sorted")]
    # The paper's combination wins outright.
    assert paper.product_density == min(p.product_density for p in points)
    # Temporal ordering matters: program order forfeits a chunk of the
    # reduction even with the best pruning rule.
    program = by_combo[("largest", "program")]
    assert program.product_density > paper.product_density
    # And the pruning rule matters: picking the smallest subset is the
    # worst non-trivial policy.
    smallest = by_combo[("smallest", "sorted")]
    assert smallest.product_density > paper.product_density
