"""Table IV: accelerator comparison on VGG-16 (CIFAR100).

Paper (normalized to Eyeriss): throughput 1.00/1.14/1.41/2.11/6.48/13.27x,
energy efficiency 1.00/2.98/2.05/4.53/8.57/17.98x; Prosperity area
0.529 mm^2 with the best area efficiency (26.78x).
"""

import pytest

from benchmarks.conftest import MAX_TILES, save_result
from repro.analysis.report import format_table
from repro.arch.simulator import ProsperitySimulator
from repro.baselines import BASELINES
from repro.workloads import get_trace

ASICS = ("eyeriss", "sato", "ptb", "mint", "stellar")


def regenerate(rng):
    trace = get_trace("vgg16", "cifar100", preset="paper")
    reports = {name: BASELINES[name]().simulate(trace) for name in ASICS}
    prosperity_sim = ProsperitySimulator(max_tiles_per_workload=MAX_TILES, rng=rng)
    reports["prosperity"] = prosperity_sim.simulate(trace)
    areas = {name: BASELINES[name]().area_mm2 for name in ASICS}
    areas["prosperity"] = prosperity_sim.area_mm2

    eyeriss = reports["eyeriss"]
    rows = []
    for name in (*ASICS, "prosperity"):
        report = reports[name]
        gops = report.throughput_gops()
        eff = report.energy_efficiency_gops_per_j()
        rows.append(
            [
                name,
                areas[name],
                gops,
                f"{eyeriss.seconds / report.seconds:.2f}x",
                eff,
                f"{eyeriss.energy_j / report.energy_j:.2f}x",
                gops / areas[name],
            ]
        )
    table = format_table(
        ["design", "area mm2", "GOP/s", "speedup", "GOP/J", "EE gain", "GOP/s/mm2"],
        rows,
        title="Table IV — VGG-16 accelerator comparison "
        "(paper speedups 1/1.14/1.41/2.11/6.48/13.27)",
    )
    return table, reports, areas


@pytest.mark.benchmark(group="table4")
def test_table4(benchmark, bench_rng):
    table, reports, areas = benchmark.pedantic(
        regenerate, args=(bench_rng,), rounds=1, iterations=1
    )
    save_result("table4_accelerators", table)
    seconds = {name: r.seconds for name, r in reports.items()}
    # Paper ordering: Eyeriss slowest, then SATO/PTB, MINT, Stellar,
    # Prosperity fastest.
    assert seconds["eyeriss"] == max(seconds.values())
    assert seconds["prosperity"] == min(seconds.values())
    assert seconds["stellar"] < seconds["mint"] < seconds["ptb"]
    # Energy efficiency: Prosperity best (paper 17.98x vs Eyeriss).
    effs = {n: r.energy_efficiency_gops_per_j() for n, r in reports.items()}
    assert effs["prosperity"] == max(effs.values())
    # Area: smallest among ASICs with the best area efficiency.
    assert areas["prosperity"] == min(areas.values())
