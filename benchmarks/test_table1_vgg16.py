"""Table I: sparsity paradigm comparison on VGG-16.

Paper row: Dense 100%/1.00x; PTB 34.21% bit density / 1.86x; Stellar
9.80% FS density / 5.97x; Prosperity 2.79% product density / 17.55x.
"""

import pytest

from benchmarks.conftest import MAX_TILES, save_result
from repro.analysis.density import density_report
from repro.analysis.report import format_percent, format_ratio, format_table
from repro.arch.simulator import ProsperitySimulator
from repro.baselines import EyerissModel, PTBModel, StellarModel
from repro.workloads import get_trace


def regenerate(rng):
    trace = get_trace("vgg16", "cifar100", preset="paper")
    densities = density_report(trace, max_tiles=MAX_TILES, rng=rng)
    eyeriss = EyerissModel().simulate(trace)
    ptb = PTBModel().simulate(trace)
    stellar = StellarModel().simulate(trace)
    prosperity = ProsperitySimulator(
        max_tiles_per_workload=MAX_TILES, rng=rng
    ).simulate(trace)
    rows = [
        ["Dense (Eyeriss)", "none", "100%", "-", format_ratio(1.0)],
        [
            "PTB", "structured bit",
            format_percent(densities.bit_density), "-",
            format_ratio(eyeriss.seconds / ptb.seconds),
        ],
        [
            "Stellar", "FS neuron",
            format_percent(densities.fs_density), "-",
            format_ratio(eyeriss.seconds / stellar.seconds),
        ],
        [
            "Prosperity", "ProSparsity",
            format_percent(densities.bit_density),
            format_percent(densities.product_density),
            format_ratio(eyeriss.seconds / prosperity.seconds),
        ],
    ]
    table = format_table(
        ["design", "sparsity", "bit density", "pro density", "speedup"],
        rows,
        title="Table I — VGG-16 (CIFAR100): sparsity paradigms "
        "(paper: 34.21% bit, 2.79% pro, 1.86x/5.97x/17.55x)",
    )
    return table, densities, eyeriss, ptb, stellar, prosperity


@pytest.mark.benchmark(group="table1")
def test_table1(benchmark, bench_rng):
    table, densities, eyeriss, ptb, stellar, prosperity = benchmark.pedantic(
        regenerate, args=(bench_rng,), rounds=1, iterations=1
    )
    save_result("table1_vgg16", table)
    # Shape claims of Table I.
    assert densities.product_density < densities.fs_density < densities.bit_density
    assert eyeriss.seconds > ptb.seconds > stellar.seconds > prosperity.seconds
    assert eyeriss.seconds / prosperity.seconds > 8.0
