"""Engine throughput: reference vs vectorized vs fused vs sharded vs
plan vs compiled.

This is the perf gate for the engine subsystem. Every run re-checks that
the bulk backends' tile records are bit-identical to the reference
oracle on each tier-1 workload, measures tiles/sec per backend, and
asserts the contract speedups: on VGG-16 the vectorized backend >= 3x
over the reference path (PR 1), the fused tile-batched backend >= 3x
over vectorized (PR 2), and the Numba-``compiled`` backend >= 3x over
fused (ISSUE 6) — the last only where the JIT is actually active
(numba installed, ``REPRO_NO_JIT`` unset); in fallback environments the
compiled row is measured and recorded as ``compiled[fallback]`` but the
native contract cannot be asserted. On a multi-timestep trace the
trace-level planner (``plan="trace"``) >= 1.5x over per-matrix fused
(PR 3). A sharded smoke (workers=2) checks multiprocess bit-identity on
every run.

Results land in ``benchmarks/results/`` (rendered table + JSON) and the
machine-readable perf trajectory is *appended* to repo-root
``BENCH_engine.json``: one history record per (git SHA, date), each
holding one entry per (workload, backend) with tiles/sec and speedup —
the history survives across PRs so the trend is chartable. Before
appending, the current numbers are compared against the last committed
record: machine-normalized speedups that regress by more than 2x
hard-fail, absolute tiles/sec drops only warn (shared CI runners vary
too much for hard absolute gates); ``REPRO_BENCH_SKIP_REGRESSION=1``
disables the guard. (``pytest benchmarks/test_engine_throughput.py
--quick`` is the CI smoke mode: one repetition, VGG-16 only.)
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import subprocess
import time
import warnings

import numpy as np
import pytest

from benchmarks.conftest import save_result
from repro.analysis.report import format_ratio, format_table
from repro.core.prosparsity import transform_matrix
from repro.core.spike_matrix import SpikeMatrix
from repro.engine import CompiledBackend, ProsperityEngine, ShardedBackend
from repro.snn.trace import GeMMWorkload, ModelTrace
from repro.workloads import get_trace

#: Tier-1 workloads: the model/dataset pairs the test suite exercises.
TIER1_GRID = (
    ("vgg16", "cifar10"),
    ("lenet5", "mnist"),
    ("spikformer", "cifar10"),
)

#: Contract minimum for the vectorized backend over reference on VGG-16.
MIN_VGG16_SPEEDUP = 3.0

#: Contract minimum for the fused backend over vectorized on VGG-16.
MIN_FUSED_SPEEDUP = 3.0

#: Contract minimum for trace-planned fused over per-matrix fused on a
#: multi-timestep trace (PR 3's contract).
MIN_PLAN_SPEEDUP = 1.5

#: Contract minimum for the Numba-compiled backend over fused on VGG-16
#: (ISSUE 6's contract). Only asserted when the JIT is active; the
#: NumPy fallback is, by construction, the fused path itself.
MIN_COMPILED_SPEEDUP = 3.0

#: Timesteps the multi-timestep planner benchmark unrolls.
PLAN_TIME_STEPS = 8

#: Regression-guard thresholds against the last committed trajectory
#: record: machine-normalized speedup_vs_reference drops beyond
#: ``HARD_REGRESSION`` fail; absolute tiles/sec drops beyond
#: ``SOFT_REGRESSION`` warn only (shared runners differ too much).
HARD_REGRESSION = 2.0
SOFT_REGRESSION = 1.3

TILE_M, TILE_K = 256, 16

#: Perf-trajectory file (repo root) uploaded as a CI artifact per PR.
BENCH_TRAJECTORY = pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def _git(*args: str) -> str:
    return subprocess.run(
        ["git", *args],
        cwd=BENCH_TRAJECTORY.parent,
        capture_output=True,
        text=True,
        check=True,
        timeout=10,
    ).stdout.strip()


def _git_sha() -> str:
    """HEAD's short SHA, with a ``-dirty`` marker for uncommitted code.

    Only paths that can change benchmark numbers count as dirty (the
    library and the benchmark modules — not results files or the
    trajectory itself, which this run rewrites), so numbers are never
    attributed to a commit that does not contain the measured code.
    """
    try:
        sha = _git("rev-parse", "--short", "HEAD")
    except Exception:
        return "unknown"
    try:
        dirty = _git("status", "--porcelain", "--", "src", "benchmarks/*.py")
    except Exception:
        dirty = ""
    return f"{sha}-dirty" if dirty else sha


#: Minimum entry shape the regression guard relies on; everything else
#: in an entry is provenance and passes through untouched.
ENTRY_REQUIRED = (("workload", str), ("backend", str), ("tiles_per_sec", (int, float)))


def entry_problem(entry) -> str | None:
    """Why ``entry`` cannot feed the regression guard, or ``None``."""
    if not isinstance(entry, dict):
        return f"not an object: {entry!r}"
    for name, kind in ENTRY_REQUIRED:
        value = entry.get(name)
        if isinstance(value, bool) or not isinstance(value, kind):
            return f"bad {name!r}: {value!r}"
    return None


def _sanitize_history(history: list) -> list[dict]:
    """Drop malformed records/entries with a warning.

    A hand-edited or badly-merged trajectory must not poison the
    regression guard (KeyError mid-compare) or be silently re-written
    as-is by the next append; ``benchmarks/lint_trajectory.py`` is the
    strict CI-facing version of the same rules.
    """
    clean = []
    for record in history:
        if not isinstance(record, dict) or not isinstance(
            record.get("entries"), list
        ):
            warnings.warn(
                f"{BENCH_TRAJECTORY}: skipping malformed history record: "
                f"{record!r}",
                stacklevel=3,
            )
            continue
        entries = []
        for entry in record["entries"]:
            problem = entry_problem(entry)
            if problem is None:
                entries.append(entry)
            else:
                warnings.warn(
                    f"{BENCH_TRAJECTORY}: skipping malformed entry "
                    f"({problem}) in record {record.get('sha')!r}",
                    stacklevel=3,
                )
        clean.append(dict(record, entries=entries))
    return clean


def _load_history() -> list[dict]:
    """Trajectory history, migrating the flat schema-1 layout in place.

    A present-but-unparsable file raises instead of returning ``[]``:
    silently starting an empty history would both disarm the regression
    guard and overwrite (destroy) every committed record on the next
    append. Only a genuinely absent file starts fresh. Records/entries
    that parse but do not satisfy the entry schema are skipped with a
    warning (they cannot feed the guard, but must not sink the rest of
    the history with them).
    """
    if not BENCH_TRAJECTORY.exists():
        return []
    try:
        data = json.loads(BENCH_TRAJECTORY.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise RuntimeError(
            f"{BENCH_TRAJECTORY} exists but cannot be parsed ({error}); "
            "refusing to overwrite the perf history — fix or remove the "
            "file (e.g. resolve merge-conflict markers) and re-run"
        ) from error
    if isinstance(data, dict) and isinstance(data.get("history"), list):
        return _sanitize_history(data["history"])
    if isinstance(data, dict) and "entries" in data:  # schema 1 (PR 2)
        return _sanitize_history(
            [
                {
                    "sha": "pre-history",
                    "date": None,
                    "quick": data.get("quick", False),
                    "entries": data["entries"],
                }
            ]
        )
    raise RuntimeError(
        f"{BENCH_TRAJECTORY} has an unrecognized layout; refusing to "
        "overwrite the perf history"
    )


def _append_trajectory(entries: list[dict], quick: bool) -> None:
    """Merge entries into the history record keyed by (git SHA, date).

    Re-runs on the same commit and day update their record in place
    (keyed per workload/backend); everything older is preserved, so the
    perf history accumulates across PRs instead of being overwritten.
    Provenance is tracked per entry: a ``--quick`` (1-repetition) run
    never overwrites full-mode numbers for the same key, and a record
    counts as quick only while *all* of its entries are quick.
    """
    entries = [dict(entry, quick=quick) for entry in entries]
    history = _load_history()
    key = (_git_sha(), datetime.date.today().isoformat())
    for record in history:
        if (record.get("sha"), record.get("date")) == key:
            index = {
                (entry["workload"], entry["backend"]): position
                for position, entry in enumerate(record["entries"])
            }
            for entry in entries:
                entry_key = (entry["workload"], entry["backend"])
                if entry_key not in index:
                    record["entries"].append(entry)
                elif not quick or record["entries"][index[entry_key]].get(
                    "quick", record.get("quick", False)
                ):
                    record["entries"][index[entry_key]] = entry
            record["quick"] = all(
                entry.get("quick", record.get("quick", False))
                for entry in record["entries"]
            )
            break
    else:
        history.append(
            {"sha": key[0], "date": key[1], "quick": quick, "entries": entries}
        )
    BENCH_TRAJECTORY.write_text(
        json.dumps({"schema": 2, "history": history}, indent=2) + "\n"
    )


def _previous_record() -> dict | None:
    """The last committed trajectory record from a *different* run key."""
    key = (_git_sha(), datetime.date.today().isoformat())
    for record in reversed(_load_history()):
        if (record.get("sha"), record.get("date")) != key:
            return record
    return None


#: Machine-normalized speedup fields the regression guard understands;
#: an entry carries whichever normalization is honest for its row.
SPEEDUP_FIELDS = ("speedup_vs_reference", "speedup_vs_fused")


def _check_regression(entries: list[dict]) -> None:
    """Benchmark regression guard against the last committed record.

    Machine-normalized speedup regressions (``speedup_vs_reference`` /
    ``speedup_vs_fused``, compared like for like) beyond
    ``HARD_REGRESSION`` fail; absolute tiles/sec drops beyond
    ``SOFT_REGRESSION`` only warn, because shared CI runners routinely
    differ that much machine to machine.
    """
    if os.environ.get("REPRO_BENCH_SKIP_REGRESSION"):
        return
    previous = _previous_record()
    if previous is None:
        return
    baseline = {
        (entry["workload"], entry["backend"]): entry
        for entry in previous.get("entries", [])
    }
    failures = []
    for entry in entries:
        reference = baseline.get((entry["workload"], entry["backend"]))
        if reference is None:
            continue
        regressed_speedup = False
        for field in SPEEDUP_FIELDS:
            old_speedup = reference.get(field, 0.0)
            new_speedup = entry.get(field)
            if new_speedup is None or old_speedup <= 1.0:
                continue
            if new_speedup * HARD_REGRESSION < old_speedup:
                regressed_speedup = True
                failures.append(
                    f"{entry['workload']}/{entry['backend']}: {field} fell "
                    f"{old_speedup:.2f}x -> {new_speedup:.2f}x "
                    f"(> {HARD_REGRESSION}x regression vs {previous.get('sha')})"
                )
        if not regressed_speedup and (
            reference.get("tiles_per_sec", 0.0)
            > entry.get("tiles_per_sec", 0.0) * SOFT_REGRESSION
        ):
            warnings.warn(
                f"{entry['workload']}/{entry['backend']}: tiles/sec fell "
                f"{reference['tiles_per_sec']:,.0f} -> "
                f"{entry['tiles_per_sec']:,.0f} vs {previous.get('sha')} "
                "(warn-only: absolute throughput is machine-dependent)",
                stacklevel=2,
            )
    assert not failures, "; ".join(failures)


def _repeat_trace(trace: ModelTrace, repeats: int) -> ModelTrace:
    """Unroll a trace over timesteps with *distinct* matrix copies.

    Copies (rather than shared objects) make the multi-timestep
    benchmark honest: the planner must rediscover the redundancy by
    content, exactly as it would across real repeated timesteps.
    """
    return ModelTrace(
        model=f"{trace.model}[x{repeats}]",
        dataset=trace.dataset,
        workloads=[
            GeMMWorkload(
                name=f"t{step}.{workload.name}",
                spikes=SpikeMatrix(workload.spikes.bits.copy()),
                n=workload.n,
                kind=workload.kind,
                time_steps=workload.time_steps,
            )
            for step in range(repeats)
            for workload in trace.workloads
        ],
    )


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock over ``repeats`` runs (noise-robust timing)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _reference_records(trace) -> list[np.ndarray]:
    return [
        transform_matrix(
            w.spikes, TILE_M, TILE_K, keep_transforms=False
        ).tile_records
        for w in trace.workloads
    ]


def _engine_run(backend, plan="matrix"):
    """Fresh engine per repetition; ``backend`` may be a shared instance."""
    def run(trace):
        return ProsperityEngine(
            backend=backend, tile_m=TILE_M, tile_k=TILE_K, plan=plan
        ).run(trace, batch=8)

    return run


def _check_records(report, reference_records, label):
    assert len(report.runs) == len(reference_records)
    for run, expected in zip(report.runs, reference_records):
        assert np.array_equal(run.records, expected), (
            f"{label}:{run.name} diverged from reference"
        )


@pytest.fixture(scope="module")
def sharded_backend():
    """Persistent two-worker pool shared by the equivalence smoke."""
    backend = ShardedBackend(workers=2)
    yield backend
    backend.close()


def test_engine_throughput(results_dir, request, sharded_backend):
    quick = request.config.getoption("--quick")
    grid = TIER1_GRID[:1] if quick else TIER1_GRID
    repeats = 1 if quick else 3

    # One warmed compiled backend for the whole grid: warmup (JIT
    # compile / cache load) is a process-lifetime cost by design, so it
    # is paid here once and excluded from the timed repetitions — that
    # is exactly what the warmup() seam is for.
    compiled_backend = CompiledBackend()
    jit_active = compiled_backend.warmup()

    rows = []
    payload = {
        "quick": quick,
        "tile_m": TILE_M,
        "tile_k": TILE_K,
        "compiled_jit_active": jit_active,
    }
    trajectory = []
    vec_speedups = {}
    fused_speedups = {}
    compiled_speedups = {}
    # Fallback rows are honest but not comparable to JIT rows: key them
    # separately in the trajectory so the regression guard never
    # compares a NumPy fallback against a native-kernel baseline.
    compiled_key = "compiled" if jit_active else "compiled[fallback]"
    for model, dataset in grid:
        trace = get_trace(model, dataset, preset="small")
        workload = f"{model}/{dataset}"

        # Correctness first: every bulk backend's records must be
        # bit-identical to the reference oracle on the whole trace.
        reference_records = _reference_records(trace)
        vectorized_run = _engine_run("vectorized")
        fused_run = _engine_run("fused")
        planned_run = _engine_run("fused", plan="trace")
        sharded_run = _engine_run(sharded_backend)
        compiled_run = _engine_run(compiled_backend)
        report = vectorized_run(trace)
        _check_records(report, reference_records, f"vectorized:{workload}")
        fused_report = fused_run(trace)
        _check_records(fused_report, reference_records, f"fused:{workload}")
        planned_report = planned_run(trace)
        _check_records(planned_report, reference_records, f"fused+plan:{workload}")
        shard_report = sharded_run(trace)
        _check_records(shard_report, reference_records, f"sharded:{workload}")
        compiled_report = compiled_run(trace)
        _check_records(compiled_report, reference_records, f"compiled:{workload}")
        assert compiled_report.jit_active is jit_active

        ref_seconds = _best_of(lambda: _reference_records(trace), repeats)
        vec_seconds = _best_of(lambda: vectorized_run(trace), repeats)
        fused_seconds = _best_of(lambda: fused_run(trace), repeats)
        plan_seconds = _best_of(lambda: planned_run(trace), repeats)
        shard_seconds = _best_of(lambda: sharded_run(trace), repeats)
        compiled_seconds = _best_of(lambda: compiled_run(trace), repeats)
        if (model, dataset) == ("vgg16", "cifar10") and (
            ref_seconds / vec_seconds < MIN_VGG16_SPEEDUP
            or vec_seconds / fused_seconds < MIN_FUSED_SPEEDUP
            or (
                jit_active
                and fused_seconds / compiled_seconds < MIN_COMPILED_SPEEDUP
            )
        ):
            # Guard the contract asserts against a noisy neighbor: one
            # re-measure with more repetitions before declaring failure.
            ref_seconds = _best_of(lambda: _reference_records(trace), repeats + 2)
            vec_seconds = _best_of(lambda: vectorized_run(trace), repeats + 2)
            fused_seconds = _best_of(lambda: fused_run(trace), repeats + 2)
            compiled_seconds = _best_of(lambda: compiled_run(trace), repeats + 2)
        tiles = report.total_tiles
        seconds = {
            "reference": ref_seconds,
            "vectorized": vec_seconds,
            "fused": fused_seconds,
            "fused+plan": plan_seconds,
            "sharded[2]": shard_seconds,
            compiled_key: compiled_seconds,
        }
        vec_speedups[(model, dataset)] = ref_seconds / vec_seconds
        fused_speedups[(model, dataset)] = vec_seconds / fused_seconds
        compiled_speedups[(model, dataset)] = fused_seconds / compiled_seconds
        rows.append(
            [
                workload,
                tiles,
                *(f"{tiles / s:,.0f}" for s in seconds.values()),
                format_ratio(vec_speedups[(model, dataset)]),
                format_ratio(fused_speedups[(model, dataset)]),
                format_ratio(compiled_speedups[(model, dataset)]),
            ]
        )
        payload[workload] = {
            "tiles": int(tiles),
            **{
                f"{name}_tiles_per_sec": tiles / s
                for name, s in seconds.items()
            },
            "vectorized_speedup_vs_reference": vec_speedups[(model, dataset)],
            "fused_speedup_vs_vectorized": fused_speedups[(model, dataset)],
            "compiled_speedup_vs_fused": compiled_speedups[(model, dataset)],
            "plan_speedup_vs_fused": fused_seconds / plan_seconds,
            "plan_dedup_ratio": planned_report.dedup_ratio,
            "cache_hit_rate": report.cache_hit_rate,
            "fused_profile": fused_report.profile,
            "planned_profile": planned_report.profile,
            "compiled_profile": compiled_report.profile,
        }
        for name, s in seconds.items():
            entry = {
                "workload": workload,
                "backend": name,
                "tiles": int(tiles),
                "tiles_per_sec": tiles / s,
                "speedup_vs_reference": ref_seconds / s,
            }
            if name == compiled_key:
                entry["speedup_vs_fused"] = fused_seconds / s
            trajectory.append(entry)

    table = format_table(
        [
            "workload", "tiles", "ref t/s", "vec t/s", "fused t/s",
            "plan t/s", "shard2 t/s", "comp t/s", "vec/ref", "fused/vec",
            "comp/fused",
        ],
        rows,
        title=(
            "engine throughput — backend comparison (tiles/sec, "
            f"compiled jit={'on' if jit_active else 'off: NumPy fallback'})"
        ),
    )
    save_result("engine_throughput", table)
    (results_dir / "engine_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    _check_regression(trajectory)
    _append_trajectory(trajectory, quick)

    assert vec_speedups[("vgg16", "cifar10")] >= MIN_VGG16_SPEEDUP, (
        f"vectorized backend speedup {vec_speedups[('vgg16', 'cifar10')]:.2f}x "
        f"below the {MIN_VGG16_SPEEDUP}x contract on VGG-16"
    )
    assert fused_speedups[("vgg16", "cifar10")] >= MIN_FUSED_SPEEDUP, (
        f"fused backend speedup {fused_speedups[('vgg16', 'cifar10')]:.2f}x over "
        f"vectorized, below the {MIN_FUSED_SPEEDUP}x contract on VGG-16"
    )
    if jit_active:
        assert compiled_speedups[("vgg16", "cifar10")] >= MIN_COMPILED_SPEEDUP, (
            "compiled backend speedup "
            f"{compiled_speedups[('vgg16', 'cifar10')]:.2f}x over fused, "
            f"below the {MIN_COMPILED_SPEEDUP}x contract on VGG-16"
        )
    else:
        warnings.warn(
            "compiled backend ran as the NumPy fallback (jit_active=False): "
            f"the {MIN_COMPILED_SPEEDUP}x contract is only asserted where "
            "numba is installed and REPRO_NO_JIT is unset",
            stacklevel=1,
        )


def test_trace_planner_speedup(results_dir, request):
    """Trace-planned fused >= 1.5x over per-matrix fused on a
    multi-timestep trace (this PR's contract).

    The trace unrolls LeNet-5 over ``PLAN_TIME_STEPS`` timesteps with
    distinct matrix copies: exactly the small-workload regime where
    per-matrix batching underutilizes (every layer re-packs, re-dedups,
    and launches its own underfilled kernels) and where the planner's
    cross-workload buckets + global content dedup pay off. Numbers are
    recorded into the ``BENCH_engine.json`` trajectory alongside the
    single-trace grid, so the LeNet-vs-VGG throughput gap is chartable.
    """
    quick = request.config.getoption("--quick")
    repeats = 2 if quick else 4
    base = get_trace("lenet5", "mnist", preset="small")
    trace = _repeat_trace(base, PLAN_TIME_STEPS)
    matrix_run = _engine_run("fused")
    planned_run = _engine_run("fused", plan="trace")

    # Bit-identity first: planner records equal per-matrix fused records
    # on the unrolled trace, workload for workload.
    matrix_report = matrix_run(trace)
    planned_report = planned_run(trace)
    for mine, theirs in zip(planned_report.runs, matrix_report.runs):
        assert np.array_equal(mine.records, theirs.records), mine.name
    assert planned_report.dedup_ratio >= PLAN_TIME_STEPS * 0.9, (
        "unrolled timesteps should dedup to ~one copy, got "
        f"{planned_report.dedup_ratio:.2f}x"
    )

    matrix_seconds = _best_of(lambda: matrix_run(trace), repeats)
    plan_seconds = _best_of(lambda: planned_run(trace), repeats)
    if matrix_seconds / plan_seconds < MIN_PLAN_SPEEDUP:
        # Noisy-neighbor guard, as for the VGG-16 contracts.
        matrix_seconds = _best_of(lambda: matrix_run(trace), repeats + 3)
        plan_seconds = _best_of(lambda: planned_run(trace), repeats + 3)
    speedup = matrix_seconds / plan_seconds
    tiles = matrix_report.total_tiles
    workload = f"{trace.model}/{trace.dataset}"

    payload = {
        "workload": workload,
        "time_steps": PLAN_TIME_STEPS,
        "tiles": int(tiles),
        "fused_tiles_per_sec": tiles / matrix_seconds,
        "plan_tiles_per_sec": tiles / plan_seconds,
        "plan_speedup_vs_fused": speedup,
        "dedup_ratio": planned_report.dedup_ratio,
        "planned_profile": planned_report.profile,
    }
    (results_dir / "engine_planner.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    save_result(
        "engine_planner",
        format_table(
            ["workload", "tiles", "fused t/s", "plan t/s", "plan/fused", "dedup"],
            [[
                workload,
                tiles,
                f"{tiles / matrix_seconds:,.0f}",
                f"{tiles / plan_seconds:,.0f}",
                format_ratio(speedup),
                format_ratio(planned_report.dedup_ratio),
            ]],
            title=(
                "trace planner — multi-timestep trace "
                f"({PLAN_TIME_STEPS} timesteps, cross-workload dedup)"
            ),
        ),
    )
    # The reference backend is never timed on the unrolled trace, so
    # these rows are normalized against per-matrix fused instead — a
    # distinct field, so charts and the guard never mix normalizations.
    _append_trajectory(
        [
            {
                "workload": workload,
                "backend": "fused",
                "tiles": int(tiles),
                "tiles_per_sec": tiles / matrix_seconds,
            },
            {
                "workload": workload,
                "backend": "fused+plan",
                "tiles": int(tiles),
                "tiles_per_sec": tiles / plan_seconds,
                "speedup_vs_fused": speedup,
            },
        ],
        quick,
    )

    assert speedup >= MIN_PLAN_SPEEDUP, (
        f"trace planner speedup {speedup:.2f}x over per-matrix fused on "
        f"{workload}, below the {MIN_PLAN_SPEEDUP}x contract"
    )


def test_sharded_worker_sweep_equivalence(request, sharded_backend):
    """Workers in {1, 2, 4} produce bit-identical VGG-16 tile records."""
    trace = get_trace("vgg16", "cifar10", preset="small")
    reference_records = _reference_records(trace)
    quick = request.config.getoption("--quick")
    worker_counts = (2,) if quick else (1, 2, 4)
    for workers in worker_counts:
        backend = (
            sharded_backend if workers == 2 else ShardedBackend(workers=workers)
        )
        try:
            report = _engine_run(backend)(trace)
            _check_records(report, reference_records, f"sharded[{workers}]")
            assert report.workers == workers
        finally:
            if backend is not sharded_backend:
                backend.close()
