"""Engine throughput: reference vs vectorized backend, tiles per second.

This is the perf gate for the engine subsystem: every run re-checks that
the vectorized backend's tile records are bit-identical to the reference
oracle on each tier-1 workload, measures tiles/sec for both backends,
and asserts the vectorized backend's contract speedup (>= 3x on the
VGG-16 workload). Results land in ``benchmarks/results/`` as both a
rendered table and machine-readable JSON so CI can upload the perf
trajectory per PR (``pytest benchmarks/test_engine_throughput.py
--quick`` is the CI smoke mode: one repetition, VGG-16 only).
"""

from __future__ import annotations

import json
import time

import numpy as np

from benchmarks.conftest import save_result
from repro.analysis.report import format_ratio, format_table
from repro.core.prosparsity import transform_matrix
from repro.engine import ProsperityEngine
from repro.workloads import get_trace

#: Tier-1 workloads: the model/dataset pairs the test suite exercises.
TIER1_GRID = (
    ("vgg16", "cifar10"),
    ("lenet5", "mnist"),
    ("spikformer", "cifar10"),
)

#: Contract minimum for the vectorized backend on the VGG-16 workload.
MIN_VGG16_SPEEDUP = 3.0

TILE_M, TILE_K = 256, 16


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock over ``repeats`` runs (noise-robust timing)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _reference_records(trace) -> list[np.ndarray]:
    return [
        transform_matrix(
            w.spikes, TILE_M, TILE_K, keep_transforms=False
        ).tile_records
        for w in trace.workloads
    ]


def test_engine_throughput(results_dir, request):
    quick = request.config.getoption("--quick")
    grid = TIER1_GRID[:1] if quick else TIER1_GRID
    repeats = 1 if quick else 3

    rows = []
    payload = {"quick": quick, "tile_m": TILE_M, "tile_k": TILE_K}
    speedups = {}
    for model, dataset in grid:
        trace = get_trace(model, dataset, preset="small")

        # Correctness first: vectorized records must be bit-identical to
        # the reference oracle on every workload of the trace.
        reference_records = _reference_records(trace)
        engine = ProsperityEngine(
            backend="vectorized", tile_m=TILE_M, tile_k=TILE_K
        )
        report = engine.run(trace, batch=8)
        assert len(report.runs) == len(reference_records)
        for run, expected in zip(report.runs, reference_records):
            assert np.array_equal(run.records, expected), (
                f"{model}/{dataset}:{run.name} diverged from reference"
            )

        def _vectorized_run():
            ProsperityEngine(
                backend="vectorized", tile_m=TILE_M, tile_k=TILE_K
            ).run(trace, batch=8)

        ref_seconds = _best_of(lambda: _reference_records(trace), repeats)
        vec_seconds = _best_of(_vectorized_run, repeats)
        if (
            (model, dataset) == ("vgg16", "cifar10")
            and ref_seconds / vec_seconds < MIN_VGG16_SPEEDUP
        ):
            # Guard the contract assert against a noisy neighbor: one
            # re-measure with more repetitions before declaring failure.
            ref_seconds = _best_of(lambda: _reference_records(trace), repeats + 2)
            vec_seconds = _best_of(_vectorized_run, repeats + 2)
        tiles = report.total_tiles
        ref_tps = tiles / ref_seconds
        vec_tps = tiles / vec_seconds
        speedup = ref_seconds / vec_seconds
        speedups[(model, dataset)] = speedup
        rows.append(
            [
                f"{model}/{dataset}",
                tiles,
                f"{ref_tps:,.0f}",
                f"{vec_tps:,.0f}",
                format_ratio(speedup),
                f"{report.cache_hit_rate:.1%}",
            ]
        )
        payload[f"{model}/{dataset}"] = {
            "tiles": int(tiles),
            "reference_tiles_per_sec": ref_tps,
            "vectorized_tiles_per_sec": vec_tps,
            "speedup": speedup,
            "cache_hit_rate": report.cache_hit_rate,
        }

    table = format_table(
        ["workload", "tiles", "ref tiles/s", "vec tiles/s", "speedup", "cache hits"],
        rows,
        title="engine throughput — reference vs vectorized backend",
    )
    save_result("engine_throughput", table)
    (results_dir / "engine_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    assert speedups[("vgg16", "cifar10")] >= MIN_VGG16_SPEEDUP, (
        f"vectorized backend speedup {speedups[('vgg16', 'cifar10')]:.2f}x "
        f"below the {MIN_VGG16_SPEEDUP}x contract on VGG-16"
    )
