"""Engine throughput: reference vs vectorized vs fused vs sharded.

This is the perf gate for the engine subsystem. Every run re-checks that
the bulk backends' tile records are bit-identical to the reference
oracle on each tier-1 workload, measures tiles/sec per backend, and
asserts the contract speedups on VGG-16: the vectorized backend >= 3x
over the reference path (the PR 1 contract) and the fused tile-batched
backend >= 3x over the vectorized per-tile path (this PR's contract).
A sharded smoke (workers=2) checks multiprocess bit-identity on every
run.

Results land in ``benchmarks/results/`` (rendered table + JSON) and the
machine-readable perf trajectory is appended-to-by-overwrite at the repo
root as ``BENCH_engine.json`` — one entry per (workload, backend) with
tiles/sec and speedup — so CI can chart the trend across PRs.
(``pytest benchmarks/test_engine_throughput.py --quick`` is the CI smoke
mode: one repetition, VGG-16 only.)
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np
import pytest

from benchmarks.conftest import save_result
from repro.analysis.report import format_ratio, format_table
from repro.core.prosparsity import transform_matrix
from repro.engine import ProsperityEngine, ShardedBackend
from repro.workloads import get_trace

#: Tier-1 workloads: the model/dataset pairs the test suite exercises.
TIER1_GRID = (
    ("vgg16", "cifar10"),
    ("lenet5", "mnist"),
    ("spikformer", "cifar10"),
)

#: Contract minimum for the vectorized backend over reference on VGG-16.
MIN_VGG16_SPEEDUP = 3.0

#: Contract minimum for the fused backend over vectorized on VGG-16.
MIN_FUSED_SPEEDUP = 3.0

TILE_M, TILE_K = 256, 16

#: Perf-trajectory file (repo root) uploaded as a CI artifact per PR.
BENCH_TRAJECTORY = pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock over ``repeats`` runs (noise-robust timing)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _reference_records(trace) -> list[np.ndarray]:
    return [
        transform_matrix(
            w.spikes, TILE_M, TILE_K, keep_transforms=False
        ).tile_records
        for w in trace.workloads
    ]


def _engine_run(backend):
    """Fresh engine per repetition; ``backend`` may be a shared instance."""
    def run(trace):
        return ProsperityEngine(
            backend=backend, tile_m=TILE_M, tile_k=TILE_K
        ).run(trace, batch=8)

    return run


def _check_records(report, reference_records, label):
    assert len(report.runs) == len(reference_records)
    for run, expected in zip(report.runs, reference_records):
        assert np.array_equal(run.records, expected), (
            f"{label}:{run.name} diverged from reference"
        )


@pytest.fixture(scope="module")
def sharded_backend():
    """Persistent two-worker pool shared by the equivalence smoke."""
    backend = ShardedBackend(workers=2)
    yield backend
    backend.close()


def test_engine_throughput(results_dir, request, sharded_backend):
    quick = request.config.getoption("--quick")
    grid = TIER1_GRID[:1] if quick else TIER1_GRID
    repeats = 1 if quick else 3

    rows = []
    payload = {"quick": quick, "tile_m": TILE_M, "tile_k": TILE_K}
    trajectory = []
    vec_speedups = {}
    fused_speedups = {}
    for model, dataset in grid:
        trace = get_trace(model, dataset, preset="small")
        workload = f"{model}/{dataset}"

        # Correctness first: every bulk backend's records must be
        # bit-identical to the reference oracle on the whole trace.
        reference_records = _reference_records(trace)
        vectorized_run = _engine_run("vectorized")
        fused_run = _engine_run("fused")
        sharded_run = _engine_run(sharded_backend)
        report = vectorized_run(trace)
        _check_records(report, reference_records, f"vectorized:{workload}")
        fused_report = fused_run(trace)
        _check_records(fused_report, reference_records, f"fused:{workload}")
        shard_report = sharded_run(trace)
        _check_records(shard_report, reference_records, f"sharded:{workload}")

        ref_seconds = _best_of(lambda: _reference_records(trace), repeats)
        vec_seconds = _best_of(lambda: vectorized_run(trace), repeats)
        fused_seconds = _best_of(lambda: fused_run(trace), repeats)
        shard_seconds = _best_of(lambda: sharded_run(trace), repeats)
        if (model, dataset) == ("vgg16", "cifar10") and (
            ref_seconds / vec_seconds < MIN_VGG16_SPEEDUP
            or vec_seconds / fused_seconds < MIN_FUSED_SPEEDUP
        ):
            # Guard the contract asserts against a noisy neighbor: one
            # re-measure with more repetitions before declaring failure.
            ref_seconds = _best_of(lambda: _reference_records(trace), repeats + 2)
            vec_seconds = _best_of(lambda: vectorized_run(trace), repeats + 2)
            fused_seconds = _best_of(lambda: fused_run(trace), repeats + 2)
        tiles = report.total_tiles
        seconds = {
            "reference": ref_seconds,
            "vectorized": vec_seconds,
            "fused": fused_seconds,
            "sharded[2]": shard_seconds,
        }
        vec_speedups[(model, dataset)] = ref_seconds / vec_seconds
        fused_speedups[(model, dataset)] = vec_seconds / fused_seconds
        rows.append(
            [
                workload,
                tiles,
                *(f"{tiles / s:,.0f}" for s in seconds.values()),
                format_ratio(vec_speedups[(model, dataset)]),
                format_ratio(fused_speedups[(model, dataset)]),
            ]
        )
        payload[workload] = {
            "tiles": int(tiles),
            **{
                f"{name}_tiles_per_sec": tiles / s
                for name, s in seconds.items()
            },
            "vectorized_speedup_vs_reference": vec_speedups[(model, dataset)],
            "fused_speedup_vs_vectorized": fused_speedups[(model, dataset)],
            "cache_hit_rate": report.cache_hit_rate,
            "fused_profile": fused_report.profile,
        }
        for name, s in seconds.items():
            trajectory.append(
                {
                    "workload": workload,
                    "backend": name,
                    "tiles": int(tiles),
                    "tiles_per_sec": tiles / s,
                    "speedup_vs_reference": ref_seconds / s,
                }
            )

    table = format_table(
        [
            "workload", "tiles", "ref t/s", "vec t/s", "fused t/s",
            "shard2 t/s", "vec/ref", "fused/vec",
        ],
        rows,
        title="engine throughput — backend comparison (tiles/sec)",
    )
    save_result("engine_throughput", table)
    (results_dir / "engine_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    BENCH_TRAJECTORY.write_text(
        json.dumps(
            {"schema": 1, "quick": quick, "entries": trajectory}, indent=2
        )
        + "\n"
    )

    assert vec_speedups[("vgg16", "cifar10")] >= MIN_VGG16_SPEEDUP, (
        f"vectorized backend speedup {vec_speedups[('vgg16', 'cifar10')]:.2f}x "
        f"below the {MIN_VGG16_SPEEDUP}x contract on VGG-16"
    )
    assert fused_speedups[("vgg16", "cifar10")] >= MIN_FUSED_SPEEDUP, (
        f"fused backend speedup {fused_speedups[('vgg16', 'cifar10')]:.2f}x over "
        f"vectorized, below the {MIN_FUSED_SPEEDUP}x contract on VGG-16"
    )


def test_sharded_worker_sweep_equivalence(request, sharded_backend):
    """Workers in {1, 2, 4} produce bit-identical VGG-16 tile records."""
    trace = get_trace("vgg16", "cifar10", preset="small")
    reference_records = _reference_records(trace)
    quick = request.config.getoption("--quick")
    worker_counts = (2,) if quick else (1, 2, 4)
    for workers in worker_counts:
        backend = (
            sharded_backend if workers == 2 else ShardedBackend(workers=workers)
        )
        try:
            report = _engine_run(backend)(trace)
            _check_records(report, reference_records, f"sharded[{workers}]")
            assert report.workers == workers
        finally:
            if backend is not sharded_backend:
                backend.close()
