"""Fig. 10: Prosperity area and power breakdown.

Paper: area 0.529 mm^2 (buffers 0.303 dominate; Dispatcher 0.088 is the
largest logic block); power on Spikformer/CIFAR10 is 915 mW dominated by
DRAM (467.5 mW) and the always-searching TCAM Detector (268.6 mW), while
the Pruner is negligible (3.1 mW).
"""

import pytest

from benchmarks.conftest import MAX_TILES, save_result
from repro.analysis.report import format_table
from repro.arch.config import DEFAULT_CONFIG
from repro.arch.energy import area_model
from repro.arch.simulator import ProsperitySimulator
from repro.workloads import get_trace


def regenerate(rng):
    area = area_model(DEFAULT_CONFIG)
    trace = get_trace("spikformer", "cifar10", preset="paper")
    report = ProsperitySimulator(
        max_tiles_per_workload=MAX_TILES, rng=rng
    ).simulate(trace)
    seconds = report.seconds
    power_mw = {
        key: value * 1e-12 / seconds * 1e3
        for key, value in report.energy_breakdown_pj.items()
    }
    area_rows = [[name, f"{value:.3f}"] for name, value in area.as_dict().items()]
    area_rows.append(["TOTAL", f"{area.total:.3f}"])
    power_rows = [[name, f"{value:.1f}"] for name, value in power_mw.items()]
    power_rows.append(["TOTAL", f"{sum(power_mw.values()):.1f}"])
    table = (
        format_table(["component", "area mm2"], area_rows,
                     title="Fig. 10a — area breakdown (paper total 0.529 mm2)")
        + "\n\n"
        + format_table(["component", "power mW"], power_rows,
                       title="Fig. 10b — power on Spikformer/CIFAR10 "
                             "(paper total 915 mW, DRAM 467.5, detector 268.6)")
    )
    return table, area, power_mw


@pytest.mark.benchmark(group="fig10")
def test_fig10(benchmark, bench_rng):
    table, area, power_mw = benchmark.pedantic(
        regenerate, args=(bench_rng,), rounds=1, iterations=1
    )
    save_result("fig10_breakdown", table)
    # Area shape: total near 0.529 mm2; buffers dominate; Dispatcher is
    # the largest PPU logic block.
    assert area.total == pytest.approx(0.529, rel=0.1)
    assert area.buffers == max(area.as_dict().values())
    assert area.dispatcher > area.detector > area.pruner
    # Power shape (relaxed — see EXPERIMENTS.md): the Detector's TCAM is
    # a top on-chip consumer despite its small area, while the Pruner and
    # Dispatcher are negligible; buffers + datapath carry the rest.
    logic = {k: power_mw[k] for k in ("detector", "pruner", "dispatcher")}
    assert power_mw["detector"] == max(logic.values())
    assert power_mw["pruner"] < 0.1 * power_mw["detector"]
    assert power_mw["dispatcher"] < power_mw["detector"]
