"""Streaming throughput: sliding windows vs the batch planner path.

The acceptance contract for streaming inference (ISSUE 10): replaying a
workload trace through :class:`~repro.streaming.StreamRunner` — windows
packed into planner batches, tiles assembled at global matrix
boundaries, cross-window dedup through the shared forest cache — keeps
aggregate throughput >= ``MIN_STREAM_RATIO`` (0.8x) of the same trace
run through the batch trace planner. Streaming buys incremental,
bounded-latency results; this gate pins how much of the batch path's
throughput that costs. Bit-identity between the two paths is asserted
on every run before anything is timed.

Numbers are appended to the ``BENCH_engine.json`` trajectory (backends
``batch-plan`` / ``stream[w<window>]``) under the same regression guard
as the engine grid; ``--quick`` swaps VGG-16 for LeNet-5 in the CI
smoke.
"""

from __future__ import annotations

import json

import numpy as np

from benchmarks.conftest import save_result
from benchmarks.test_engine_throughput import (
    _append_trajectory,
    _best_of,
    _check_regression,
)
from repro.analysis.report import format_ratio, format_table
from repro.api import RunConfig, Session

#: Contract minimum: streamed tiles/sec over batch-planner tiles/sec on
#: the same replayed trace (the ISSUE 10 acceptance bar).
MIN_STREAM_RATIO = 0.8

#: Window geometry for the measured stream (timesteps per planner batch).
WINDOW = 2


def _stream_config(model: str, dataset: str) -> RunConfig:
    return RunConfig().with_overrides({
        "workload.model": model,
        "workload.dataset": dataset,
        "engine.backend": "fused",
        "engine.plan": "trace",
        "streaming.window": WINDOW,
    })


def _drain(generator):
    chunks = []
    while True:
        try:
            chunks.append(next(generator))
        except StopIteration as stop:
            return chunks, stop.value


def test_stream_throughput(results_dir, request):
    quick = request.config.getoption("--quick")
    model, dataset = ("lenet5", "mnist") if quick else ("vgg16", "cifar10")
    repeats = 1 if quick else 3
    config = _stream_config(model, dataset)
    workload = f"{model}/{dataset}"

    # Bit-identity first: the streamed records must equal the batch
    # planner's, workload for workload, before any timing is believed.
    with Session(config) as session:
        batch_report = session.run().report
        chunks, stream_result = _drain(session.stream_source())
    batch_records = {run.name: run.records for run in batch_report.runs}
    for run in stream_result.report.runs:
        assert np.array_equal(run.records, batch_records[run.name]), run.name

    # Fresh session per repetition: both paths start from a cold forest
    # cache, so the comparison is planner-vs-planner, not warm-vs-cold.
    def batch_run():
        with Session(config) as session:
            return session.run()

    def stream_run():
        with Session(config) as session:
            return _drain(session.stream_source())

    batch_seconds = _best_of(batch_run, repeats)
    stream_seconds = _best_of(stream_run, repeats)
    if stream_seconds > batch_seconds / MIN_STREAM_RATIO:
        # Noisy-neighbor guard, as for the engine contracts.
        batch_seconds = _best_of(batch_run, repeats + 2)
        stream_seconds = _best_of(stream_run, repeats + 2)

    tiles = batch_report.total_tiles
    ratio = batch_seconds / stream_seconds
    payload = {
        "workload": workload,
        "window": WINDOW,
        "windows": stream_result.windows,
        "steps": stream_result.steps,
        "tiles": int(tiles),
        "batch_tiles_per_sec": tiles / batch_seconds,
        "stream_tiles_per_sec": tiles / stream_seconds,
        "stream_vs_batch": ratio,
        "stream_dedup_ratio": stream_result.dedup_ratio,
    }
    (results_dir / "stream_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    save_result(
        "stream_throughput",
        format_table(
            ["workload", "tiles", "windows", "batch t/s", "stream t/s",
             "stream/batch", "dedup"],
            [[
                workload,
                tiles,
                stream_result.windows,
                f"{tiles / batch_seconds:,.0f}",
                f"{tiles / stream_seconds:,.0f}",
                format_ratio(ratio),
                format_ratio(stream_result.dedup_ratio),
            ]],
            title=(
                f"streaming throughput — window={WINDOW} sliding windows "
                "vs batch trace planner"
            ),
        ),
    )
    entries = [
        {
            "workload": workload,
            "backend": "batch-plan",
            "tiles": int(tiles),
            "tiles_per_sec": tiles / batch_seconds,
        },
        {
            "workload": workload,
            "backend": f"stream[w{WINDOW}]",
            "tiles": int(tiles),
            "tiles_per_sec": tiles / stream_seconds,
        },
    ]
    _check_regression(entries)
    _append_trajectory(entries, quick)

    assert ratio >= MIN_STREAM_RATIO, (
        f"streaming throughput {ratio:.2f}x of the batch planner on "
        f"{workload}, below the {MIN_STREAM_RATIO}x contract"
    )
