"""Table II: one-prefix vs two-prefix ProSparsity.

Paper: SpikingBERT SST-2 — bit 20.49%, one-prefix 2.98% (56% x1),
two-prefix 2.30% (53% x1 + 3% x2); VGG-16 CIFAR100 — bit 34.21%,
one-prefix 2.79% (26% x1), two-prefix 1.97% (20% x1 + 6% x2).
The conclusion under test: the first prefix captures most of the
reduction, so the architecture keeps exactly one prefix per row.
"""

import pytest

from benchmarks.conftest import save_result
from repro.analysis.density import two_prefix_report
from repro.analysis.report import format_percent, format_table
from repro.workloads import get_trace


def regenerate(rng):
    reports = []
    for model, dataset in (("spikingbert", "sst2"), ("vgg16", "cifar100")):
        trace = get_trace(model, dataset, preset="paper")
        reports.append(
            two_prefix_report(trace, max_tiles_per_workload=4, rng=rng)
        )
    rows = [
        [
            f"{r.model}/{r.dataset}",
            format_percent(r.bit_density),
            format_percent(r.one_prefix_density),
            format_percent(r.two_prefix_density),
            format_percent(r.one_prefix_ratio),
            format_percent(r.two_prefix_ratio),
        ]
        for r in reports
    ]
    table = format_table(
        ["workload", "bit", "1-prefix", "2-prefix", "x1 rows", "x2 rows"],
        rows,
        title="Table II — one- vs two-prefix ProSparsity "
        "(paper: 2.98%/2.30% and 2.79%/1.97%)",
    )
    return table, reports


@pytest.mark.benchmark(group="table2")
def test_table2(benchmark, bench_rng):
    table, reports = benchmark.pedantic(
        regenerate, args=(bench_rng,), rounds=1, iterations=1
    )
    save_result("table2_two_prefix", table)
    for report in reports:
        # Two-prefix helps, but only marginally vs the first prefix.
        assert report.two_prefix_density <= report.one_prefix_density
        one_gain = report.bit_density - report.one_prefix_density
        extra_gain = report.one_prefix_density - report.two_prefix_density
        assert extra_gain < 0.5 * one_gain
        # A minority of rows can employ a second (disjoint) prefix.
        assert report.two_prefix_ratio < report.one_prefix_ratio
