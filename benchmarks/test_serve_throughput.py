"""Network serving throughput: thousands of jobs through the wire path.

The acceptance contract for the serving front end (ISSUE 9): a mixed
tenant/priority flood of jobs submitted through real sockets —
:class:`~repro.api.ServeClient` connections into a live
:class:`~repro.server.ReproServer` — still engages the scheduler's
coalescing, delivering aggregate throughput >= 2x the same jobs run
serially through ``Session.run()``. The HTTP layer adds threads and
JSON framing, but each coalesce window still merges the concurrent
requests into one planner batch, so product-sparsity dedup keeps
working across tenants exactly as it does in-process.

Numbers are appended to the ``BENCH_engine.json`` trajectory (workload
``lenet5/mnist[serveN]``, backends ``session-serial`` /
``serve-coalesced``) under the same regression guard as the engine
grid; ``--quick`` shrinks the flood for the CI smoke.
"""

from __future__ import annotations

import json
import threading
import time

from benchmarks.conftest import save_result
from benchmarks.test_engine_throughput import _append_trajectory, _best_of
from repro.analysis.report import format_ratio, format_table
from repro.api import RunConfig, ServeClient, Session
from repro.server import ReproServer
from repro.workloads import get_trace

#: Contract minimum: aggregate wire-path throughput over serial Session
#: runs (the ISSUE 9 acceptance bar).
MIN_SERVE_SPEEDUP = 2.0

#: Total jobs pushed through the server (full mode).
N_JOBS = 2048

#: Concurrent client connections (each its own thread + ServeClient).
N_CLIENTS = 16

#: Serial Session runs timed to establish the per-job baseline.
SERIAL_SAMPLE = 32

TENANTS = ("acme", "globex", "initech")
PRIORITIES = ("interactive", "batch")


def _serving_config() -> RunConfig:
    return RunConfig().with_overrides({
        "workload.model": "lenet5",
        "workload.dataset": "mnist",
        "engine.backend": "fused",
        "engine.plan": "trace",
        # Wide enough that one wave of concurrent requests lands in one
        # window, small enough that the window itself stays off the
        # measured throughput.
        "scheduler.coalesce_window_ms": 5.0,
    })


def _run_serial_sample(config: RunConfig) -> None:
    """The baseline: each client request pays its own Session run."""
    for _ in range(SERIAL_SAMPLE):
        with Session(config) as session:
            session.run()


def _run_wire_flood(config: RunConfig, jobs: int) -> tuple[float, dict]:
    """All jobs through real sockets; returns (seconds, /metrics doc)."""
    per_client = jobs // N_CLIENTS
    errors: list[BaseException] = []
    with ReproServer(config) as server:
        barrier = threading.Barrier(N_CLIENTS)

        def client(slot: int) -> None:
            try:
                with ServeClient(server.url, timeout=600.0) as conn:
                    barrier.wait()
                    for index in range(per_client):
                        conn.submit(
                            "run",
                            tenant=TENANTS[(slot + index) % len(TENANTS)],
                            priority=PRIORITIES[index % len(PRIORITIES)],
                            records="digest",
                        )
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(slot,))
            for slot in range(N_CLIENTS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        assert not errors, errors[:3]
        with ServeClient(server.url) as conn:
            metrics = conn.metrics()
    return elapsed, metrics


def test_serve_wire_throughput(results_dir, request):
    quick = request.config.getoption("--quick")
    repeats = 1 if quick else 3
    jobs = 256 if quick else N_JOBS
    jobs -= jobs % N_CLIENTS
    config = _serving_config()
    workload_cfg = config.workload
    # Build the trace once up front so neither side pays tracing time.
    get_trace(workload_cfg.model, workload_cfg.dataset,
              workload_cfg.preset, workload_cfg.seed)
    with Session(config) as session:
        tiles_per_job = session.run().report.total_tiles

    serial_seconds = _best_of(lambda: _run_serial_sample(config), repeats)
    wire_seconds, metrics = _run_wire_flood(config, jobs)

    serial_tps = SERIAL_SAMPLE * tiles_per_job / serial_seconds
    wire_tps = jobs * tiles_per_job / wire_seconds
    if wire_tps / serial_tps < MIN_SERVE_SPEEDUP:
        # Noisy-neighbor guard, as for the engine-grid contracts.
        serial_seconds = _best_of(
            lambda: _run_serial_sample(config), repeats + 2
        )
        wire_seconds, metrics = _run_wire_flood(config, jobs)
        serial_tps = SERIAL_SAMPLE * tiles_per_job / serial_seconds
        wire_tps = jobs * tiles_per_job / wire_seconds
    speedup = wire_tps / serial_tps

    # The flood must have exercised the serving semantics end to end:
    # every request answered 200, coalescing engaged (far fewer planner
    # batches than jobs), and the shared batches deduped across tenants.
    stats = metrics["scheduler"]
    assert metrics["server"]["requests_by_status"] == {"200": jobs}
    assert stats["jobs_submitted"] == jobs
    assert stats["jobs_by_tenant"].keys() >= set(TENANTS)
    assert stats["batches"] < jobs / 2, (
        f"{stats['batches']} planner batches for {jobs} jobs — "
        "coalescing did not engage over the wire"
    )
    assert metrics["server"]["dedup"]["best_ratio"] > 1.0

    workload = f"{workload_cfg.model}/{workload_cfg.dataset}[serve{jobs}]"
    payload = {
        "workload": workload,
        "jobs": jobs,
        "clients": N_CLIENTS,
        "tiles_per_job": int(tiles_per_job),
        "serial_tiles_per_sec": serial_tps,
        "wire_tiles_per_sec": wire_tps,
        "serve_speedup_vs_serial": speedup,
        "planner_batches": stats["batches"],
        "best_dedup_ratio": metrics["server"]["dedup"]["best_ratio"],
        "mean_request_ms": metrics["server"]["latency_ms"]["all"]["mean_ms"],
    }
    (results_dir / "serve_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    save_result(
        "serve_throughput",
        format_table(
            ["workload", "jobs", "clients", "serial t/s", "wire t/s",
             "speedup", "batches", "mean ms"],
            [[
                workload,
                jobs,
                N_CLIENTS,
                f"{serial_tps:,.0f}",
                f"{wire_tps:,.0f}",
                format_ratio(speedup),
                stats["batches"],
                f"{payload['mean_request_ms']:.1f}",
            ]],
            title=(
                "network serving — mixed-tenant flood through real "
                f"sockets vs serial Session runs ({N_CLIENTS} clients)"
            ),
        ),
    )
    # Normalized against serial fused Session runs — recorded under the
    # speedup_vs_fused field so the regression guard compares like for
    # like (the reference backend is never timed here).
    _append_trajectory(
        [
            {
                "workload": workload,
                "backend": "session-serial",
                "tiles": int(jobs * tiles_per_job),
                "tiles_per_sec": serial_tps,
            },
            {
                "workload": workload,
                "backend": "serve-coalesced",
                "tiles": int(jobs * tiles_per_job),
                "tiles_per_sec": wire_tps,
                "speedup_vs_fused": speedup,
            },
        ],
        quick,
    )

    assert speedup >= MIN_SERVE_SPEEDUP, (
        f"wire-path serving speedup {speedup:.2f}x over serial "
        f"Session.run() on {workload}, below the "
        f"{MIN_SERVE_SPEEDUP}x contract"
    )
