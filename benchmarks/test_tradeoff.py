"""Sec. VII-G: cost trade-off of ProSparsity processing.

Paper: TCAM bit-ops (m^2 k per tile) vs saved accumulations
(dS * m * k * n), with one accumulate worth 45 TCAM bit-ops; break-even
dS = 4.4%, and at the measured average dS = 13.35% the benefit-cost
ratio is 3.0x.
"""

import pytest

from benchmarks.conftest import MAX_TILES, save_result
from repro.analysis.density import trace_prosparsity_stats
from repro.analysis.report import format_table
from repro.analysis.tradeoff import breakeven_sparsity_increase, evaluate_tradeoff
from repro.workloads import get_trace

WORKLOADS = (("vgg16", "cifar100"), ("spikformer", "cifar10"), ("spikebert", "sst2"))


def regenerate(rng):
    breakeven = breakeven_sparsity_increase()
    rows = [["(paper operating point)", "13.35%", f"{evaluate_tradeoff(0.1335).benefit_cost_ratio:.2f}x", "yes"]]
    measured = []
    for model, dataset in WORKLOADS:
        trace = get_trace(model, dataset, preset="paper")
        stats = trace_prosparsity_stats(trace, max_tiles=MAX_TILES, rng=rng)
        ds = stats.bit_density - stats.product_density
        result = evaluate_tradeoff(ds)
        measured.append(result)
        rows.append(
            [
                f"{model}/{dataset}",
                f"{ds * 100:.2f}%",
                f"{result.benefit_cost_ratio:.2f}x",
                "yes" if result.profitable else "no",
            ]
        )
    table = format_table(
        ["workload", "sparsity increase dS", "benefit/cost", "profitable"],
        rows,
        title=f"Sec. VII-G — cost trade-off (break-even dS = "
        f"{breakeven * 100:.1f}%, paper 4.4%)",
    )
    return table, breakeven, measured


@pytest.mark.benchmark(group="tradeoff")
def test_tradeoff(benchmark, bench_rng):
    table, breakeven, measured = benchmark.pedantic(
        regenerate, args=(bench_rng,), rounds=1, iterations=1
    )
    save_result("tradeoff", table)
    assert breakeven == pytest.approx(0.0444, abs=1e-3)
    # Every evaluated workload clears the break-even threshold.
    assert all(result.profitable for result in measured)
