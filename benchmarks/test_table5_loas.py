"""Table V: ProSparsity on LoAS dual-sparse (weight-pruned) SNNs.

Paper: AlexNet 29.32% -> 9.12% (3.21x), VGG-16 31.07% -> 7.68% (4.05x),
ResNet-19 35.68% -> 6.96% (5.13x) activation density, with weights pruned
to 1.8%/1.8%/4.0%. ProSparsity is orthogonal to weight pruning: the
activation-side reduction carries over unchanged.
"""

import pytest

from benchmarks.conftest import MAX_TILES, save_result
from repro.analysis.report import format_percent, format_ratio, format_table
from repro.baselines import LOAS_WEIGHT_DENSITY, activation_density_with_prosparsity
from repro.workloads import get_trace

MODELS = (("alexnet", "cifar10"), ("vgg16", "cifar10"), ("resnet19", "cifar10"))


def regenerate(rng):
    rows = []
    results = []
    for model, dataset in MODELS:
        trace = get_trace(model, dataset, preset="paper")
        bit, pro = activation_density_with_prosparsity(
            trace, max_tiles=MAX_TILES, rng=rng
        )
        weight_density = LOAS_WEIGHT_DENSITY[model]
        rows.append(
            [
                model,
                format_percent(weight_density),
                format_percent(bit),
                format_percent(pro),
                format_ratio(bit / pro),
            ]
        )
        results.append((model, bit, pro))
    table = format_table(
        ["model", "weight density", "activation (LoAS)", "+Prosperity", "ratio"],
        rows,
        title="Table V — LoAS dual-side sparsity + ProSparsity "
        "(paper ratios 3.21x / 4.05x / 5.13x)",
    )
    return table, results


@pytest.mark.benchmark(group="table5")
def test_table5(benchmark, bench_rng):
    table, results = benchmark.pedantic(
        regenerate, args=(bench_rng,), rounds=1, iterations=1
    )
    save_result("table5_loas", table)
    for model, bit, pro in results:
        # ProSparsity reduces the activation side severalfold on every
        # pruned model (paper average 4.1x).
        assert bit / pro > 2.0, model
