"""Fig. 8: end-to-end speedup and energy efficiency across 16 workloads.

Paper geomeans (vs Eyeriss baseline): Prosperity 7.4x over PTB and 1.8x
over A100 in speedup; 8.0x and 193x in energy efficiency. Prior SNN
ASICs run only the linear layers of spiking transformers (Sec. VII-A);
the GPU and Prosperity run the full models.
"""

import pytest

from benchmarks.conftest import MAX_TILES, save_result
from repro.analysis.report import format_table
from repro.arch.report import geometric_mean
from repro.arch.simulator import ProsperitySimulator
from repro.baselines import BASELINES
from repro.workloads import FIG8_GRID, get_trace

ACCELERATORS = ("eyeriss", "ptb", "sato", "mint", "a100")


def regenerate(rng):
    speedups: dict[str, list[float]] = {name: [] for name in (*ACCELERATORS, "prosperity")}
    energy_gains: dict[str, list[float]] = {name: [] for name in (*ACCELERATORS, "prosperity")}
    rows = []
    for model, dataset in FIG8_GRID:
        trace = get_trace(model, dataset, preset="paper")
        reports = {name: BASELINES[name]().simulate(trace) for name in ACCELERATORS}
        reports["prosperity"] = ProsperitySimulator(
            max_tiles_per_workload=MAX_TILES, rng=rng
        ).simulate(trace)
        base = reports["eyeriss"]
        row = [f"{model}/{dataset}"]
        for name in (*ACCELERATORS, "prosperity"):
            speedup = base.seconds / reports[name].seconds
            gain = base.energy_j / reports[name].energy_j
            speedups[name].append(speedup)
            energy_gains[name].append(gain)
            row.append(f"{speedup:.2f}/{gain:.1f}")
        rows.append(row)
    rows.append(
        ["GEOMEAN"]
        + [
            f"{geometric_mean(speedups[name]):.2f}/{geometric_mean(energy_gains[name]):.1f}"
            for name in (*ACCELERATORS, "prosperity")
        ]
    )
    table = format_table(
        ["workload"] + [f"{n} (spd/EE)" for n in (*ACCELERATORS, "prosperity")],
        rows,
        title="Fig. 8 — speedup / energy-efficiency gain vs Eyeriss "
        "(paper geomean: Prosperity 7.4x over PTB, 1.8x over A100)",
    )
    return table, speedups, energy_gains


@pytest.mark.benchmark(group="fig8")
def test_fig8(benchmark, bench_rng):
    table, speedups, energy_gains = benchmark.pedantic(
        regenerate, args=(bench_rng,), rounds=1, iterations=1
    )
    save_result("fig8_end_to_end", table)
    pro_speed = geometric_mean(speedups["prosperity"])
    ptb_speed = geometric_mean(speedups["ptb"])
    a100_speed = geometric_mean(speedups["a100"])
    # Headline shape claims: Prosperity is the fastest ASIC by a wide
    # margin over PTB and competitive-or-better against the A100.
    assert pro_speed / ptb_speed > 3.0
    assert pro_speed / a100_speed > 1.0
    # Energy: Prosperity leads every baseline; the GPU is orders of
    # magnitude behind (paper: 193x).
    pro_energy = geometric_mean(energy_gains["prosperity"])
    assert pro_energy == max(geometric_mean(v) for v in energy_gains.values())
    assert pro_energy / geometric_mean(energy_gains["a100"]) > 50.0
