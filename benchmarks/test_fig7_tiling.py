"""Fig. 7: tiling design-space exploration.

Paper findings: larger m always lowers product density (more prefix
scope) but area/power grow super-linearly; k has an interior optimum
(k=16) because very wide rows rarely nest and very narrow rows carry
<2 spikes. The selected configuration is m=256, k=16.
"""

import pytest

from benchmarks.conftest import save_result
from repro.analysis.report import format_table
from repro.analysis.sweep import sweep_tile_sizes
from repro.workloads import get_trace

M_VALUES = (32, 64, 128, 256, 512, 1024)
K_VALUES = (4, 8, 16, 32, 64, 128)


def regenerate(rng):
    traces = [
        get_trace("vgg16", "cifar100", preset="paper"),
        get_trace("sdt", "cifar10", preset="paper"),
    ]
    m_sweep, k_sweep = sweep_tile_sizes(
        traces, m_values=M_VALUES, k_values=K_VALUES, max_tiles=10, rng=rng
    )

    def rows(points):
        return [
            [
                p.tile_m, p.tile_k,
                f"{p.product_density * 100:.2f}%",
                f"{p.latency_vs_bit:.3f}",
                f"{p.area_mm2:.3f}",
                f"{p.relative_power_proxy:.2f}",
            ]
            for p in points
        ]

    headers = ["m", "k", "pro density", "latency vs bit", "area mm2", "power proxy"]
    table = (
        format_table(headers, rows(m_sweep), title="Fig. 7 (left) — sweep tile m (k=16)")
        + "\n\n"
        + format_table(headers, rows(k_sweep), title="Fig. 7 (right) — sweep tile k (m=256)")
    )
    return table, m_sweep, k_sweep


@pytest.mark.benchmark(group="fig7")
def test_fig7(benchmark, bench_rng):
    table, m_sweep, k_sweep = benchmark.pedantic(
        regenerate, args=(bench_rng,), rounds=1, iterations=1
    )
    save_result("fig7_tiling", table)
    # Larger m -> monotonically lower (or equal) product density.
    densities = [p.product_density for p in m_sweep]
    assert densities[-1] < densities[0]
    assert all(b <= a * 1.05 for a, b in zip(densities, densities[1:]))
    # Area grows super-linearly in m.
    areas = [p.area_mm2 for p in m_sweep]
    assert areas[-1] / areas[-2] > areas[1] / areas[0]
    # k has an interior optimum: k=16's density beats both extremes.
    by_k = {p.tile_k: p.product_density for p in k_sweep}
    assert by_k[16] <= by_k[128]
    # Prosperity beats bit sparsity at the chosen configuration.
    chosen = next(p for p in m_sweep if p.tile_m == 256)
    assert chosen.latency_vs_bit < 1.0
