"""Persistent result store: warm-hit speedup and cold overhead (ISSUE 8).

Two wall-clocks per configuration, because the async writer splits the
cost in two:

* **run** — what the caller waits for (``engine.run`` returns; puts
  are buffered and publishing overlaps the idle time that follows).
* **run+drain** — run plus ``store.close()``: the writer publishes and
  fsyncs every entry, i.e. the full cost of turning an empty store
  into a durable one.

Contracts: a *warm* VGG-16 run (every tile content already published)
beats the cold **populate-to-durable** cost by at least
``MIN_WARM_SPEEDUP`` — reading checksummed records must decisively
beat recomputing *and durably persisting* them, else the store is
pointless — and the cold **run** stays within ``MAX_COLD_OVERHEAD`` of
store-off, because the hot path only buffers (no IO, no fsync).

Every timed configuration is bit-identical to the reference transform;
numbers land in ``BENCH_engine.json`` under the shared regression
guard, keyed as ``fused+store[cold]`` / ``fused+store[warm]``.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from pathlib import Path

import numpy as np

from repro.analysis.report import format_ratio, format_table
from repro.engine import ProsperityEngine
from repro.engine.store import ResultStore
from repro.workloads import get_trace

from benchmarks.conftest import save_result
from benchmarks.test_engine_throughput import (
    TILE_K,
    TILE_M,
    _append_trajectory,
    _best_of,
    _check_regression,
    _reference_records,
)

#: Warm store must at least halve the cold populate-to-durable
#: wall-clock (run + writer drain) on VGG-16.
MIN_WARM_SPEEDUP = 2.0

#: Cold-with-store wall-clock may exceed store-off by at most this
#: factor (async publishes keep fsync off the kernel hot path).
MAX_COLD_OVERHEAD = 1.10


def _store_run(trace, store_path):
    """One engine run against a fresh store handle + fresh memory tier.

    Returns both the caller-visible run wall-clock and the run+drain
    wall-clock (``store.close()`` included — publishes + fsync landed).
    """
    store = ResultStore(store_path)
    engine = ProsperityEngine(
        backend="fused", tile_m=TILE_M, tile_k=TILE_K, store=store
    )
    started = time.perf_counter()
    report = engine.run(trace, batch=8)
    run_seconds = time.perf_counter() - started
    store.close()
    total_seconds = time.perf_counter() - started
    return report, run_seconds, total_seconds


def _best_store_run(trace, store_path, repeats, cold=False):
    best_run, best_total, last_report = float("inf"), float("inf"), None
    for _ in range(repeats):
        if cold:
            shutil.rmtree(store_path, ignore_errors=True)
        last_report, run_seconds, total_seconds = _store_run(trace, store_path)
        best_run = min(best_run, run_seconds)
        best_total = min(best_total, total_seconds)
    return last_report, best_run, best_total


def test_store_throughput(results_dir, request):
    quick = request.config.getoption("--quick")
    repeats = 1 if quick else 3
    trace = get_trace("vgg16", "cifar10", preset="small")
    workload = f"{trace.model}/{trace.dataset}"
    store_path = results_dir / "_store_bench"
    shutil.rmtree(store_path, ignore_errors=True)

    reference_records = _reference_records(trace)

    def check(report, label):
        for run, expected in zip(report.runs, reference_records):
            assert np.array_equal(run.records, expected), (
                f"{label}:{run.name} diverged from reference"
            )

    def off_run(trace):
        return ProsperityEngine(
            backend="fused", tile_m=TILE_M, tile_k=TILE_K
        ).run(trace, batch=8)

    check(off_run(trace), "store-off")
    off_seconds = _best_of(lambda: off_run(trace), repeats)

    cold_report, cold_seconds, cold_total = _best_store_run(
        trace, store_path, repeats, cold=True
    )
    check(cold_report, "store-cold")
    assert cold_report.store_misses > 0 and cold_report.store_hits == 0

    # Warm store: ``REPRO_BENCH_STORE`` points at a directory that CI
    # caches across runs (genuinely cross-run warm); locally the store
    # the cold reps just populated serves. One unmeasured run tops the
    # persistent store up — a pure-hit no-op when the cache restored a
    # full one.
    persist = os.environ.get("REPRO_BENCH_STORE")
    warm_path = Path(persist) if persist else store_path
    _store_run(trace, warm_path)
    warm_report, warm_seconds, warm_total = _best_store_run(
        trace, warm_path, repeats
    )
    check(warm_report, "store-warm")
    assert warm_report.store_hits > 0, "warm run never touched the store"
    assert warm_report.store_corrupt == 0

    if (
        cold_total / warm_total < MIN_WARM_SPEEDUP
        or cold_seconds > off_seconds * MAX_COLD_OVERHEAD
    ):
        # Noisy-neighbor guard (same pattern as the engine grid): one
        # re-measure with more repetitions before declaring failure.
        off_seconds = _best_of(lambda: off_run(trace), repeats + 2)
        cold_report, cold_seconds, cold_total = _best_store_run(
            trace, store_path, repeats + 2, cold=True
        )
        warm_report, warm_seconds, warm_total = _best_store_run(
            trace, warm_path, repeats + 2
        )

    tiles = cold_report.total_tiles
    warm_speedup = cold_total / warm_total
    cold_overhead = cold_seconds / off_seconds
    rows = [
        ["store off", f"{tiles / off_seconds:,.0f}", "-", "-", "-"],
        [
            "store cold",
            f"{tiles / cold_seconds:,.0f}",
            format_ratio(off_seconds / cold_seconds),
            f"{cold_total * 1000:,.0f} ms",
            f"{cold_report.store_misses} misses",
        ],
        [
            "store warm",
            f"{tiles / warm_seconds:,.0f}",
            format_ratio(off_seconds / warm_seconds),
            f"{warm_total * 1000:,.0f} ms",
            f"{warm_report.store_hits} hits",
        ],
    ]
    table = format_table(
        ["configuration", "tiles/sec", "vs store-off", "run+drain", "store traffic"],
        rows,
        title=(
            f"persistent store — {workload} fused, warm {warm_speedup:.2f}x "
            f"over cold populate, cold run overhead {cold_overhead:.2f}x"
        ),
    )
    save_result("store_throughput", table)
    (results_dir / "store_throughput.json").write_text(
        json.dumps(
            {
                "workload": workload,
                "tiles": int(tiles),
                "store_off_tiles_per_sec": tiles / off_seconds,
                "cold_tiles_per_sec": tiles / cold_seconds,
                "warm_tiles_per_sec": tiles / warm_seconds,
                "cold_run_plus_drain_sec": cold_total,
                "warm_run_plus_drain_sec": warm_total,
                "warm_speedup_vs_cold_populate": warm_speedup,
                "cold_run_overhead_vs_off": cold_overhead,
                "quick": quick,
            },
            indent=2,
        )
        + "\n"
    )
    entries = [
        {
            "workload": workload,
            "backend": "fused+store[cold]",
            "tiles": int(tiles),
            "tiles_per_sec": tiles / cold_seconds,
            "speedup_vs_fused": off_seconds / cold_seconds,
        },
        {
            "workload": workload,
            "backend": "fused+store[warm]",
            "tiles": int(tiles),
            "tiles_per_sec": tiles / warm_seconds,
            "speedup_vs_fused": off_seconds / warm_seconds,
        },
    ]
    _check_regression(entries)
    _append_trajectory(entries, quick)
    shutil.rmtree(store_path, ignore_errors=True)

    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"warm store only {warm_speedup:.2f}x over cold populate-to-durable "
        f"on {workload}, below the {MIN_WARM_SPEEDUP}x contract"
    )
    assert cold_overhead <= MAX_COLD_OVERHEAD, (
        f"cold-with-store run cost {cold_overhead:.2f}x of store-off on "
        f"{workload}, above the {MAX_COLD_OVERHEAD}x budget"
    )
