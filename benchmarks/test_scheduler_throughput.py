"""Serving-scheduler throughput: coalesced micro-batches vs serial runs.

The acceptance contract for the concurrent serving API (ISSUE 5): eight
small-workload jobs coalesced through one :class:`~repro.api.Scheduler`
batch deliver >= 1.3x the aggregate tiles/sec of the same jobs run
serially through ``Session.run()`` — and every job's records stay
bit-identical to its serial run. The speedup is product sparsity at
serving scope: one planner batch dedups identical tiles across *all*
clients (a cross-request dedup ratio near the job count here), so the
shared kernel computes each distinct tile once for everyone.

Numbers are appended to the ``BENCH_engine.json`` trajectory (workload
``lenet5/mnist[jobs8]``, backends ``session-serial`` /
``scheduler-coalesced``) under the same regression guard as the engine
grid; ``--quick`` runs one repetition for the CI smoke.
"""

from __future__ import annotations

import json
import time

import numpy as np

from benchmarks.conftest import save_result
from benchmarks.test_engine_throughput import _append_trajectory, _best_of
from repro.analysis.report import format_ratio, format_table
from repro.api import Job, RunConfig, Scheduler, Session
from repro.engine import faults
from repro.workloads import get_trace

#: Contract minimum: coalesced aggregate throughput over serial Session
#: runs for N_JOBS small-workload jobs (this PR's acceptance bar).
MIN_COALESCE_SPEEDUP = 1.3

#: Concurrent client requests per batch.
N_JOBS = 8

#: Contract maximum: fraction of a coalesced batch the disabled fault
#: hooks may cost (ISSUE 7's resilience-overhead bar).
MAX_RESILIENCE_OVERHEAD = 0.02


def _serving_config() -> RunConfig:
    return RunConfig().with_overrides({
        "workload.model": "lenet5",
        "workload.dataset": "mnist",
        "engine.backend": "fused",
        "engine.plan": "trace",
        # submit_many() enqueues atomically, so one batch is guaranteed
        # without widening the coalescing window; a tiny window keeps the
        # serving latency out of the measured kernel time.
        "scheduler.coalesce_window_ms": 1.0,
    })


def _run_serial(config: RunConfig) -> list:
    """The baseline: each client request pays its own Session run."""
    results = []
    for _ in range(N_JOBS):
        with Session(config) as session:
            results.append(session.run())
    return results


def _run_coalesced(config: RunConfig) -> tuple[list, int, int]:
    """All requests through one scheduler: one batch, shared dedup."""
    with Scheduler(config) as scheduler:
        handles = scheduler.submit_many(
            [Job(config=config) for _ in range(N_JOBS)]
        )
        results = [handle.result() for handle in handles]
        return results, scheduler.batches, scheduler.jobs_coalesced


def test_scheduler_coalesced_throughput(results_dir, request):
    quick = request.config.getoption("--quick")
    repeats = 1 if quick else 3
    config = _serving_config()
    workload_cfg = config.workload
    # Build the trace once up front so neither side pays tracing time.
    get_trace(workload_cfg.model, workload_cfg.dataset,
              workload_cfg.preset, workload_cfg.seed)

    # Correctness first: every coalesced job's records must equal its
    # serial run bit for bit.
    serial_results = _run_serial(config)
    coalesced_results, batches, coalesced_jobs = _run_coalesced(config)
    assert batches == 1, f"expected one coalesced batch, got {batches}"
    assert coalesced_jobs == N_JOBS
    for mine, theirs in zip(coalesced_results, serial_results):
        assert mine.report.total_tiles == theirs.report.total_tiles
        for run_a, run_b in zip(mine.report.runs, theirs.report.runs):
            assert np.array_equal(run_a.records, run_b.records), run_a.name
    dedup_ratio = coalesced_results[0].report.dedup_ratio
    assert dedup_ratio >= N_JOBS * 0.9, (
        f"identical concurrent jobs should dedup ~{N_JOBS}x, got "
        f"{dedup_ratio:.2f}x"
    )

    serial_seconds = _best_of(lambda: _run_serial(config), repeats)
    coalesced_seconds = _best_of(lambda: _run_coalesced(config), repeats)
    if serial_seconds / coalesced_seconds < MIN_COALESCE_SPEEDUP:
        # Noisy-neighbor guard, as for the engine-grid contracts.
        serial_seconds = _best_of(lambda: _run_serial(config), repeats + 2)
        coalesced_seconds = _best_of(
            lambda: _run_coalesced(config), repeats + 2
        )
    speedup = serial_seconds / coalesced_seconds
    tiles = sum(result.report.total_tiles for result in serial_results)
    workload = f"{workload_cfg.model}/{workload_cfg.dataset}[jobs{N_JOBS}]"

    payload = {
        "workload": workload,
        "jobs": N_JOBS,
        "tiles": int(tiles),
        "serial_tiles_per_sec": tiles / serial_seconds,
        "coalesced_tiles_per_sec": tiles / coalesced_seconds,
        "coalesce_speedup_vs_serial": speedup,
        "dedup_ratio": dedup_ratio,
        "batches": batches,
    }
    (results_dir / "scheduler_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    save_result(
        "scheduler_throughput",
        format_table(
            ["workload", "jobs", "tiles", "serial t/s", "coalesced t/s",
             "speedup", "dedup"],
            [[
                workload,
                N_JOBS,
                tiles,
                f"{tiles / serial_seconds:,.0f}",
                f"{tiles / coalesced_seconds:,.0f}",
                format_ratio(speedup),
                format_ratio(dedup_ratio),
            ]],
            title=(
                "serving scheduler — coalesced micro-batch vs serial "
                f"Session runs ({N_JOBS} concurrent jobs)"
            ),
        ),
    )
    # Normalized against serial fused Session runs — recorded under the
    # speedup_vs_fused field so the regression guard compares like for
    # like (the reference backend is never timed here).
    _append_trajectory(
        [
            {
                "workload": workload,
                "backend": "session-serial",
                "tiles": int(tiles),
                "tiles_per_sec": tiles / serial_seconds,
            },
            {
                "workload": workload,
                "backend": "scheduler-coalesced",
                "tiles": int(tiles),
                "tiles_per_sec": tiles / coalesced_seconds,
                "speedup_vs_fused": speedup,
            },
        ],
        quick,
    )

    assert speedup >= MIN_COALESCE_SPEEDUP, (
        f"coalesced scheduler speedup {speedup:.2f}x over serial "
        f"Session.run() on {workload}, below the "
        f"{MIN_COALESCE_SPEEDUP}x contract"
    )


def test_concurrent_submission_overhead(request):
    """Threaded submission adds no meaningful overhead: 8 clients racing
    submit() complete, coalesce, and stay bit-identical."""
    import threading

    config = _serving_config()
    with Session(config) as session:
        serial = session.run()
    start = time.perf_counter()
    with Scheduler(config) as scheduler:
        handles: list = [None] * N_JOBS
        barrier = threading.Barrier(N_JOBS)

        def client(slot: int) -> None:
            barrier.wait()
            handles[slot] = scheduler.submit(Job(config=config))

        threads = [
            threading.Thread(target=client, args=(slot,))
            for slot in range(N_JOBS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        results = [handle.result(timeout=300) for handle in handles]
    elapsed = time.perf_counter() - start
    for result in results:
        for run_a, run_b in zip(result.report.runs, serial.report.runs):
            assert np.array_equal(run_a.records, run_b.records)
    assert elapsed < 300  # completes promptly; the real gate is above


def test_resilience_overhead(results_dir, request):
    """The resilience layer is free when idle: with no fault plan
    installed, the hot-path hooks the engine calls on every kernel
    dispatch cost (well) under ``MAX_RESILIENCE_OVERHEAD`` of one
    coalesced serving batch.

    The budget is deliberately pessimistic: a coalesced batch performs
    well under 100 hook checks (one per kernel launch / batch dispatch),
    but the bar charges 1000 of them — >10x headroom — against the
    measured batch time.
    """
    quick = request.config.getoption("--quick")
    assert faults.active_plan() is None, "fault harness must be off"

    # Direct cost of one disabled hook (amortized over many calls).
    calls = 100_000
    start = time.perf_counter()
    for _ in range(calls):
        faults.kernel_fault("bench.site")
        faults.poison_fault(("bench-label",), site="bench")
    per_check = (time.perf_counter() - start) / calls

    config = _serving_config()
    workload_cfg = config.workload
    get_trace(workload_cfg.model, workload_cfg.dataset,
              workload_cfg.preset, workload_cfg.seed)
    results, _, _ = _run_coalesced(config)
    tiles = sum(result.report.total_tiles for result in results)
    coalesced_seconds = _best_of(
        lambda: _run_coalesced(config), 1 if quick else 3
    )

    charged_checks = 1000
    overhead = per_check * charged_checks / coalesced_seconds
    workload = f"{workload_cfg.model}/{workload_cfg.dataset}[jobs{N_JOBS}]"

    payload = {
        "workload": workload,
        "per_check_ns": per_check * 1e9,
        "charged_checks": charged_checks,
        "coalesced_seconds": coalesced_seconds,
        "overhead_fraction": overhead,
        "max_overhead_fraction": MAX_RESILIENCE_OVERHEAD,
    }
    (results_dir / "resilience_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    save_result(
        "resilience_overhead",
        format_table(
            ["workload", "check cost", "charged checks", "batch time",
             "overhead", "bar"],
            [[
                workload,
                f"{per_check * 1e9:,.0f} ns",
                charged_checks,
                f"{coalesced_seconds * 1e3:,.1f} ms",
                f"{overhead * 100:.4f}%",
                f"< {MAX_RESILIENCE_OVERHEAD * 100:.0f}%",
            ]],
            title="resilience layer overhead with fault hooks disabled",
        ),
    )
    _append_trajectory(
        [
            {
                "workload": workload,
                "backend": "scheduler-resilience-off",
                "tiles": int(tiles),
                "tiles_per_sec": tiles / coalesced_seconds,
            },
        ],
        quick,
    )

    assert overhead < MAX_RESILIENCE_OVERHEAD, (
        f"disabled fault hooks cost {overhead * 100:.3f}% of a coalesced "
        f"batch ({per_check * 1e9:.0f} ns/check), above the "
        f"{MAX_RESILIENCE_OVERHEAD * 100:.0f}% resilience-overhead bar"
    )
