"""Spiking-CNN pipeline: trace a VGG-style SNN and race the accelerators.

This is the workload class the paper's Tables I/IV target: a spiking CNN
on image data. The example traces a (reduced-width) spiking VGG-16,
reports per-layer sparsity, then simulates Prosperity against Eyeriss,
PTB and Stellar.

Run:  python examples/vision_pipeline.py
"""

import numpy as np

from repro.analysis.density import density_report
from repro.arch import ProsperitySimulator
from repro.baselines import EyerissModel, PTBModel, StellarModel
from repro.core import transform_matrix
from repro.snn.models import build_model


def main() -> None:
    rng = np.random.default_rng(7)

    # Build and trace a spiking VGG-16 at half width (fast on a laptop;
    # drop scale=... for the full paper configuration).
    model = build_model("vgg16", "cifar100", rng=rng, scale=0.5)
    trace = model.trace(rng)
    print(f"traced {len(trace)} spiking GeMMs, "
          f"{trace.total_dense_macs / 1e9:.2f} GMAC dense equivalent\n")

    print("per-layer sparsity (first 6 layers):")
    for workload in trace.workloads[:6]:
        stats = transform_matrix(
            workload.spikes, keep_transforms=False, max_tiles=32, rng=rng
        ).stats
        print(
            f"  {workload.name:8s} M={workload.m:5d} K={workload.k:5d} "
            f"bit={stats.bit_density:6.2%} product={stats.product_density:6.2%} "
            f"({stats.ops_reduction:4.1f}x fewer adds)"
        )

    report = density_report(trace, max_tiles=32, rng=rng)
    print(f"\nmodel totals: bit {report.bit_density:.2%} | "
          f"FS {report.fs_density:.2%} | product {report.product_density:.2%}")

    print("\naccelerator race (same trace):")
    eyeriss = EyerissModel().simulate(trace)
    for name, accel_report in (
        ("eyeriss", eyeriss),
        ("ptb", PTBModel().simulate(trace)),
        ("stellar", StellarModel().simulate(trace)),
        ("prosperity", ProsperitySimulator(
            max_tiles_per_workload=32, rng=rng).simulate(trace)),
    ):
        print(
            f"  {name:12s} {accel_report.seconds * 1e6:10.1f} us  "
            f"{eyeriss.seconds / accel_report.seconds:6.2f}x speedup  "
            f"{accel_report.energy_j * 1e3:8.3f} mJ"
        )


if __name__ == "__main__":
    main()
