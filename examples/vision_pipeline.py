"""Spiking-CNN pipeline: trace a VGG-style SNN and race the accelerators.

This is the workload class the paper's Tables I/IV target: a spiking CNN
on image data. Everything runs through the canonical :mod:`repro.api`
entry point: one :class:`~repro.api.RunConfig` names the workload and
baseline lineup, one :class:`~repro.api.Session` shares the transform
engine across the per-layer sparsity report, the density study, and the
accelerator race.

Run:  python examples/vision_pipeline.py
"""

import numpy as np

from repro.api import RunConfig, Session


def main() -> None:
    config = RunConfig().with_overrides({
        "workload.model": "vgg16",
        "workload.dataset": "cifar100",
        "engine.backend": "fused",
        "sampling.max_tiles": 32,
        "simulator.baselines": ("eyeriss", "ptb", "stellar"),
    })

    with Session(config) as session:
        trace = session.trace()
        print(f"traced {len(trace)} spiking GeMMs, "
              f"{trace.total_dense_macs / 1e9:.2f} GMAC dense equivalent\n")

        print("per-layer sparsity (first 6 layers):")
        rng = np.random.default_rng(config.workload.seed)
        for workload in trace.workloads[:6]:
            stats = session.engine.transform_matrix(
                workload.spikes, max_tiles=32, rng=rng
            ).stats
            print(
                f"  {workload.name:8s} M={workload.m:5d} K={workload.k:5d} "
                f"bit={stats.bit_density:6.2%} product={stats.product_density:6.2%} "
                f"({stats.ops_reduction:4.1f}x fewer adds)"
            )

        density = session.density().report
        print(f"\nmodel totals: bit {density.bit_density:.2%} | "
              f"FS {density.fs_density:.2%} | product {density.product_density:.2%}")

        print("\naccelerator race (same trace):")
        reports = session.simulate().reports
        eyeriss = reports["eyeriss"]
        for name, accel_report in reports.items():
            print(
                f"  {name:12s} {accel_report.seconds * 1e6:10.1f} us  "
                f"{eyeriss.seconds / accel_report.seconds:6.2f}x speedup  "
                f"{accel_report.energy_j * 1e3:8.3f} mJ"
            )


if __name__ == "__main__":
    main()
