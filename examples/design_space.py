"""Design-space exploration: choosing the spike tile size (paper Fig. 7).

Sweeps the ProSparsity scope (tile m) and row width (tile k) on a real
CNN trace, printing the latency/density/hardware-cost trade-off that
leads to the paper's m=256, k=16 choice.

Run:  python examples/design_space.py
"""

import numpy as np

from repro.analysis.sweep import sweep_tile_sizes
from repro.snn.models import build_model


def main() -> None:
    rng = np.random.default_rng(7)
    model = build_model("vgg16", "cifar100", rng=rng, scale=0.5)
    trace = model.trace(rng)

    m_sweep, k_sweep = sweep_tile_sizes(
        [trace],
        m_values=(32, 64, 128, 256, 512),
        k_values=(4, 8, 16, 32, 64),
        max_tiles=12,
        rng=rng,
    )

    print("sweep tile m (k = 16):")
    print(f"  {'m':>5s} {'pro density':>12s} {'latency vs bit':>15s} {'area mm2':>9s}")
    for point in m_sweep:
        print(
            f"  {point.tile_m:5d} {point.product_density:12.2%} "
            f"{point.latency_vs_bit:15.3f} {point.area_mm2:9.3f}"
        )

    print("\nsweep tile k (m = 256):")
    print(f"  {'k':>5s} {'pro density':>12s} {'latency vs bit':>15s}")
    for point in k_sweep:
        print(
            f"  {point.tile_k:5d} {point.product_density:12.2%} "
            f"{point.latency_vs_bit:15.3f}"
        )

    chosen = next(p for p in m_sweep if p.tile_m == 256)
    print(
        f"\nchosen configuration m=256, k=16: product density "
        f"{chosen.product_density:.2%}, {1 / chosen.latency_vs_bit:.2f}x over "
        f"bit sparsity at {chosen.area_mm2:.3f} mm2"
    )


if __name__ == "__main__":
    main()
