"""Design-space exploration: choosing the spike tile size (paper Fig. 7).

Sweeps the ProSparsity scope (tile m) and row width (tile k) on a real
CNN trace through the canonical :mod:`repro.api` entry point — the sweep
grid lives in the typed :class:`~repro.api.RunConfig`, so the same
experiment is reproducible from a TOML file (`repro sweep --config ...`).
Prints the latency/density/hardware-cost trade-off that leads to the
paper's m=256, k=16 choice.

Run:  python examples/design_space.py
"""

from repro.api import RunConfig, Session


def main() -> None:
    config = RunConfig().with_overrides({
        "workload.model": "vgg16",
        "workload.dataset": "cifar100",
        "workload.seed": 7,
        "engine.backend": "fused",
        "sampling.max_tiles": 12,
        "sweep.m_values": (32, 64, 128, 256, 512),
        "sweep.k_values": (4, 8, 16, 32, 64),
    })
    with Session(config) as session:
        result = session.sweep()

    print("sweep tile m (k = 16):")
    print(f"  {'m':>5s} {'pro density':>12s} {'latency vs bit':>15s} {'area mm2':>9s}")
    for point in result.m_sweep:
        print(
            f"  {point.tile_m:5d} {point.product_density:12.2%} "
            f"{point.latency_vs_bit:15.3f} {point.area_mm2:9.3f}"
        )

    print("\nsweep tile k (m = 256):")
    print(f"  {'k':>5s} {'pro density':>12s} {'latency vs bit':>15s}")
    for point in result.k_sweep:
        print(
            f"  {point.tile_k:5d} {point.product_density:12.2%} "
            f"{point.latency_vs_bit:15.3f}"
        )

    chosen = next(p for p in result.m_sweep if p.tile_m == 256)
    print(
        f"\nchosen configuration m=256, k=16: product density "
        f"{chosen.product_density:.2%}, {1 / chosen.latency_vs_bit:.2f}x over "
        f"bit sparsity at {chosen.area_mm2:.3f} mm2"
    )


if __name__ == "__main__":
    main()
