"""Streaming inference: sliding windows over an unbounded event trace.

:mod:`repro.streaming` turns the batch engine into an online consumer:
a :class:`~repro.api.StreamSource` emits spike rows per timestep, the
runner packs them into sliding windows, each window becomes one planner
batch (tiles cut at *global* matrix boundaries, deduped across windows
through the shared forest cache), and results surface incrementally as
:class:`~repro.api.StreamChunk` objects — bit-identical to running the
whole trace as one batch. This example drives both entry points:

1. stream a seeded Poisson event source (the event-camera stand-in for
   an unbounded sensor feed) through ``Session.stream_source()`` and
   prove the concatenated chunk records equal the batch run of the very
   same events;
2. stream the same workload over the wire — ``POST /v1/streams`` on a
   live :class:`~repro.server.ReproServer`, NDJSON frames flushed per
   window through :meth:`~repro.api.ServeClient.stream` — and prove the
   wire records match batch byte for byte too (the CLI equivalent is
   ``repro stream --source poisson --url http://...``).

Run:  python examples/streaming_inference.py
"""

import numpy as np

from repro.api import PoissonEventSource, RunConfig, ServeClient, Session
from repro.server import ReproServer

RATE, ROWS, COLS, STEPS, SEED = 0.15, 128, 48, 12, 21


def make_config() -> RunConfig:
    return RunConfig().with_overrides({
        "workload.seed": SEED,
        "engine.backend": "fused",
        "streaming.source": "poisson",
        "streaming.rate": RATE,
        "streaming.rows": ROWS,
        "streaming.cols": COLS,
        "streaming.steps": STEPS,
        "streaming.window": 3,
    })


def drain(generator):
    """Exhaust a stream generator into (chunks, final result)."""
    chunks = []
    while True:
        try:
            chunks.append(next(generator))
        except StopIteration as stop:
            return chunks, stop.value


def concat_records(runs_per_chunk) -> np.ndarray:
    pieces = [
        records
        for runs in runs_per_chunk
        for records in runs
        if records is not None and len(records)
    ]
    return np.concatenate(pieces)


def main() -> None:
    config = make_config()

    # -- batch oracle: the same seeded events as one whole matrix -------
    oracle = PoissonEventSource(
        rate=RATE, rows=ROWS, cols=COLS, steps=STEPS, seed=SEED
    )
    with Session(config) as session:
        batch = session.engine.run(oracle.batch_trace())
        expected = batch.runs[0].records

        # -- in-process stream ------------------------------------------
        chunks, result = drain(session.stream_source())
        for chunk in chunks:
            print(
                f"chunk {chunk.index}: steps "
                f"[{chunk.start_step},{chunk.stop_step}) "
                f"{chunk.tiles} tiles, {chunk.dedup_ratio:.2f}x dedup"
            )
        streamed = concat_records(
            [[run.records for run in chunk.runs] for chunk in chunks]
        )
        assert np.array_equal(streamed, expected)
        print(
            f"in-process: {result.windows} windows over {result.steps} "
            "steps, records bit-identical to the batch run\n"
        )

    # -- the same stream over the wire ----------------------------------
    with ReproServer(config) as server:
        print(f"serving on {server.url}")
        with ServeClient(server.url) as client:
            wire_chunks, final = drain(client.stream(records="full"))
        wired = concat_records(
            [
                [run["records"] for run in chunk.runs]
                for chunk in wire_chunks
            ]
        )
        assert np.array_equal(wired, expected)
        print(
            f"over the wire: {final['windows']} NDJSON frames, "
            f"{final['report']['tiles_per_sec']:,.0f} tiles/sec, "
            "records bit-identical to the batch run"
        )


if __name__ == "__main__":
    main()
