"""Spiking-transformer pipeline: the workloads prior SNN ASICs cannot run.

Spiking transformers mix linear projections (plain spiking GeMM) with
attention products whose right operand is *dynamic* (another spike
product). PTB/SATO/MINT only execute the linear layers (paper
Sec. VII-A); Prosperity's PPU + SFU run everything. This example traces
a Spikformer and a SpikeBERT-style encoder and compares Prosperity with
the A100 GPU model — the paper's Fig. 8 transformer story.

Run:  python examples/transformer_pipeline.py
"""

import numpy as np

from repro.analysis.density import trace_prosparsity_stats
from repro.arch import ProsperitySimulator
from repro.baselines import A100Model, PTBModel
from repro.snn.models import build_model


def main() -> None:
    rng = np.random.default_rng(7)

    for name, dataset, kwargs in (
        ("spikformer", "cifar10", {}),
        ("spikebert", "sst2", dict(depth=4, dim=384, heads=6)),
    ):
        model = build_model(name, dataset, rng=rng, **kwargs)
        trace = model.trace(rng)
        attention = [w for w in trace.workloads if w.kind == "attention"]
        print(f"== {name}/{dataset}: {len(trace)} GeMMs "
              f"({len(attention)} attention products) ==")

        stats = trace_prosparsity_stats(trace, max_tiles=16, rng=rng)
        print(f"   bit density {stats.bit_density:.2%} -> "
              f"product density {stats.product_density:.2%} "
              f"({stats.ops_reduction:.1f}x fewer accumulations)")

        prosperity = ProsperitySimulator(
            max_tiles_per_workload=16, rng=rng
        ).simulate(trace)
        gpu = A100Model().simulate(trace)
        ptb = PTBModel().simulate(trace)
        print(f"   prosperity : {prosperity.seconds * 1e6:9.1f} us, "
              f"{prosperity.energy_j * 1e3:7.3f} mJ (full model)")
        print(f"   a100       : {gpu.seconds * 1e6:9.1f} us, "
              f"{gpu.energy_j * 1e3:7.3f} mJ (full model) -> "
              f"{gpu.seconds / prosperity.seconds:.2f}x slower, "
              f"{gpu.energy_j / prosperity.energy_j:.0f}x more energy")
        print(f"   ptb        : runs only {len(ptb.layers)}/{len(trace)} "
              f"workloads (linear layers only)\n")


if __name__ == "__main__":
    main()
