"""Spiking-transformer pipeline: the workloads prior SNN ASICs cannot run.

Spiking transformers mix linear projections (plain spiking GeMM) with
attention products whose right operand is *dynamic* (another spike
product). PTB/SATO/MINT only execute the linear layers (paper
Sec. VII-A); Prosperity's PPU + SFU run everything. This example drives
two encoder configurations through the canonical :mod:`repro.api` entry
point — one base :class:`~repro.api.RunConfig`, one ``with_overrides``
per model — comparing Prosperity with the A100 GPU model, the paper's
Fig. 8 transformer story.

Run:  python examples/transformer_pipeline.py
"""

from repro.api import RunConfig, Session


def main() -> None:
    base = RunConfig().with_overrides({
        "engine.backend": "fused",
        "engine.plan": "trace",
        "sampling.max_tiles": 16,
        "simulator.baselines": ("a100", "ptb"),
    })

    for model, dataset in (("spikformer", "cifar10"), ("spikebert", "sst2")):
        config = base.with_overrides({"workload.model": model,
                                      "workload.dataset": dataset})
        with Session(config) as session:
            trace = session.trace()
            attention = [w for w in trace.workloads if w.kind == "attention"]
            print(f"== {model}/{dataset}: {len(trace)} GeMMs "
                  f"({len(attention)} attention products) ==")

            run = session.run()
            stats = run.report.stats
            print(f"   bit density {stats.bit_density:.2%} -> "
                  f"product density {stats.product_density:.2%} "
                  f"({stats.ops_reduction:.1f}x fewer accumulations, "
                  f"{run.report.tiles_per_sec:,.0f} tiles/sec transform)")

            reports = session.simulate().reports
            prosperity, gpu, ptb = (
                reports["prosperity"], reports["a100"], reports["ptb"]
            )
            print(f"   prosperity : {prosperity.seconds * 1e6:9.1f} us, "
                  f"{prosperity.energy_j * 1e3:7.3f} mJ (full model)")
            print(f"   a100       : {gpu.seconds * 1e6:9.1f} us, "
                  f"{gpu.energy_j * 1e3:7.3f} mJ (full model) -> "
                  f"{gpu.seconds / prosperity.seconds:.2f}x slower, "
                  f"{gpu.energy_j / prosperity.energy_j:.0f}x more energy")
            print(f"   ptb        : runs only {len(ptb.layers)}/{len(trace)} "
                  f"workloads (linear layers only)\n")


if __name__ == "__main__":
    main()
