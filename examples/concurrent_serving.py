"""Concurrent serving: many clients, one scheduler, shared dedup.

Prosperity's product-sparsity reuse gets *stronger* with more concurrent
work: the trace planner dedups identical tiles globally, so coalescing
many clients' requests into one planner batch means the shared tiles are
computed once for everyone. This example serves the same workloads three
ways through the canonical :mod:`repro.api` entry point:

1. serially, one :class:`~repro.api.Session` run per request;
2. coalesced, all requests through one :class:`~repro.api.Scheduler`
   batch (``submit_many`` -> one global dedup, one kernel per bucket);
3. asynchronously, ``await``-ing the same scheduler from asyncio tasks,
   plus a streaming run that yields per-workload chunks as the
   planner's shape buckets complete.

Run:  python examples/concurrent_serving.py
"""

import asyncio
import time

import numpy as np

from repro.api import AsyncSession, Job, RunConfig, Scheduler, Session

N_CLIENTS = 8


def make_requests() -> list[RunConfig]:
    """Eight client requests: two models, shared engine signature."""
    base = RunConfig().with_overrides({
        "workload.dataset": "mnist",
        "engine.backend": "fused",
        "engine.plan": "trace",
        "scheduler.coalesce_window_ms": 20.0,
    })
    lenet = base.with_overrides({"workload.model": "lenet5"})
    return [lenet] * N_CLIENTS


def main() -> None:
    requests = make_requests()

    # 1. Serial baseline: each request pays its own full run.
    start = time.perf_counter()
    serial = []
    for config in requests:
        with Session(config) as session:
            serial.append(session.run())
    serial_seconds = time.perf_counter() - start
    tiles = sum(result.report.total_tiles for result in serial)
    print(f"serial    : {len(requests)} runs, {tiles} tiles in "
          f"{serial_seconds * 1e3:7.1f} ms "
          f"({tiles / serial_seconds:,.0f} tiles/sec aggregate)")

    # 2. Coalesced: one scheduler, one planner batch, one global dedup.
    start = time.perf_counter()
    with Scheduler(requests[0]) as scheduler:
        handles = scheduler.submit_many([Job(config=c) for c in requests])
        coalesced = [handle.result() for handle in handles]
        batches, shared = scheduler.batches, scheduler.jobs_coalesced
    coalesced_seconds = time.perf_counter() - start
    print(f"coalesced : {shared} jobs in {batches} planner batch(es) in "
          f"{coalesced_seconds * 1e3:7.1f} ms "
          f"({tiles / coalesced_seconds:,.0f} tiles/sec aggregate, "
          f"{serial_seconds / coalesced_seconds:.2f}x, "
          f"{coalesced[0].report.dedup_ratio:.1f}x cross-request dedup)")

    # Records are bit-identical to the serial runs, client for client.
    for mine, theirs in zip(coalesced, serial):
        for run_a, run_b in zip(mine.report.runs, theirs.report.runs):
            assert np.array_equal(run_a.records, run_b.records)
    print("identity  : coalesced records == serial records  [OK]")

    # 3. Async clients + streaming results over the same machinery.
    async def serve() -> None:
        async with AsyncSession(requests[0]) as session:
            results = await session.gather(*requests)
            print(f"async     : {len(results)} awaited jobs, "
                  f"{session.scheduler.batches} batch(es) total")
            chunks = 0
            async for chunk in session.stream(chunk=4):
                chunks += 1
                print(f"  stream chunk {chunk.index}: "
                      f"{len(chunk.runs)} workloads, {chunk.tiles} tiles "
                      f"at +{chunk.seconds * 1e3:.1f} ms")
            assert chunks > 0

    asyncio.run(serve())


if __name__ == "__main__":
    main()
