"""Dual-side sparsity: composing ProSparsity with LoAS weight pruning.

The paper's Table V: LoAS prunes weights below 5% density; ProSparsity
is orthogonal and shrinks the *activation* side on top. This example
prunes a spiking AlexNet's weights, measures both sparsity sides, and
shows the combined accumulate reduction.

The workload comes from a typed :class:`~repro.api.RunConfig` /
:class:`~repro.api.Session` (the canonical :mod:`repro.api` entry
point); the LoAS-specific dual-sparsity math stays in
:mod:`repro.baselines`, which this example drives directly.

Run:  python examples/dual_sparsity.py
"""

import numpy as np

from repro.api import RunConfig, Session
from repro.baselines import (
    LOAS_WEIGHT_DENSITY,
    LoASModel,
    activation_density_with_prosparsity,
    dual_sparse_ops,
    pruned_weight_mask,
)


def main() -> None:
    config = RunConfig().with_overrides({
        "workload.model": "alexnet",
        "workload.dataset": "cifar10",
        "sampling.max_tiles": 24,
    })
    rng = np.random.default_rng(config.workload.seed)
    with Session(config) as session:
        trace = session.trace()

    weight_density = LOAS_WEIGHT_DENSITY["alexnet"]
    print(f"LoAS weight pruning target: {weight_density:.1%} density")
    mask = pruned_weight_mask(512, 512, weight_density, rng)
    print(f"generated 512x512 mask at {mask.mean():.2%} density\n")

    bit, pro = activation_density_with_prosparsity(
        trace, max_tiles=config.sampling.max_tiles, rng=rng
    )
    print(f"activation density (LoAS, bit sparsity) : {bit:8.2%}")
    print(f"activation density (+ ProSparsity)      : {pro:8.2%}")
    print(f"activation-side reduction               : {bit / pro:8.2f}x\n")

    dense_ops = sum(w.dense_macs for w in trace.workloads)
    loas_ops = sum(dual_sparse_ops(w, weight_density) for w in trace.workloads)
    combined = loas_ops * (pro / bit)
    print(f"dense accumulates            : {dense_ops / 1e6:10.1f} M")
    print(f"LoAS dual-sparse accumulates : {loas_ops / 1e6:10.1f} M "
          f"({dense_ops / loas_ops:.0f}x fewer)")
    print(f"LoAS + ProSparsity           : {combined / 1e6:10.1f} M "
          f"({dense_ops / combined:.0f}x fewer)")

    report = LoASModel(weight_density=weight_density).simulate(trace)
    print(f"\nLoAS accelerator latency on this trace: "
          f"{report.seconds * 1e6:.1f} us")


if __name__ == "__main__":
    main()
