"""Quickstart: product sparsity end to end through the unified API.

``repro.api`` is the canonical entry point: a typed, serializable
:class:`~repro.api.RunConfig` plus a :class:`~repro.api.Session` facade
over the engine, simulator, and analysis layers. This example runs the
ProSparsity transform over a small traced SNN, prints the headline
numbers, then drops to ``repro.core`` to show the lossless GeMM the
statistics describe.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import RunConfig, Session
from repro.core import SpikeMatrix, build_forest, execute_gemm, random_spike_matrix
from repro.core.reference import dense_spiking_gemm


def main() -> None:
    # 1. Configure: one frozen, validated object describes the whole run
    #    (it round-trips through TOML/JSON — see `repro config dump`).
    config = RunConfig().with_overrides({
        "workload.model": "lenet5",
        "workload.dataset": "mnist",
        "engine.backend": "fused",
        "engine.plan": "trace",
    })

    # 2. Execute: the Session owns backend/engine lifecycle and exposes
    #    every experiment (run / simulate / sweep / density / ...).
    with Session(config) as session:
        result = session.run()
        stats = result.report.stats
        print(f"model            : {config.workload.model}/"
              f"{config.workload.dataset} ({result.report.total_tiles} tiles)")
        print(f"bit density      : {stats.bit_density:8.2%}")
        print(f"product density  : {stats.product_density:8.2%}")
        print(f"ops reduction    : {stats.ops_reduction:8.2f}x")
        print(f"throughput       : {result.report.tiles_per_sec:,.0f} tiles/sec "
              f"({result.report.dedup_ratio:.2f}x cross-workload dedup)")

        density = session.density().report
        print(f"vs bit sparsity  : {density.reduction_vs_bit:8.2f}x fewer ops")

    # 3. Under the hood: the lossless ProSparsity GeMM on one matrix
    #    (repro.core stays the readable reference implementation).
    rng = np.random.default_rng(0)
    spikes = random_spike_matrix(
        rows=512, cols=64, density=0.25, rng=rng, row_correlation=0.5
    )
    weights = rng.normal(size=(64, 32))
    tile = next(SpikeMatrix(spikes.bits).tile(256, 16))
    forest = build_forest(tile)
    print(f"forest roots     : {len(forest.roots())} of {forest.m} rows")
    print(f"forest depth     : {forest.depth()} (longest prefix chain)")
    out = execute_gemm(spikes, weights, tile_m=256, tile_k=16)
    ref = dense_spiking_gemm(spikes.bits, weights)
    assert np.allclose(out, ref), "ProSparsity result diverged!"
    print("lossless check   : ProSparsity GeMM == dense GeMM  [OK]")


if __name__ == "__main__":
    main()
