"""Quickstart: product sparsity on a spiking GeMM in ~40 lines.

Builds a small binary spike matrix, runs the ProSparsity transform
(Detector -> Pruner -> Dispatcher), executes the lossless GeMM, and
verifies it against the dense result — the paper's core idea end to end.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    SpikeMatrix,
    build_forest,
    execute_gemm,
    random_spike_matrix,
    transform_matrix,
)
from repro.core.reference import dense_spiking_gemm


def main() -> None:
    rng = np.random.default_rng(0)

    # A spike matrix with combinatorial similarity between rows (the
    # row_correlation knob mimics real SNN activation structure).
    spikes = random_spike_matrix(
        rows=512, cols=64, density=0.25, rng=rng, row_correlation=0.5
    )
    weights = rng.normal(size=(64, 32))

    # 1. Analyze: how much redundancy does ProSparsity eliminate?
    result = transform_matrix(spikes, tile_m=256, tile_k=16)
    stats = result.stats
    print(f"bit density      : {stats.bit_density:8.2%}")
    print(f"product density  : {stats.product_density:8.2%}")
    print(f"ops reduction    : {stats.ops_reduction:8.2f}x")
    print(f"exact-match rows : {stats.em_rows} of {stats.rows}")

    # 2. Inspect one tile's ProSparsity forest.
    tile = next(SpikeMatrix(spikes.bits).tile(256, 16))
    forest = build_forest(tile)
    print(f"forest roots     : {len(forest.roots())} of {forest.m} rows")
    print(f"forest depth     : {forest.depth()} (longest prefix chain)")

    # 3. Execute: the ProSparsity GeMM is lossless.
    out = execute_gemm(spikes, weights, tile_m=256, tile_k=16)
    ref = dense_spiking_gemm(spikes.bits, weights)
    assert np.allclose(out, ref), "ProSparsity result diverged!"
    print("lossless check   : ProSparsity GeMM == dense GeMM  [OK]")


if __name__ == "__main__":
    main()
