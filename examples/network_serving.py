"""Network serving: tenants, priorities, and live metrics over HTTP.

The :mod:`repro.server` front end turns the in-process serving
scheduler into a network service: HTTP clients POST jobs, handler
threads queue them on one shared :class:`~repro.api.Scheduler`, and the
coalesce window merges concurrent requests — across tenants — into one
planner batch, so Prosperity's product-sparsity dedup keeps working
over the wire. This example runs the whole loop in one process:

1. start a :class:`~repro.server.ReproServer` on a loopback port (the
   CLI equivalent is ``repro serve --set workload.model=lenet5 ...``);
2. fire mixed-tenant, mixed-priority requests from concurrent
   :class:`~repro.api.ServeClient` threads and verify the records are
   byte-identical to a local ``Session.run()``;
3. scrape ``/metrics`` for the cross-tenant dedup ratio, per-tenant job
   counts, and request latency histogram;
4. drain gracefully — in production that is SIGTERM on ``repro serve``
   (or ``POST /admin/drain``): new jobs get 503, accepted jobs finish.

Run:  python examples/network_serving.py
"""

import threading

import numpy as np

from repro.api import RunConfig, ServeClient, Session
from repro.server import ReproServer

TENANTS = ("acme", "globex")
PRIORITIES = ("interactive", "batch")
N_CLIENTS = 6


def make_config() -> RunConfig:
    return RunConfig().with_overrides({
        "workload.model": "lenet5",
        "workload.dataset": "mnist",
        "engine.backend": "fused",
        "engine.plan": "trace",
        # One coalesce window catches all concurrent clients below.
        "scheduler.coalesce_window_ms": 200.0,
    })


def main() -> None:
    config = make_config()
    with Session(config) as session:
        baseline = session.run()

    with ReproServer(config) as server:
        print(f"serving on {server.url}")

        results = [None] * N_CLIENTS

        def client(slot: int) -> None:
            # One client per thread: each holds its own connection.
            with ServeClient(server.url) as conn:
                results[slot] = conn.submit(
                    "run",
                    tenant=TENANTS[slot % len(TENANTS)],
                    priority=PRIORITIES[slot % len(PRIORITIES)],
                    label=f"client-{slot}",
                )

        threads = [
            threading.Thread(target=client, args=(slot,))
            for slot in range(N_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Bit-identity over the wire: every client's records match the
        # local Session run byte for byte.
        for result in results:
            for run in baseline.report.runs:
                assert np.array_equal(result.records(run.name), run.records)
        print(f"{N_CLIENTS} clients served; records byte-identical "
              "to Session.run()")

        with ServeClient(server.url) as conn:
            metrics = conn.metrics()
        stats = metrics["scheduler"]
        dedup = metrics["server"]["dedup"]
        print(f"planner batches : {stats['batches']} "
              f"(for {stats['jobs_submitted']} jobs)")
        print(f"jobs by tenant  : {stats['jobs_by_tenant']}")
        print(f"jobs by priority: {stats['jobs_by_priority']}")
        print(f"cross-tenant dedup: {dedup['last_planned_tiles']} planned "
              f"-> {dedup['last_unique_tiles']} unique tiles "
              f"({dedup['last_ratio']:.2f}x)")
        latency = metrics["server"]["latency_ms"]["all"]
        print(f"request latency : {latency['count']} requests, "
              f"mean {latency['mean_ms']:.1f} ms")

        clean = server.drain()
        print(f"drained {'cleanly' if clean else 'with timeout'}; "
              "new jobs would now get 503")


if __name__ == "__main__":
    main()
