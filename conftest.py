"""Repo-root pytest bootstrap.

Makes ``python -m pytest`` work from a bare checkout (no ``pip install``
and no ``PYTHONPATH`` needed) by putting the src layout on ``sys.path``
when the package is not already installed, and registers global test
options.
"""

from __future__ import annotations

import pathlib
import sys

try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent / "src"))


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="benchmarks: CI smoke mode (single repetition, reduced grids)",
    )
