"""Tests for the spiking neuron models and threshold calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.snn.neurons import (
    FSNeuron,
    IFNeuron,
    LIFNeuron,
    calibrate_threshold,
    calibrate_threshold_channels,
    firing_rate,
    heterogeneous_rates,
)


class TestLIF:
    def test_fires_above_threshold(self):
        neuron = LIFNeuron(tau=2.0, v_threshold=1.0)
        spikes = neuron.forward(np.array([[2.0], [0.0]]))
        assert spikes[0, 0] and not spikes[1, 0]

    def test_hard_reset(self):
        neuron = LIFNeuron(tau=2.0, v_threshold=1.0)
        # Strong then weak: after reset, weak input alone must not fire.
        spikes = neuron.forward(np.array([[5.0], [0.4]]))
        assert spikes[0, 0] and not spikes[1, 0]

    def test_leak_decays_potential(self):
        neuron = LIFNeuron(tau=2.0, v_threshold=1.0)
        # 0.6 then 0.6: v1 = 0.6, v2 = 0.3 + 0.6 = 0.9 < 1 -> never fires.
        spikes = neuron.forward(np.array([[0.6], [0.6]]))
        assert not spikes.any()

    def test_integration_accumulates(self):
        neuron = LIFNeuron(tau=1e9, v_threshold=1.0)  # negligible leak
        spikes = neuron.forward(np.array([[0.5], [0.6]]))
        assert not spikes[0, 0] and spikes[1, 0]

    def test_membrane_trace_matches_forward(self):
        neuron = LIFNeuron(tau=2.0, v_threshold=1.0)
        currents = np.array([[0.8], [0.9], [0.1]])
        trace = neuron.membrane_trace(currents)
        spikes = neuron.forward(currents)
        assert ((trace >= 1.0) == spikes).all()

    def test_rejects_bad_tau(self):
        with pytest.raises(ValueError):
            LIFNeuron(tau=0.5)

    def test_vector_threshold_broadcasts(self):
        neuron = LIFNeuron(tau=2.0, v_threshold=np.array([0.5, 10.0]))
        spikes = neuron.forward(np.ones((3, 2)))
        assert spikes[:, 0].all() and not spikes[:, 1].any()

    def test_binary_output(self, rng):
        neuron = LIFNeuron(tau=2.0, v_threshold=0.5)
        spikes = neuron.forward(rng.normal(size=(4, 10, 10)))
        assert spikes.dtype == bool


class TestIF:
    def test_no_leak(self):
        neuron = IFNeuron(v_threshold=1.0)
        assert neuron.decay == 1.0
        spikes = neuron.forward(np.array([[0.4], [0.4], [0.4]]))
        assert spikes[2, 0] and not spikes[:2].any()


class TestFS:
    def test_at_most_n_bits_spikes(self, rng):
        neuron = FSNeuron(n_bits=4, h=1.0)
        spikes = neuron.forward(rng.random(100))
        assert spikes.shape == (4, 100)
        assert (spikes.sum(axis=0) <= 4).all()

    def test_binary_expansion_exact(self):
        neuron = FSNeuron(n_bits=4, h=1.0)
        # 0.5 + 0.25 = 0.75 -> spikes at bits 0 and 1 only.
        spikes = neuron.forward(np.array([0.75]))
        assert spikes[:, 0].tolist() == [True, True, False, False]

    def test_decode_reconstructs_quantized(self, rng):
        neuron = FSNeuron(n_bits=8, h=1.0)
        values = rng.random(50)
        decoded = neuron.decode(neuron.forward(values))
        assert np.abs(decoded - values).max() < 1.0 / 2**8 + 1e-9

    def test_negative_clipped(self):
        neuron = FSNeuron(n_bits=4)
        assert not neuron.forward(np.array([-0.5])).any()

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            FSNeuron(n_bits=0)


class TestCalibration:
    def test_scalar_hits_target(self, rng):
        neuron = LIFNeuron(tau=2.0)
        currents = rng.normal(size=(8, 2000))
        calibrate_threshold(neuron, currents, 0.2, tolerance=0.01)
        assert abs(firing_rate(neuron.forward(currents)) - 0.2) < 0.02

    def test_monotone_rates(self, rng):
        currents = rng.normal(size=(8, 1000))
        thresholds = []
        for rate in (0.1, 0.2, 0.35):
            neuron = LIFNeuron(tau=2.0)
            thresholds.append(calibrate_threshold(neuron, currents, rate))
        assert thresholds[0] > thresholds[1] > thresholds[2]

    def test_silent_input_no_crash(self):
        neuron = LIFNeuron(tau=2.0, v_threshold=3.0)
        calibrate_threshold(neuron, np.zeros((4, 10)), 0.2)
        assert neuron.v_threshold == 3.0

    def test_rejects_bad_target(self, rng):
        with pytest.raises(ValueError):
            calibrate_threshold(LIFNeuron(), rng.normal(size=(2, 4)), 1.5)

    def test_per_channel_rates(self, rng):
        # Rates above ~0.45 are unreachable for zero-mean Gaussian drive
        # (the neuron cannot fire faster than its positive-current cycles),
        # so targets stay below that physical ceiling.
        neuron = LIFNeuron(tau=2.0)
        currents = rng.normal(size=(8, 6, 500))  # (T, C, features)
        targets = np.array([0.05, 0.1, 0.15, 0.2, 0.3, 0.4])
        calibrate_threshold_channels(neuron, currents, targets, channel_axis=1)
        spikes = neuron.forward(currents)
        rates = spikes.mean(axis=(0, 2))
        assert np.abs(rates - targets).max() < 0.05

    def test_per_channel_rejects_time_axis(self, rng):
        with pytest.raises(ValueError):
            calibrate_threshold_channels(
                LIFNeuron(), rng.normal(size=(4, 3)), np.array([0.1] * 4),
                channel_axis=0,
            )

    def test_heterogeneous_rates_mean(self, rng):
        rates = heterogeneous_rates(0.3, 5000, rng)
        assert abs(rates.mean() - 0.3) < 0.03
        assert rates.min() >= 0.005 and rates.max() <= 0.95

    def test_heterogeneous_rejects_bad_mean(self, rng):
        with pytest.raises(ValueError):
            heterogeneous_rates(0.0, 10, rng)


@given(st.floats(0.05, 0.42), st.integers(0, 1000))
@settings(max_examples=15, deadline=None)
def test_calibration_property(rate, seed):
    rng = np.random.default_rng(seed)
    neuron = LIFNeuron(tau=2.0)
    currents = rng.normal(size=(6, 800))
    calibrate_threshold(neuron, currents, rate, tolerance=0.02)
    assert abs(firing_rate(neuron.forward(currents)) - rate) < 0.08
