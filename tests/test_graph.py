"""Tests for the full ProSparsity graph."""

import numpy as np

from repro.core.graph import build_graph
from repro.core.spike_matrix import SpikeTile


class TestBuildGraph:
    def test_paper_tile_edges(self, paper_tile):
        graph = build_graph(paper_tile)
        cand = graph.prefix_candidates
        assert cand[2, 3]      # 0010 legal prefix of 1011
        assert cand[4, 1]      # 1001 legal prefix of 1101
        assert cand[5, 4]      # EM: smaller index 4 is prefix of 5
        assert not cand[4, 5]  # EM: larger index 5 is NOT prefix of 4

    def test_empty_rows_excluded(self):
        tile = SpikeTile(np.array([[0, 0, 0], [1, 1, 0], [1, 0, 0]], dtype=bool))
        graph = build_graph(tile)
        assert not graph.prefix_candidates[:, 0].any()

    def test_acyclic(self, paper_tile, random_tile):
        assert build_graph(paper_tile).is_acyclic()
        assert build_graph(random_tile).is_acyclic()

    def test_prefix_counts(self, paper_tile):
        graph = build_graph(paper_tile)
        counts = graph.prefix_counts()
        assert counts[3] == 0   # 0010 has no subset among other rows
        assert counts[2] >= 1   # 1011 can reuse 1010, 0010

    def test_networkx_roundtrip(self, paper_tile):
        graph = build_graph(paper_tile)
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == paper_tile.m
        assert nx_graph.number_of_edges() == graph.num_edges()

    def test_edge_direction_prefix_to_suffix(self, paper_tile):
        nx_graph = build_graph(paper_tile).to_networkx()
        # EM pair: edge must run 4 -> 5 (prefix to suffix), never 5 -> 4
        assert nx_graph.has_edge(4, 5)
        assert not nx_graph.has_edge(5, 4)

    def test_suffix_counts_match_transpose(self, random_tile):
        graph = build_graph(random_tile)
        assert (graph.suffix_counts() == graph.prefix_candidates.sum(axis=0)).all()

    def test_all_equal_rows_form_chain_candidates(self):
        tile = SpikeTile(np.tile(np.array([[1, 0, 1, 0]], dtype=bool), (5, 1)))
        graph = build_graph(tile)
        counts = graph.prefix_counts()
        # row i can use any of rows 0..i-1 as EM prefix
        assert counts.tolist() == [0, 1, 2, 3, 4]
