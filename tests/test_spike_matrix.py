"""Tests for SpikeMatrix / SpikeTile containers and tiling."""

import numpy as np
import pytest

from repro.core.spike_matrix import (
    SpikeMatrix,
    SpikeTile,
    random_spike_matrix,
)


class TestSpikeTile:
    def test_shape_and_density(self, paper_tile):
        assert paper_tile.m == 6
        assert paper_tile.k == 4
        assert paper_tile.nnz == 14
        assert paper_tile.bit_density == pytest.approx(14 / 24)

    def test_popcounts(self, paper_tile):
        assert paper_tile.popcounts().tolist() == [2, 2, 3, 1, 3, 3]

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            SpikeTile(np.array([[0, 2], [1, 0]]))

    def test_accepts_int01(self):
        tile = SpikeTile(np.array([[0, 1], [1, 0]]))
        assert tile.bits.dtype == bool

    def test_empty_tile_density(self):
        tile = SpikeTile(np.zeros((4, 4), dtype=bool))
        assert tile.bit_density == 0.0


class TestTiling:
    def test_exact_tiling(self):
        matrix = SpikeMatrix(np.ones((8, 8), dtype=bool))
        tiles = list(matrix.tile(4, 4))
        assert len(tiles) == 4
        assert all(t.m == 4 and t.k == 4 for t in tiles)

    def test_edge_tiles_not_padded(self):
        matrix = SpikeMatrix(np.ones((5, 7), dtype=bool))
        tiles = list(matrix.tile(4, 4))
        assert len(tiles) == 4
        shapes = {(t.m, t.k) for t in tiles}
        assert shapes == {(4, 4), (4, 3), (1, 4), (1, 3)}

    def test_coords(self):
        matrix = SpikeMatrix(np.ones((4, 8), dtype=bool))
        coords = [(t.coord.row_start, t.coord.col_start) for t in matrix.tile(4, 4)]
        assert coords == [(0, 0), (0, 4)]

    def test_num_tiles_matches_iteration(self):
        matrix = SpikeMatrix(np.ones((10, 33), dtype=bool))
        assert matrix.num_tiles(4, 16) == len(list(matrix.tile(4, 16)))

    def test_tiles_cover_all_spikes(self, random_matrix):
        total = sum(t.nnz for t in random_matrix.tile(64, 16))
        assert total == random_matrix.nnz

    def test_rejects_bad_tile_size(self, random_matrix):
        with pytest.raises(ValueError):
            list(random_matrix.tile(0, 4))


class TestRandomSpikeMatrix:
    def test_density_close_to_target(self, rng):
        matrix = random_spike_matrix(500, 100, 0.3, rng)
        assert abs(matrix.bit_density - 0.3) < 0.02

    def test_correlation_creates_duplicates(self, rng):
        matrix = random_spike_matrix(200, 16, 0.3, rng, row_correlation=0.9)
        unique = {row.tobytes() for row in matrix.bits}
        assert len(unique) < 150  # template mixing collapses many rows

    def test_rejects_bad_density(self, rng):
        with pytest.raises(ValueError):
            random_spike_matrix(10, 10, 1.5, rng)

    def test_rejects_bad_correlation(self, rng):
        with pytest.raises(ValueError):
            random_spike_matrix(10, 10, 0.5, rng, row_correlation=1.0)
