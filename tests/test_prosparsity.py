"""Tests for the end-to-end ProSparsity transform and lossless execution."""

import numpy as np
import pytest

from repro.core.prosparsity import (
    TILE_RECORD_FIELDS,
    execute_gemm,
    execute_tile,
    transform_matrix,
    transform_tile,
)
from repro.core.reference import dense_spiking_gemm
from repro.core.spike_matrix import SpikeMatrix, random_spike_matrix


class TestTransformTile:
    def test_stats_consistency(self, paper_tile):
        transform = transform_tile(paper_tile)
        assert transform.bit_nnz == 14
        # Reuse: row0 saves 1 (0010), row2 saves 2 (1001), row4 saves 2
        # (1001), row5 saves 3 (EM) -> 14 - 8 = 6 residual spikes.
        assert transform.product_nnz == 6

    def test_every_row_processed(self, random_tile):
        transform = transform_tile(random_tile)
        assert transform.processed_rows == random_tile.m


class TestTransformMatrix:
    def test_densities(self, random_matrix):
        result = transform_matrix(random_matrix, 64, 16)
        stats = result.stats
        assert stats.bit_density == pytest.approx(random_matrix.bit_density)
        assert stats.product_density <= stats.bit_density
        assert stats.elements == random_matrix.bits.size

    def test_tile_records_shape(self, random_matrix):
        result = transform_matrix(random_matrix, 64, 16)
        expected_tiles = random_matrix.num_tiles(64, 16)
        assert result.tile_records.shape == (expected_tiles, len(TILE_RECORD_FIELDS))

    def test_records_sum_matches_stats(self, random_matrix):
        result = transform_matrix(random_matrix, 64, 16)
        records = result.tile_records
        assert records[:, 2].sum() == result.stats.bit_nnz
        assert records[:, 3].sum() == result.stats.product_nnz

    def test_keep_transforms_false_skips_plans(self, random_matrix):
        result = transform_matrix(random_matrix, 64, 16, keep_transforms=False)
        assert result.transforms == []
        assert result.tile_records is not None

    def test_sampling_fraction(self, rng):
        matrix = random_spike_matrix(512, 64, 0.3, rng)
        result = transform_matrix(matrix, 64, 16, keep_transforms=False,
                                  max_tiles=4, rng=rng)
        assert result.stats.sample_fraction == pytest.approx(4 / 32)
        assert result.tile_records.shape[0] == 4

    def test_sampling_density_unbiased(self, rng):
        matrix = random_spike_matrix(2048, 64, 0.25, rng)
        full = transform_matrix(matrix, 128, 16, keep_transforms=False)
        sampled = transform_matrix(matrix, 128, 16, keep_transforms=False,
                                   max_tiles=32, rng=rng)
        assert sampled.stats.product_density == pytest.approx(
            full.stats.product_density, rel=0.25
        )

    def test_accepts_raw_ndarray(self, rng):
        bits = rng.random((32, 16)) < 0.3
        result = transform_matrix(bits, 16, 16)
        assert result.stats.rows == 32


class TestLosslessExecution:
    """The paper's central claim: ProSparsity is lossless (iso-accuracy)."""

    def test_tile_integer_exact(self, paper_tile, rng):
        weights = rng.integers(-10, 10, size=(paper_tile.k, 5))
        transform = transform_tile(paper_tile)
        out = execute_tile(transform, weights)
        assert (out == dense_spiking_gemm(paper_tile.bits, weights)).all()

    def test_tile_float_close(self, random_tile, rng):
        weights = rng.normal(size=(random_tile.k, 8))
        transform = transform_tile(random_tile)
        out = execute_tile(transform, weights)
        ref = dense_spiking_gemm(random_tile.bits, weights)
        np.testing.assert_allclose(out, ref, atol=1e-9)

    def test_full_gemm_multi_tile(self, rng):
        matrix = random_spike_matrix(150, 70, 0.3, rng, row_correlation=0.4)
        weights = rng.integers(-8, 8, size=(70, 20))
        out = execute_gemm(matrix, weights, tile_m=64, tile_k=16)
        assert (out == dense_spiking_gemm(matrix.bits, weights)).all()

    def test_gemm_rejects_shape_mismatch(self, rng):
        matrix = random_spike_matrix(16, 8, 0.3, rng)
        with pytest.raises(ValueError):
            execute_gemm(matrix, rng.normal(size=(9, 4)))

    def test_tile_rejects_shape_mismatch(self, paper_tile, rng):
        transform = transform_tile(paper_tile)
        with pytest.raises(ValueError):
            execute_tile(transform, rng.normal(size=(5, 3)))

    def test_all_zero_matrix(self, rng):
        matrix = SpikeMatrix(np.zeros((32, 16), dtype=bool))
        weights = rng.normal(size=(16, 4))
        out = execute_gemm(matrix, weights, tile_m=16, tile_k=16)
        assert (out == 0).all()

    def test_all_ones_matrix(self, rng):
        matrix = SpikeMatrix(np.ones((32, 16), dtype=bool))
        weights = rng.integers(-5, 5, size=(16, 4))
        out = execute_gemm(matrix, weights, tile_m=16, tile_k=16)
        expected = np.tile(weights.sum(axis=0, dtype=np.int64), (32, 1))
        assert (out == expected).all()


class TestStatsBehaviour:
    def test_ops_reduction_on_duplicates(self):
        bits = np.tile(np.array([[1, 1, 0, 1]], dtype=bool), (16, 1))
        result = transform_matrix(bits, 16, 4)
        # 16 identical rows: only the first is computed.
        assert result.stats.product_nnz == 3
        assert result.stats.ops_reduction == pytest.approx(16.0)

    def test_em_row_count(self):
        bits = np.tile(np.array([[1, 0, 1, 0]], dtype=bool), (8, 1))
        result = transform_matrix(bits, 8, 4)
        assert result.stats.em_rows == 7

    def test_merge(self):
        from repro.core.prosparsity import ProSparsityStats

        a = ProSparsityStats(elements=100, bit_nnz=30, product_nnz=10, rows=10, tiles=1)
        b = ProSparsityStats(elements=100, bit_nnz=20, product_nnz=5, rows=10, tiles=1)
        a.merge(b)
        assert a.elements == 200 and a.bit_nnz == 50 and a.product_nnz == 15
        assert a.bit_density == pytest.approx(0.25)
        assert a.ops_reduction == pytest.approx(50 / 15)

    def test_zero_product_nnz_reduction_inf(self):
        bits = np.tile(np.array([[1, 1]], dtype=bool), (4, 1))
        # first row computed (2 ops)... use identical rows w/ zero k-tile
        from repro.core.prosparsity import ProSparsityStats

        stats = ProSparsityStats(elements=8, bit_nnz=8, product_nnz=0)
        assert stats.ops_reduction == float("inf")
