"""Deterministic fault-injection harness + ShardedBackend supervision.

Contract (ISSUE 7): fault points are provably inert when disabled; the
spec grammar round-trips and rejects malformed plans eagerly; an
injected worker crash breaks the pool, the supervisor rebuilds it within
``max_rebuilds`` and the retried records are bit-identical; a spent
budget either degrades to the in-process fused path (still
bit-identical) or raises :class:`PoolBrokenError`.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.spike_matrix import random_spike_matrix
from repro.engine import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    PoolBrokenError,
    ReferenceBackend,
    ShardedBackend,
)
from repro.engine import faults
from repro.engine.fused import FusedBackend
from repro.engine.parallel import MIN_TILES_PER_SHARD


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    """Every test starts and ends with no plan and a scrubbed env."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.clear()
    yield
    faults.clear()


@pytest.fixture
def pooled_matrix(rng):
    """A spike matrix big enough that the sharded pool path engages."""
    return random_spike_matrix(64 * 2 * MIN_TILES_PER_SHARD, 16, 0.3, rng, 0.2)


class TestFaultSpec:
    def test_parse_options(self):
        spec = FaultSpec.parse("worker_crash:after=2:times=3")
        assert (spec.kind, spec.after, spec.times) == ("worker_crash", 2, 3)

    def test_parse_defaults(self):
        spec = FaultSpec.parse("engine_error")
        assert (spec.after, spec.times) == (0, 1)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec.parse("disk_full")

    def test_bad_option_key(self):
        with pytest.raises(ValueError, match="bad fault option"):
            FaultSpec.parse("engine_error:when=later")

    def test_bad_option_value(self):
        with pytest.raises(ValueError, match="bad fault option value"):
            FaultSpec.parse("slow_kernel:seconds=soon")

    def test_poison_requires_match(self):
        with pytest.raises(ValueError, match="requires match"):
            FaultSpec.parse("poison_job")

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError, match="after must be >= 0"):
            FaultSpec(kind="engine_error", after=-1)
        with pytest.raises(ValueError, match="times must be >= 0"):
            FaultSpec(kind="engine_error", times=-1)
        with pytest.raises(ValueError, match="seconds must be >= 0"):
            FaultSpec(kind="slow_kernel", seconds=-0.1)

    def test_should_fire_honors_after_and_times(self):
        spec = FaultSpec(kind="engine_error", after=1, times=2)
        assert [spec.should_fire() for _ in range(4)] == [
            False, True, True, False,
        ]
        assert spec.exhausted

    def test_times_zero_is_unlimited(self):
        spec = FaultSpec(kind="engine_error", times=0)
        assert all(spec.should_fire() for _ in range(10))
        assert not spec.exhausted

    def test_to_text_serializes_remaining_budget(self):
        spec = FaultSpec.parse("engine_error:times=3")
        assert spec.should_fire()
        assert spec.to_text() == "engine_error:times=2"
        assert spec.should_fire()
        # One trigger left is the default and is omitted.
        assert spec.to_text() == "engine_error"

    def test_round_trip(self):
        for text in (
            "worker_crash:after=2:times=3",
            "slow_kernel:seconds=0.5",
            "poison_job:match=bad",
        ):
            assert FaultSpec.parse(text).to_text() == text


class TestFaultPlan:
    def test_blank_means_no_plan(self):
        assert FaultPlan.parse(None) is None
        assert FaultPlan.parse("") is None
        assert FaultPlan.parse("  , ") is None

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ValueError, match="duplicate fault kind"):
            FaultPlan.parse("engine_error,engine_error:times=2")

    def test_round_trip(self):
        text = "worker_crash:times=2,poison_job:match=bad"
        plan = FaultPlan.parse(text)
        assert plan.to_text() == text
        assert plan.get("worker_crash").times == 2
        assert plan.get("slow_kernel") is None

    def test_exhausted_specs_drop_from_text(self):
        plan = FaultPlan.parse("engine_error,poison_job:match=bad")
        plan.get("engine_error").should_fire()
        assert plan.to_text() == "poison_job:match=bad"


class TestActivation:
    def test_install_syncs_env(self):
        faults.install("engine_error:times=2")
        assert os.environ[faults.ENV_VAR] == "engine_error:times=2"
        faults.clear()
        assert faults.ENV_VAR not in os.environ
        assert faults.active_plan() is None

    def test_injected_restores_previous_state(self):
        faults.install("slow_kernel:seconds=0.5")
        with faults.injected("engine_error"):
            assert faults.active_plan().get("engine_error") is not None
            assert os.environ[faults.ENV_VAR] == "engine_error"
        plan = faults.active_plan()
        assert plan.get("slow_kernel") is not None
        assert os.environ[faults.ENV_VAR] == "slow_kernel:seconds=0.5"

    def test_refresh_resolves_from_env(self, monkeypatch):
        faults.clear()
        monkeypatch.setenv(faults.ENV_VAR, "engine_error:times=4")
        plan = faults.refresh()
        assert plan is not None and plan.get("engine_error").times == 4

    def test_bad_env_spec_raises_on_resolve(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "nonsense")
        with pytest.raises(ValueError, match="unknown fault kind"):
            faults.refresh()
        monkeypatch.delenv(faults.ENV_VAR)
        faults.refresh()

    def test_consume_burns_parent_budget(self):
        faults.install("worker_crash:times=2")
        faults.consume("worker_crash")
        assert os.environ[faults.ENV_VAR] == "worker_crash"
        faults.consume("worker_crash")
        assert faults.ENV_VAR not in os.environ


class TestInertWhenDisabled:
    """The acceptance bar: fault points provably do nothing by default."""

    def test_no_plan_resolves_to_none(self):
        assert faults.active_plan() is None

    def test_hooks_are_noops(self):
        for _ in range(100):
            faults.kernel_fault("test.site")
            faults.poison_fault(["any", "labels"], site="test")
            faults.worker_tick()
        assert faults.active_plan() is None

    def test_backend_results_identical_with_harness_imported(self, rng):
        matrix = random_spike_matrix(64 * 4, 16, 0.3, rng, 0.2)
        backend = FusedBackend()
        expected = backend.matrix_records(matrix, 64, 16)
        again = backend.matrix_records(matrix, 64, 16)
        assert np.array_equal(expected, again)


class TestKernelFaults:
    def test_engine_error_is_transient_and_burns_out(self):
        faults.install("engine_error:times=1")
        with pytest.raises(FaultInjected) as err:
            faults.kernel_fault("unit.site")
        assert err.value.transient is True
        assert err.value.site == "unit.site"
        faults.kernel_fault("unit.site")  # budget spent: no-op now
        assert faults.ENV_VAR not in os.environ

    def test_slow_kernel_sleeps(self):
        faults.install("slow_kernel:seconds=0.05:times=1")
        start = time.perf_counter()
        faults.kernel_fault()
        assert time.perf_counter() - start >= 0.04
        start = time.perf_counter()
        faults.kernel_fault()
        assert time.perf_counter() - start < 0.04

    def test_poison_matches_label_substring_persistently(self):
        faults.install("poison_job:match=bad")
        faults.poison_fault(["good", "fine"])  # no match: no-op
        for _ in range(2):  # poison never burns out
            with pytest.raises(FaultInjected) as err:
                faults.poison_fault(["good", "very-bad-job"])
            assert err.value.transient is False
            assert "very-bad-job" in str(err.value)

    def test_empty_labels_never_poisoned(self):
        faults.install("poison_job:match=bad")
        faults.poison_fault([""])
        faults.poison_fault([])


class TestRequestFaults:
    """Server-side drill kinds (ISSUE 9): ``reject_request`` turns one
    request into a clean refusal, ``slow_request`` delays it; ``match``
    scopes both to a request-path substring."""

    def test_reject_fires_then_burns_out(self):
        faults.install("reject_request:times=1")
        assert faults.request_fault(site="server/v1/jobs") == "reject"
        assert faults.request_fault(site="server/v1/jobs") is None

    def test_match_scopes_to_path_substring(self):
        faults.install("reject_request:match=jobs")
        assert faults.request_fault(site="server/healthz") is None
        assert faults.request_fault(site="server/v1/jobs") == "reject"

    def test_slow_request_sleeps(self):
        faults.install("slow_request:seconds=0.05:times=1")
        started = time.perf_counter()
        assert faults.request_fault(site="server/v1/jobs") is None
        assert time.perf_counter() - started >= 0.05
        started = time.perf_counter()
        assert faults.request_fault(site="server/v1/jobs") is None
        assert time.perf_counter() - started < 0.05  # budget burned out

    def test_slow_then_reject_compose(self):
        faults.install("slow_request:seconds=0.01,reject_request:times=1")
        started = time.perf_counter()
        assert faults.request_fault(site="server/v1/jobs") == "reject"
        assert time.perf_counter() - started >= 0.01

    def test_inert_without_plan(self):
        assert faults.request_fault(site="server/v1/jobs") is None


class TestPoolSupervision:
    def test_crash_rebuild_retry_bit_identical(self, pooled_matrix):
        oracle = FusedBackend().matrix_records(pooled_matrix, 64, 16)
        with ShardedBackend(workers=2) as backend:
            with faults.injected("worker_crash"):
                records = backend.matrix_records(pooled_matrix, 64, 16)
                # The supervisor burned the crash budget before the
                # rebuilt pool forked, so its workers came up clean.
                assert "worker_crash" not in os.environ.get(faults.ENV_VAR, "")
            assert np.array_equal(records, oracle)
            assert backend.pool_rebuilds == 1
            assert backend.retries == 1
            assert backend.pools_spawned == 2
            assert backend.degraded is False
            assert backend.failure_counters() == {
                "pool_rebuilds": 1, "retries": 1, "degraded": False,
            }

    def test_budget_spent_degrades_to_inline(self, pooled_matrix):
        oracle = FusedBackend().matrix_records(pooled_matrix, 64, 16)
        with ShardedBackend(workers=2, max_rebuilds=0) as backend:
            with faults.injected("worker_crash:times=0"):
                records = backend.matrix_records(pooled_matrix, 64, 16)
            assert np.array_equal(records, oracle)
            assert backend.degraded is True
            assert backend.pool_rebuilds == 0
            # Once degraded, later calls stay inline — no pool respawn.
            again = backend.matrix_records(pooled_matrix, 64, 16)
            assert np.array_equal(again, oracle)
            assert backend.pools_spawned == 1

    def test_budget_spent_without_degrade_raises(self, pooled_matrix):
        with ShardedBackend(workers=2, max_rebuilds=0, degrade=False) as backend:
            with faults.injected("worker_crash:times=0"):
                with pytest.raises(PoolBrokenError, match="rebuild budget"):
                    backend.matrix_records(pooled_matrix, 64, 16)

    def test_pool_broken_error_chains_cause(self, pooled_matrix):
        from concurrent.futures.process import BrokenProcessPool

        with ShardedBackend(workers=2, max_rebuilds=0, degrade=False) as backend:
            with faults.injected("worker_crash:times=0"):
                with pytest.raises(PoolBrokenError) as err:
                    backend.matrix_records(pooled_matrix, 64, 16)
        assert isinstance(err.value.__cause__, BrokenProcessPool)

    def test_negative_rebuild_budget_rejected(self):
        with pytest.raises(ValueError, match="max_rebuilds"):
            ShardedBackend(workers=2, max_rebuilds=-1)

    def test_failure_counters_base_is_empty(self):
        assert ReferenceBackend().failure_counters() == {}
