"""Tests for im2col, pooling and normalization primitives."""

import numpy as np
import pytest

from repro.snn import functional as F


def direct_conv2d(images, kernels, stride=1, padding=0):
    """Obvious nested-loop convolution used as the im2col golden model."""
    t, c, h, w = images.shape
    c_out, c_in, kh, kw = kernels.shape
    assert c == c_in
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    padded = np.zeros((t, c, h + 2 * padding, w + 2 * padding))
    padded[:, :, padding : padding + h, padding : padding + w] = images
    out = np.zeros((t, c_out, oh, ow))
    for ti in range(t):
        for co in range(c_out):
            for oy in range(oh):
                for ox in range(ow):
                    patch = padded[
                        ti, :, oy * stride : oy * stride + kh, ox * stride : ox * stride + kw
                    ]
                    out[ti, co, oy, ox] = (patch * kernels[co]).sum()
    return out


class TestIm2Col:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1)])
    def test_matches_direct_convolution(self, rng, stride, padding):
        images = (rng.random((2, 3, 8, 8)) < 0.4).astype(np.float64)
        kernels = rng.normal(size=(5, 3, 3, 3))
        cols = F.im2col(images, kernel=3, stride=stride, padding=padding)
        weights = kernels.reshape(5, -1).T  # (C*k*k, C_out)
        gemm = cols @ weights
        oh = F.conv_output_size(8, 3, stride, padding)
        folded = F.fold_gemm_output(gemm, 2, oh, oh)
        direct = direct_conv2d(images, kernels, stride, padding)
        np.testing.assert_allclose(folded, direct, atol=1e-10)

    def test_preserves_binary(self, rng):
        images = rng.random((1, 2, 6, 6)) < 0.3
        cols = F.im2col(images, kernel=3, padding=1)
        assert cols.dtype == bool

    def test_row_count(self):
        images = np.zeros((4, 3, 32, 32), dtype=bool)
        cols = F.im2col(images, kernel=3, padding=1)
        assert cols.shape == (4 * 32 * 32, 3 * 9)

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError):
            F.im2col(np.zeros((3, 8, 8)), 3)

    def test_rejects_oversized_kernel(self):
        with pytest.raises(ValueError):
            F.conv_output_size(4, 7, 1, 0)


class TestPooling:
    def test_maxpool_is_window_or(self):
        spikes = np.zeros((1, 1, 4, 4), dtype=bool)
        spikes[0, 0, 0, 1] = True
        pooled = F.max_pool_spikes(spikes, 2)
        assert pooled.shape == (1, 1, 2, 2)
        assert pooled[0, 0, 0, 0] and not pooled[0, 0, 1, 1]

    def test_maxpool_rejects_indivisible(self):
        with pytest.raises(ValueError):
            F.max_pool_spikes(np.zeros((1, 1, 5, 4), dtype=bool), 2)

    def test_avgpool_values(self):
        values = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        pooled = F.avg_pool(values, 2)
        assert pooled[0, 0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_global_avg_pool(self, rng):
        values = rng.random((2, 3, 4, 4))
        pooled = F.global_avg_pool(values)
        assert pooled.shape == (2, 3)
        assert pooled[0, 0] == pytest.approx(values[0, 0].mean())


class TestNorms:
    def test_batch_norm_stats(self, rng):
        currents = rng.normal(loc=3.0, scale=2.0, size=(4, 8, 10, 10))
        mean, std = F.batch_norm_stats(currents, channel_axis=1)
        assert mean.shape == (8,)
        assert np.abs(mean - 3.0).max() < 0.5

    def test_batch_norm_zero_std_guard(self):
        currents = np.ones((2, 3, 4))
        _, std = F.batch_norm_stats(currents, channel_axis=1)
        assert (std == 1.0).all()

    def test_layer_norm_zero_mean_unit_std(self, rng):
        values = rng.normal(size=(5, 64))
        normed = F.layer_norm(values)
        np.testing.assert_allclose(normed.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(normed.std(axis=-1), 1.0, atol=1e-3)

    def test_softmax_sums_to_one(self, rng):
        values = rng.normal(size=(4, 10)) * 50  # large magnitudes: stability
        probs = F.softmax(values)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-12)
        assert (probs >= 0).all()
