"""Shared fixtures: deterministic RNGs, canonical tiles, cached traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.spike_matrix import SpikeMatrix, SpikeTile
from repro.workloads import get_trace


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def paper_tile() -> SpikeTile:
    """The running example of the paper's Fig. 2/3 (6 rows x 4 cols)."""
    bits = np.array(
        [
            [1, 0, 1, 0],  # row 0: 1010
            [1, 0, 0, 1],  # row 1: 1001
            [1, 0, 1, 1],  # row 2: 1011
            [0, 0, 1, 0],  # row 3: 0010
            [1, 1, 0, 1],  # row 4: 1101
            [1, 1, 0, 1],  # row 5: 1101 (EM with row 4)
        ],
        dtype=bool,
    )
    return SpikeTile(bits)


@pytest.fixture
def random_tile(rng) -> SpikeTile:
    return SpikeTile(rng.random((64, 16)) < 0.3)


@pytest.fixture
def random_matrix(rng) -> SpikeMatrix:
    return SpikeMatrix(rng.random((300, 40)) < 0.25)


@pytest.fixture(scope="session")
def vgg_trace():
    """Small VGG-16 trace shared across architecture tests."""
    return get_trace("vgg16", "cifar10", preset="small")


@pytest.fixture(scope="session")
def transformer_trace():
    """Small Spikformer trace (includes attention workloads)."""
    return get_trace("spikformer", "cifar10", preset="small")
