"""Tests for density reports, the DSE sweep, and the cost trade-off."""

import numpy as np
import pytest

from repro.analysis.density import (
    density_report,
    trace_prosparsity_stats,
    two_prefix_report,
)
from repro.analysis.report import format_percent, format_ratio, format_table
from repro.analysis.sweep import sweep_tile_sizes
from repro.analysis.tradeoff import (
    breakeven_sparsity_increase,
    evaluate_tradeoff,
)


class TestDensityReport:
    def test_product_below_bit(self, vgg_trace):
        report = density_report(vgg_trace, max_tiles=8, rng=np.random.default_rng(0))
        assert report.product_density < report.bit_density
        assert report.reduction_vs_bit > 1.0

    def test_structured_above_bit(self, vgg_trace):
        """PTB's structure processes extra zeros: density >= bit density."""
        report = density_report(vgg_trace, max_tiles=8, rng=np.random.default_rng(0))
        assert report.structured_density >= report.bit_density

    def test_stats_aggregation(self, vgg_trace):
        stats = trace_prosparsity_stats(
            vgg_trace, max_tiles=8, rng=np.random.default_rng(0)
        )
        assert stats.tiles > 0
        assert stats.rows > 0


class TestTwoPrefixReport:
    def test_table2_shape(self, vgg_trace):
        report = two_prefix_report(
            vgg_trace, max_tiles_per_workload=2, rng=np.random.default_rng(0)
        )
        # Paper Table II: two-prefix strictly denser reduction, most reuse
        # comes from the first prefix, second prefix used by a minority.
        assert report.two_prefix_density <= report.one_prefix_density
        assert report.one_prefix_density < report.bit_density
        assert report.two_prefix_ratio < report.one_prefix_ratio


class TestTradeoff:
    def test_breakeven_matches_paper(self):
        """Sec. VII-G: threshold dS = 4.4% at m=256, n=128, ratio 45."""
        assert breakeven_sparsity_increase() == pytest.approx(0.0444, abs=1e-3)

    def test_paper_operating_point(self):
        """dS = 13.35% -> benefit-cost ratio 3.0x."""
        result = evaluate_tradeoff(0.1335)
        assert result.benefit_cost_ratio == pytest.approx(3.0, abs=0.05)
        assert result.profitable

    def test_below_threshold_unprofitable(self):
        assert not evaluate_tradeoff(0.02).profitable

    def test_larger_m_raises_threshold(self):
        """Bigger TCAM scope costs more: break-even dS grows with m."""
        assert breakeven_sparsity_increase(tile_m=512) > breakeven_sparsity_increase(
            tile_m=256
        )

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            evaluate_tradeoff(-0.1)


class TestSweep:
    def test_fig7_trends(self, vgg_trace):
        m_sweep, k_sweep = sweep_tile_sizes(
            [vgg_trace],
            m_values=(64, 256, 1024),
            k_values=(8, 16, 64),
            max_tiles=6,
            rng=np.random.default_rng(0),
        )
        # Larger m -> lower (or equal) product density: more prefix scope.
        densities = [p.product_density for p in m_sweep]
        assert densities[-1] <= densities[0]
        # Area grows with m.
        areas = [p.area_mm2 for p in m_sweep]
        assert areas[-1] > areas[0]
        # k sweep evaluated at fixed m.
        assert all(p.tile_m == 256 for p in k_sweep)
        assert [p.tile_k for p in k_sweep] == [8, 16, 64]

    def test_latency_ratio_below_one(self, vgg_trace):
        """Prosperity must beat bit sparsity at the default tile size."""
        m_sweep, _ = sweep_tile_sizes(
            [vgg_trace], m_values=(256,), k_values=(16,),
            max_tiles=8, rng=np.random.default_rng(0),
        )
        assert m_sweep[0].latency_vs_bit < 1.0


class TestFormatting:
    def test_format_table_basic(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 0.001]], title="T")
        assert "T" in text and "a" in text and "x" in text

    def test_format_percent(self):
        assert format_percent(0.1234) == "12.34%"

    def test_format_ratio(self):
        assert format_ratio(2.5) == "2.50x"
        assert format_ratio(float("inf")) == "inf"
