"""Tests for the design ablations, the CLI, and chart rendering."""

import numpy as np
import pytest

from repro.analysis.ablation import (
    ORDER_POLICIES,
    PREFIX_POLICIES,
    ablate_design_choices,
    tile_density_under_policy,
)
from repro.analysis.plots import bar_chart, grouped_bar_chart, hbar, sparkline
from repro.cli import main
from repro.core.spike_matrix import SpikeTile


class TestPrefixPolicies:
    def test_largest_matches_forest(self, paper_tile):
        from repro.core.forest import build_forest

        bit, product = tile_density_under_policy(paper_tile, "largest", "sorted")
        forest = build_forest(paper_tile)
        assert product == forest.product_nnz()
        assert bit == paper_tile.nnz

    def test_largest_never_worse_than_alternatives(self, rng):
        for _ in range(5):
            tile = SpikeTile(rng.random((48, 16)) < 0.35)
            _, largest = tile_density_under_policy(tile, "largest", "sorted", rng)
            for policy in ("smallest", "lowest_index", "random"):
                _, other = tile_density_under_policy(tile, policy, "sorted", rng)
                assert largest <= other, policy

    def test_none_policy_equals_bit_sparsity(self, paper_tile):
        bit, product = tile_density_under_policy(paper_tile, "none", "sorted")
        assert product == bit

    def test_program_order_hurts(self, paper_tile):
        """Row 0 cannot reuse Row 3 when processed top-to-bottom (Fig. 1)."""
        _, sorted_product = tile_density_under_policy(paper_tile, "largest", "sorted")
        _, program_product = tile_density_under_policy(paper_tile, "largest", "program")
        assert program_product > sorted_product

    def test_unknown_policy_rejected(self, paper_tile):
        with pytest.raises(ValueError):
            tile_density_under_policy(paper_tile, "best")
        with pytest.raises(ValueError):
            tile_density_under_policy(paper_tile, "largest", "reverse")


class TestAblationStudy:
    def test_full_grid(self, vgg_trace):
        points = ablate_design_choices(
            vgg_trace, max_tiles_per_workload=2, rng=np.random.default_rng(0)
        )
        combos = {(p.prefix_policy, p.order_policy) for p in points}
        assert ("largest", "sorted") in combos
        assert len(points) == len(PREFIX_POLICIES) * len(ORDER_POLICIES) - 1
        by_combo = {(p.prefix_policy, p.order_policy): p for p in points}
        paper_choice = by_combo[("largest", "sorted")]
        # The paper's design achieves the lowest density of all combos.
        assert paper_choice.product_density == min(
            p.product_density for p in points
        )
        # And "none" reproduces plain bit sparsity.
        none_point = by_combo[("none", "sorted")]
        assert none_point.product_density == pytest.approx(none_point.bit_density)


class TestCLI:
    def test_density_command(self, capsys):
        assert main(["density", "--model", "lenet5", "--dataset", "mnist",
                     "--max-tiles", "4"]) == 0
        out = capsys.readouterr().out
        assert "product (Prosperity)" in out

    def test_tradeoff_command(self, capsys):
        assert main(["tradeoff", "--sparsity-increase", "0.1335"]) == 0
        out = capsys.readouterr().out
        assert "3.00x" in out

    def test_simulate_command(self, capsys):
        assert main(["simulate", "--model", "lenet5", "--dataset", "mnist",
                     "--max-tiles", "4"]) == 0
        out = capsys.readouterr().out
        assert "prosperity" in out and "eyeriss" in out

    def test_scaling_command(self, capsys):
        assert main(["scaling", "--model", "lenet5", "--dataset", "mnist",
                     "--max-tiles", "4"]) == 0
        assert "PPUs" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["fly"])


class TestPlots:
    def test_hbar_full_and_empty(self):
        assert hbar(10, 10, width=10) == "█" * 10
        assert hbar(0, 10, width=10) == ""

    def test_bar_chart_lines(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10, title="T", unit="x")
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 3
        assert "2x" in lines[2]

    def test_bar_chart_rejects_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_grouped_chart(self):
        chart = grouped_bar_chart(["w1"], {"bit": [0.3], "pro": [0.1]})
        assert "bit" in chart and "pro" in chart

    def test_sparkline_range(self):
        line = sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_empty(self):
        assert sparkline([]) == ""
