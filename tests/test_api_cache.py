"""``[cache]`` config section and persistent-store API wiring (ISSUE 8).

Contract: the section validates eagerly and round-trips through config
files; Session and Scheduler construct, thread, and close the store
(the engine never owns it); per-run ``EngineReport.store_*`` counters
and ``Scheduler.stats`` expose the traffic; the fault drills prove
bit-identical records under injected corruption and graceful cache-off
degradation under injected IO errors; ``repro cache`` and the run
footer surface it all on the CLI.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import RunConfig, Scheduler, Session
from repro.cli import main as cli_main
from repro.engine import faults
from repro.engine.store import namespace_tag


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.clear()
    yield
    faults.clear()


def cache_config(tmp_path, **extra) -> RunConfig:
    return RunConfig().with_overrides(
        {
            "workload.model": "lenet5",
            "workload.dataset": "mnist",
            "engine.backend": "fused",
            "cache.enabled": True,
            "cache.path": str(tmp_path / "store"),
            **extra,
        }
    )


class TestCacheConfig:
    def test_defaults_off(self):
        cache = RunConfig().cache
        assert cache.enabled is False
        assert cache.path == ""
        assert cache.max_bytes == 256 * 1024 * 1024
        assert cache.verify == "checksum"

    def test_round_trips_through_file(self, tmp_path):
        config = cache_config(tmp_path, **{"cache.max_bytes": 4096,
                                           "cache.verify": "off"})
        path = config.to_file(tmp_path / "run.toml")
        loaded = RunConfig.from_file(path)
        assert loaded.cache == config.cache

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="max_bytes"):
            RunConfig().with_sets(["cache.max_bytes=-5"])
        with pytest.raises(ValueError, match="verify policy"):
            RunConfig().with_sets(["cache.verify=sometimes"])


class TestSessionWiring:
    def test_disabled_cache_means_no_store(self, tmp_path):
        config = cache_config(tmp_path, **{"cache.enabled": False})
        with Session(config) as session:
            report = session.run().report
        assert report.store_active is None
        assert not (tmp_path / "store").exists()

    def test_cold_then_warm_bit_identical(self, tmp_path):
        config = cache_config(tmp_path)
        with Session(config) as session:
            cold = session.run()
        assert cold.report.store_active is True
        assert cold.report.store_misses > 0
        assert cold.report.store_hits == 0
        # Fresh Session = fresh memory tier; the store carries it.
        with Session(config) as session:
            warm = session.run()
        assert warm.report.store_hits > 0
        for a, b in zip(cold.report.runs, warm.report.runs):
            assert np.array_equal(a.records, b.records)

    def test_session_close_closes_store(self, tmp_path):
        session = Session(cache_config(tmp_path))
        session.run()
        store = session._store
        assert store is not None
        session.close()
        assert session._store is None
        assert store._writer is None  # writer thread stopped

    def test_cache_size_zero_still_persists(self, tmp_path):
        """engine.cache_size=0 turns the memory tier off; the store
        must still serve cross-process reuse through a minimal tier."""
        config = cache_config(tmp_path, **{"engine.cache_size": 0})
        with Session(config) as session:
            cold = session.run()
        with Session(config) as session:
            warm = session.run()
        assert warm.report.store_hits > 0
        for a, b in zip(cold.report.runs, warm.report.runs):
            assert np.array_equal(a.records, b.records)


class TestFaultDrills:
    def test_corruption_is_quarantined_and_records_identical(self, tmp_path):
        config = cache_config(tmp_path)
        with Session(config) as session:
            baseline = session.run()
        drilled = config.with_sets(["resilience.faults=store_corrupt:times=3"])
        with Session(drilled) as session:
            under_fault = session.run()
        report = under_fault.report
        assert report.store_corrupt == 3
        assert report.store_active is True  # corruption never disables
        for a, b in zip(baseline.report.runs, report.runs):
            assert np.array_equal(a.records, b.records)
        quarantine = tmp_path / "store" / namespace_tag() / "quarantine"
        assert sum(1 for _ in quarantine.iterdir()) == 3

    def test_io_error_degrades_to_cache_off(self, tmp_path):
        config = cache_config(tmp_path)
        with Session(config) as session:
            baseline = session.run()
        drilled = config.with_sets(["resilience.faults=store_io_error:match=get"])
        with Session(drilled) as session:
            degraded = session.run()
        assert degraded.report.store_active is False
        for a, b in zip(baseline.report.runs, degraded.report.runs):
            assert np.array_equal(a.records, b.records)


class TestSchedulerWiring:
    def test_reports_and_stats_carry_store_traffic(self, tmp_path):
        config = cache_config(tmp_path)
        with Session(config) as session:
            session.run()  # populate the store
        with Scheduler(config) as scheduler:
            result = scheduler.submit("run", config).result()
            stats = scheduler.stats
        assert result.report.store_active is True
        assert result.report.store_hits > 0
        assert stats["store_hits"] == result.report.store_hits
        assert set(stats) >= {
            "store_hits", "store_misses", "store_corrupt", "store_evictions",
        }

    def test_cache_section_splits_engine_signature(self, tmp_path):
        """Jobs with different store configs must not share an engine."""
        enabled = cache_config(tmp_path)
        disabled = cache_config(tmp_path, **{"cache.enabled": False})
        with Scheduler(enabled) as scheduler:
            scheduler.submit("run", enabled).result()
            scheduler.submit("run", disabled).result()
            assert len(scheduler._engines) == 2
            assert len(scheduler._stores) == 1

    def test_scheduler_close_closes_stores(self, tmp_path):
        config = cache_config(tmp_path)
        scheduler = Scheduler(config)
        scheduler.submit("run", config).result()
        (store,) = scheduler._stores.values()
        scheduler.close()
        assert store._writer is None
        assert scheduler._stores == {}


class TestCacheCLI:
    def run_cli(self, capsys, *argv) -> tuple[str, int]:
        code = cli_main(list(argv))
        return capsys.readouterr().out, code

    def test_run_footer_shows_store_line(self, tmp_path, capsys):
        out, code = self.run_cli(
            capsys, "run", "--model", "lenet5", "--dataset", "mnist",
            "--backend", "fused", "--set", "cache.enabled=true",
            "--set", f"cache.path={tmp_path / 'store'}",
        )
        assert code == 0
        assert "store: 0 hits /" in out
        assert "corrupt quarantined" in out

    def test_stats_verify_clear(self, tmp_path, capsys):
        store_path = tmp_path / "store"
        self.run_cli(
            capsys, "run", "--model", "lenet5", "--dataset", "mnist",
            "--backend", "fused", "--set", "cache.enabled=true",
            "--set", f"cache.path={store_path}",
        )
        out, code = self.run_cli(
            capsys, "cache", "stats", "--set", f"cache.path={store_path}"
        )
        assert code == 0
        assert "entries" in out
        out, code = self.run_cli(
            capsys, "cache", "verify", "--set", f"cache.path={store_path}"
        )
        assert code == 0
        assert "0 corrupt quarantined" in out
        out, code = self.run_cli(
            capsys, "cache", "clear", "--set", f"cache.path={store_path}"
        )
        assert code == 0
        assert "removed" in out
        out, _ = self.run_cli(
            capsys, "cache", "stats", "--set", f"cache.path={store_path}"
        )
        assert "| 0" in out  # entries back to zero

    def test_verify_exits_nonzero_on_corruption(self, tmp_path, capsys):
        store_path = tmp_path / "store"
        self.run_cli(
            capsys, "run", "--model", "lenet5", "--dataset", "mnist",
            "--backend", "fused", "--set", "cache.enabled=true",
            "--set", f"cache.path={store_path}",
        )
        capsys.readouterr()
        victim = next(
            path
            for path in (store_path / namespace_tag()).rglob("*.rec")
        )
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        victim.write_bytes(bytes(blob))
        out, code = self.run_cli(
            capsys, "cache", "verify", "--set", f"cache.path={store_path}"
        )
        assert code == 1
        assert "1 corrupt quarantined" in out
