"""Tests for forest pruning (one prefix per row) and the two-prefix study."""

import numpy as np

from repro.core.forest import (
    NO_PREFIX,
    build_forest,
    build_two_prefix_forest,
)
from repro.core.reference import reference_prefixes, reference_product_nnz
from repro.core.spike_matrix import SpikeTile


class TestPruningRules:
    def test_paper_tile_prefixes(self, paper_tile):
        forest = build_forest(paper_tile)
        # Row 2 (1011) candidates: 1010 (idx 0) and 1001 (idx 1), both with
        # 2 ones, plus 0010 (1 one). Tie on size -> largest index: row 1.
        # This matches the paper's Fig. 5 table entry "Row 2, Row 1, 0010".
        assert forest.prefix[2] == 1
        assert (forest.pattern[2] == np.array([0, 0, 1, 0], dtype=bool)).all()
        # Row 0 (1010) reuses 0010 (row 3).
        assert forest.prefix[0] == 3
        # Row 5 is EM with row 4; smaller index is prefix.
        assert forest.prefix[5] == 4
        # Row 3 (0010) has no prefix.
        assert forest.prefix[3] == NO_PREFIX

    def test_largest_subset_wins(self):
        tile = SpikeTile(
            np.array(
                [
                    [1, 0, 0, 0],   # 1 one
                    [1, 1, 0, 0],   # 2 ones
                    [1, 1, 1, 0],   # query: both above are subsets
                ],
                dtype=bool,
            )
        )
        forest = build_forest(tile)
        assert forest.prefix[2] == 1

    def test_tie_breaks_to_largest_index(self):
        tile = SpikeTile(
            np.array(
                [
                    [1, 0, 0, 0],
                    [0, 1, 0, 0],
                    [1, 1, 0, 0],  # two 1-one subsets tie -> pick index 1
                ],
                dtype=bool,
            )
        )
        forest = build_forest(tile)
        assert forest.prefix[2] == 1

    def test_em_larger_index_never_prefix(self):
        tile = SpikeTile(np.array([[1, 1], [1, 1]], dtype=bool))
        forest = build_forest(tile)
        assert forest.prefix[0] == NO_PREFIX
        assert forest.prefix[1] == 0

    def test_matches_reference_implementation(self, rng):
        for _ in range(10):
            bits = rng.random((40, 12)) < rng.uniform(0.1, 0.5)
            tile = SpikeTile(bits)
            forest = build_forest(tile)
            assert (forest.prefix == reference_prefixes(bits)).all()
            assert forest.product_nnz() == reference_product_nnz(bits)


class TestPatterns:
    def test_pattern_is_set_difference(self, paper_tile):
        forest = build_forest(paper_tile)
        for row in range(paper_tile.m):
            pre = forest.prefix[row]
            if pre == NO_PREFIX:
                expected = paper_tile.bits[row]
            else:
                expected = paper_tile.bits[row] & ~paper_tile.bits[pre]
            assert (forest.pattern[row] == expected).all()

    def test_em_pattern_empty(self, paper_tile):
        forest = build_forest(paper_tile)
        assert forest.pattern[5].sum() == 0

    def test_exact_match_rows(self, paper_tile):
        forest = build_forest(paper_tile)
        assert forest.exact_match_rows().tolist() == [5]

    def test_product_density_not_above_bit_density(self, random_tile):
        forest = build_forest(random_tile)
        assert forest.product_density() <= random_tile.bit_density + 1e-12


class TestForestStructure:
    def test_acyclic(self, random_tile):
        assert build_forest(random_tile).verify_acyclic()

    def test_roots_have_no_prefix(self, paper_tile):
        forest = build_forest(paper_tile)
        for root in forest.roots():
            assert forest.prefix[root] == NO_PREFIX

    def test_children_inverse_of_prefix(self, paper_tile):
        forest = build_forest(paper_tile)
        children = forest.children()
        for prefix, kids in children.items():
            for kid in kids:
                assert forest.prefix[kid] == prefix

    def test_depth_chain(self):
        # 1 ⊂ 11 ⊂ 111 ⊂ 1111: a 3-edge chain.
        bits = np.tril(np.ones((4, 4), dtype=bool))
        forest = build_forest(SpikeTile(bits))
        assert forest.depth() == 3

    def test_depth_zero_when_no_reuse(self):
        bits = np.eye(4, dtype=bool)
        forest = build_forest(SpikeTile(bits))
        assert forest.depth() == 0


class TestTwoPrefix:
    def test_second_prefix_disjoint(self, rng):
        bits = rng.random((48, 16)) < 0.35
        tile = SpikeTile(bits)
        two = build_two_prefix_forest(tile)
        for row in range(tile.m):
            p2 = two.prefix2[row]
            if p2 == NO_PREFIX:
                continue
            p1 = two.prefix1[row]
            assert p1 != NO_PREFIX
            overlap = tile.bits[p1] & tile.bits[p2]
            assert not overlap.any()

    def test_two_prefix_never_worse(self, rng):
        for _ in range(5):
            bits = rng.random((32, 16)) < 0.3
            tile = SpikeTile(bits)
            one = build_forest(tile)
            two = build_two_prefix_forest(tile)
            assert two.product_nnz() <= one.product_nnz()

    def test_two_prefix_union_still_subset(self, rng):
        bits = rng.random((48, 16)) < 0.35
        tile = SpikeTile(bits)
        two = build_two_prefix_forest(tile)
        for row in range(tile.m):
            reconstructed = two.pattern[row].copy()
            if two.prefix1[row] != NO_PREFIX:
                reconstructed |= tile.bits[two.prefix1[row]]
            if two.prefix2[row] != NO_PREFIX:
                reconstructed |= tile.bits[two.prefix2[row]]
            assert (reconstructed == tile.bits[row]).all()

    def test_prefix_ratio_bounds(self, random_tile):
        two = build_two_prefix_forest(random_tile)
        one_ratio, two_ratio = two.prefix_ratio()
        assert 0.0 <= one_ratio <= 1.0
        assert 0.0 <= two_ratio <= 1.0
        assert one_ratio + two_ratio <= 1.0
