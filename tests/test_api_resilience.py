"""Serving resilience: isolation, retries, admission control, deadlines.

Acceptance contract (ISSUE 7):

* a killed sharded worker mid-batch → pool rebuilds, dispatch retries,
  results bit-identical, counts surfaced in ``EngineReport`` and
  ``Scheduler.stats``;
* one poison job in an 8-job coalesced batch fails alone with a typed
  :class:`BatchExecutionError` naming it, while the other 7 jobs return
  results bit-identical to their standalone runs;
* under ``overload_policy="shed"`` a saturating submit raises
  :class:`SchedulerSaturated` within the configured timeout and counts
  in the stats; ``"block"`` (the default) preserves the pre-resilience
  blocking behavior;
* an expired per-job deadline fails with :class:`DeadlineExceeded`
  before the job ever runs.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro.api import (
    BatchExecutionError,
    DeadlineExceeded,
    EngineRunResult,
    Job,
    RunConfig,
    Scheduler,
    SchedulerSaturated,
    Session,
)
from repro.engine import FaultInjected, faults

LENET = {
    "workload.model": "lenet5",
    "workload.dataset": "mnist",
    "sampling.max_tiles": 4,
}


def lenet_config(**extra) -> RunConfig:
    return RunConfig().with_overrides({**LENET, **extra})


def serial_run(config: RunConfig) -> EngineRunResult:
    """The no-faults baseline every recovered result must match."""
    with Session(config) as session:
        return session.run()


def assert_records_equal(mine, theirs) -> None:
    assert mine.report.total_tiles == theirs.report.total_tiles
    for a, b in zip(mine.report.runs, theirs.report.runs):
        assert a.name == b.name
        assert np.array_equal(a.records, b.records)


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.clear()
    yield
    faults.clear()


class TestPoisonIsolation:
    def test_poison_job_fails_alone_in_batch_of_8(self):
        """The headline acceptance test: 1 poisoned, 7 healthy."""
        cfg = lenet_config(**{"engine.backend": "fused"})
        serial = serial_run(cfg)
        jobs = [Job(config=cfg, label=f"client-{i}") for i in range(7)]
        jobs.append(Job(config=cfg, label="poison-7"))
        with Scheduler(cfg) as scheduler:
            with faults.injected("poison_job:match=poison"):
                handles = scheduler.submit_many(jobs)
                healthy, poisoned = handles[:7], handles[7]
                with pytest.raises(BatchExecutionError) as err:
                    poisoned.result(timeout=300)
                for handle in healthy:
                    assert_records_equal(handle.result(timeout=300), serial)
            # Every job was re-dispatched alone after the batch failure.
            assert scheduler.isolation_reruns == 8
            assert scheduler.stats["isolation_reruns"] == 8
        assert err.value.job_id == poisoned.id
        assert err.value.label == "poison-7"
        assert err.value.batch_size == 8
        assert isinstance(err.value.__cause__, FaultInjected)
        assert err.value.__cause__.transient is False

    def test_each_failed_handle_gets_its_own_exception(self):
        """Satellite 1: no shared exception object fan-out — every handle
        carries a distinct instance naming its own job."""
        cfg = lenet_config(**{"engine.backend": "fused"})
        jobs = [Job(config=cfg, label=f"client-{i}") for i in range(4)]
        with Scheduler(cfg) as scheduler:
            with faults.injected("poison_job:match=client"):
                handles = scheduler.submit_many(jobs)
                errors = [handle.exception(timeout=300) for handle in handles]
        assert len({id(error) for error in errors}) == len(errors)
        for handle, error in zip(handles, errors):
            assert isinstance(error, BatchExecutionError)
            assert error.job_id == handle.id
            assert error.label == handle.job.label
            assert f"#{handle.id}" in str(error)

    def test_poisoned_single_job_fails_without_batch_wrapper(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        with Scheduler(cfg) as scheduler:
            with faults.injected("poison_job:match=solo"):
                handle = scheduler.submit(Job(config=cfg, label="solo-job"))
                error = handle.exception(timeout=300)
        assert isinstance(error, FaultInjected)
        assert not isinstance(error, BatchExecutionError)


class TestTransientRetry:
    def test_coalesced_batch_retries_transient_failure(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        serial = serial_run(cfg)
        with Scheduler(cfg) as scheduler:
            with faults.injected("engine_error:times=1"):
                handles = scheduler.submit_many([Job(config=cfg)] * 4)
                for handle in handles:
                    assert_records_equal(handle.result(timeout=300), serial)
            assert scheduler.jobs_retried == 4
            assert scheduler.isolation_reruns == 0

    def test_single_job_retries_transient_failure(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        serial = serial_run(cfg)
        with Scheduler(cfg) as scheduler:
            with faults.injected("engine_error:times=1"):
                result = scheduler.submit(Job(config=cfg)).result(timeout=300)
            assert_records_equal(result, serial)
            assert scheduler.jobs_retried == 1

    def test_retries_exhausted_delivers_final_error(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        with Scheduler(cfg) as scheduler:
            with faults.injected("engine_error:times=0"):
                error = scheduler.submit(Job(config=cfg)).exception(timeout=300)
        assert isinstance(error, FaultInjected)

    def test_exhausted_coalesced_batch_blames_every_job(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        with Scheduler(cfg) as scheduler:
            with faults.injected("engine_error:times=0"):
                handles = scheduler.submit_many([Job(config=cfg)] * 2)
                errors = [handle.exception(timeout=300) for handle in handles]
        for handle, error in zip(handles, errors):
            assert isinstance(error, BatchExecutionError)
            assert error.job_id == handle.id
            assert isinstance(error.__cause__, FaultInjected)

    def test_retry_budget_zero_fails_fast(self):
        cfg = lenet_config(**{
            "engine.backend": "fused",
            "resilience.retries": 0,
        })
        with Scheduler(cfg) as scheduler:
            with faults.injected("engine_error:times=1"):
                error = scheduler.submit(Job(config=cfg)).exception(timeout=300)
            assert isinstance(error, FaultInjected)
            assert scheduler.jobs_retried == 0


class TestWorkerCrashServing:
    """ISSUE acceptance: kill a sharded worker mid-batch, prove recovery."""

    SHARDED = {
        "engine.backend": "sharded",
        "engine.workers": 2,
        "engine.plan": "trace",
    }

    def test_crash_rebuild_retry_surfaces_in_report_and_stats(self):
        cfg = lenet_config(**self.SHARDED)
        oracle = serial_run(lenet_config(**{"engine.backend": "fused"}))
        with Scheduler(cfg) as scheduler:
            with faults.injected("worker_crash"):
                handles = scheduler.submit_many([Job(config=cfg)] * 2)
                results = [handle.result(timeout=300) for handle in handles]
            stats = scheduler.stats
        for result in results:
            assert_records_equal(result, oracle)
            assert result.report.pool_rebuilds == 1
            assert result.report.retries == 1
            assert result.report.degraded is False
        assert stats["pool_rebuilds"] == 1
        assert stats["degraded"] is False

    def test_degraded_pool_surfaces_in_report_and_stats(self):
        cfg = lenet_config(**self.SHARDED,
                           **{"resilience.max_pool_rebuilds": 0})
        oracle = serial_run(lenet_config(**{"engine.backend": "fused"}))
        with Scheduler(cfg) as scheduler:
            with faults.injected("worker_crash:times=0"):
                result = scheduler.submit(Job(config=cfg)).result(timeout=300)
            stats = scheduler.stats
        assert_records_equal(result, oracle)
        assert result.report.degraded is True
        assert stats["degraded"] is True

    def test_session_run_reports_rebuilds(self):
        """The engine counters also reach plain Session users."""
        cfg = lenet_config(**self.SHARDED)
        oracle = serial_run(lenet_config(**{"engine.backend": "fused"}))
        with faults.injected("worker_crash"):
            with Session(cfg) as session:
                result = session.run()
        assert_records_equal(result, oracle)
        assert result.report.pool_rebuilds == 1
        assert result.report.retries == 1
        assert result.report.degraded is False


class TestAdmissionControl:
    def _slow_config(self, **extra) -> RunConfig:
        # A wide window keeps jobs queued long enough to saturate.
        return lenet_config(**{
            "engine.backend": "fused",
            "scheduler.max_inflight": 2,
            "scheduler.coalesce_window_ms": 3000.0,
            **extra,
        })

    def test_shed_policy_raises_within_timeout(self):
        cfg = self._slow_config(**{
            "resilience.overload_policy": "shed",
            "resilience.shed_timeout_ms": 50.0,
        })
        with Scheduler(cfg) as scheduler:
            scheduler.submit(Job(config=cfg))
            scheduler.submit(Job(config=cfg))
            start = time.monotonic()
            with pytest.raises(SchedulerSaturated, match="shed"):
                scheduler.submit(Job(config=cfg))
            elapsed = time.monotonic() - start
            assert 0.04 <= elapsed < 2.0
            assert scheduler.jobs_shed == 1
            assert scheduler.stats["jobs_shed"] == 1

    def test_explicit_timeout_overrides_block_policy(self):
        cfg = self._slow_config()  # default block policy
        with Scheduler(cfg) as scheduler:
            scheduler.submit(Job(config=cfg))
            scheduler.submit(Job(config=cfg))
            with pytest.raises(SchedulerSaturated):
                scheduler.submit(Job(config=cfg), timeout=0.05)
            assert scheduler.jobs_shed == 1

    def test_block_policy_waits_indefinitely(self):
        """The default policy is the pre-resilience behavior: block until
        the dispatcher frees queue space, never raise."""
        cfg = self._slow_config(**{"scheduler.coalesce_window_ms": 50.0})
        with Scheduler(cfg) as scheduler:
            scheduler.submit(Job(config=cfg))
            scheduler.submit(Job(config=cfg))
            handle = scheduler.submit(Job(config=cfg))  # blocks, then queues
            assert isinstance(handle.result(timeout=300), EngineRunResult)
            assert scheduler.jobs_shed == 0

    def test_shed_batch_rejected_whole(self):
        cfg = self._slow_config(**{
            "resilience.overload_policy": "shed",
            "resilience.shed_timeout_ms": 50.0,
        })
        with Scheduler(cfg) as scheduler:
            scheduler.submit(Job(config=cfg))
            scheduler.submit(Job(config=cfg))
            submitted = scheduler.jobs_submitted
            with pytest.raises(SchedulerSaturated):
                scheduler.submit_many([Job(config=cfg)] * 3)
            assert scheduler.jobs_shed == 3
            assert scheduler.jobs_submitted == submitted


class TestDeadlines:
    def test_expired_job_never_runs(self):
        cfg = lenet_config(**{
            "engine.backend": "fused",
            "scheduler.coalesce_window_ms": 300.0,
        })
        with Scheduler(cfg) as scheduler:
            handle = scheduler.submit(Job(config=cfg, deadline_ms=20.0))
            with pytest.raises(DeadlineExceeded) as err:
                handle.result(timeout=300)
            assert scheduler.jobs_expired == 1
        assert err.value.job_id == handle.id
        assert "20 ms" in str(err.value)

    def test_config_deadline_applies_to_streaming_jobs(self):
        cfg = lenet_config(**{
            "engine.backend": "fused",
            "scheduler.coalesce_window_ms": 300.0,
            "resilience.deadline_ms": 20.0,
        })
        with Scheduler(cfg) as scheduler:
            handle = scheduler.submit(Job(config=cfg), stream=True)
            # The stream terminates with the sentinel, then raises.
            with pytest.raises(DeadlineExceeded):
                while handle.next_chunk(timeout=300) is not None:
                    pass
            assert scheduler.jobs_expired == 1

    def test_generous_deadline_runs_normally(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        serial = serial_run(cfg)
        with Scheduler(cfg) as scheduler:
            handle = scheduler.submit(Job(config=cfg, deadline_ms=600000.0))
            assert_records_equal(handle.result(timeout=300), serial)
            assert scheduler.jobs_expired == 0

    def test_bad_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline_ms"):
            Job(deadline_ms=0)
        with pytest.raises(ValueError, match="deadline_ms"):
            Job(deadline_ms=-5.0)


class TestFaultsFromConfig:
    def test_scheduler_installs_configured_plan(self):
        cfg = lenet_config(**{
            "engine.backend": "fused",
            "resilience.faults": "engine_error:times=1",
        })
        serial = serial_run(lenet_config(**{"engine.backend": "fused"}))
        try:
            with Scheduler(cfg) as scheduler:
                assert faults.active_plan() is not None
                result = scheduler.submit(Job(config=cfg)).result(timeout=300)
                assert_records_equal(result, serial)
                assert scheduler.jobs_retried == 1
        finally:
            faults.clear()

    def test_session_installs_configured_plan(self):
        cfg = lenet_config(**{
            "engine.backend": "fused",
            "resilience.faults": "engine_error:times=1",
        })
        serial = serial_run(lenet_config(**{"engine.backend": "fused"}))
        try:
            with Session(cfg) as session:
                assert faults.active_plan() is not None
                # Session.run has no retry layer; the injected error
                # surfaces, then the burned-out plan lets a rerun pass.
                with pytest.raises(FaultInjected):
                    session.run()
                assert_records_equal(session.run(), serial)
        finally:
            faults.clear()

    def test_empty_spec_leaves_harness_off(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        with Scheduler(cfg):
            assert faults.active_plan() is None


class TestCliFooter:
    def test_run_footer_reports_rebuilds(self, capsys):
        """The chaos drill CI runs: a CLI run with an injected worker
        crash recovers and prints the supervision counters."""
        from repro.cli import main

        args = ["run"]
        for spec in (
            "workload.model=lenet5", "workload.dataset=mnist",
            "sampling.max_tiles=4", "engine.backend=sharded",
            "engine.workers=2", "engine.plan=trace",
            "resilience.faults=worker_crash",
        ):
            args += ["--set", spec]
        try:
            assert main(args) == 0
        finally:
            faults.clear()
        out = capsys.readouterr().out
        assert "resilience: 1 pool rebuild(s), 1 retried dispatch(es)" in out

    def test_run_footer_silent_when_healthy(self, capsys):
        from repro.cli import main

        args = ["run", "--model", "lenet5", "--dataset", "mnist",
                "--backend", "sharded", "--workers", "2"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "resilience:" not in out
        assert "degraded" not in out


class TestStreamingUnderFailure:
    def test_failed_streaming_job_gets_terminal_sentinel(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        with Scheduler(cfg) as scheduler:
            with faults.injected("poison_job:match=bad"):
                handle = scheduler.submit(
                    Job(config=cfg, label="bad-stream"), stream=True
                )
                with pytest.raises(BatchExecutionError):
                    while handle.next_chunk(timeout=300) is not None:
                        pass

    def test_recovered_streaming_job_still_streams(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        serial = serial_run(cfg)
        with Scheduler(cfg) as scheduler:
            with faults.injected("engine_error:times=1"):
                handle = scheduler.submit(Job(config=cfg), stream=True)
                chunks = list(handle.chunks())
                result = handle.result(timeout=300)
        assert_records_equal(result, serial)
        # The documented restart semantics: the re-dispatched job's
        # stream starts over (chunk indices back at 0), and the chunks
        # from the restart onward cover every workload with exact
        # records (completion order, as for any stream).
        restart = max(
            i for i, chunk in enumerate(chunks) if chunk.index == 0
        )
        streamed = {
            run.name: run.records
            for chunk in chunks[restart:]
            for run in chunk.runs
        }
        assert sorted(streamed) == sorted(
            run.name for run in serial.report.runs
        )
        for run in serial.report.runs:
            assert np.array_equal(streamed[run.name], run.records)


class TestCancelVsDispatchRace:
    """Satellite 3: cancellation racing the dispatcher either fully
    cancels or fully runs — never an unresolved future, and streaming
    handles always receive the terminal sentinel."""

    def test_race_resolves_every_future(self):
        cfg = lenet_config(**{
            "engine.backend": "fused",
            "scheduler.coalesce_window_ms": 0.0,
        })
        outcomes = {"cancelled": 0, "ran": 0}
        for _ in range(12):
            with Scheduler(cfg) as scheduler:
                handle = scheduler.submit(Job(config=cfg), stream=True)
                cancelled = []
                thread = threading.Thread(
                    target=lambda: cancelled.append(handle.cancel())
                )
                thread.start()
                thread.join()
                # Fully cancelled or fully run — nothing in between.
                if cancelled[0]:
                    outcomes["cancelled"] += 1
                    assert handle.cancelled()
                    with pytest.raises(CancelledError):
                        handle.result(timeout=300)
                else:
                    outcomes["ran"] += 1
                    assert isinstance(
                        handle.result(timeout=300), EngineRunResult
                    )
                # Streaming handles always get the terminal sentinel:
                # draining must terminate (no hang), even if the drain
                # ends by raising the job's terminal state.
                try:
                    while handle.next_chunk(timeout=60) is not None:
                        pass
                except BaseException as exc:  # noqa: BLE001 - cancelled path
                    assert handle.cancelled(), exc
                assert handle.done()
        assert sum(outcomes.values()) == 12
