"""Tests for input encodings and synthetic dataset generators."""

import numpy as np
import pytest

from repro.snn.datasets import (
    SPECS,
    EmbeddingTable,
    get_spec,
    synthetic_dvs,
    synthetic_image,
    synthetic_tokens,
)
from repro.snn.encoding import (
    direct_threshold_encode,
    latency_encode,
    rate_encode,
)


class TestEncodings:
    def test_rate_encode_shape_and_rate(self, rng):
        # Peak-normalized: expected firing rate is mean(values) / max.
        values = np.linspace(0.0, 1.0, 100).reshape(10, 10)
        spikes = rate_encode(values, 8, rng)
        assert spikes.shape == (8, 10, 10)
        assert abs(spikes.mean() - values.mean()) < 0.1

    def test_rate_encode_zero_input_silent(self, rng):
        assert not rate_encode(np.zeros((4, 4)), 4, rng).any()

    def test_latency_single_spike_per_pixel(self):
        values = np.array([[1.0, 0.5, 0.0]])
        spikes = latency_encode(values, 4)
        assert spikes.sum(axis=0).tolist() == [[1, 1, 0]]
        # Brightest fires first.
        assert spikes[0, 0, 0]

    def test_direct_threshold_nested_sets(self, rng):
        """Later (higher-threshold) steps must be subsets of earlier ones."""
        values = rng.random((6, 6))
        spikes = direct_threshold_encode(values, 4)
        for t in range(3):
            assert not (spikes[t + 1] & ~spikes[t]).any()

    def test_direct_threshold_monotone_in_value(self):
        values = np.array([[0.1, 0.9]])
        spikes = direct_threshold_encode(values, 4)
        assert spikes[:, 0, 1].sum() >= spikes[:, 0, 0].sum()


class TestDatasets:
    def test_get_spec_normalizes_names(self):
        assert get_spec("CIFAR10-DVS").name == "cifar10dvs"
        with pytest.raises(KeyError):
            get_spec("imagenet")

    def test_image_range_and_shape(self, rng):
        spec = get_spec("cifar10")
        image = synthetic_image(spec, rng)
        assert image.shape == (3, 32, 32)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_image_is_smooth(self, rng):
        """Adjacent-pixel correlation drives ProSparsity; verify it exists."""
        image = synthetic_image(get_spec("cifar100"), rng)
        diff = np.abs(np.diff(image, axis=2)).mean()
        spread = image.std()
        assert diff < spread  # neighbour delta below global variation

    def test_dvs_sparse_binary(self, rng):
        spec = get_spec("cifar10dvs")
        events = synthetic_dvs(spec, 8, rng)
        assert events.shape == (8, 2, 64, 64)
        assert events.dtype == bool
        assert events.mean() < 0.15  # event streams are sparse

    def test_tokens_zipf_repeats(self, rng):
        spec = get_spec("sst2")
        tokens = synthetic_tokens(spec, rng)
        assert tokens.shape == (64,)
        assert len(np.unique(tokens)) < 64  # Zipf ensures repeats

    def test_embedding_lookup(self, rng):
        table = EmbeddingTable(100, 16, rng)
        out = table(np.array([3, 3, 7]))
        assert out.shape == (3, 16)
        assert (out[0] == out[1]).all()

    def test_all_specs_resolvable(self):
        for name in SPECS:
            assert get_spec(name).name == name
