"""Tests for the workload registry and its presets."""


from repro.workloads import (
    FIG8_GRID,
    FIG11_GRID,
    _PRESET_KWARGS,
    clear_trace_cache,
    get_trace,
)


class TestGrids:
    def test_fig8_covers_paper_models(self):
        models = {model for model, _ in FIG8_GRID}
        assert models == {
            "vgg16", "resnet18", "spikformer", "sdt", "spikebert", "spikingbert"
        }

    def test_fig8_dataset_counts(self):
        """Paper Fig. 8: 2 CNN datasets each, 3 transformer datasets each."""
        from collections import Counter

        counts = Counter(model for model, _ in FIG8_GRID)
        assert counts["vgg16"] == 2 and counts["resnet18"] == 2
        for transformer in ("spikformer", "sdt", "spikebert", "spikingbert"):
            assert counts[transformer] == 3

    def test_fig11_adds_small_cnns(self):
        models = {model for model, _ in FIG11_GRID}
        assert "vgg9" in models and "lenet5" in models


class TestPresets:
    def test_small_preset_is_smaller(self):
        clear_trace_cache()
        small = get_trace("lenet5", "mnist", preset="small", seed=3)
        paper = get_trace("lenet5", "mnist", preset="paper", seed=3)
        assert small.total_dense_macs < paper.total_dense_macs
        clear_trace_cache()

    def test_same_seed_same_trace_content(self):
        clear_trace_cache()
        first = get_trace("lenet5", "mnist", preset="small", seed=5)
        clear_trace_cache()
        second = get_trace("lenet5", "mnist", preset="small", seed=5)
        assert len(first) == len(second)
        for a, b in zip(first.workloads, second.workloads):
            assert (a.spikes.bits == b.spikes.bits).all()
        clear_trace_cache()

    def test_different_seed_different_spikes(self):
        clear_trace_cache()
        first = get_trace("lenet5", "mnist", preset="small", seed=1)
        clear_trace_cache()
        second = get_trace("lenet5", "mnist", preset="small", seed=2)
        assert any(
            (a.spikes.bits != b.spikes.bits).any()
            for a, b in zip(first.workloads, second.workloads)
        )
        clear_trace_cache()

    def test_every_preset_model_buildable(self):
        """Preset overrides reference only registered models/params."""
        from repro.snn.models import MODEL_BUILDERS

        for preset_kwargs in _PRESET_KWARGS.values():
            for model in preset_kwargs:
                assert model in MODEL_BUILDERS
