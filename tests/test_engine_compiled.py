"""Compiled (Numba) backend: JIT fast path and NumPy fallback, one truth.

Acceptance contract (ISSUE 6): the ``compiled`` backend's records are
bit-identical to the reference oracle for every plan mode and worker
count, with or without numba installed; the kernel *logic* is pinned via
its pure-Python form (:func:`tile_records_python`) so this suite proves
the fast path's algorithm even in environments where numba is absent;
``REPRO_NO_JIT=1`` and a numba-less interpreter both degrade to records
identical to ``fused``; warmup runs once and is booked as its own
profile stage; and the unknown-backend error lists ``compiled`` with its
install status.

Every assertion here passes on both CI matrix legs: the numpy-only leg
exercises the fallback (``jit_active=False``), the ``.[compiled]`` leg
exercises the JIT (``jit_active=True``). ``EXPECT_JIT`` keys the
env-dependent expectations.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.core.spike_matrix import random_spike_matrix
from repro.engine import (
    CompiledBackend,
    ProsperityEngine,
    ShardedBackend,
    available_backends,
    get_backend,
)
from repro.engine.backends import ReferenceBackend
from repro.engine.compiled import (
    COMPILED_PROFILE_STAGES,
    jit_disabled,
    jit_status,
    numba_installed,
    tile_records_python,
)
from repro.engine.fused import (
    FusedBackend,
    padded_codes,
    records_from_codes_batch,
)
from repro.engine.planner import PLANNED_PROFILE_STAGES
from repro.snn.trace import GeMMWorkload
from repro.utils.bitops import popcount_rows

#: What this environment should resolve to (True on the CI compiled leg,
#: False on the numpy-only leg and in numba-less dev checkouts).
EXPECT_JIT = numba_installed() and not jit_disabled()


def _stack(rng, T, m, k, density, correlation=0.0):
    """A packed (T, m, W) code stack + popcounts, like build_tile_parts."""
    matrix = random_spike_matrix(T * m, k, density, rng, correlation)
    packed = np.packbits(matrix.bits, axis=1)
    codes = padded_codes(packed).reshape(T, m, -1)
    pops = popcount_rows(packed).reshape(T, m)
    return codes, pops


def _child_env():
    """Subprocess env with the package importable from a bare checkout."""
    src = str(pathlib.Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestKernelLogic:
    """The nopython kernel body vs the fused NumPy twin, bit for bit.

    These run the exact code numba compiles (``py_func`` path), so they
    hold on every environment — the JIT only changes how fast the same
    loops execute.
    """

    def test_paper_tile(self, paper_tile):
        codes = padded_codes(paper_tile.packed)[None]
        pops = popcount_rows(paper_tile.packed)[None]
        want = records_from_codes_batch(codes, pops, paper_tile.k)
        assert np.array_equal(want, tile_records_python(codes, pops, paper_tile.k))

    @pytest.mark.parametrize("density", [0.0, 0.05, 0.3, 0.7, 1.0])
    def test_random_stacks(self, rng, density):
        codes, pops = _stack(rng, T=7, m=16, k=16, density=density, correlation=0.3)
        want = records_from_codes_batch(codes, pops, 16)
        assert np.array_equal(want, tile_records_python(codes, pops, 16))

    @pytest.mark.parametrize("k", [24, 40, 48, 56])
    def test_padding_widths(self, rng, k):
        """Non-power-of-two byte widths (3/5/6/7) zero-extend cleanly."""
        codes, pops = _stack(rng, T=5, m=12, k=k, density=0.35)
        assert (k + 7) // 8 in (3, 5, 6, 7)
        want = records_from_codes_batch(codes, pops, k)
        assert np.array_equal(want, tile_records_python(codes, pops, k))

    def test_single_row_and_empty_rows(self, rng):
        codes, pops = _stack(rng, T=3, m=1, k=8, density=0.5)
        want = records_from_codes_batch(codes, pops, 8)
        assert np.array_equal(want, tile_records_python(codes, pops, 8))

    def test_deep_chains(self):
        """Nested-subset rows produce long chains; depths must agree."""
        m, k = 12, 16
        bits = np.zeros((m, k), dtype=bool)
        for i in range(m):
            bits[i, : i + 1] = True  # row i is a strict superset of row i-1
        packed = np.packbits(bits, axis=1)
        codes = padded_codes(packed)[None]
        pops = popcount_rows(packed)[None]
        want = records_from_codes_batch(codes, pops, k)
        got = tile_records_python(codes, pops, k)
        assert np.array_equal(want, got)
        assert got[0, 8] == m - 1  # depth field: one maximal chain


class TestCompiledEquivalence:
    """Backend-level: compiled == reference oracle, every mode."""

    def test_matrix_records_match_oracle(self, rng):
        oracle = ReferenceBackend()
        backend = CompiledBackend()
        for density, correlation in ((0.05, 0.0), (0.3, 0.5), (0.7, 0.2)):
            matrix = random_spike_matrix(300, 40, density, rng, correlation)
            expected = oracle.matrix_records(matrix, 64, 16)
            assert np.array_equal(expected, backend.matrix_records(matrix, 64, 16))

    @pytest.mark.parametrize("plan", ["matrix", "trace"])
    def test_engine_run_matches_reference(self, rng, plan):
        trace = [
            GeMMWorkload(
                name=f"w{i}",
                spikes=random_spike_matrix(rows, cols, density, rng, 0.4),
                n=8,
            )
            for i, (rows, cols, density) in enumerate(
                [(512, 32, 0.3), (130, 17, 0.2), (256, 16, 0.5)]
            )
        ]
        ref = ProsperityEngine(backend="reference", tile_m=64, tile_k=16, plan=plan)
        mine = ProsperityEngine(backend="compiled", tile_m=64, tile_k=16, plan=plan)
        ref_report = ref.run(trace, batch=4)
        my_report = mine.run(trace, batch=4)
        assert my_report.backend == "compiled"
        for a, b in zip(my_report.runs, ref_report.runs):
            assert np.array_equal(a.records, b.records), a.name

    def test_matches_sharded_across_worker_counts(self, rng):
        """compiled == sharded for workers in {1, 2, 4} (same bits)."""
        matrix = random_spike_matrix(64 * 20, 32, 0.25, rng, 0.4)
        expected = CompiledBackend().matrix_records(matrix, 64, 16)
        for workers in (1, 2, 4):
            with ShardedBackend(workers=workers) as sharded:
                actual = sharded.matrix_records(matrix, 64, 16)
            assert np.array_equal(expected, actual), workers

    def test_fallback_identical_to_fused(self, rng, monkeypatch):
        """REPRO_NO_JIT=1: the compiled backend *is* the fused path."""
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        backend = CompiledBackend()
        assert backend.jit_active is False
        matrix = random_spike_matrix(300, 40, 0.3, rng, 0.5)
        expected = FusedBackend().matrix_records(matrix, 64, 16)
        assert np.array_equal(expected, backend.matrix_records(matrix, 64, 16))

    def test_tile_record_entry_point(self, paper_tile):
        assert CompiledBackend().tile_record(paper_tile) == ReferenceBackend(
        ).tile_record(paper_tile)


class TestWarmup:
    def test_jit_active_matches_environment(self):
        assert CompiledBackend().jit_active is EXPECT_JIT

    def test_warmup_returns_jit_active(self):
        backend = CompiledBackend()
        assert backend.warmup() is EXPECT_JIT
        assert backend.jit_active is EXPECT_JIT

    def test_warmup_runs_once(self):
        backend = CompiledBackend()
        backend.warmup()
        booked = backend.profile["warmup"]
        if EXPECT_JIT:
            assert backend._warmed is True
            assert booked > 0.0
        else:
            assert booked == 0.0
        backend.warmup()
        assert backend.profile["warmup"] == booked  # idempotent

    def test_dispatch_auto_warms(self, rng):
        """First _compute_records pays warmup without an explicit call."""
        backend = CompiledBackend()
        matrix = random_spike_matrix(128, 16, 0.3, rng)
        backend.matrix_records(matrix, 64, 16)
        if EXPECT_JIT:
            assert backend._warmed is True
            assert backend.profile["warmup"] > 0.0

    def test_no_jit_env_forces_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        backend = CompiledBackend()
        assert backend.jit_active is False
        assert backend.warmup() is False
        assert jit_disabled() is True
        assert jit_status() == "disabled (REPRO_NO_JIT=1)"

    def test_no_jit_zero_is_not_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_JIT", "0")
        assert jit_disabled() is False

    def test_jit_status_reflects_install(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_JIT", raising=False)
        status = jit_status()
        if numba_installed():
            assert status in ("available",) or status.startswith("broken")
        else:
            assert status == "unavailable (numba not installed)"


class TestConstruction:
    def test_registered(self):
        assert "compiled" in available_backends()

    def test_get_backend(self):
        backend = get_backend("compiled")
        assert isinstance(backend, CompiledBackend)
        assert backend.name == "compiled"

    def test_rejects_workers_option(self):
        with pytest.raises(ValueError, match="does not accept"):
            get_backend("compiled", workers=2)

    def test_unknown_backend_error_lists_availability(self):
        """The bugfix: a typo'd name doubles as an availability listing."""
        with pytest.raises(ValueError, match="unknown backend") as err:
            get_backend("nope")
        message = str(err.value)
        note = (
            "compiled (numba installed)"
            if numba_installed()
            else "compiled (numba not installed, runs as NumPy fallback)"
        )
        assert note in message
        # Backends without an availability gate stay bare names.
        assert "fused," in message or message.endswith("fused")

    def test_availability_note(self):
        note = CompiledBackend.availability()
        assert note.startswith("numba ")

    def test_plain_backends_have_no_availability_note(self):
        assert FusedBackend.availability() is None
        assert ReferenceBackend.availability() is None


class TestProfileAndReport:
    @pytest.mark.parametrize("plan", ["matrix", "trace"])
    def test_profile_contract(self, rng, plan):
        """Warmup is a declared stage; sums stay inside wall-clock."""
        trace = [
            GeMMWorkload(
                name="w0",
                spikes=random_spike_matrix(512, 32, 0.3, rng, 0.4),
                n=8,
            )
        ]
        engine = ProsperityEngine(backend="compiled", tile_m=64, tile_k=16, plan=plan)
        report = engine.run(trace, batch=4)
        declared = (
            (*PLANNED_PROFILE_STAGES, "warmup")
            if plan == "trace"
            else COMPILED_PROFILE_STAGES
        )
        assert set(report.profile) == set(declared)
        assert all(seconds >= 0.0 for seconds in report.profile.values())
        assert sum(report.profile.values()) <= report.total_seconds + 1e-6

    def test_warmup_booked_only_on_first_run(self, rng):
        """Per-run profiles are deltas: run 2 shows zero warmup."""
        trace = [
            GeMMWorkload(
                name="w0", spikes=random_spike_matrix(256, 16, 0.3, rng), n=8
            )
        ]
        engine = ProsperityEngine(backend="compiled", tile_m=64, tile_k=16)
        engine.run(trace, batch=4)
        second = engine.run(trace, batch=4)
        assert second.profile["warmup"] == 0.0

    def test_report_jit_active_flag(self, rng):
        trace = [
            GeMMWorkload(
                name="w0", spikes=random_spike_matrix(256, 16, 0.3, rng), n=8
            )
        ]
        report = ProsperityEngine(backend="compiled", tile_m=64, tile_k=16).run(trace)
        assert report.jit_active is EXPECT_JIT

    def test_other_backends_report_none(self, rng):
        trace = [
            GeMMWorkload(
                name="w0", spikes=random_spike_matrix(256, 16, 0.3, rng), n=8
            )
        ]
        report = ProsperityEngine(backend="fused", tile_m=64, tile_k=16).run(trace)
        assert report.jit_active is None


class TestApiThreading:
    """compiled flows through Session / Scheduler / CLI unchanged."""

    CONFIG = {
        "workload.model": "lenet5",
        "workload.dataset": "mnist",
        "sampling.max_tiles": 4,
        "engine.backend": "compiled",
    }

    def test_session_run(self):
        from repro.api import RunConfig, Session

        with Session(RunConfig().with_overrides(self.CONFIG)) as session:
            result = session.run()
        assert result.report.backend == "compiled"
        assert result.report.jit_active is EXPECT_JIT

    def test_scheduler_coalesced_matches_serial(self):
        from repro.api import RunConfig, Scheduler, Session

        cfg = RunConfig().with_overrides(self.CONFIG)
        with Session(cfg) as session:
            serial = session.run()
        with Scheduler(cfg) as scheduler:
            mine, theirs = scheduler.gather([cfg, cfg])
        for result in (mine, theirs):
            assert result.report.jit_active is EXPECT_JIT
            for a, b in zip(result.report.runs, serial.report.runs):
                assert np.array_equal(a.records, b.records)

    def test_cli_run_compiled(self, capsys):
        from repro.cli import main

        assert main(
            ["run", "--model", "lenet5", "--dataset", "mnist",
             "--backend", "compiled"]
        ) == 0
        out = capsys.readouterr().out
        assert "backend=compiled" in out
        if EXPECT_JIT:
            assert "jit: active" in out
        else:
            assert "jit: inactive" in out

    def test_cli_rejects_workers_for_compiled(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="does not accept"):
            main(
                ["run", "--model", "lenet5", "--dataset", "mnist",
                 "--backend", "compiled", "--workers", "2"]
            )


_CHILD_BODY = """
import numpy as np
from repro.core.spike_matrix import random_spike_matrix
from repro.engine import CompiledBackend, FusedBackend
backend = CompiledBackend()
assert backend.jit_active is False, "expected the fallback path"
assert backend.warmup() is False
matrix = random_spike_matrix(300, 40, 0.3, np.random.default_rng(7), 0.5)
expected = FusedBackend().matrix_records(matrix, 64, 16)
actual = backend.matrix_records(matrix, 64, 16)
assert np.array_equal(expected, actual), "fallback diverged from fused"
print("FALLBACK-IDENTICAL")
"""


class TestSubprocessFallback:
    """Degraded environments, proven in real child interpreters."""

    def test_repro_no_jit_env(self):
        env = _child_env()
        env["REPRO_NO_JIT"] = "1"
        result = subprocess.run(
            [sys.executable, "-c", _CHILD_BODY],
            capture_output=True, text=True, timeout=300, env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "FALLBACK-IDENTICAL" in result.stdout

    def test_numba_less_interpreter(self):
        """Block numba imports entirely: same records as fused.

        ``sys.modules["numba"] = None`` makes ``import numba`` raise even
        when the package is installed, so this is a real numba-less test
        on the CI compiled leg too.
        """
        env = _child_env()
        env.pop("REPRO_NO_JIT", None)
        script = 'import sys\nsys.modules["numba"] = None\n' + _CHILD_BODY
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=300, env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "FALLBACK-IDENTICAL" in result.stdout
