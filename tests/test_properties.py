"""Property-based (hypothesis) tests of the core ProSparsity invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.dispatch import build_dispatch_plan
from repro.core.forest import NO_PREFIX, build_forest
from repro.core.prosparsity import execute_gemm, transform_matrix
from repro.core.reference import (
    dense_spiking_gemm,
    reference_prefixes,
    reference_product_nnz,
)
from repro.core.spike_matrix import SpikeMatrix, SpikeTile

spike_tiles = hnp.arrays(
    dtype=bool,
    shape=st.tuples(st.integers(1, 48), st.integers(1, 24)),
)

settings_kwargs = dict(max_examples=40, deadline=None)


@given(spike_tiles)
@settings(**settings_kwargs)
def test_prefix_selection_matches_reference(bits):
    forest = build_forest(SpikeTile(bits))
    assert (forest.prefix == reference_prefixes(bits)).all()


@given(spike_tiles)
@settings(**settings_kwargs)
def test_product_nnz_matches_reference(bits):
    forest = build_forest(SpikeTile(bits))
    assert forest.product_nnz() == reference_product_nnz(bits)


@given(spike_tiles)
@settings(**settings_kwargs)
def test_prefix_is_subset_of_row(bits):
    tile = SpikeTile(bits)
    forest = build_forest(tile)
    for row in range(tile.m):
        pre = forest.prefix[row]
        if pre != NO_PREFIX:
            assert not (bits[pre] & ~bits[row]).any()


@given(spike_tiles)
@settings(**settings_kwargs)
def test_pattern_plus_prefix_reconstructs_row(bits):
    tile = SpikeTile(bits)
    forest = build_forest(tile)
    for row in range(tile.m):
        pre = forest.prefix[row]
        reconstructed = forest.pattern[row].copy()
        if pre != NO_PREFIX:
            reconstructed |= bits[pre]
        assert (reconstructed == bits[row]).all()


@given(spike_tiles)
@settings(**settings_kwargs)
def test_forest_is_acyclic(bits):
    assert build_forest(SpikeTile(bits)).verify_acyclic()


@given(spike_tiles)
@settings(**settings_kwargs)
def test_dispatch_order_topological(bits):
    forest = build_forest(SpikeTile(bits))
    plan = build_dispatch_plan(forest)
    assert plan.verify_topological(forest)


@given(spike_tiles)
@settings(**settings_kwargs)
def test_product_density_never_exceeds_bit_density(bits):
    result = transform_matrix(bits, 16, 8, keep_transforms=False)
    assert result.stats.product_nnz <= result.stats.bit_nnz


@given(
    hnp.arrays(dtype=bool, shape=st.tuples(st.integers(1, 40), st.integers(1, 20))),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_gemm_lossless_integer_weights(bits, seed):
    """The flagship invariant: ProSparsity GeMM == dense GeMM exactly."""
    rng = np.random.default_rng(seed)
    weights = rng.integers(-16, 16, size=(bits.shape[1], 6))
    out = execute_gemm(SpikeMatrix(bits), weights, tile_m=16, tile_k=8)
    assert (out == dense_spiking_gemm(bits, weights)).all()


@given(spike_tiles, st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_tiling_invariance_of_losslessness(bits, divisor):
    """Any tile size must give the same (exact) GeMM result."""
    rng = np.random.default_rng(99)
    weights = rng.integers(-8, 8, size=(bits.shape[1], 3))
    tile_m = max(1, bits.shape[0] // divisor)
    tile_k = max(1, bits.shape[1] // divisor)
    out = execute_gemm(SpikeMatrix(bits), weights, tile_m=tile_m, tile_k=tile_k)
    assert (out == dense_spiking_gemm(bits, weights)).all()


@given(spike_tiles)
@settings(**settings_kwargs)
def test_em_rows_have_zero_residual_and_nonzero_popcount(bits):
    tile = SpikeTile(bits)
    forest = build_forest(tile)
    residual = forest.residual_ops()
    for row in forest.exact_match_rows():
        assert residual[row] == 0
        assert forest.popcounts[row] > 0
        assert (bits[row] == bits[forest.prefix[row]]).all()
