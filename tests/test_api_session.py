"""Session facade: shared lifecycle, structured results, queue seam."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.density import density_report
from repro.api import (
    DensityResult,
    EngineRunResult,
    RunConfig,
    Session,
    SimulationResult,
    SweepResult,
)
from repro.engine import ProsperityEngine

LENET = {
    "workload.model": "lenet5",
    "workload.dataset": "mnist",
    "sampling.max_tiles": 4,
}


def lenet_config(**extra) -> RunConfig:
    return RunConfig().with_overrides({**LENET, **extra})


class TestLifecycle:
    def test_engine_and_backend_shared(self):
        with Session(lenet_config()) as session:
            assert session.engine is session.engine
            assert session.backend is session.backend
            assert session.engine.backend is session.backend

    def test_engine_reflects_config(self):
        cfg = lenet_config(**{
            "engine.backend": "fused", "engine.plan": "trace",
            "engine.tile_m": 128, "engine.tile_k": 8,
            "engine.cache_size": 0,
        })
        with Session(cfg) as session:
            engine = session.engine
            assert engine.backend.name == "fused"
            assert engine.plan == "trace"
            assert (engine.tile_m, engine.tile_k) == (128, 8)
            assert engine.cache is None

    def test_closed_session_rejects_calls(self):
        session = Session(lenet_config())
        session.close()
        session.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            session.run()
        with pytest.raises(RuntimeError, match="closed"):
            _ = session.engine

    def test_close_releases_sharded_pool(self):
        cfg = lenet_config(**{"engine.backend": "sharded",
                              "engine.workers": 2, "engine.plan": "trace"})
        session = Session(cfg)
        backend = session.backend
        session.run()
        session.close()
        assert backend._pool is None

    def test_default_config(self):
        session = Session()
        assert session.config == RunConfig()
        session.close()

    def test_from_file(self, tmp_path):
        path = lenet_config().to_file(tmp_path / "run.json")
        with Session.from_file(path, sets=["engine.backend=fused"]) as session:
            assert session.config.workload.model == "lenet5"
            assert session.config.engine.backend == "fused"


class TestResults:
    def test_run_matches_direct_engine(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        with Session(cfg) as session:
            result = session.run()
        assert isinstance(result, EngineRunResult)
        assert result.config is cfg
        assert result.seconds > 0
        assert result.verified is None  # not requested
        with ProsperityEngine(backend="fused") as engine:
            direct = engine.run(session.trace(), batch=cfg.engine.batch)
        assert result.report.total_tiles == direct.total_tiles
        for mine, theirs in zip(result.report.runs, direct.runs):
            assert np.array_equal(mine.records, theirs.records)

    def test_run_verify_flag(self):
        cfg = lenet_config(**{"engine.backend": "vectorized",
                              "engine.verify": True})
        with Session(cfg) as session:
            assert session.run().verified is True

    def test_profile_attached(self):
        cfg = lenet_config(**{"engine.backend": "fused", "engine.plan": "trace"})
        with Session(cfg) as session:
            result = session.run()
        assert {"plan", "dedup", "select"} <= set(result.profile)
        assert result.report.dedup_ratio >= 1.0

    def test_simulate_reports(self):
        cfg = lenet_config(**{"simulator.baselines": ("eyeriss", "ptb")})
        with Session(cfg) as session:
            result = session.simulate()
        assert isinstance(result, SimulationResult)
        assert sorted(result.reports) == ["eyeriss", "prosperity", "ptb"]
        assert result.prosperity.seconds > 0

    def test_density_matches_core_path(self):
        """Session density (engine-backed) is bit-identical to the
        pre-Session CLI path (core transform, same seed)."""
        with Session(lenet_config()) as session:
            mine = session.density().report
            reference = density_report(
                session.trace(), max_tiles=4,
                rng=np.random.default_rng(session.config.workload.seed),
            )
        assert isinstance(mine, type(reference))
        assert mine.product_density == reference.product_density
        assert mine.bit_density == reference.bit_density

    def test_sweep_honors_exact_sampling(self, monkeypatch):
        """max_tiles=0 means exact everywhere, including sweep()."""
        import repro.api.session as session_mod

        captured = {}

        def fake_sweep(traces, **kwargs):
            captured.update(kwargs)
            return [], []

        monkeypatch.setattr(session_mod, "sweep_tile_sizes", fake_sweep)
        with Session(lenet_config(**{"sampling.max_tiles": 0})) as session:
            session.sweep()
        assert captured["max_tiles"] is None

    def test_sweep_points(self):
        cfg = lenet_config(**{"sweep.m_values": (64,), "sweep.k_values": (8,)})
        with Session(cfg) as session:
            result = session.sweep()
        assert isinstance(result, SweepResult)
        assert [p.tile_m for p in result.m_sweep] == [64]
        assert [p.tile_k for p in result.k_sweep] == [8]
        assert len(result.points) == 2

    def test_scaling_and_tradeoff(self):
        with Session(lenet_config()) as session:
            scaling = session.scaling()
            tradeoff = session.tradeoff()
        assert len(scaling.points) > 0
        assert tradeoff.result.profitable  # dS=0.1335 > 4.4% break-even

    def test_density_result_type(self):
        with Session(lenet_config()) as session:
            assert isinstance(session.density(), DensityResult)


class TestPoolReuse:
    def test_one_pool_across_run_simulate_sweep(self):
        """Acceptance: a sharded Session spawns exactly one process pool
        no matter which experiments run through it."""
        cfg = lenet_config(**{
            "engine.backend": "sharded", "engine.workers": 2,
            "engine.plan": "trace",
            "sweep.m_values": (64,), "sweep.k_values": (8,),
        })
        with Session(cfg) as session:
            session.run()
            assert session.backend.pools_spawned == 1  # pool engaged
            session.simulate()
            session.sweep()
            session.run()
            assert session.backend.pools_spawned == 1

    def test_sharded_records_bit_identical(self):
        sharded_cfg = lenet_config(**{"engine.backend": "sharded",
                                      "engine.workers": 2,
                                      "engine.plan": "trace"})
        reference_cfg = lenet_config(**{"engine.backend": "reference"})
        with Session(sharded_cfg) as sharded, Session(reference_cfg) as ref:
            mine = sharded.run().report
            theirs = ref.run().report
        for a, b in zip(mine.runs, theirs.runs):
            assert np.array_equal(a.records, b.records)


class TestCloseIdempotency:
    """Satellite contract: Session.close()/Backend.close() double-close
    is a no-op — after real work, with pools, and interleaved."""

    def test_session_double_close_after_run(self):
        session = Session(lenet_config(**{"engine.backend": "fused"}))
        session.run()
        session.close()
        session.close()
        session.close()  # any number of closes is a no-op

    def test_sharded_session_double_close_releases_pool_once(self):
        cfg = lenet_config(**{"engine.backend": "sharded",
                              "engine.workers": 2, "engine.plan": "trace"})
        session = Session(cfg)
        backend = session.backend
        session.run()
        session.close()
        assert backend._pool is None
        session.close()  # second close must not touch the dead backend
        assert backend._pool is None

    def test_backend_double_close(self):
        from repro.engine import ShardedBackend, get_backend

        backend = ShardedBackend(workers=2)
        backend.close()
        backend.close()
        for name in ("reference", "vectorized", "fused"):
            plain = get_backend(name)
            plain.close()
            plain.close()

    def test_engine_double_close(self):
        with Session(lenet_config()) as session:
            engine = session.engine
        engine.close()  # session.close() already closed it once

    def test_context_manager_then_explicit_close(self):
        with Session(lenet_config()) as session:
            session.density()
        session.close()  # after __exit__ already closed


class TestSharedEngine:
    def test_injected_engine_is_shared_not_owned(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        with Session(cfg) as owner:
            engine = owner.engine
            borrower = Session(cfg, engine=engine)
            assert borrower.engine is engine
            assert borrower.backend is engine.backend
            result = borrower.run()
            assert result.report.total_tiles > 0
            borrower.close()
            # The engine survived the borrower: the owner still runs.
            assert owner.run().report.total_tiles > 0

    def test_injected_engine_must_match_config(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        with Session(cfg) as owner:
            mismatched = lenet_config(**{"engine.backend": "vectorized"})
            with pytest.raises(ValueError, match="does not match"):
                Session(mismatched, engine=owner.engine)
            # Plan mode is part of the contract too: a matrix-planned
            # engine cannot serve a trace-planned config.
            planned = lenet_config(**{"engine.backend": "fused",
                                      "engine.plan": "trace"})
            with pytest.raises(ValueError, match="does not match"):
                Session(planned, engine=owner.engine)

    def test_injected_engine_worker_count_checked_when_pinned(self):
        cfg = lenet_config(**{"engine.backend": "sharded",
                              "engine.workers": 2})
        with Session(cfg) as owner:
            pinned = lenet_config(**{"engine.backend": "sharded",
                                     "engine.workers": 4})
            with pytest.raises(ValueError, match="does not match"):
                Session(pinned, engine=owner.engine)
            # workers=None means "backend default": any pool size is fine.
            unpinned = lenet_config(**{"engine.backend": "sharded"})
            borrower = Session(unpinned, engine=owner.engine)
            borrower.close()


class TestStream:
    def test_stream_chunks_cover_run(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        with Session(cfg) as session:
            direct = session.run()
            stream = session.stream()
            chunks = []
            try:
                while True:
                    chunks.append(next(stream))
            except StopIteration as stop:
                final = stop.value
        assert sum(chunk.tiles for chunk in chunks) == direct.report.total_tiles
        streamed = {
            run.name: run.records for chunk in chunks for run in chunk.runs
        }
        for run in direct.report.runs:
            assert np.array_equal(streamed[run.name], run.records)
        for mine, theirs in zip(final.report.runs, direct.report.runs):
            assert np.array_equal(mine.records, theirs.records)

    def test_stream_chunk_size(self):
        cfg = lenet_config(**{"engine.backend": "fused",
                              "scheduler.stream_chunk": 2})
        with Session(cfg) as session:
            workloads = len(session.run().report.runs)
            chunks = list(session.stream())
        assert len(chunks) == -(-workloads // 2)


class TestSubmitQueue:
    def test_submit_matches_direct_call(self):
        cfg = lenet_config(**{"engine.backend": "fused"})
        with Session(cfg) as session:
            queued = session.submit("run").result()
            direct = session.run()
        assert queued.report.total_tiles == direct.report.total_tiles
        for a, b in zip(queued.report.runs, direct.report.runs):
            assert np.array_equal(a.records, b.records)

    def test_concurrent_submissions_share_engine(self):
        with Session(lenet_config()) as session:
            futures = [session.submit(kind)
                       for kind in ("run", "density", "tradeoff")]
            results = [f.result() for f in futures]
        assert isinstance(results[0], EngineRunResult)
        assert isinstance(results[1], DensityResult)
        assert results[2].result.profitable

    def test_unknown_kind(self):
        with Session(lenet_config()) as session:
            with pytest.raises(ValueError, match="unknown experiment"):
                session.submit("fly")

    def test_close_drains_queue(self):
        session = Session(lenet_config())
        future = session.submit("density")
        session.close()
        assert future.result().report.product_density > 0

    def test_submit_returns_future(self):
        """The PR 4 Future-based contract survives the scheduler rework."""
        from concurrent.futures import Future

        with Session(lenet_config()) as session:
            future = session.submit("tradeoff")
            assert isinstance(future, Future)
            assert future.result().result.profitable

    def test_submit_shares_session_engine(self):
        """Scheduled jobs run against the session's engine — one sharded
        pool across direct calls and submissions."""
        cfg = lenet_config(**{"engine.backend": "sharded",
                              "engine.workers": 2, "engine.plan": "trace"})
        with Session(cfg) as session:
            session.run()
            futures = [session.submit("run") for _ in range(3)]
            for future in futures:
                assert future.result().report.total_tiles > 0
            assert session.backend.pools_spawned == 1

    def test_submit_after_close_raises(self):
        session = Session(lenet_config())
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.submit("run")
