"""Trace-level execution planner: cross-workload batching stays exact.

The acceptance contract: tile records produced by the trace-level
planner (``plan="trace"``) are bit-identical to the per-matrix fused
output — and to the reference oracle — for every backend and worker
count, on ragged shapes, awkward packed widths, and sampled subsets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.spike_matrix import SpikeMatrix, random_spike_matrix
from repro.engine import (
    PLAN_MODES,
    BufferArena,
    ProsperityEngine,
    ShardedBackend,
    TracePlanner,
    validate_plan_mode,
)
from repro.engine.backends import ReferenceBackend
from repro.engine.planner import PLANNED_PROFILE_STAGES
from repro.snn.trace import GeMMWorkload

TILE_M, TILE_K = 64, 16


def _workloads(rng, specs):
    """Synthetic trace: (rows, cols, density, correlation) per workload."""
    return [
        GeMMWorkload(
            name=f"w{i}",
            spikes=random_spike_matrix(rows, cols, density, rng, correlation),
            n=8,
        )
        for i, (rows, cols, density, correlation) in enumerate(specs)
    ]


def _matrix_records(workloads, backend, tile_m=TILE_M, tile_k=TILE_K):
    return [
        backend.matrix_records(w.spikes, tile_m, tile_k) for w in workloads
    ]


@pytest.fixture(scope="module")
def pooled_sharded():
    backend = ShardedBackend(workers=2)
    yield backend
    backend.close()


class TestBufferArena:
    def test_take_shape_and_dtype(self):
        arena = BufferArena()
        view = arena.take(("a",), (3, 4), np.int64)
        assert view.shape == (3, 4) and view.dtype == np.int64
        assert arena.allocations == 1 and arena.reuses == 0

    def test_reuse_without_allocation(self):
        arena = BufferArena()
        first = arena.take(("a",), (8, 2), np.uint8)
        first[:] = 7
        again = arena.take(("a",), (8, 2), np.uint8)
        assert arena.allocations == 1 and arena.reuses == 1
        assert again.base is first.base

    def test_smaller_request_reuses_slab(self):
        arena = BufferArena()
        arena.take(("a",), (100,), np.int64)
        arena.take(("a",), (10,), np.int64)
        assert arena.allocations == 1 and arena.reuses == 1

    def test_growth_doubles_capacity(self):
        arena = BufferArena()
        arena.take(("a",), (10,), np.int64)
        arena.take(("a",), (11,), np.int64)
        assert arena.allocations == 2
        # Doubled: the next modest growth fits without a fresh slab.
        arena.take(("a",), (20,), np.int64)
        assert arena.allocations == 2 and arena.reuses == 1

    def test_dtype_change_reallocates(self):
        arena = BufferArena()
        arena.take(("a",), (4,), np.int64)
        arena.take(("a",), (4,), np.uint8)
        assert arena.allocations == 2

    def test_clear_drops_slabs(self):
        arena = BufferArena()
        arena.take(("a",), (4,), np.int64)
        assert len(arena) == 1 and arena.nbytes == 32
        arena.clear()
        assert len(arena) == 0 and arena.nbytes == 0


class TestPlanModeValidation:
    def test_modes(self):
        assert PLAN_MODES == ("matrix", "trace")
        for mode in PLAN_MODES:
            assert validate_plan_mode(mode) == mode

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="plan mode"):
            validate_plan_mode("async")
        with pytest.raises(ValueError, match="plan mode"):
            ProsperityEngine(plan="bogus")
        engine = ProsperityEngine(backend="fused")
        with pytest.raises(ValueError, match="plan mode"):
            engine.run([], plan="bogus")


class TestPlannedRecordEquivalence:
    """The acceptance property: planner output == per-matrix fused == oracle."""

    #: Ragged rows/cols, packed widths of 2/3/5/7 bytes, mixed densities.
    SPECS = (
        (130, 17, 0.3, 0.4),
        (64, 17, 0.05, 0.0),
        (200, 33, 0.5, 0.6),
        (96, 56, 0.25, 0.3),
        (40, 16, 0.7, 0.2),
    )

    def _trace(self, rng):
        return _workloads(rng, self.SPECS)

    @pytest.mark.parametrize("backend", ["reference", "vectorized", "fused"])
    def test_planner_matches_oracle_all_backends(self, rng, backend):
        workloads = self._trace(rng)
        expected = _matrix_records(workloads, ReferenceBackend())
        report = ProsperityEngine(
            backend=backend, tile_m=TILE_M, tile_k=TILE_K, plan="trace"
        ).run(workloads)
        assert report.plan == "trace"
        assert len(report.runs) == len(expected)
        for run, records in zip(report.runs, expected):
            assert np.array_equal(run.records, records), (backend, run.name)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_planner_matches_fused_sharded(self, rng, workers, pooled_sharded):
        workloads = self._trace(rng)
        from repro.engine import FusedBackend

        expected = _matrix_records(workloads, FusedBackend())
        backend = pooled_sharded if workers == 2 else ShardedBackend(workers=1)
        try:
            report = ProsperityEngine(
                backend=backend, tile_m=TILE_M, tile_k=TILE_K, plan="trace"
            ).run(workloads)
            for run, records in zip(report.runs, expected):
                assert np.array_equal(run.records, records), (workers, run.name)
        finally:
            if backend is not pooled_sharded:
                backend.close()

    def test_plan_modes_identical_on_real_trace(self, vgg_trace):
        matrix_report = ProsperityEngine(
            backend="fused", tile_m=256, tile_k=16
        ).run(vgg_trace, batch=8)
        trace_report = ProsperityEngine(
            backend="fused", tile_m=256, tile_k=16, plan="trace"
        ).run(vgg_trace)
        for mine, theirs in zip(trace_report.runs, matrix_report.runs):
            assert np.array_equal(mine.records, theirs.records), mine.name

    def test_run_plan_override(self, rng):
        """`run(plan=...)` overrides the engine default per call."""
        workloads = self._trace(rng)
        engine = ProsperityEngine(backend="fused", tile_m=TILE_M, tile_k=TILE_K)
        default = engine.run(workloads)
        overridden = engine.run(workloads, plan="trace")
        assert default.plan == "matrix" and overridden.plan == "trace"
        for mine, theirs in zip(overridden.runs, default.runs):
            assert np.array_equal(mine.records, theirs.records)


class TestPartialResults:
    """The on_workload streaming seam: exactly-once, exact records."""

    def test_callback_fires_once_per_workload(self, rng):
        workloads = _workloads(
            rng, [(128, 32, 0.3, 0.5), (64, 16, 0.2, 0.0), (192, 48, 0.4, 0.3)]
        )
        backend = ReferenceBackend()
        expected = _matrix_records(workloads, backend)
        planner = TracePlanner()
        completed: dict[int, np.ndarray] = {}

        def on_workload(index, records):
            assert index not in completed  # exactly once
            completed[index] = records.copy()

        with planner.exclusive():
            plan = planner.plan(
                [w.spikes for w in workloads], TILE_M, TILE_K
            )
            per_workload = planner.execute(
                plan, backend, on_workload=on_workload
            )
        assert sorted(completed) == list(range(len(workloads)))
        for index, records in enumerate(per_workload):
            assert np.array_equal(completed[index], records)
            assert np.array_equal(records, expected[index])

    def test_callback_records_match_final_slices(self, rng):
        """A workload's callback payload is its final record block —
        complete the moment it fires, not filled in later."""
        workloads = _workloads(rng, [(128, 32, 0.3, 0.5)] * 3)
        planner = TracePlanner()
        backend = ReferenceBackend()
        snapshots = {}

        def on_workload(index, records):
            snapshots[index] = records.copy()

        with planner.exclusive():
            plan = planner.plan([w.spikes for w in workloads], TILE_M, TILE_K)
            final = planner.execute(plan, backend, on_workload=on_workload)
        for index, records in enumerate(final):
            assert np.array_equal(snapshots[index], records)

    def test_exclusive_serializes_concurrent_plans(self, rng):
        """Two threads sharing one planner interleave plan+execute pairs
        without corrupting each other's arena-backed buckets."""
        import threading

        workloads_a = _workloads(rng, [(128, 32, 0.3, 0.5), (64, 16, 0.2, 0.0)])
        workloads_b = _workloads(rng, [(192, 48, 0.4, 0.3)])
        backend = ReferenceBackend()
        expected = {
            "a": _matrix_records(workloads_a, backend),
            "b": _matrix_records(workloads_b, backend),
        }
        planner = TracePlanner()
        failures: list[str] = []

        def worker(name, workloads):
            for _ in range(5):
                with planner.exclusive():
                    plan = planner.plan(
                        [w.spikes for w in workloads], TILE_M, TILE_K
                    )
                    results = planner.execute(plan, backend)
                for mine, theirs in zip(results, expected[name]):
                    if not np.array_equal(mine, theirs):
                        failures.append(name)

        threads = [
            threading.Thread(target=worker, args=("a", workloads_a)),
            threading.Thread(target=worker, args=("b", workloads_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures


class TestDedupStats:
    def test_repeated_workloads_dedup(self, rng):
        """A trace repeated over timesteps dedups across workloads."""
        base = _workloads(rng, [(128, 32, 0.3, 0.5)])
        repeated = base * 4  # four identical "timesteps"
        report = ProsperityEngine(
            backend="fused", tile_m=TILE_M, tile_k=TILE_K, plan="trace"
        ).run(repeated)
        assert report.planned_tiles == 4 * base[0].spikes.num_tiles(TILE_M, TILE_K)
        assert report.unique_tiles <= report.planned_tiles // 4
        assert report.dedup_ratio >= 4.0
        # All four copies carry identical records.
        for run in report.runs[1:]:
            assert np.array_equal(run.records, report.runs[0].records)

    def test_matrix_mode_reports_no_dedup(self, rng):
        report = ProsperityEngine(
            backend="fused", tile_m=TILE_M, tile_k=TILE_K
        ).run(_workloads(rng, [(64, 16, 0.3, 0.0)]))
        assert report.planned_tiles == 0
        assert report.unique_tiles == 0
        assert report.dedup_ratio == 0.0

    def test_planned_profile_stages(self, rng):
        report = ProsperityEngine(
            backend="fused", tile_m=TILE_M, tile_k=TILE_K, plan="trace"
        ).run(_workloads(rng, [(128, 32, 0.3, 0.5), (64, 16, 0.2, 0.0)]))
        assert set(report.profile) == set(PLANNED_PROFILE_STAGES)
        assert all(seconds >= 0.0 for seconds in report.profile.values())


class TestArenaReuse:
    def test_second_run_allocates_nothing(self, rng):
        workloads = _workloads(rng, [(130, 17, 0.3, 0.4), (64, 33, 0.2, 0.0)])
        engine = ProsperityEngine(
            backend="fused", tile_m=TILE_M, tile_k=TILE_K, plan="trace"
        )
        engine.run(workloads)
        arena = engine.planner.arena
        allocations = arena.allocations
        reuses = arena.reuses
        second = engine.run(workloads)
        assert arena.allocations == allocations  # no churn on re-plan
        assert arena.reuses > reuses
        expected = _matrix_records(workloads, ReferenceBackend())
        for run, records in zip(second.runs, expected):
            assert np.array_equal(run.records, records)

    def test_returned_records_survive_replanning(self, rng):
        """Records are freshly allocated, never views of arena slabs."""
        first_trace = _workloads(rng, [(128, 16, 0.3, 0.4)])
        second_trace = _workloads(rng, [(128, 16, 0.6, 0.1)])
        engine = ProsperityEngine(
            backend="fused", tile_m=TILE_M, tile_k=TILE_K, plan="trace"
        )
        first = engine.run(first_trace)
        kept = first.runs[0].records.copy()
        engine.run(second_trace)  # overwrites arena slabs
        assert np.array_equal(first.runs[0].records, kept)


class TestTransformTrace:
    def test_matches_per_matrix_loop(self, rng):
        workloads = _workloads(rng, [(130, 17, 0.3, 0.4), (64, 16, 0.2, 0.0)])
        engine = ProsperityEngine(
            backend="fused", tile_m=TILE_M, tile_k=TILE_K, plan="trace"
        )
        loop = [
            ProsperityEngine(backend="fused", tile_m=TILE_M, tile_k=TILE_K)
            .transform_matrix(w.spikes)
            for w in workloads
        ]
        planned = engine.transform_trace(workloads)
        for mine, theirs in zip(planned, loop):
            assert np.array_equal(mine.tile_records, theirs.tile_records)

    def test_accepts_bare_matrices(self, rng):
        matrices = [
            random_spike_matrix(96, 32, 0.3, rng),
            SpikeMatrix(rng.random((64, 16)) < 0.2).bits,  # raw ndarray
        ]
        engine = ProsperityEngine(
            backend="fused", tile_m=TILE_M, tile_k=TILE_K, plan="trace"
        )
        results = engine.transform_trace(matrices)
        assert len(results) == 2
        oracle = ReferenceBackend()
        for matrix, result in zip(matrices, results):
            matrix = matrix if isinstance(matrix, SpikeMatrix) else SpikeMatrix(matrix)
            assert np.array_equal(
                result.tile_records,
                oracle.matrix_records(matrix, TILE_M, TILE_K),
            )

    def test_empty_trace(self):
        engine = ProsperityEngine(backend="fused", plan="trace")
        assert engine.transform_trace([]) == []
        report = engine.run([])
        assert report.runs == [] and report.planned_tiles == 0


class TestPlannedGemm:
    def test_integer_weights_exact(self, rng):
        matrix = random_spike_matrix(130, 33, 0.3, rng, 0.4)
        weights = rng.integers(-5, 6, size=(33, 9))
        per_tile = ProsperityEngine(
            backend="vectorized", tile_m=TILE_M, tile_k=TILE_K
        ).execute_gemm(matrix, weights)
        planned = ProsperityEngine(
            backend="vectorized", tile_m=TILE_M, tile_k=TILE_K, plan="trace"
        ).execute_gemm(matrix, weights)
        assert np.array_equal(per_tile, planned)
        dense = matrix.bits.astype(np.int64) @ weights.astype(np.int64)
        assert np.array_equal(planned, dense)

    def test_float_weights_same_summation_order(self, rng):
        matrix = random_spike_matrix(96, 40, 0.25, rng, 0.3)
        weights = rng.standard_normal((40, 5))
        per_tile = ProsperityEngine(
            backend="vectorized", tile_m=32, tile_k=16
        ).execute_gemm(matrix, weights)
        planned = ProsperityEngine(
            backend="vectorized", tile_m=32, tile_k=16, plan="trace"
        ).execute_gemm(matrix, weights)
        # Accumulation runs in row-major tile order in both paths, so
        # even float outputs are bit-equal, not merely close.
        assert np.array_equal(per_tile, planned)


class TestPlannerDirect:
    def test_bucket_scatter_covers_every_tile(self, rng):
        planner = TracePlanner()
        matrices = [
            random_spike_matrix(130, 17, 0.3, rng),
            random_spike_matrix(64, 33, 0.2, rng),
        ]
        plan = planner.plan(matrices, TILE_M, TILE_K)
        assert plan.total_tiles == sum(
            m.num_tiles(TILE_M, TILE_K) for m in matrices
        )
        assert plan.unique_tiles <= plan.total_tiles
        covered = set()
        for bucket in plan.buckets:
            for owner, position in zip(bucket.owner, bucket.position):
                covered.add((int(owner), int(position)))
        assert len(covered) == plan.total_tiles

    def test_shared_shapes_merge_into_one_bucket(self, rng):
        planner = TracePlanner()
        matrices = [
            random_spike_matrix(TILE_M * 2, TILE_K, 0.3, rng),
            random_spike_matrix(TILE_M * 3, TILE_K, 0.2, rng),
        ]
        plan = planner.plan(matrices, TILE_M, TILE_K)
        assert len(plan.buckets) == 1  # one (m, k) shape across workloads
        assert plan.buckets[0].tiles == 5


class TestCliPlan:
    def test_cli_run_trace_plan(self, capsys):
        from repro.cli import main

        assert main(
            [
                "run", "--model", "lenet5", "--dataset", "mnist",
                "--backend", "fused", "--plan", "trace",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "plan: trace" in out
        assert "cross-workload dedup" in out
        assert "profile:" in out

    def test_cli_rejects_unknown_plan(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(
                ["run", "--model", "lenet5", "--dataset", "mnist",
                 "--plan", "bogus"]
            )
