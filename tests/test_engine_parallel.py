"""Sharded backend: multiprocess execution must stay bit-identical.

The acceptance contract: for workers in {1, 2, 4} the sharded backend's
tile records equal the reference oracle's exactly, and the records are
byte-for-byte independent of the worker count (deterministic shard
splits + submission-order merge).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.spike_matrix import random_spike_matrix
from repro.engine import (
    ProsperityEngine,
    ShardedBackend,
    available_backends,
    get_backend,
)
from repro.engine.backends import ReferenceBackend
from repro.engine.parallel import MIN_TILES_PER_SHARD, shard_bounds

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def pooled_backends():
    """One persistent pool per worker count, shared across the module."""
    backends = {workers: ShardedBackend(workers=workers) for workers in WORKER_COUNTS}
    yield backends
    for backend in backends.values():
        backend.close()


class TestShardBounds:
    def test_covers_contiguously(self):
        for total in (1, 7, 8, 17, 100):
            for shards in (1, 2, 4, 9):
                bounds = shard_bounds(total, shards)
                assert bounds[0][0] == 0
                assert bounds[-1][1] == total
                for (_, a_end), (b_start, _) in zip(bounds, bounds[1:]):
                    assert a_end == b_start

    def test_never_exceeds_total(self):
        assert len(shard_bounds(3, 8)) == 3
        assert shard_bounds(0, 4) == [(0, 0)]


class TestShardedEquivalence:
    def test_matches_reference_oracle(self, rng, pooled_backends):
        """Workers in {1, 2, 4}: records bit-identical to the oracle."""
        oracle = ReferenceBackend()
        # Enough tiles that the pool path actually engages (>= 2 shards).
        cases = [
            random_spike_matrix(
                64 * 2 * MIN_TILES_PER_SHARD, 16, density, rng, correlation
            )
            for density, correlation in ((0.05, 0.0), (0.3, 0.5), (0.7, 0.2))
        ]
        for matrix in cases:
            expected = oracle.matrix_records(matrix, 64, 16)
            for workers, backend in pooled_backends.items():
                actual = backend.matrix_records(matrix, 64, 16)
                assert np.array_equal(expected, actual), workers

    def test_records_independent_of_worker_count(self, rng, pooled_backends):
        matrix = random_spike_matrix(64 * 20, 32, 0.25, rng, 0.4)
        outputs = [
            backend.matrix_records(matrix, 64, 16)
            for backend in pooled_backends.values()
        ]
        for other in outputs[1:]:
            assert np.array_equal(outputs[0], other)

    def test_small_batches_run_inline(self, rng):
        """Tiny stacks skip the pool entirely (no fork cost, same bits)."""
        backend = ShardedBackend(workers=2)
        try:
            matrix = random_spike_matrix(48, 16, 0.3, rng)
            expected = ReferenceBackend().matrix_records(matrix, 16, 16)
            assert np.array_equal(
                expected, backend.matrix_records(matrix, 16, 16)
            )
            assert backend._pool is None  # never spawned
        finally:
            backend.close()

    def test_pool_persists_across_calls(self, rng, pooled_backends):
        backend = pooled_backends[2]
        matrix = random_spike_matrix(64 * 20, 16, 0.2, rng)
        backend.matrix_records(matrix, 64, 16)
        pool_first = backend._pool
        backend.matrix_records(matrix, 64, 16)
        assert backend._pool is pool_first
        assert pool_first is not None

    def test_engine_run_matches_vectorized(self, pooled_backends, vgg_trace):
        vectorized = ProsperityEngine(backend="vectorized", tile_m=256, tile_k=16)
        sharded = ProsperityEngine(
            backend=pooled_backends[2], tile_m=256, tile_k=16
        )
        vec_report = vectorized.run(vgg_trace, batch=8)
        shard_report = sharded.run(vgg_trace, batch=8)
        assert shard_report.backend == "sharded"
        assert shard_report.workers == 2
        for mine, theirs in zip(shard_report.runs, vec_report.runs):
            assert np.array_equal(mine.records, theirs.records), mine.name


class TestShardedConstruction:
    def test_registered(self):
        assert "sharded" in available_backends()

    def test_get_backend_with_workers(self):
        backend = get_backend("sharded", workers=3)
        try:
            assert isinstance(backend, ShardedBackend)
            assert backend.workers == 3
        finally:
            backend.close()

    def test_engine_workers_passthrough(self):
        engine = ProsperityEngine(backend="sharded", workers=2)
        try:
            assert engine.backend.workers == 2
        finally:
            engine.backend.close()

    def test_default_workers_positive(self):
        backend = ShardedBackend()
        try:
            assert backend.workers >= 1
        finally:
            backend.close()

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ShardedBackend(workers=0)

    def test_other_backends_reject_workers(self):
        with pytest.raises(ValueError, match="does not accept"):
            get_backend("vectorized", workers=2)
        with pytest.raises(ValueError, match="does not accept"):
            ProsperityEngine(backend="fused", workers=2)

    def test_options_rejected_for_instances(self):
        backend = ShardedBackend(workers=1)
        try:
            with pytest.raises(ValueError, match="already-constructed"):
                get_backend(backend, workers=2)
        finally:
            backend.close()

    def test_none_workers_ignored_for_any_backend(self):
        assert get_backend("vectorized", workers=None).name == "vectorized"

    def test_close_idempotent(self):
        backend = ShardedBackend(workers=1)
        backend.close()
        backend.close()


class TestDelTeardown:
    """Satellite contract: __del__ never raises or prints, even when the
    executor is half torn down (interpreter-shutdown GC)."""

    def test_del_suppresses_shutdown_errors(self):
        backend = ShardedBackend(workers=2)

        class BrokenPool:
            def shutdown(self, *args, **kwargs):
                raise RuntimeError("cannot schedule new futures after "
                                   "interpreter shutdown")

        backend._pool = BrokenPool()
        backend.__del__()  # must swallow the teardown error...
        assert backend._pool is None  # ...and detach so GC never retries

    def test_del_without_pool_is_noop(self):
        backend = ShardedBackend(workers=2)
        backend.__del__()
        backend.__del__()

    def test_del_on_partially_constructed_backend(self):
        backend = ShardedBackend.__new__(ShardedBackend)  # __init__ skipped
        backend.__del__()  # no _pool attribute yet: still silent

    def test_interpreter_shutdown_is_silent(self):
        """A live engaged pool collected at interpreter exit (no close())
        must not print teardown noise to stderr."""
        import os
        import pathlib
        import subprocess
        import sys

        import repro

        # Make the package importable in the child even from a bare
        # checkout (the root conftest shim only helps pytest itself).
        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        script = (
            "import numpy as np\n"
            "from repro.core.spike_matrix import random_spike_matrix\n"
            "from repro.engine import ShardedBackend\n"
            "backend = ShardedBackend(workers=2)\n"
            "matrix = random_spike_matrix(64 * 20, 16, 0.2, "
            "np.random.default_rng(0))\n"
            "backend.matrix_records(matrix, 64, 16)\n"
            "assert backend._pool is not None\n"
            "# exit without close(): GC/shutdown must stay silent\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        assert result.stderr.strip() == "", result.stderr


class TestPoolLifecycle:
    """Pools are spawned once, reused across calls, and never leaked."""

    def test_context_manager_closes_pool(self, rng):
        matrix = random_spike_matrix(64 * 20, 16, 0.2, rng)
        with ShardedBackend(workers=2) as backend:
            backend.matrix_records(matrix, 64, 16)
            assert backend._pool is not None
        assert backend._pool is None

    def test_pool_spawned_once_across_many_calls(self, rng, pooled_backends):
        backend = pooled_backends[4]
        matrix = random_spike_matrix(64 * 20, 16, 0.2, rng)
        for _ in range(3):
            backend.matrix_records(matrix, 64, 16)
        assert backend.pools_spawned == 1

    def test_inline_path_never_spawns(self, rng):
        with ShardedBackend(workers=2) as backend:
            backend.matrix_records(random_spike_matrix(48, 16, 0.3, rng), 16, 16)
            assert backend.pools_spawned == 0

    def test_engine_close_and_context_manager(self, rng):
        matrix = random_spike_matrix(64 * 20, 16, 0.2, rng)
        with ProsperityEngine(backend="sharded", workers=2, tile_m=64) as engine:
            engine.transform_matrix(matrix)
            assert engine.backend._pool is not None
        assert engine.backend._pool is None
        engine.close()  # idempotent through the engine too

    def test_non_pooled_backends_close_is_noop(self):
        with ProsperityEngine(backend="vectorized") as engine:
            pass
        engine.close()
        with get_backend("fused") as backend:
            assert backend.name == "fused"

    def test_simulator_close_spares_shared_engine(self, rng, pooled_backends):
        """Simulator close() only closes engines it constructed."""
        from repro.arch.simulator import ProsperitySimulator

        backend = pooled_backends[4]
        backend.matrix_records(random_spike_matrix(64 * 20, 16, 0.2, rng), 64, 16)
        pool = backend._pool
        engine = ProsperityEngine(backend=backend, tile_m=64, tile_k=16)
        with ProsperitySimulator(engine=engine):
            pass
        assert backend._pool is pool  # shared engine: left open

    def test_repeated_simulators_share_one_pool(self, rng, pooled_backends):
        """Simulator construction over a shared engine respawns nothing."""
        from repro.arch.simulator import ProsperitySimulator

        backend = pooled_backends[2]
        engine = ProsperityEngine(backend=backend, tile_m=64, tile_k=16)
        spawned_before = backend.pools_spawned
        matrix = random_spike_matrix(64 * 20, 16, 0.2, rng)
        for _ in range(3):
            simulator = ProsperitySimulator(engine=engine)
            simulator.engine.transform_matrix(matrix)
        assert backend.pools_spawned - spawned_before <= 1
        pool = backend._pool
        ProsperitySimulator(engine=engine).engine.transform_matrix(matrix)
        assert backend._pool is pool

    def test_sweep_closes_owned_backend(self, monkeypatch, rng):
        """sweep_tile_sizes closes backends it built from a name."""
        from repro.analysis import sweep as sweep_module
        from repro.snn.trace import GeMMWorkload, ModelTrace

        created = []
        real_engine = sweep_module.ProsperityEngine

        def capture(*args, **kwargs):
            engine = real_engine(*args, **kwargs)
            created.append(engine)
            return engine

        monkeypatch.setattr(sweep_module, "ProsperityEngine", capture)
        trace = ModelTrace(
            model="synthetic",
            dataset="unit",
            workloads=[
                GeMMWorkload(
                    name="w0",
                    spikes=random_spike_matrix(64, 16, 0.3, rng),
                    n=4,
                )
            ],
        )
        sweep_module.sweep_tile_sizes(
            [trace], m_values=(32,), k_values=(8,), max_tiles=2,
            rng=np.random.default_rng(0), backend="sharded", workers=2,
        )
        assert created, "sweep built no engine"
        assert created[0].backend._pool is None  # closed on exit

    def test_sweep_leaves_shared_instances_open(self, rng, pooled_backends):
        from repro.analysis.sweep import sweep_tile_sizes
        from repro.snn.trace import GeMMWorkload, ModelTrace

        backend = pooled_backends[2]
        backend.matrix_records(random_spike_matrix(64 * 20, 16, 0.2, rng), 64, 16)
        pool = backend._pool
        trace = ModelTrace(
            model="synthetic",
            dataset="unit",
            workloads=[
                GeMMWorkload(
                    name="w0",
                    spikes=random_spike_matrix(64, 16, 0.3, rng),
                    n=4,
                )
            ],
        )
        sweep_tile_sizes(
            [trace], m_values=(32,), k_values=(8,), max_tiles=2,
            rng=np.random.default_rng(0), backend=backend,
        )
        assert backend._pool is pool  # caller-owned: untouched


class TestCliSharded:
    def test_cli_run_sharded(self, capsys):
        from repro.cli import main

        assert main(
            [
                "run", "--model", "lenet5", "--dataset", "mnist",
                "--backend", "sharded", "--workers", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "backend=sharded" in out
        assert "workers: 2" in out
        assert "profile:" in out

    def test_cli_rejects_workers_for_vectorized(self):
        from repro.cli import main

        # Config validation rejects the combo with a clean one-line exit
        # (same "does not accept" wording as get_backend itself).
        with pytest.raises(SystemExit, match="does not accept"):
            main(
                ["run", "--model", "lenet5", "--dataset", "mnist",
                 "--backend", "vectorized", "--workers", "2"]
            )
